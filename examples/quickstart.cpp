/**
 * @file
 * Quickstart: parallelize a nondeterministic loop with the SDI.
 *
 * The program is a tiny stream smoother with the exact code pattern
 * of paper Figure 4: each invocation consumes an input and the state
 * left by the previous invocation, updates the state, and emits an
 * output. The state has "short memory" (it is an exponentially-
 * weighted average of recent inputs plus estimation noise), so
 * auxiliary code that replays only a few recent inputs produces a
 * state the original nondeterministic producer could have produced —
 * which is what lets STATS overlap the groups.
 *
 * This example uses the paper-faithful StateDependence API of
 * Figure 9 on real threads.
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "sdi/state_dependence.hpp"
#include "support/rng.hpp"

namespace {

struct Input
{
    int id;
    double value;
};

struct Output
{
    double smoothed;
};

struct State
{
    double average = 0.0;

    double
    distance(const State &other) const
    {
        return std::abs(average - other.average);
    }
};

/** The target of the state dependence (paper Figure 4's code). */
Output *
computeOutput(Input *input, State *state)
{
    // Nondeterministic estimation: a randomized refinement loop, as
    // a stand-in for the particle filters of the real benchmarks.
    stats::support::Xoshiro256 rng(stats::support::entropySeed());
    double estimate = 0.7 * state->average + 0.3 * input->value;
    for (int i = 0; i < 8; ++i)
        estimate += rng.gaussian(0.0, 1e-3);
    state->average = estimate;
    return new Output{estimate};
}

} // namespace

int
main()
{
    // A stream of inputs; the count must be known up front (this is
    // the STATS requirement that excludes canneal).
    stats::support::Xoshiro256 rng(7);
    std::vector<Input> storage;
    std::vector<Input *> inputs;
    for (int i = 0; i < 400; ++i)
        storage.push_back({i, std::sin(0.05 * i) + rng.gaussian(0, 0.1)});
    for (auto &input : storage)
        inputs.push_back(&input);

    State initial;

    // --- Paper Figure 8: encode the dependence with the SDI. -------
    stats::sdi::StateDependence<Input, State, Output> state_dep(
        &inputs, &initial, computeOutput);

    // The STATS toolchain installs auxiliary code (a tradeoff-tuned
    // clone of computeOutput) and the state comparison; here we wire
    // them manually. The comparison accepts a speculative state
    // within the estimation noise of one run (developer knowledge),
    // falling back to the paper's originals-bracket rule.
    state_dep.setAuxiliaryCode(computeOutput);
    state_dep.setMatcher(
        [](const State &spec, const std::vector<State> &originals) {
            constexpr double kTolerance = 0.02;
            for (std::size_t i = 0; i < originals.size(); ++i) {
                if (spec.distance(originals[i]) <= kTolerance)
                    return static_cast<int>(i);
            }
            return -1;
        });

    stats::sdi::SpecConfig config;
    config.groupSize = 20;
    // The EWMA forgets its start after ~24 inputs (0.7^24 ~ 2e-4, far
    // below the estimation noise): that is the state's "memory", and
    // the auxiliary window must cover it.
    config.auxWindow = 24;
    config.maxReexecutions = 2;
    state_dep.setConfig(config);
    state_dep.setThreads(4);

    // --- Paper Figure 9: start() + join(). --------------------------
    state_dep.start();
    state_dep.join();

    const auto &outputs = state_dep.outputs();
    double checksum = 0.0;
    for (const Output *output : outputs)
        checksum += output->smoothed;

    const auto &stats = state_dep.stats();
    std::printf("processed %zu inputs (checksum %.4f)\n",
                outputs.size(), checksum);
    std::printf("groups: %lld, speculative commits: %lld, "
                "mismatches: %lld, re-executions: %lld, aborts: %lld\n",
                static_cast<long long>(stats.groups),
                static_cast<long long>(stats.validations),
                static_cast<long long>(stats.mismatches),
                static_cast<long long>(stats.reexecutions),
                static_cast<long long>(stats.aborts));
    std::printf("match rate: %.0f%%\n", 100.0 * stats.matchRate());
    return 0;
}
