/**
 * @file
 * Toolchain tour: extended C++ -> front-end -> middle-end -> back-end.
 *
 * Walks the paper's Figure 6 compilation flow on a small program:
 *  1. the front-end translates the TI/SDI extensions to standard C++
 *     (Figure 11) and emits the tradeoff metadata;
 *  2. the middle-end generates auxiliary code on the IR: it clones
 *     computeOutput and the tradeoffs it reaches, then freezes the
 *     non-auxiliary tradeoffs to their defaults;
 *  3. the back-end instantiates two different configurations from
 *     the same IR — evaluating getValue(i) at compile time — and the
 *     interpreter shows the auxiliary code's behaviour change while
 *     the original code stays fixed.
 */

#include <cstdio>

#include "backend/backend.hpp"
#include "frontend/frontend.hpp"
#include "ir/exec_tier.hpp"
#include "ir/parser.hpp"
#include "midend/midend.hpp"

using namespace stats;

namespace {

/** Extended C++: one constant tradeoff + one state dependence. */
const char *kExtendedSource = R"(
class Iterations_options : Tradeoff_options {
    int64_t getMaxIndex() { return 6; }
    auto getValue(int64_t i) { return i + 1; }
    int64_t getDefaultIndex() { return 3; }
};
tradeoff TO_iterations {
    { Iterations_options };
};

class Input { int id; };
class Output { double refined; };
class State { double estimate; };

Output *computeOutput(Input *in, State *s) {
    for (int i = 0; i < TO_iterations; ++i)
        s->estimate = refine(s->estimate, in);
    return new Output{s->estimate};
}

void run() {
    vector<Input *> inputs(n);
    State s;
    StateDependence<Input, State, Output> dep(&inputs, &s, computeOutput);
    dep.start();
    dep.join();
}
)";

/** The same program, hand-lowered to the mini-IR (the clang step). */
const char *kLoweredIr = R"(
module "demo"
func @T_42() -> i64 {
entry:
  ret i64 4
}
func @T_42_getValue(i64 %i) -> i64 {
entry:
  %v = add i64 %i, 1
  ret i64 %v
}
func @T_42_size() -> i64 {
entry:
  ret i64 6
}
func @T_42_getDefaultIndex() -> i64 {
entry:
  ret i64 3
}
func @computeOutput(i64 %input, f64 %state) -> f64 {
entry:
  %iters = call i64 @T_42()
  jmp loop
loop:
  %i = phi i64 [0, entry], [%i2, loop]
  %e = phi f64 [%state, entry], [%e2, loop]
  %fi = cast f64 %input
  %e2 = mul f64 %e, 0.9
  %i2 = add i64 %i, 1
  %more = cmplt i64 %i2, %iters
  br %more, loop, done
done:
  %r = add f64 %e2, %fi
  ret f64 %r
}
)";

} // namespace

int
main()
{
    // 1. Front-end.
    const auto fe = frontend::compileExtendedSource(kExtendedSource,
                                                    "demo");
    std::printf("== front-end ==\n");
    std::printf("tradeoffs found: %zu, state dependences: %zu\n",
                fe.tradeoffs.size(), fe.stateDeps.size());
    std::printf("generated header (%zu LOC):\n%s\n", fe.generatedLoc,
                fe.generatedHeader.c_str());

    // 2. Middle-end: combine the lowered IR with the front-end's
    // metadata, then generate auxiliary code.
    ir::Module module = ir::parseModule(std::string(kLoweredIr) + "\n" +
                                        fe.irMetadata);
    const std::size_t before = module.instructionCount();
    const auto report = midend::runMiddleEnd(module);
    std::printf("== middle-end ==\n");
    std::printf("cloned %zu function(s), %zu tradeoff(s); IR grew "
                "%zu -> %zu instructions\n",
                report.clonedFunctions.size(),
                report.clonedTradeoffs.size(), before,
                module.instructionCount());

    // 3. Back-end: instantiate two configurations of the same IR.
    std::printf("== back-end ==\n");
    for (const std::int64_t index : {0, 5}) {
        backend::BackendConfig config;
        config.auxiliaryDeps.insert("SD0");
        config.tradeoffIndices["aux::T_42"] = index;
        const ir::Module binary = backend::instantiate(module, config);

        ir::ExecutableModule exec(binary);
        const double original =
            exec.call("computeOutput", {ir::RtValue::ofInt(3),
                                        ir::RtValue::ofFloat(10.0)})
                .asFloat();
        const double auxiliary =
            exec.call("computeOutput__aux0",
                      {ir::RtValue::ofInt(3), ir::RtValue::ofFloat(10.0)})
                .asFloat();
        std::printf("aux::iterations index %lld -> original %.4f, "
                    "auxiliary %.4f\n",
                    static_cast<long long>(index), original, auxiliary);
    }
    std::printf("(the original stays at the default tradeoff; only the "
                "auxiliary code changes)\n");
    return 0;
}
