/**
 * @file
 * Domain example: the bodytrack workload end to end.
 *
 * Generates a synthetic multi-camera stream, then runs the annealed
 * particle filter three ways on the simulated 28-core platform:
 * out-of-the-box (original TLP), STATS with default knobs, and STATS
 * autotuned. Prints the speedups, the speculation counters, and the
 * tracking quality against the oracle — demonstrating that the extra
 * TLP does not change what the program computes.
 */

#include <cstdio>

#include "benchmarks/common/benchmark.hpp"
#include "profiler/profiler.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main()
{
    auto bench = createBenchmark("bodytrack");
    sim::MachineConfig machine; // Dual-socket 14-core Haswell model.
    const auto oracle =
        bench->oracleSignature(WorkloadKind::Representative, 1);

    // Sequential baseline.
    RunRequest request;
    request.threads = 1;
    request.mode = Mode::Original;
    request.machine = machine;
    const RunResult sequential = bench->run(request);
    std::printf("sequential:        %6.2fs  quality %.4f\n",
                sequential.virtualSeconds,
                bench->quality(sequential.signature, oracle));

    // Original TLP on 28 cores.
    request.threads = 28;
    const RunResult original = bench->run(request);
    std::printf("original TLP x28:  %6.2fs  speedup %5.2fx  "
                "quality %.4f\n",
                original.virtualSeconds,
                sequential.virtualSeconds / original.virtualSeconds,
                bench->quality(original.signature, oracle));

    // STATS, default configuration.
    request.mode = Mode::SeqStats;
    const RunResult stats_default = bench->run(request);
    std::printf("STATS (default):   %6.2fs  speedup %5.2fx  "
                "quality %.4f  (commits %lld, re-execs %lld)\n",
                stats_default.virtualSeconds,
                sequential.virtualSeconds /
                    stats_default.virtualSeconds,
                bench->quality(stats_default.signature, oracle),
                static_cast<long long>(
                    stats_default.engineStats.validations),
                static_cast<long long>(
                    stats_default.engineStats.reexecutions));

    // STATS, autotuned (the paper's default flow).
    const auto tuned = profiler::tuneBenchmark(
        *bench, Mode::ParStats, 28, machine, profiler::Objective::Time,
        /* budget */ 40);
    request.mode = Mode::ParStats;
    request.config = tuned.config;
    const RunResult stats_tuned = bench->run(request);
    std::printf("STATS (autotuned): %6.2fs  speedup %5.2fx  "
                "quality %.4f  (%d configurations evaluated)\n",
                stats_tuned.virtualSeconds,
                sequential.virtualSeconds / stats_tuned.virtualSeconds,
                bench->quality(stats_tuned.signature, oracle),
                tuned.tuning.evaluations);

    std::printf("\nThe chosen configuration: %s\n",
                bench->stateSpace(28).describe(tuned.config).c_str());
    return 0;
}
