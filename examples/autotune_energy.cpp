/**
 * @file
 * Autotuner example: performance mode vs energy mode.
 *
 * STATS can optimize for run time or for whole-system energy (paper
 * Figure 15): the autotuner explores the same state space with a
 * different objective and typically lands on a configuration that
 * uses fewer cores when the marginal speedup is not worth the power.
 * The exploration results are kept in the state-space store, so
 * switching objectives reuses every configuration already profiled
 * (paper section 3.2).
 */

#include <cstdio>

#include "benchmarks/common/benchmark.hpp"
#include "profiler/profiler.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main()
{
    auto bench = createBenchmark("bodytrack");
    sim::MachineConfig machine;
    constexpr int kThreads = 28;
    constexpr int kBudget = 40;

    // One profiler (whose measurement store is the reusable
    // state-space store of paper section 3.2) feeding one search per
    // objective. The energy search is seeded with the time search's
    // best and re-profiles nothing the time search already measured.
    profiler::Profiler profiler(*bench, Mode::ParStats, kThreads,
                                machine);
    autotuner::Autotuner time_tuner(bench->stateSpace(kThreads), 11);
    const auto for_time = time_tuner.tune(
        profiler.objectiveFunction(profiler::Objective::Time), kBudget);
    const std::size_t profiled_after_time = profiler.runsPerformed();

    autotuner::Autotuner energy_tuner(bench->stateSpace(kThreads), 13);
    const auto for_energy = energy_tuner.tune(
        profiler.objectiveFunction(profiler::Objective::Energy),
        kBudget, {for_time.best});

    const auto time_run = profiler.profile(for_time.best);
    const auto energy_run = profiler.profile(for_energy.best);

    std::printf("objective=time:   %.3fs, %.1f J\n", time_run.seconds,
                time_run.energyJoules);
    std::printf("objective=energy: %.3fs, %.1f J\n",
                energy_run.seconds, energy_run.energyJoules);
    std::printf("energy mode saves %.1f%% energy at a %.1f%% time "
                "cost\n",
                100.0 * (1.0 - energy_run.energyJoules /
                                   time_run.energyJoules),
                100.0 * (energy_run.seconds / time_run.seconds - 1.0));
    std::printf("benchmark runs: %zu for the time search, %zu more "
                "for the energy search (store hits are free)\n",
                profiled_after_time,
                profiler.runsPerformed() - profiled_after_time);

    const auto space = bench->stateSpace(kThreads);
    std::printf("\ntime-optimal:   %s\n",
                space.describe(for_time.best).c_str());
    std::printf("energy-optimal: %s\n",
                space.describe(for_energy.best).c_str());
    return 0;
}
