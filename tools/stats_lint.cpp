/**
 * @file
 * stats-lint — batch speculation-safety linter.
 *
 * Runs the full analysis suite (docs/ANALYSIS.md) over one or more
 * textual IR modules and exits nonzero when any error-severity
 * diagnostic is found, so CI can gate on it.
 *
 *   stats-lint [options] <ir-file>...
 *     --analyze=PASS        run one pass (default: all)
 *     --analysis-format=FMT text|json (default text)
 *     --midend              run the middle-end before analyzing
 *     --quiet               print nothing for clean modules
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "ir/bytecode_verifier.hpp"
#include "ir/parser.hpp"
#include "midend/midend.hpp"
#include "support/log.hpp"
#include "support/string_utils.hpp"

namespace {

using namespace stats;

struct Options
{
    std::string pass;
    std::string format = "text";
    bool midend = false;
    bool quiet = false;
    std::vector<std::string> files;
};

[[noreturn]] void
usage()
{
    std::cerr << "usage: stats-lint [--analyze=PASS] "
                 "[--analysis-format=text|json] [--midend] [--quiet] "
                 "<ir-file>...\n";
    std::exit(2);
}

Options
parseOptions(int argc, char **argv)
{
    Options options;
    for (int i = 1; i < argc; ++i) {
        const std::string word = argv[i];
        if (!support::startsWith(word, "--")) {
            options.files.push_back(word);
            continue;
        }
        if (word == "--midend") {
            options.midend = true;
        } else if (word == "--quiet") {
            options.quiet = true;
        } else if (support::startsWith(word, "--analyze=")) {
            options.pass = word.substr(10);
            if (!analysis::isPassName(options.pass)) {
                std::string known;
                for (const auto &name : analysis::passNames())
                    known += (known.empty() ? "" : "|") + name;
                support::fatal("unknown analysis pass '", options.pass,
                               "' (expected ", known, ")");
            }
        } else if (support::startsWith(word, "--analysis-format=")) {
            options.format = word.substr(18);
            if (options.format != "text" && options.format != "json")
                support::fatal("unknown format '", options.format,
                               "' (expected text|json)");
        } else {
            usage();
        }
    }
    if (options.files.empty())
        usage();
    return options;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options options = parseOptions(argc, argv);

    std::size_t failed = 0;
    for (const auto &file : options.files) {
        std::ifstream in(file);
        if (!in)
            support::fatal("cannot open '", file, "'");
        std::ostringstream buffer;
        buffer << in.rdbuf();

        ir::Module module = ir::parseModule(buffer.str());
        if (options.midend)
            midend::runMiddleEnd(module);

        analysis::LintOptions lint;
        lint.pass = options.pass;
        lint.bytecodeVerifier = ir::bc::verifyCompiledModule;
        const auto diags = analysis::runAnalyses(module, lint);
        const bool errors = analysis::hasErrors(diags);
        if (errors)
            ++failed;

        if (options.quiet && diags.empty())
            continue;
        if (options.format == "json")
            analysis::writeDiagnosticsJson(std::cout, module.name, file,
                                           diags);
        else
            analysis::writeDiagnosticsText(std::cout, file, diags);
    }

    if (options.files.size() > 1 && !options.quiet) {
        std::cout << failed << " of " << options.files.size()
                  << " module(s) failed\n";
    }
    return failed == 0 ? 0 : 1;
}
