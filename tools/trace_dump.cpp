/**
 * @file
 * stats-trace-dump — run one benchmark configuration with the trace
 * layer enabled and pretty-print the collected speculation events.
 *
 * The fastest way to *look at* what the engine did: every AuxStart/
 * BodyEnd/ValidateMismatch/... event in sequence order, followed by
 * the derived-metrics summary. `--chrome=FILE` additionally exports
 * the same events as a chrome://tracing JSON. The event schema is
 * documented in docs/OBSERVABILITY.md.
 *
 * Usage:
 *   stats-trace-dump <benchmark> [--mode=original|seq|par]
 *       [--threads=N] [--workload=rep|bad] [--seed=N]
 *       [--limit=N] [--events=all|engine|sched] [--chrome=FILE]
 *
 * `--limit` bounds the printed event rows (default 64; 0 = all).
 * `--events` filters the rows: `engine` hides the scheduler's
 * TaskStolen/WorkerPark/WorkerUnpark/QueueDepth instants, `sched`
 * shows only them (real-thread runs; the simulator emits none).
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "benchmarks/common/benchmark.hpp"
#include "observability/chrome_trace.hpp"
#include "observability/summary.hpp"
#include "observability/trace.hpp"
#include "support/log.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

using namespace stats;
using namespace stats::benchmarks;

namespace {

std::string
trackName(std::int32_t track)
{
    if (track == obs::kFrontierTrack)
        return "frontier";
    return "exec " + std::to_string(track);
}

void
usage()
{
    std::cerr
        << "usage: stats-trace-dump <benchmark> [options]\n"
        << "options:\n"
        << "  --mode=original|seq|par   (default par)\n"
        << "  --threads=N               (default 28)\n"
        << "  --workload=rep|bad        (default rep)\n"
        << "  --seed=N                  run seed (default 0)\n"
        << "  --limit=N                 event rows printed; 0 = all "
           "(default 64)\n"
        << "  --events=all|engine|sched event-row filter (default all)\n"
        << "  --chrome=FILE             also write chrome://tracing "
           "JSON\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    std::string bench_name;
    std::map<std::string, std::string> options;
    for (int i = 1; i < argc; ++i) {
        const std::string word = argv[i];
        if (support::startsWith(word, "--")) {
            const auto eq = word.find('=');
            if (eq == std::string::npos)
                options[word.substr(2)] = "true";
            else
                options[word.substr(2, eq - 2)] = word.substr(eq + 1);
        } else if (bench_name.empty()) {
            bench_name = word;
        } else {
            usage();
            return 1;
        }
    }
    if (bench_name.empty()) {
        usage();
        return 1;
    }
    const auto option = [&](const std::string &key,
                            const std::string &fallback) {
        auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    };

    auto bench = createBenchmark(bench_name);

    RunRequest request;
    const std::string mode = option("mode", "par");
    request.mode = mode == "original" ? Mode::Original
                   : mode == "seq"    ? Mode::SeqStats
                                      : Mode::ParStats;
    request.threads = std::stoi(option("threads", "28"));
    request.workload = option("workload", "rep") == "bad"
                           ? WorkloadKind::NonRepresentative
                           : WorkloadKind::Representative;
    request.runSeed =
        static_cast<std::uint64_t>(std::stoll(option("seed", "0")));

    obs::Trace::global().enable();
    // Folds to false when the layer is compiled out.
    if (!obs::traceActive())
        support::fatal("tracing compiled out "
                       "(built with STATS_OBS_DISABLE)");
    const RunResult result = bench->run(request);
    const auto events = obs::Trace::global().collect();
    const auto summary =
        obs::summarizeTrace(events, obs::Trace::global().dropped());

    std::cout << bench->name() << " [" << modeName(request.mode) << ", "
              << request.threads << " threads]: " << events.size()
              << " events, " << result.virtualSeconds << " s virtual\n\n";

    const auto limit =
        static_cast<std::size_t>(std::stoll(option("limit", "64")));
    const std::string filter = option("events", "all");
    if (filter != "all" && filter != "engine" && filter != "sched") {
        usage();
        return 1;
    }
    support::TextTable table(
        {"seq", "event", "group", "inputs", "track", "t (s)", "arg"});
    std::size_t printed = 0;
    std::size_t filtered = 0;
    for (const auto &event : events) {
        const bool sched = obs::isSchedulerEvent(event.type);
        if ((filter == "engine" && sched) ||
            (filter == "sched" && !sched)) {
            ++filtered;
            continue;
        }
        if (limit != 0 && printed == limit)
            break;
        std::ostringstream inputs;
        inputs << "[" << event.inputBegin << ", " << event.inputEnd
               << ")";
        table.addRow({std::to_string(event.seq),
                      obs::eventTypeName(event.type),
                      std::to_string(event.group), inputs.str(),
                      trackName(event.track),
                      support::TextTable::formatDouble(event.ts, 6),
                      std::to_string(event.arg)});
        ++printed;
    }
    table.print(std::cout);
    if (limit != 0 && events.size() - filtered > limit)
        std::cout << "... " << events.size() - filtered - limit
                  << " more events (raise with --limit=N, 0 = all)\n";
    if (filtered > 0)
        std::cout << "(" << filtered << " events hidden by --events="
                  << filter << ")\n";
    std::cout << "\n";
    obs::printSummaryTable(std::cout, summary);

    // Scheduler footer: steal/park activity at a glance (real-thread
    // runs only; simulated runs legitimately show zeros).
    std::size_t steals = 0;
    std::size_t parks = 0;
    std::size_t unparks = 0;
    std::size_t refills = 0;
    std::size_t heap_refills = 0;
    std::size_t lane_enqueues = 0;
    for (const auto &event : events) {
        switch (event.type) {
          case obs::EventType::TaskStolen:   ++steals;  break;
          case obs::EventType::WorkerPark:   ++parks;   break;
          case obs::EventType::WorkerUnpark: ++unparks; break;
          case obs::EventType::ArenaRefill:
            ++refills;
            if (event.inputEnd == 1)
                ++heap_refills;
            break;
          case obs::EventType::CommitLaneEnqueue:
            ++lane_enqueues;
            break;
          default: break;
        }
    }
    std::cout << "\nscheduler: " << steals << " steals, " << parks
              << " parks, " << unparks << " unparks\n";
    std::cout << "allocation: " << refills << " arena refills ("
              << heap_refills << " from the heap), " << lane_enqueues
              << " commit-lane enqueues\n";

    const std::string chrome_path = option("chrome", "");
    if (!chrome_path.empty()) {
        std::ofstream out(chrome_path);
        if (!out)
            support::fatal("cannot open '", chrome_path, "'");
        obs::writeChromeTrace(out, events);
        std::cout << "\nwrote " << chrome_path
                  << " (load in chrome://tracing)\n";
    }
    return 0;
}
