// stats-replay: inspect, diff, and re-drive record/replay logs
// (docs/REPLAY.md). Subcommands:
//
//   stats-replay inspect <log> [--limit=N] [--run=R]
//       Header, metadata, per-run summary, and a record listing.
//   stats-replay diff <a> <b>
//       First differing record between two logs (exit 1 if any).
//   stats-replay replay <log> [--faults=PLAN] [run options...]
//       Re-run the recorded benchmark under the log; exit 1 on
//       divergence. Equivalent to `statscc run --replay=<log>`.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "benchmarks/common/benchmark.hpp"
#include "replay/fault_plan.hpp"
#include "replay/log_render.hpp"
#include "replay/record_log.hpp"
#include "replay/session.hpp"
#include "support/seed_sequence.hpp"
#include "support/string_utils.hpp"

using namespace stats;

namespace {

struct Options
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> named;

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = named.find(key);
        return it == named.end() ? fallback : it->second;
    }
};

Options
parse(int argc, char **argv)
{
    Options options;
    for (int i = 2; i < argc; ++i) {
        const std::string word = argv[i];
        if (support::startsWith(word, "--")) {
            const auto eq = word.find('=');
            if (eq == std::string::npos)
                options.named[word.substr(2)] = "true";
            else
                options.named[word.substr(2, eq - 2)] =
                    word.substr(eq + 1);
        } else {
            options.positional.push_back(word);
        }
    }
    return options;
}

replay::RecordLog
loadOrDie(const std::string &path)
{
    std::string error;
    auto log = replay::RecordLog::loadFile(path, error);
    if (!log) {
        std::cerr << "stats-replay: " << path << ": " << error << "\n";
        std::exit(2);
    }
    return std::move(*log);
}

void
printRecord(const replay::Record &record)
{
    std::fputs(replay::renderRecord(record).c_str(), stdout);
}

int
cmdInspect(const Options &options)
{
    if (options.positional.empty()) {
        std::cerr << "usage: stats-replay inspect <log> [--limit=N] "
                     "[--run=R]\n";
        return 2;
    }
    const replay::RecordLog log = loadOrDie(options.positional[0]);

    std::printf("schema version : %llu\n",
                static_cast<unsigned long long>(
                    replay::kLogSchemaVersion));
    std::printf("root seed      : %llu\n",
                static_cast<unsigned long long>(log.rootSeed));
    std::printf("engine runs    : %u\n", log.runCount());
    std::printf("records        : %zu\n", log.records.size());
    for (const auto &entry : log.metadata) {
        std::printf("meta %-10s: %s\n", entry.first.c_str(),
                    entry.second.c_str());
    }

    const long limit = std::stol(options.get("limit", "64"));
    const long run_filter = std::stol(options.get("run", "-1"));
    long printed = 0;
    long skipped = 0;
    for (const auto &record : log.records) {
        if (run_filter >= 0 &&
            record.run != static_cast<std::uint32_t>(run_filter)) {
            continue;
        }
        if (limit != 0 && printed >= limit) {
            ++skipped;
            continue;
        }
        printRecord(record);
        ++printed;
    }
    if (skipped > 0) {
        std::printf("  ... %ld more (raise --limit or use --run)\n",
                    skipped);
    }
    return 0;
}

int
cmdDiff(const Options &options)
{
    if (options.positional.size() < 2) {
        std::cerr << "usage: stats-replay diff <a> <b>\n";
        return 2;
    }
    const replay::RecordLog a = loadOrDie(options.positional[0]);
    const replay::RecordLog b = loadOrDie(options.positional[1]);

    const replay::DiffRender render = replay::renderDiff(a, b);
    std::fputs(render.text.c_str(), stdout);
    return render.identical ? 0 : 1;
}

int
cmdReplay(const Options &options)
{
    if (options.positional.empty()) {
        std::cerr << "usage: stats-replay replay <log> "
                     "[--faults=PLAN]\n";
        return 2;
    }
    replay::RecordLog log = loadOrDie(options.positional[0]);

    const std::string fault_spec = options.get("faults", "");
    if (!fault_spec.empty()) {
        std::string error;
        auto plan = replay::FaultPlan::fromSpec(fault_spec, error);
        if (!plan) {
            std::cerr << "stats-replay: " << error << "\n";
            return 2;
        }
        replay::ReplaySession::global().setFaultPlan(*plan);
        std::cerr << "fault plan: " << plan->describe() << "\n";
    }

    const std::string bench_name = log.meta("benchmark", "");
    if (bench_name.empty()) {
        std::cerr << "stats-replay: log has no `benchmark` metadata "
                     "(recorded by a fig harness?); re-drive it with "
                     "the harness's own --replay flag instead\n";
        return 2;
    }
    auto bench = benchmarks::createBenchmark(bench_name);

    benchmarks::RunRequest request;
    const std::string mode = log.meta("mode", "par");
    request.mode = mode == "original" ? benchmarks::Mode::Original
                   : mode == "seq"    ? benchmarks::Mode::SeqStats
                                      : benchmarks::Mode::ParStats;
    request.threads = std::stoi(log.meta("threads", "28"));
    request.workload = log.meta("workload", "rep") == "bad"
                           ? benchmarks::WorkloadKind::NonRepresentative
                           : benchmarks::WorkloadKind::Representative;
    const std::uint64_t root_seed = log.rootSeed;
    if (root_seed != 0) {
        const support::SeedSequence seeds(root_seed);
        request.workloadSeed = seeds.derive("workload");
        request.runSeed = seeds.derive("run");
    }

    auto &session = replay::ReplaySession::global();
    session.startReplay(std::move(log));
    bench->run(request);
    const replay::ReplayReport report = session.finishReplay();
    if (report.diverged) {
        std::printf("replay DIVERGED: %s\n",
                    report.first.describe().c_str());
        return 1;
    }
    std::printf("replay OK: matched %llu choice points across %u "
                "engine runs\n",
                static_cast<unsigned long long>(report.recordsMatched),
                report.runsReplayed);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string command = argc > 1 ? argv[1] : "";
    const Options options = parse(argc, argv);
    if (command == "inspect")
        return cmdInspect(options);
    if (command == "diff")
        return cmdDiff(options);
    if (command == "replay")
        return cmdReplay(options);
    std::cerr << "usage: stats-replay <inspect|diff|replay> ...\n"
                 "  inspect <log> [--limit=N] [--run=R]\n"
                 "  diff <a> <b>\n"
                 "  replay <log> [--faults=PLAN]\n"
                 "see docs/REPLAY.md\n";
    return 2;
}
