/**
 * @file
 * stats-fuzz — developer driver for the generative testing subsystem.
 *
 * `statscc fuzz` is the one-shot campaign entry point; this tool
 * exposes the individual stages for debugging a finding:
 *
 *   stats-fuzz gen --seed=S --index=I          print generated case I
 *   stats-fuzz run <case-file>...              oracle each case file
 *   stats-fuzz shrink <case-file> [--out=F]    minimize a failing case
 *   stats-fuzz campaign [options]              same as `statscc fuzz`
 *
 * Common options:
 *   --seed=N --runs=N --artifacts=DIR --near-miss-every=N
 *   --faults-every=N --max-inputs=N --no-shrink --shrink-evals=N
 *   --max-failures=N --no-analysis --verbose
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "support/log.hpp"
#include "support/string_utils.hpp"
#include "testing/fuzzer.hpp"

namespace {

using namespace stats;

struct Options
{
    std::uint64_t seed = 1;
    std::uint64_t index = 0;
    std::string out;
    testing::CampaignOptions campaign;
    std::vector<std::string> files;
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: stats-fuzz <gen|run|shrink|campaign> [options]\n"
        << "  gen --seed=S --index=I        print one generated case\n"
        << "  run <case-file>...            run the oracle on cases\n"
        << "  shrink <case-file> [--out=F]  minimize a failing case\n"
        << "  campaign [options]            full fuzzing campaign\n";
    std::exit(2);
}

std::uint64_t
parseU64(const std::string &word)
{
    try {
        return std::stoull(word);
    } catch (const std::exception &) {
        support::fatal("expected a number, got '", word, "'");
    }
}

Options
parseOptions(int argc, char **argv)
{
    Options options;
    for (int i = 2; i < argc; ++i) {
        const std::string word = argv[i];
        if (!support::startsWith(word, "--")) {
            options.files.push_back(word);
            continue;
        }
        const auto eq = word.find('=');
        const std::string key =
            eq == std::string::npos ? word.substr(2)
                                    : word.substr(2, eq - 2);
        const std::string value =
            eq == std::string::npos ? "" : word.substr(eq + 1);
        auto intValue = [&] {
            return static_cast<int>(parseU64(value));
        };
        if (key == "seed") {
            options.seed = parseU64(value);
            options.campaign.seed = options.seed;
        } else if (key == "index") {
            options.index = parseU64(value);
        } else if (key == "out") {
            options.out = value;
        } else if (key == "runs") {
            options.campaign.runs = intValue();
        } else if (key == "artifacts") {
            options.campaign.artifactsDir = value;
        } else if (key == "near-miss-every") {
            options.campaign.generator.nearMissEvery = intValue();
        } else if (key == "faults-every") {
            options.campaign.generator.faultsEvery = intValue();
        } else if (key == "max-inputs") {
            options.campaign.generator.maxInputs = intValue();
        } else if (key == "no-shrink") {
            options.campaign.shrink = false;
        } else if (key == "shrink-evals") {
            options.campaign.shrinkEvaluations = intValue();
        } else if (key == "max-failures") {
            options.campaign.maxFailures = intValue();
        } else if (key == "no-analysis") {
            options.campaign.oracle.runAnalysis = false;
        } else if (key == "verbose") {
            options.campaign.verbose = true;
        } else {
            usage();
        }
    }
    return options;
}

int
cmdGen(const Options &options)
{
    const testing::FuzzCase fuzz_case = testing::generateCase(
        options.seed, options.index, options.campaign.generator);
    std::cout << testing::serializeCase(fuzz_case);
    return 0;
}

int
cmdRun(const Options &options)
{
    if (options.files.empty())
        usage();
    int failed = 0;
    for (const auto &file : options.files) {
        const auto result = testing::replayCaseFile(
            file, options.campaign.oracle, std::cout);
        if (!result.ok)
            ++failed;
    }
    return failed == 0 ? 0 : 1;
}

int
cmdShrink(const Options &options)
{
    if (options.files.size() != 1)
        usage();
    std::string error;
    const auto loaded = testing::loadCaseFile(options.files[0], error);
    if (!loaded)
        support::fatal("cannot load '", options.files[0], "': ", error);

    testing::ShrinkOptions shrink;
    shrink.maxEvaluations = options.campaign.shrinkEvaluations;
    shrink.oracle = options.campaign.oracle;
    const auto result = testing::shrinkCase(*loaded, shrink);
    if (result.failKind.empty()) {
        std::cerr << "case does not fail the oracle; nothing to shrink\n";
        return 1;
    }
    std::cerr << "; shrunk in " << result.evaluations
              << " oracle evaluation(s), failure kind '"
              << result.failKind << "'\n";

    const std::string text = testing::serializeCase(result.minimized);
    if (options.out.empty()) {
        std::cout << text;
    } else {
        std::ofstream out(options.out, std::ios::binary);
        if (!out)
            support::fatal("cannot write '", options.out, "'");
        out << text;
        std::cerr << "; wrote " << options.out << "\n";
    }
    return 0;
}

int
cmdCampaign(const Options &options)
{
    const auto summary =
        testing::runCampaign(options.campaign, std::cout);
    return summary.ok() ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    const std::string command = argv[1];
    const Options options = parseOptions(argc, argv);
    if (command == "gen")
        return cmdGen(options);
    if (command == "run")
        return cmdRun(options);
    if (command == "shrink")
        return cmdShrink(options);
    if (command == "campaign")
        return cmdCampaign(options);
    usage();
}
