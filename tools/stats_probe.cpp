// Calibration probe behind the benchmark cost models and the match
// tolerances. Not part of the test suite; used to sanity-check the
// emergent behaviour against the paper's shapes.
//
//   stats-probe speedups     per-benchmark speedups / match rates /
//                            quality for the three modes
//   stats-probe tolerances   run-to-run spread of original states vs
//                            auxiliary-state distance (bodytrack,
//                            facedet) — the measurement behind the
//                            kMatchTolerance constants
#include <cstdio>
#include <cstring>

#include "benchmarks/bodytrack/bodytrack.hpp"
#include "benchmarks/common/benchmark.hpp"
#include "benchmarks/facedet/facedet.hpp"

using namespace stats;
using namespace stats::benchmarks;

namespace {

int
runSpeedups()
{
    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const auto oracle =
            bench->oracleSignature(WorkloadKind::Representative, 1);

        RunRequest base;
        base.threads = 1;
        base.mode = Mode::Original;
        const RunResult seq = bench->run(base);

        std::printf("%-18s seq=%.3fs q(seq)=%.4g\n", name.c_str(),
                    seq.virtualSeconds,
                    bench->quality(seq.signature, oracle));

        for (int threads : {4, 14, 28}) {
            RunRequest req;
            req.threads = threads;
            for (Mode mode :
                 {Mode::Original, Mode::SeqStats, Mode::ParStats}) {
                req.mode = mode;
                const RunResult r = bench->run(req);
                std::printf(
                    "   t=%2d %-10s speedup=%6.2f q=%.4g "
                    "val=%lld mis=%lld reex=%lld abort=%lld\n",
                    threads, modeName(mode),
                    seq.virtualSeconds / r.virtualSeconds,
                    bench->quality(r.signature, oracle),
                    static_cast<long long>(r.engineStats.validations),
                    static_cast<long long>(r.engineStats.mismatches),
                    static_cast<long long>(r.engineStats.reexecutions),
                    static_cast<long long>(r.engineStats.aborts));
            }
        }
    }
    return 0;
}

/**
 * The shared shape of the tolerance measurement: two independent
 * original runs up to frame f give the run-to-run spread; replaying
 * only the last k frames from a fresh model gives the distance an
 * auxiliary window of size k would have to bridge.
 */
template <typename Workload, typename Model, typename Params,
          typename Update>
void
measureTolerances(const char *label, const char *fmt,
                  const Workload &wl, const Params &orig,
                  std::initializer_list<int> frames, Update update,
                  Model (*makeInitial)(const Workload &,
                                       const Params &))
{
    for (int f : frames) {
        Model a = makeInitial(wl, orig);
        Model b = makeInitial(wl, orig);
        support::Xoshiro256 ra(100 + f), rb(200 + f);
        for (int t = 0; t <= f; ++t) {
            update(a, wl.frames[t], orig, ra);
            update(b, wl.frames[t], orig, rb);
        }
        std::printf("%s f=%3d  d(origA,origB)=", label, f);
        std::printf(fmt, a.distance(b));
        for (int k : {1, 2, 4, 8}) {
            Model aux = makeInitial(wl, orig);
            support::Xoshiro256 rx(300 + f + k);
            for (int t = f - k + 1; t <= f; ++t)
                update(aux, wl.frames[t], orig, rx);
            std::printf("  d(aux k=%d)=", k);
            std::printf(fmt, aux.distance(a));
        }
        std::printf("\n");
    }
}

int
runTolerances()
{
    {
        using namespace stats::benchmarks::bodytrack;
        const auto wl = makeWorkload(WorkloadKind::Representative, 1);
        const FilterParams orig{5, 50, false};
        measureTolerances<Workload, BodyModel>(
            "bodytrack", "%.4f", wl, orig, {8, 24, 48, 90},
            [](BodyModel &m, const auto &frame,
               const FilterParams &p, support::Xoshiro256 &rng) {
                updateModel(m, frame, p, rng);
            },
            &makeInitialModel);
    }
    {
        using namespace stats::benchmarks::facedet;
        const auto wl = makeWorkload(WorkloadKind::Representative, 1);
        const FilterParams orig{60, 4, 6.0, false};
        measureTolerances<Workload, FaceModel>(
            "facedet  ", "%.3f", wl, orig, {8, 30, 60, 95},
            [](FaceModel &m, const auto &frame,
               const FilterParams &p, support::Xoshiro256 &rng) {
                updateModel(m, frame, p, rng);
            },
            &makeInitialModel);
    }
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: stats-probe <speedups|tolerances>\n"
                 "  speedups    per-benchmark speedups, match rates, "
                 "and quality for the three modes\n"
                 "  tolerances  original-state spread vs "
                 "auxiliary-state distance (bodytrack, facedet)\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc != 2)
        return usage();
    if (std::strcmp(argv[1], "speedups") == 0)
        return runSpeedups();
    if (std::strcmp(argv[1], "tolerances") == 0)
        return runTolerances();
    return usage();
}
