// Measures the run-to-run spread of original states vs the distance
// of auxiliary states, to calibrate the match tolerances.
#include <cstdio>

#include "benchmarks/bodytrack/bodytrack.hpp"
#include "benchmarks/facedet/facedet.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main()
{
    {
        using namespace stats::benchmarks::bodytrack;
        const auto wl = makeWorkload(WorkloadKind::Representative, 1);
        const FilterParams orig{5, 50, false};
        for (int f : {8, 24, 48, 90}) {
            // Two independent original runs up to frame f.
            BodyModel a = makeInitialModel(wl, orig);
            BodyModel b = makeInitialModel(wl, orig);
            support::Xoshiro256 ra(100 + f), rb(200 + f);
            for (int t = 0; t <= f; ++t) {
                updateModel(a, wl.frames[t], orig, ra);
                updateModel(b, wl.frames[t], orig, rb);
            }
            std::printf("bodytrack f=%3d  d(origA,origB)=%.4f", f,
                        a.distance(b));
            for (int k : {1, 2, 4, 8}) {
                BodyModel aux = makeInitialModel(wl, orig);
                support::Xoshiro256 rx(300 + f + k);
                for (int t = f - k + 1; t <= f; ++t)
                    updateModel(aux, wl.frames[t], orig, rx);
                std::printf("  d(aux k=%d)=%.4f", k, aux.distance(a));
            }
            std::printf("\n");
        }
    }
    {
        using namespace stats::benchmarks::facedet;
        const auto wl = makeWorkload(WorkloadKind::Representative, 1);
        const FilterParams orig{60, 4, 6.0, false};
        for (int f : {8, 30, 60, 95}) {
            FaceModel a = makeInitialModel(wl, orig);
            FaceModel b = makeInitialModel(wl, orig);
            support::Xoshiro256 ra(100 + f), rb(200 + f);
            for (int t = 0; t <= f; ++t) {
                updateModel(a, wl.frames[t], orig, ra);
                updateModel(b, wl.frames[t], orig, rb);
            }
            std::printf("facedet   f=%3d  d(origA,origB)=%.3f", f,
                        a.distance(b));
            for (int k : {1, 2, 4, 8}) {
                FaceModel aux = makeInitialModel(wl, orig);
                support::Xoshiro256 rx(300 + f + k);
                for (int t = f - k + 1; t <= f; ++t)
                    updateModel(aux, wl.frames[t], orig, rx);
                std::printf("  d(aux k=%d)=%.3f", k, aux.distance(a));
            }
            std::printf("\n");
        }
    }
    return 0;
}
