// Calibration probe: prints per-benchmark speedups, match rates, and
// quality numbers for the three modes. Not part of the test suite;
// used to sanity-check the emergent behaviour against the paper.
#include <cstdio>

#include "benchmarks/common/benchmark.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main()
{
    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const auto oracle =
            bench->oracleSignature(WorkloadKind::Representative, 1);

        RunRequest base;
        base.threads = 1;
        base.mode = Mode::Original;
        const RunResult seq = bench->run(base);

        std::printf("%-18s seq=%.3fs q(seq)=%.4g\n", name.c_str(),
                    seq.virtualSeconds,
                    bench->quality(seq.signature, oracle));

        for (int threads : {4, 14, 28}) {
            RunRequest req;
            req.threads = threads;
            for (Mode mode :
                 {Mode::Original, Mode::SeqStats, Mode::ParStats}) {
                req.mode = mode;
                const RunResult r = bench->run(req);
                std::printf(
                    "   t=%2d %-10s speedup=%6.2f q=%.4g "
                    "val=%lld mis=%lld reex=%lld abort=%lld\n",
                    threads, modeName(mode),
                    seq.virtualSeconds / r.virtualSeconds,
                    bench->quality(r.signature, oracle),
                    static_cast<long long>(r.engineStats.validations),
                    static_cast<long long>(r.engineStats.mismatches),
                    static_cast<long long>(r.engineStats.reexecutions),
                    static_cast<long long>(r.engineStats.aborts));
            }
        }
    }
    return 0;
}
