/**
 * @file
 * Protocol fuzz micro-tier (ctest label: fuzz): every decoder on the
 * serving wire path — the body codecs in protocol.cpp, the framing
 * layer, and both ExecutionPlan decoders — fed systematically
 * truncated and randomly bit-flipped inputs. The contract under test
 * is *clean rejection*: a decoder returns false/nullopt or a value
 * whose enums are in range; it never crashes, over-reads (the
 * sanitizer jobs run this tier), or accepts trailing garbage.
 *
 * Deterministic: one fixed root seed via support::SeedSequence, so a
 * failure reproduces bit-for-bit.
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "serving/execution_plan.hpp"
#include "serving/protocol.hpp"
#include "serving/server.hpp"
#include "support/rng.hpp"
#include "support/seed_sequence.hpp"

namespace {

using namespace stats;
using serving::AdmissionVerdict;
using serving::ExecutionPlan;
using serving::JobKind;
using serving::RejectReason;
using serving::RequestState;
using serving::RequestStatus;

constexpr std::uint64_t kRootSeed = 0xf022ed5e21ULL;
constexpr int kFlipsPerInput = 300;

/** A fully-populated status, so every codec field is non-trivial. */
RequestStatus
sampleStatus()
{
    RequestStatus status;
    status.state = RequestState::Done;
    status.tenant = "alpha";
    status.result.ok = true;
    status.result.error = "";
    status.result.resultBlob = std::string("\x01\x02\x7f\xff", 4);
    status.result.finalState = -123456789;
    status.result.invocations = 12;
    status.result.batchedLanes = 4;
    return status;
}

ExecutionPlan
samplePlan()
{
    ExecutionPlan plan;
    plan.kind = JobKind::IrSequential;
    plan.tenant = "fuzz";
    plan.moduleText = "module \"m\"\n";
    plan.rootSeed = 42;
    plan.inputs = 8;
    plan.batchLanes = 2;
    plan.noCache = true;
    return plan;
}

/** In-range check for whatever a lenient decode let through. */
void
expectSaneStatus(const RequestStatus &status)
{
    EXPECT_LE(static_cast<int>(status.state), 5);
    EXPECT_GE(status.result.batchedLanes, 0);
}

/**
 * Drive one `(bytes) -> accepted?` decoder through every truncation
 * and kFlipsPerInput random single-bit corruptions of `valid`.
 * `decode` must already assert whatever "sane on accept" means.
 */
void
fuzzDecoder(const std::string &name, const std::string &valid,
            const std::function<bool(const std::string &)> &decode)
{
    SCOPED_TRACE(name + " (root seed 0xf022ed5e21)");
    ASSERT_TRUE(decode(valid)) << name << ": valid input rejected";

    // Every strict prefix must be rejected: all codecs here either
    // run out of fields or fail the trailing-bytes check.
    for (std::size_t cut = 0; cut < valid.size(); ++cut)
        EXPECT_FALSE(decode(valid.substr(0, cut)))
            << name << ": accepted truncation at " << cut;

    // And appended garbage must be rejected too (pos == size check).
    EXPECT_FALSE(decode(valid + '\0'))
        << name << ": accepted one trailing byte";

    support::Xoshiro256 rng(
        support::SeedSequence(kRootSeed).derive(name));
    for (int flip = 0; flip < kFlipsPerInput; ++flip) {
        std::string mutated = valid;
        const auto byte = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(valid.size()) - 1));
        mutated[byte] ^= static_cast<char>(
            1 << rng.uniformInt(0, 7));
        // Either verdict is fine — the flip may be benign — but the
        // call must return (no crash/over-read) and, on accept, the
        // decode lambda's own sanity checks must have held.
        (void)decode(mutated);
    }
}

// ======================================================= Body codecs

TEST(ProtocolFuzzTest, SubmitRejectedBodySurvivesCorruption)
{
    AdmissionVerdict verdict;
    verdict.reason = RejectReason::QuotaExceeded;
    verdict.detail = "over rate";
    verdict.retryAfterSeconds = 1.25;
    fuzzDecoder("decodeSubmitRejected",
                serving::encodeSubmitRejected(verdict),
                [](const std::string &bytes) {
                    AdmissionVerdict out;
                    if (!serving::decodeSubmitRejected(bytes, out))
                        return false;
                    EXPECT_LT(static_cast<int>(out.reason),
                              serving::kRejectReasonCount);
                    return true;
                });
}

TEST(ProtocolFuzzTest, ResultBodySurvivesCorruption)
{
    fuzzDecoder("decodeResult",
                serving::encodeResult(sampleStatus()),
                [](const std::string &bytes) {
                    RequestStatus out;
                    if (!serving::decodeResult(bytes, out))
                        return false;
                    expectSaneStatus(out);
                    return true;
                });
}

TEST(ProtocolFuzzTest, StatusBodySurvivesCorruption)
{
    fuzzDecoder("decodeStatus",
                serving::encodeStatus(sampleStatus()),
                [](const std::string &bytes) {
                    RequestState state = RequestState::Unknown;
                    std::string tenant;
                    if (!serving::decodeStatus(bytes, state, tenant))
                        return false;
                    EXPECT_LE(static_cast<int>(state), 5);
                    return true;
                });
}

TEST(ProtocolFuzzTest, RequestIdBodySurvivesCorruption)
{
    // decodeRequestId accepts any whole varint, so only truncations
    // and trailing bytes are rejectable; flips must merely not crash.
    const std::string valid = serving::encodeRequestId(0x12345678u);
    const auto decode = [](const std::string &bytes) {
        std::uint64_t id = 0;
        return serving::decodeRequestId(bytes, id);
    };
    ASSERT_TRUE(decode(valid));
    for (std::size_t cut = 0; cut < valid.size(); ++cut)
        EXPECT_FALSE(decode(valid.substr(0, cut)));
    EXPECT_FALSE(decode(valid + '\0'));
}

// ============================================================ Frames

TEST(ProtocolFuzzTest, TruncatedFramesNeverDecode)
{
    serving::Frame frame;
    frame.type = serving::MsgType::SubmitReq;
    frame.body = samplePlan().saveToString();
    const std::string wire = serving::encodeFrame(frame);

    for (std::size_t cut = 0; cut < wire.size(); ++cut) {
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(::write(fds[1], wire.data(), cut),
                  static_cast<ssize_t>(cut));
        ::close(fds[1]); // EOF mid-frame.
        EXPECT_FALSE(serving::readFrame(fds[0]).has_value())
            << "accepted a frame truncated at " << cut;
        ::close(fds[0]);
    }
}

TEST(ProtocolFuzzTest, OversizedAndCorruptFrameHeadersAreRejected)
{
    serving::Frame frame;
    frame.type = serving::MsgType::StatusReq;
    frame.body = serving::encodeRequestId(7);
    const std::string wire = serving::encodeFrame(frame);

    // A declared length beyond kMaxFrameBytes must be refused before
    // any allocation-sized read; length zero cannot carry the type.
    for (const std::uint32_t bad :
         {serving::kMaxFrameBytes + 1, 0xffffffffu, 0u}) {
        std::string mutated = wire;
        for (int i = 0; i < 4; ++i)
            mutated[static_cast<std::size_t>(i)] =
                static_cast<char>((bad >> (8 * i)) & 0xff);
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(::write(fds[1], mutated.data(), mutated.size()),
                  static_cast<ssize_t>(mutated.size()));
        ::close(fds[1]);
        EXPECT_FALSE(serving::readFrame(fds[0]).has_value())
            << "accepted declared length " << bad;
        ::close(fds[0]);
    }

    // Random header flips: reject or deliver exactly one frame.
    support::Xoshiro256 rng(
        support::SeedSequence(kRootSeed).derive("frame-header"));
    for (int flip = 0; flip < kFlipsPerInput; ++flip) {
        std::string mutated = wire;
        const auto byte = static_cast<std::size_t>(
            rng.uniformInt(0, 4)); // Header + type byte only.
        mutated[byte] ^= static_cast<char>(
            1 << rng.uniformInt(0, 7));
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(::write(fds[1], mutated.data(), mutated.size()),
                  static_cast<ssize_t>(mutated.size()));
        ::close(fds[1]);
        (void)serving::readFrame(fds[0]);
        ::close(fds[0]);
    }
}

// ==================================================== Plan decoders

TEST(ProtocolFuzzTest, BinaryPlanDecoderSurvivesCorruption)
{
    fuzzDecoder("ExecutionPlan::load",
                samplePlan().saveToString(),
                [](const std::string &bytes) {
                    std::string error;
                    const auto plan =
                        ExecutionPlan::load(bytes, error);
                    if (!plan) {
                        EXPECT_FALSE(error.empty());
                        return false;
                    }
                    EXPECT_LE(static_cast<int>(plan->kind), 2);
                    return true;
                });
}

TEST(ProtocolFuzzTest, TextPlanDecoderSurvivesCorruption)
{
    // The text form tolerates some flips (e.g. inside a digit run),
    // so this checks no-crash plus error reporting on rejection —
    // truncation behavior is value-dependent and not asserted.
    const std::string valid = samplePlan().toText();
    std::string error;
    ASSERT_TRUE(ExecutionPlan::fromText(valid, error)) << error;

    support::Xoshiro256 rng(
        support::SeedSequence(kRootSeed).derive("plan-text"));
    for (int flip = 0; flip < kFlipsPerInput; ++flip) {
        std::string mutated = valid;
        const auto byte = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(valid.size()) - 1));
        mutated[byte] ^= static_cast<char>(
            1 << rng.uniformInt(0, 7));
        std::string flip_error;
        const auto plan = ExecutionPlan::fromText(mutated, flip_error);
        if (!plan)
            EXPECT_FALSE(flip_error.empty())
                << "rejection without a diagnostic at byte " << byte;
    }

    // Random truncation at a line boundary must parse or reject
    // cleanly, never crash.
    for (int cut = 0; cut < 64; ++cut) {
        const auto at = static_cast<std::size_t>(rng.uniformInt(
            0, static_cast<std::int64_t>(valid.size())));
        std::string cut_error;
        (void)ExecutionPlan::fromText(valid.substr(0, at), cut_error);
    }
}

} // namespace
