/**
 * @file
 * Tests of the front-end compiler on Figure 8/10-style extended C++.
 */

#include <gtest/gtest.h>

#include "frontend/frontend.hpp"

namespace {

using namespace stats;
using namespace stats::frontend;

/** The paper's bodytrack running example (Figures 8 and 10). */
const char *kBodytrackExtended = R"(
#include <vector>

class AnnealingLayers_options : Tradeoff_options {
    int64_t getMaxIndex() { return 10; }
    auto getValue(int64_t i) { return i + 1; }
    int64_t getDefaultIndex() { return 4; }
};
tradeoff TO_numAnnealingLayers {
    { AnnealingLayers_options };
};

class Input { int frameId; };
class Output { vector<BodyPart> positions; };
class State {
    vector<Particle> model;
    State &operator=(State &);
    bool doesSpecStateMatchAny(set<State *> originals) {
        for (State *s : originals) {
            if (distance(*s) < bound(originals))
                return true;
        }
        return false;
    }
};

Output *computeOutput(Input *i, State *s) {
    Frame f = getFrame(i->frameId);
    s->model = updateModel(TO_numAnnealingLayers, s->model, f);
    Output *o = new Output();
    o->positions = getPositions(s->model);
    return o;
}

void estimateLocations() {
    vector<Input *> i(numFrames);
    vector<Particle> model(numParticles);
    State s;
    s.model = model;
    StateDependence<Input, State, Output>
        stateDep(&i, &s, computeOutput);
    stateDep.start();
    stateDep.join();
}
)";

TEST(Frontend, ParsesTradeoffDeclaration)
{
    const auto result =
        compileExtendedSource(kBodytrackExtended, "bodytrack");
    ASSERT_EQ(result.tradeoffs.size(), 1u);
    const TradeoffDecl &decl = result.tradeoffs[0];
    EXPECT_EQ(decl.name, "TO_numAnnealingLayers");
    EXPECT_EQ(decl.optionsClass, "AnnealingLayers_options");
    EXPECT_EQ(decl.id, 42);
    EXPECT_EQ(decl.kind, ir::TradeoffKind::Constant);
    EXPECT_NE(decl.getValueBody.find("return i + 1;"),
              std::string::npos);
    EXPECT_NE(decl.getMaxIndexBody.find("return 10;"),
              std::string::npos);
    EXPECT_GT(decl.declaredLoc, 5u);
}

TEST(Frontend, ParsesStateDependence)
{
    const auto result =
        compileExtendedSource(kBodytrackExtended, "bodytrack");
    ASSERT_EQ(result.stateDeps.size(), 1u);
    const StateDepDecl &dep = result.stateDeps[0];
    EXPECT_EQ(dep.variable, "stateDep");
    EXPECT_EQ(dep.inputType, "Input");
    EXPECT_EQ(dep.stateType, "State");
    EXPECT_EQ(dep.outputType, "Output");
    EXPECT_EQ(dep.computeFunction, "computeOutput");
}

TEST(Frontend, GeneratedHeaderHasFigure11Shape)
{
    const auto result =
        compileExtendedSource(kBodytrackExtended, "bodytrack");
    const std::string &header = result.generatedHeader;
    // Placeholder, #define, options functions, and the TO registry.
    EXPECT_NE(header.find("int64_t T_42(int64_t p) { return p; }"),
              std::string::npos);
    EXPECT_NE(header.find("#define TO_numAnnealingLayers T_42(42)"),
              std::string::npos);
    EXPECT_NE(header.find("T_42_getValue"), std::string::npos);
    EXPECT_NE(header.find("T_42_size() { return 10; }"),
              std::string::npos);
    EXPECT_NE(header.find("T_42_getDefaultIndex() { return 4; }"),
              std::string::npos);
    EXPECT_NE(header.find("TO[] = { \"T_42_getValue T_42_size "
                          "T_42_getDefaultIndex T_42\" }"),
              std::string::npos);
}

TEST(Frontend, RewrittenSourceDropsExtensions)
{
    const auto result =
        compileExtendedSource(kBodytrackExtended, "bodytrack");
    // The `tradeoff` declaration is gone; the reference remains (it
    // is now a macro from the generated header).
    EXPECT_EQ(result.rewrittenSource.find("tradeoff TO_"),
              std::string::npos);
    EXPECT_NE(result.rewrittenSource.find("TO_numAnnealingLayers"),
              std::string::npos);
    EXPECT_NE(
        result.rewrittenSource.find("#include \"bodytrack_tradeoffs"),
        std::string::npos);
}

TEST(Frontend, EmitsIrMetadata)
{
    const auto result =
        compileExtendedSource(kBodytrackExtended, "bodytrack");
    EXPECT_NE(result.irMetadata.find(
                  "tradeoff T_42 kind=const placeholder=@T_42"),
              std::string::npos);
    EXPECT_NE(result.irMetadata.find("statedep SD0 compute=@computeOutput"),
              std::string::npos);
}

TEST(Frontend, AccountsTableOneNumbers)
{
    const auto result =
        compileExtendedSource(kBodytrackExtended, "bodytrack");
    EXPECT_GT(result.originalLoc, 30u);
    EXPECT_GT(result.generatedLoc, 8u);
    EXPECT_GT(result.stateComparisonLoc, 3u);
}

TEST(Frontend, TypeAndFunctionTradeoffs)
{
    const char *source = R"(
class Precision_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_precision {
    { Precision_options };
};
class Sqrt_options : Tradeoff_function_options {
    const char *choices[3] = {"sqrt_exact", "sqrt_newton2", "sqrt_table"};
    int64_t getMaxIndex() { return 3; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_sqrtImpl {
    { Sqrt_options };
};
)";
    const auto result = compileExtendedSource(source, "fluid");
    ASSERT_EQ(result.tradeoffs.size(), 2u);
    EXPECT_EQ(result.tradeoffs[0].kind, ir::TradeoffKind::DataType);
    ASSERT_EQ(result.tradeoffs[0].choices.size(), 2u);
    EXPECT_EQ(result.tradeoffs[0].choices[1], "f32");
    EXPECT_EQ(result.tradeoffs[1].kind,
              ir::TradeoffKind::FunctionChoice);
    EXPECT_EQ(result.tradeoffs[1].choices[2], "sqrt_table");
    EXPECT_EQ(result.tradeoffs[1].id, 43);
    // Metadata carries the choices.
    EXPECT_NE(result.irMetadata.find("choices=f64,f32"),
              std::string::npos);
}

TEST(Frontend, MultipleStateDependences)
{
    const char *source = R"(
StateDependence<Point, Solution, Labels> d1(&pts, &sol, addCentroid);
StateDependence<Point, Classes, Labels> d2(&pts, &cls, classify);
)";
    const auto result = compileExtendedSource(source, "stream");
    ASSERT_EQ(result.stateDeps.size(), 2u);
    EXPECT_EQ(result.stateDeps[0].computeFunction, "addCentroid");
    EXPECT_EQ(result.stateDeps[1].computeFunction, "classify");
    EXPECT_NE(result.irMetadata.find("statedep SD1 compute=@classify"),
              std::string::npos);
}

TEST(Frontend, PanicsOnMissingOptionsClass)
{
    const char *source = R"(
tradeoff TO_orphan {
    { Missing_options };
};
)";
    EXPECT_DEATH(compileExtendedSource(source, "bad"),
                 "unknown options class");
}

TEST(Frontend, IgnoresNonExtensionCode)
{
    const char *source = R"(
int main() {
    int tradeoffish = 3; // identifier containing 'tradeoff'... no.
    return tradeoffish;
}
)";
    const auto result = compileExtendedSource(source, "plain");
    EXPECT_TRUE(result.tradeoffs.empty());
    EXPECT_TRUE(result.stateDeps.empty());
}

} // namespace
