/**
 * @file
 * Tests of the platform models: effective HT parallelism, the
 * Amdahl-plus-sync inner-parallel model, and the energy model.
 */

#include <gtest/gtest.h>

#include "platform/cost_model.hpp"
#include "platform/energy_model.hpp"

namespace {

using namespace stats;
using namespace stats::platform;

sim::MachineConfig
machine(bool ht)
{
    sim::MachineConfig config;
    config.sockets = 2;
    config.coresPerSocket = 14;
    config.hyperThreading = ht;
    return config;
}

TEST(EffectiveParallelism, PhysicalCoresCountFully)
{
    EXPECT_DOUBLE_EQ(effectiveParallelism(machine(false), 1), 1.0);
    EXPECT_DOUBLE_EQ(effectiveParallelism(machine(false), 14), 14.0);
    EXPECT_DOUBLE_EQ(effectiveParallelism(machine(false), 28), 28.0);
}

TEST(EffectiveParallelism, SiblingsAddMarginalThroughput)
{
    // 2 * 0.65 - 1 = 0.3 marginal per HT sibling (Intel's ~30%).
    const auto m = machine(true);
    EXPECT_DOUBLE_EQ(effectiveParallelism(m, 28), 28.0);
    EXPECT_NEAR(effectiveParallelism(m, 42), 28.0 + 14 * 0.3, 1e-12);
    EXPECT_NEAR(effectiveParallelism(m, 56), 28.0 + 28 * 0.3, 1e-12);
}

TEST(EffectiveParallelism, MemoryBoundCodeGainsMore)
{
    const auto m = machine(true);
    const double compute_bound = effectiveParallelism(m, 56, 0.0);
    const double memory_bound = effectiveParallelism(m, 56, 0.5);
    EXPECT_GT(memory_bound, compute_bound);
    // The marginal gain is capped at a full core.
    const double fully = effectiveParallelism(m, 56, 2.0);
    EXPECT_LE(fully, 56.0);
}

TEST(EffectiveParallelism, ClampsToMachineCapacity)
{
    EXPECT_DOUBLE_EQ(effectiveParallelism(machine(false), 100), 28.0);
    EXPECT_DOUBLE_EQ(effectiveParallelism(machine(false), 0), 1.0);
}

TEST(InnerParallelModel, AmdahlLimit)
{
    InnerParallelModel model{0.1, 0.0, 0.0};
    const double t1 = model.duration(1.0, 1);
    EXPECT_DOUBLE_EQ(t1, 1.0);
    // Infinite threads approach the serial fraction.
    EXPECT_NEAR(model.duration(1.0, 1000000), 0.1, 1e-5);
    // Speedup at 10 threads: 1 / (0.1 + 0.9/10) = 5.26x.
    EXPECT_NEAR(t1 / model.duration(1.0, 10), 1.0 / 0.19, 1e-9);
}

TEST(InnerParallelModel, SyncCostCreatesAPeak)
{
    InnerParallelModel model{0.02, 1e-3, 0.0};
    const double work = 0.05;
    double best = 1e300;
    int best_threads = 0;
    for (int t = 1; t <= 64; ++t) {
        const double d = model.duration(work, t);
        if (d < best) {
            best = d;
            best_threads = t;
        }
    }
    // With these constants the optimum is an interior thread count:
    // more threads eventually lose to synchronization.
    EXPECT_GT(best_threads, 2);
    EXPECT_LT(best_threads, 32);
    EXPECT_GT(model.duration(work, 64), best);
}

TEST(InnerParallelModel, EffectiveParameterSlowsParallelPartOnly)
{
    InnerParallelModel model{0.5, 0.0, 0.0};
    // Serial half unaffected by effective throughput.
    const double full = model.duration(1.0, 4, 4.0);
    const double shared = model.duration(1.0, 4, 2.0);
    EXPECT_NEAR(shared - full, 0.5 / 2.0 - 0.5 / 4.0, 1e-12);
}

TEST(InnerParallelModel, WorkCarriesMemBound)
{
    InnerParallelModel model{0.1, 0.0, 0.35};
    const exec::Work work = model.work(1.0, 2);
    EXPECT_DOUBLE_EQ(work.memBound, 0.35);
    EXPECT_DOUBLE_EQ(work.units, model.duration(1.0, 2));
}

TEST(EnergyModel, IntegratesIdleAndActivePower)
{
    EnergyModel model;
    sim::ActivityStats activity;
    activity.makespan = 10.0;
    activity.busyCoreSeconds = 50.0;
    EXPECT_DOUBLE_EQ(model.energyJoules(activity),
                     model.platformIdleWatts * 10.0 +
                         model.coreActiveWatts * 50.0);
}

TEST(EnergyModel, RacingToIdleSavesEnergy)
{
    // Same total work, half the makespan: the idle-power term halves.
    EnergyModel model;
    sim::ActivityStats slow{10.0, 40.0, 0, 0};
    sim::ActivityStats fast{5.0, 40.0, 0, 0};
    EXPECT_LT(model.energyJoules(fast), model.energyJoules(slow));
}

TEST(CostModel, OpsToSeconds)
{
    EXPECT_DOUBLE_EQ(opsToSeconds(kOpsPerSecond), 1.0);
    EXPECT_DOUBLE_EQ(opsToSeconds(0.0), 0.0);
}

} // namespace
