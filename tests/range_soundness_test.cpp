/**
 * @file
 * Range-analysis soundness (docs/ANALYSIS.md §7): the analysis claims
 * that every concrete value the AST walker ever assigns to a temp
 * lies inside the temp's inferred ValueRange. This suite holds it to
 * that over fixed-seed fuzzer-generated modules, using the
 * interpreter's assignment observer to see parameter bindings, phi
 * applications, and every instruction result.
 *
 * The campaign is fixed-seed: a violation reproduces from the root
 * seed and module index printed in the failure message.
 */

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/manager.hpp"
#include "analysis/range.hpp"
#include "ir/exec_tier.hpp"
#include "ir/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "support/rng.hpp"
#include "testing/generator.hpp"

namespace {

using namespace stats;
using ir::RtValue;

constexpr std::uint64_t kRootSeed = 20260808;
constexpr std::size_t kModules = 200;

/** One observed assignment that escaped its inferred range. */
struct Violation
{
    std::string function;
    std::string temp;
    std::string value;
    std::string range;
};

TEST(RangeSoundness, ObservedValuesStayInsideInferredRanges)
{
    std::size_t modules = 0, observed = 0;
    for (std::size_t index = 0; index < kModules; ++index) {
        const stats::testing::FuzzCase fuzz_case =
            stats::testing::generateCase(kRootSeed, index);
        if (fuzz_case.expect == stats::testing::Expectation::Reject)
            continue;
        if (!ir::verifyModule(fuzz_case.module).empty())
            continue;
        const ir::Module &module = fuzz_case.module;

        analysis::AnalysisManager manager(module);
        const analysis::RangeAnalysis analysis(manager);

        ir::Interpreter interpreter(module);
        interpreter.setStepBudget(1'000'000);

        std::vector<Violation> violations;
        interpreter.setAssignmentObserver(
            [&](const ir::Function &fn, const std::string &temp,
                const RtValue &value) {
                const analysis::ValueRange &range =
                    analysis.functionRanges(fn.name).of(temp);
                const bool inside =
                    ir::isFloating(value.type)
                        ? range.containsFloat(value.f)
                        : range.containsInt(value.i);
                ++observed;
                if (!inside) {
                    violations.push_back(
                        {fn.name, temp,
                         ir::isFloating(value.type)
                             ? std::to_string(value.f)
                             : std::to_string(value.i),
                         range.toString()});
                }
            });

        // Drive the state-dependence entry points over the oracle's
        // argument domains, plus the domain edges (same protocol as
        // the tier differential).
        ASSERT_FALSE(module.stateDeps.empty()) << fuzz_case.name;
        const ir::StateDepMeta &dep = module.stateDeps.front();
        std::vector<std::string> functions{dep.computeFn};
        if (!dep.auxFn.empty() && dep.auxFn != dep.computeFn)
            functions.push_back(dep.auxFn);

        support::Xoshiro256 rng(kRootSeed ^ (index * 0x9e3779b9u));
        std::vector<std::pair<std::int64_t, std::int64_t>> points;
        for (int k = 0; k < 6; ++k)
            points.emplace_back(
                std::int64_t(rng.nextBelow(1000)),
                std::int64_t(rng.nextBelow(std::uint64_t(1) << 20)));
        points.emplace_back(0, 0);
        points.emplace_back(999, (std::int64_t(1) << 20) - 1);

        for (const std::string &fn : functions) {
            for (const auto &[input, state] : points) {
                interpreter.call(fn, {RtValue::ofInt(input),
                                      RtValue::ofInt(state)});
            }
        }

        for (const auto &v : violations) {
            ADD_FAILURE()
                << "range soundness violation (root seed " << kRootSeed
                << ", module " << index << ", case " << fuzz_case.name
                << "): @" << v.function << " %" << v.temp << " = "
                << v.value << " escapes " << v.range;
        }
        ASSERT_TRUE(violations.empty());
        ++modules;
    }

    EXPECT_GT(modules, 0u);
    EXPECT_GT(observed, 0u);
    std::printf("range soundness: %zu modules, %zu observed "
                "assignments, root seed %llu\n",
                modules, observed,
                static_cast<unsigned long long>(kRootSeed));
}

/**
 * Directed regression for the INT64_MIN/-1 wrap in intDiv: x/-1 = -x
 * peaks at the *interior* point x = INT64_MIN+1 (giving INT64_MAX),
 * so a corner-only evaluation over an unconstrained dividend used to
 * infer [INT64_MIN, INT64_MIN+1] for the quotient — "proving" it
 * nonzero, folding branches on it, and licensing guard elision on
 * later divisions by it. The true range is all of i64.
 */
TEST(RangeSoundness, DivByMinusOneOverUnconstrainedDividend)
{
    const ir::Module module = ir::parseModule(R"(module "div_minus_one"
func @pick(i64 %p) -> i64 {
entry:
  %q = div i64 %p, -1
  br %q, nonzero, zero
nonzero:
  ret i64 %q
zero:
  ret i64 77
}
)");
    ASSERT_TRUE(ir::verifyModule(module).empty());

    analysis::AnalysisManager manager(module);
    const analysis::RangeAnalysis analysis(manager);
    const analysis::ValueRange &q =
        analysis.functionRanges("pick").of("q");

    constexpr std::int64_t min = std::numeric_limits<std::int64_t>::min();
    constexpr std::int64_t max = std::numeric_limits<std::int64_t>::max();
    for (const std::int64_t v : {std::int64_t(0), std::int64_t(5),
                                 std::int64_t(-5), min, min + 1, max})
        EXPECT_TRUE(q.containsInt(v))
            << v << " escapes " << q.toString();

    // No downstream proof may fire on q: its truthiness is unknown
    // (p=0 makes it zero) and it is not a guard-free divisor.
    EXPECT_FALSE(analysis::rangeproof::provenTruth(q).has_value())
        << q.toString();
    EXPECT_FALSE(analysis::rangeproof::divNeedsNoGuards(
        analysis::ValueRange::topInt(), q));

    // Both tiers agree on every corner — in particular the bytecode
    // compiler's proven-constant branch fold must not have rewritten
    // `br %q` (p=0 takes the zero arm).
    ir::Interpreter interp(module);
    ir::ExecutableModule exec(module, ir::ExecTier::Bytecode);
    for (const std::int64_t p :
         {std::int64_t(0), std::int64_t(-5), std::int64_t(5), min,
          min + 1, max}) {
        const RtValue expected = interp.call("pick", {RtValue::ofInt(p)});
        const RtValue got = exec.call("pick", {RtValue::ofInt(p)});
        EXPECT_EQ(expected.i, got.i) << "p=" << p;
        EXPECT_TRUE(q.containsInt(expected.i))
            << "p=" << p << ": " << expected.i << " escapes "
            << q.toString();
    }
    EXPECT_EQ(interp.call("pick", {RtValue::ofInt(0)}).i, 77);
}

} // namespace
