/**
 * @file
 * The extended-C++ encodings of the six benchmarks must agree with
 * the paper's Table 1: per-benchmark tradeoff counts (including the
 * two thread-count tradeoffs every benchmark naturally has), state
 * dependence counts, and comparison-function presence.
 */

#include <gtest/gtest.h>

#include "benchmarks/common/benchmark.hpp"
#include "benchmarks/common/extended_sources.hpp"
#include "frontend/frontend.hpp"

namespace {

using namespace stats;
using namespace stats::benchmarks;

struct TableOneRow
{
    const char *name;
    int tradeoffs;
    int stateDeps;
    bool hasComparison;
};

const TableOneRow kTableOne[] = {
    {"swaptions", 4, 1, false},
    {"streamclassifier", 7, 2, false},
    {"streamcluster", 7, 2, false},
    {"fluidanimate", 9, 1, true},
    {"bodytrack", 5, 1, true},
    {"facedet", 6, 1, true},
};

TEST(ExtendedSources, FrontendAcceptsEveryBenchmark)
{
    for (const auto &row : kTableOne) {
        const auto result = frontend::compileExtendedSource(
            extendedSourceFor(row.name), row.name);
        EXPECT_EQ(static_cast<int>(result.tradeoffs.size()),
                  row.tradeoffs)
            << row.name;
        EXPECT_EQ(static_cast<int>(result.stateDeps.size()),
                  row.stateDeps)
            << row.name;
        EXPECT_EQ(result.stateComparisonLoc > 0, row.hasComparison)
            << row.name;
        EXPECT_GT(result.generatedLoc, 10u) << row.name;
    }
}

TEST(ExtendedSources, TradeoffCountsMatchBenchmarkObjects)
{
    for (const auto &row : kTableOne) {
        auto bench = createBenchmark(row.name);
        EXPECT_EQ(bench->tradeoffCount(), row.tradeoffs) << row.name;
    }
}

TEST(ExtendedSources, ThreadTradeoffsPresentEverywhere)
{
    // "The number of original threads and the number of threads for
    // state dependences ... which all benchmarks naturally have".
    for (const auto &row : kTableOne) {
        const auto &source = extendedSourceFor(row.name);
        EXPECT_NE(source.find("TO_originalThreads"), std::string::npos)
            << row.name;
        EXPECT_NE(source.find("TO_sdThreads"), std::string::npos)
            << row.name;
    }
}

TEST(ExtendedSources, MetadataNamesComputeOutput)
{
    for (const auto &row : kTableOne) {
        const auto result = frontend::compileExtendedSource(
            extendedSourceFor(row.name), row.name);
        EXPECT_NE(result.irMetadata.find("compute=@computeOutput"),
                  std::string::npos)
            << row.name;
    }
}

TEST(ExtendedSources, UnknownBenchmarkPanics)
{
    EXPECT_DEATH(extendedSourceFor("vips"), "no extended source");
}

} // namespace
