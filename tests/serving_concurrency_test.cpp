/**
 * @file
 * Serving concurrency tier (ctest label: serving-stress): the
 * multi-worker execution plane (docs/SERVING.md §5) must be
 * behaviorally invisible. N workers have to produce byte-identical
 * results, record logs, and replay-fetch output to one worker; a
 * result-cache hit has to be byte-identical to a recompute; and
 * drain must stay live while submitters hammer the server. TSan CI
 * runs this suite to shake out registry/scheduler/cache races.
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "replay/record_log.hpp"
#include "replay/session.hpp"
#include "serving/execution_plan.hpp"
#include "serving/runner.hpp"
#include "serving/server.hpp"

#include "serving_test_util.hpp"

namespace {

using namespace stats;
using serving::ExecutionPlan;
using serving::JobKind;
using serving::PlanResult;
using serving::PlanRunner;
using serving::RequestState;
using serving::Server;
using serving::TenantQuota;
using serving_testing::Gate;
using serving_testing::pollUntil;

/** Same minimal module the unit suite serves. */
const char *const kFixtureModule =
    "module \"serving_fixture\"\n"
    "statedep SD0 compute=@computeOutput\n"
    "\n"
    "func @computeOutput(i64 %input, i64 %state) -> i64 {\n"
    "entry:\n"
    "  %a = add i64 %state, %input\n"
    "  ret i64 %a\n"
    "}\n";

/** A second program, so the workload spans compatibility keys. */
const char *const kOtherModule =
    "module \"serving_other\"\n"
    "statedep SD0 compute=@computeOutput\n"
    "\n"
    "func @computeOutput(i64 %input, i64 %state) -> i64 {\n"
    "entry:\n"
    "  %a = mul i64 %state, 3\n"
    "  %b = add i64 %a, %input\n"
    "  ret i64 %b\n"
    "}\n";

ExecutionPlan
basePlan(std::uint64_t seed, const std::string &tenant)
{
    ExecutionPlan plan;
    plan.kind = JobKind::IrSequential;
    plan.tenant = tenant;
    plan.moduleText = kFixtureModule;
    plan.rootSeed = seed;
    plan.inputs = 12;
    plan.noisyPercent = 25;
    plan.maxNoise = 2;
    return plan;
}

/**
 * The mixed 32-plan workload: four tenants, sequential and
 * speculative kinds, lane caps 1/2/4, two distinct programs, and a
 * few repeated (program, seed) pairs — everything the scheduler's
 * fusion and the runner's compile cache have to juggle at once.
 */
std::vector<ExecutionPlan>
mixedWorkload()
{
    const char *tenants[] = {"alpha", "beta", "gamma", "delta"};
    std::vector<ExecutionPlan> plans;
    for (std::uint64_t i = 0; i < 32; ++i) {
        // i % 24 repeats eight (program, seed) pairs verbatim.
        ExecutionPlan plan = basePlan(1000 + i % 24, tenants[i % 4]);
        if (i % 4 == 3)
            plan.kind = JobKind::IrSpeculative;
        else
            plan.batchLanes = static_cast<int>(1 + (i % 3));
        if (i % 5 == 0)
            plan.moduleText = kOtherModule;
        plan.priority = static_cast<int>(i % 3) - 1;
        plans.push_back(std::move(plan));
    }
    return plans;
}

Server::Options
workerOptions(std::size_t workers, std::size_t cache_capacity)
{
    Server::Options options;
    options.executionWorkers = workers;
    options.resultCacheCapacity = cache_capacity;
    options.defaultQuota.ratePerSec = 1e6;
    options.defaultQuota.burst = 1e6;
    options.defaultQuota.maxQueued = 4096;
    return options;
}

/** Submit every plan (asserting admission) and drain. */
std::vector<std::uint64_t>
serveAll(Server &server, const std::vector<ExecutionPlan> &plans)
{
    std::vector<std::uint64_t> ids;
    for (const auto &plan : plans) {
        const auto outcome = server.submitPlan(plan);
        EXPECT_TRUE(outcome.admitted()) << outcome.verdict.detail;
        ids.push_back(outcome.requestId);
    }
    server.drain();
    return ids;
}

// =================================================== Byte identity

TEST(ServingConcurrencyTest, MultiWorkerMatchesSingleWorkerByteForByte)
{
    const auto plans = mixedWorkload();

    // Caches off: every plan must actually execute, so this compares
    // concurrent execution itself, not cache short-circuits.
    Server wide(workerOptions(4, 0));
    Server narrow(workerOptions(1, 0));
    ASSERT_EQ(wide.workerCount(), 4u);
    ASSERT_EQ(narrow.workerCount(), 1u);

    const auto wide_ids = serveAll(wide, plans);
    const auto narrow_ids = serveAll(narrow, plans);

    for (std::size_t i = 0; i < plans.size(); ++i) {
        const auto a = wide.status(wide_ids[i]);
        const auto b = narrow.status(narrow_ids[i]);
        ASSERT_EQ(a.state, RequestState::Done)
            << "plan " << i << ": " << a.result.error;
        ASSERT_EQ(b.state, RequestState::Done)
            << "plan " << i << ": " << b.result.error;
        EXPECT_EQ(a.result.resultBlob, b.result.resultBlob)
            << "plan " << i;
        EXPECT_EQ(a.result.finalState, b.result.finalState)
            << "plan " << i;
        EXPECT_EQ(a.result.invocations, b.result.invocations)
            << "plan " << i;
        // Replay-fetch output must match too: recording under four
        // concurrent scoped sessions cannot bleed across runs.
        EXPECT_EQ(wide.replayLog(wide_ids[i]),
                  narrow.replayLog(narrow_ids[i]))
            << "plan " << i;
    }
}

// ====================================================== Result cache

TEST(ServingConcurrencyTest, CacheHitMatchesRecomputeByteForByte)
{
    Server server(workerOptions(4, 16));

    ExecutionPlan plan = basePlan(77, "alpha");
    plan.kind = JobKind::IrSpeculative; // Records a real choice log.

    const auto first = server.submitPlan(plan);
    ASSERT_TRUE(first.admitted()) << first.verdict.detail;
    ASSERT_TRUE(pollUntil([&] {
        return server.status(first.requestId).state ==
               RequestState::Done;
    }));

    // Identical resubmission: answered from the cache at admission.
    const auto hit = server.submitPlan(plan);
    ASSERT_TRUE(hit.admitted()) << hit.verdict.detail;
    EXPECT_EQ(server.status(hit.requestId).state, RequestState::Done);
    EXPECT_EQ(server.resultCacheHits(), 1u);
    EXPECT_GE(server.resultCacheSize(), 1u);

    // noCache opts out: same work recomputes, bytes must still match.
    ExecutionPlan uncached = plan;
    uncached.noCache = true;
    const auto recompute = server.submitPlan(uncached);
    ASSERT_TRUE(recompute.admitted()) << recompute.verdict.detail;
    ASSERT_TRUE(pollUntil([&] {
        return server.status(recompute.requestId).state ==
               RequestState::Done;
    }));
    EXPECT_EQ(server.resultCacheHits(), 1u); // The bypass never hits.

    const auto a = server.status(first.requestId);
    const auto b = server.status(hit.requestId);
    const auto c = server.status(recompute.requestId);
    EXPECT_EQ(a.result.resultBlob, b.result.resultBlob);
    EXPECT_EQ(a.result.resultBlob, c.result.resultBlob);
    EXPECT_EQ(a.result.finalState, c.result.finalState);
    // The cached entry carries the record log, so replay-fetch on a
    // cache-hit id is byte-identical to the recompute's.
    EXPECT_FALSE(server.replayLog(first.requestId).empty());
    EXPECT_EQ(server.replayLog(first.requestId),
              server.replayLog(hit.requestId));
    EXPECT_EQ(server.replayLog(first.requestId),
              server.replayLog(recompute.requestId));
    server.drain();
}

// ================================================== Replay coherence

TEST(ServingConcurrencyTest, ConcurrentlyRecordedLogsReplayCleanly)
{
    // Twelve speculative plans recorded on four workers at once, then
    // each log replayed — concurrently, under scoped sessions — with
    // zero divergence against a fresh local run.
    Server server(workerOptions(4, 0));
    std::vector<ExecutionPlan> plans;
    for (std::uint64_t seed = 500; seed < 512; ++seed) {
        ExecutionPlan plan = basePlan(seed, seed % 2 ? "alpha"
                                                     : "beta");
        plan.kind = JobKind::IrSpeculative;
        plans.push_back(std::move(plan));
    }
    const auto ids = serveAll(server, plans);

    std::atomic<int> failures{0};
    std::vector<std::thread> replayers;
    Gate gate;
    for (std::size_t t = 0; t < 4; ++t) {
        replayers.emplace_back([&, t] {
            gate.wait();
            PlanRunner runner;
            for (std::size_t i = t; i < plans.size(); i += 4) {
                const std::string served = server.replayLog(ids[i]);
                const auto expected = server.status(ids[i]);
                std::istringstream stream(served);
                std::string error;
                const auto log =
                    replay::RecordLog::load(stream, error);
                if (!log || log->records.empty()) {
                    ++failures;
                    continue;
                }
                ExecutionPlan again = plans[i];
                again.recordChoices = false;
                replay::ReplaySession session;
                replay::ScopedSessionInstall install(session);
                session.startReplay(*log);
                const PlanResult rerun = runner.runPlan(again);
                const auto report = session.finishReplay();
                if (!rerun.ok || report.diverged ||
                    report.recordsMatched != log->records.size() ||
                    rerun.resultBlob != expected.result.resultBlob)
                    ++failures;
            }
        });
    }
    gate.open();
    for (auto &thread : replayers)
        thread.join();
    EXPECT_EQ(failures.load(), 0);
}

// ================================================== Drain under load

TEST(ServingConcurrencyTest, DrainUnderLoadCompletesEveryAdmission)
{
    Server server(workerOptions(4, 8));

    constexpr int kSubmitters = 4;
    constexpr int kPerThread = 25;
    std::mutex ids_mutex;
    std::vector<std::uint64_t> admitted;
    Gate gate;
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
            gate.wait();
            for (int i = 0; i < kPerThread; ++i) {
                ExecutionPlan plan = basePlan(
                    static_cast<std::uint64_t>(t * 100 + i),
                    t % 2 ? "alpha" : "beta");
                const auto outcome = server.submitPlan(plan);
                if (!outcome.admitted())
                    return; // Drain began: rejected from here on.
                std::lock_guard<std::mutex> lock(ids_mutex);
                admitted.push_back(outcome.requestId);
            }
        });
    }
    gate.open();
    // Let the pool take real load before pulling the plug.
    ASSERT_TRUE(pollUntil([&] {
        return server.completedCount() >= 8;
    }));
    const std::uint64_t completed = server.drain();
    for (auto &thread : submitters)
        thread.join();

    // Liveness: drain returned, finished everything it had admitted,
    // and no admitted request is stranded mid-state.
    std::lock_guard<std::mutex> lock(ids_mutex);
    EXPECT_EQ(completed, admitted.size());
    EXPECT_EQ(server.queueDepth(), 0u);
    for (const auto id : admitted)
        EXPECT_EQ(server.status(id).state, RequestState::Done)
            << "request " << id;
    EXPECT_EQ(
        server.submitPlan(basePlan(9999, "alpha")).verdict.reason,
        serving::RejectReason::Draining);
}

// ============================================== Registry under churn

TEST(ServingConcurrencyTest, RegistryAndCacheSurviveConcurrentReaders)
{
    // Pure TSan fodder: submitters (with repeated seeds, so the cache
    // hits concurrently with fills), readers spinning every query
    // surface, and the worker pool all share the registry at once.
    Server server(workerOptions(4, 4));
    std::atomic<bool> done{false};
    std::atomic<std::uint64_t> high_water{1};
    Gate gate;

    std::vector<std::thread> readers;
    for (int t = 0; t < 3; ++t) {
        readers.emplace_back([&, t] {
            gate.wait();
            std::uint64_t probe = 1 + static_cast<std::uint64_t>(t);
            while (!done.load(std::memory_order_relaxed)) {
                const auto id = 1 + probe++ % high_water.load();
                (void)server.status(id);
                (void)server.replayLog(id);
                (void)server.queueDepth();
                (void)server.resultCacheSize();
                (void)server.resultCacheHits();
            }
        });
    }

    std::vector<std::thread> writers;
    for (int t = 0; t < 2; ++t) {
        writers.emplace_back([&, t] {
            gate.wait();
            for (int i = 0; i < 20; ++i) {
                // Seeds collide across writers: cache + recompute mix.
                ExecutionPlan plan =
                    basePlan(static_cast<std::uint64_t>(i % 8),
                             t ? "alpha" : "beta");
                plan.batchLanes = 1 + i % 4;
                const auto outcome = server.submitPlan(plan);
                ASSERT_TRUE(outcome.admitted())
                    << outcome.verdict.detail;
                std::uint64_t seen =
                    high_water.load(std::memory_order_relaxed);
                while (seen < outcome.requestId &&
                       !high_water.compare_exchange_weak(
                           seen, outcome.requestId)) {
                }
            }
        });
    }

    gate.open();
    for (auto &thread : writers)
        thread.join();
    const std::uint64_t completed = server.drain();
    done.store(true);
    for (auto &thread : readers)
        thread.join();
    EXPECT_EQ(completed, 40u);
    EXPECT_LE(server.resultCacheSize(), 4u);
}

} // namespace
