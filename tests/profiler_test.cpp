/**
 * @file
 * Tests of the profiler and the autotuner-profiler loop on real
 * benchmarks (paper section 3.2 flow).
 */

#include <gtest/gtest.h>

#include "profiler/profiler.hpp"

namespace {

using namespace stats;
using namespace stats::benchmarks;
using namespace stats::profiler;

TEST(Profiler, MeasuresDefaultConfiguration)
{
    auto bench = createBenchmark("streamcluster");
    Profiler profiler(*bench, Mode::SeqStats, 8, sim::MachineConfig{});
    const auto space = bench->stateSpace(8);
    const Measurement m = profiler.profile(space.defaultConfiguration());
    EXPECT_GT(m.seconds, 0.0);
    EXPECT_GT(m.energyJoules, 0.0);
    EXPECT_GE(m.quality, 0.0);
}

TEST(Profiler, ObjectiveSelectsMetric)
{
    auto bench = createBenchmark("swaptions");
    Profiler profiler(*bench, Mode::Original, 4, sim::MachineConfig{});
    const auto space = bench->stateSpace(4);
    const auto config = space.defaultConfiguration();
    const Measurement m = profiler.profile(config);
    const double time_objective =
        profiler.objectiveFunction(Objective::Time)(config);
    const double energy_objective =
        profiler.objectiveFunction(Objective::Energy)(config);
    // Repetitions of a nondeterministic program: close, not equal.
    EXPECT_NEAR(time_objective, m.seconds, 0.3 * m.seconds);
    EXPECT_NEAR(energy_objective, m.energyJoules,
                0.3 * m.energyJoules);
    EXPECT_GT(energy_objective, time_objective); // Joules >> seconds.
}

TEST(Profiler, TuningImprovesOnDefault)
{
    auto bench = createBenchmark("streamcluster");
    Profiler profiler(*bench, Mode::SeqStats, 28, sim::MachineConfig{});
    const auto space = bench->stateSpace(28);
    const double default_time =
        profiler.profile(space.defaultConfiguration()).seconds;

    const auto tuned = tuneBenchmark(*bench, Mode::SeqStats, 28,
                                     sim::MachineConfig{},
                                     Objective::Time, 25, 3);
    EXPECT_LE(tuned.measurement.seconds, default_time * 1.15);
    EXPECT_EQ(tuned.tuning.evaluations, 25);
}

TEST(Profiler, EnergyTuningFindsLowEnergyConfig)
{
    auto bench = createBenchmark("swaptions");
    const auto time_run = tuneBenchmark(
        *bench, Mode::ParStats, 28, sim::MachineConfig{},
        Objective::Time, 20, 5);
    const auto energy_run = tuneBenchmark(
        *bench, Mode::ParStats, 28, sim::MachineConfig{},
        Objective::Energy, 20, 5);
    // The energy-tuned binary never consumes more energy than the
    // time-tuned one (paper Figure 15's premise), modulo noise.
    EXPECT_LE(energy_run.measurement.energyJoules,
              time_run.measurement.energyJoules * 1.10);
}

TEST(Profiler, FluidanimateTunerDisablesAuxiliaryCode)
{
    // Paper section 4.8: the autotuner empirically learns that
    // fluidanimate's dependence must be satisfied conventionally.
    auto bench = createBenchmark("fluidanimate");
    const auto tuned = tuneBenchmark(*bench, Mode::ParStats, 14,
                                     sim::MachineConfig{},
                                     Objective::Time, 30, 2);
    const auto space = bench->stateSpace(14);
    RunRequest request;
    request.mode = Mode::ParStats;
    request.config = tuned.config;
    request.threads = 14;
    const RunResult result = bench->run(request);
    // Either speculation is off or it aborted; the tuned run must
    // not be slower than ~the original-mode run.
    RunRequest original;
    original.mode = Mode::Original;
    original.threads = 14;
    const double original_time = bench->run(original).virtualSeconds;
    EXPECT_LE(result.virtualSeconds, original_time * 1.2);
    EXPECT_EQ(space.at(tuned.config, dims::kUseAux), 0);
}

} // namespace
