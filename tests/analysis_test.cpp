/**
 * @file
 * Tests of the speculation-safety static analysis layer: the dataflow
 * framework (CFG, dominators, def-use, reaching definitions,
 * liveness), the AnalysisManager cache, the semantic passes (purity,
 * clone audit, freeze check, escape check), the lint driver, and the
 * rule registry's lockstep with docs/ANALYSIS.md.
 */

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "analysis/clone_audit.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/diagnostics.hpp"
#include "analysis/dominators.hpp"
#include "analysis/escape_check.hpp"
#include "analysis/freeze_check.hpp"
#include "analysis/lint.hpp"
#include "analysis/manager.hpp"
#include "analysis/purity.hpp"
#include "backend/backend.hpp"
#include "ir/parser.hpp"
#include "midend/midend.hpp"

namespace {

using namespace stats;
using namespace stats::analysis;

const char *kDiamondModule = R"(
module "diamond"
func @f(i64 %n) -> i64 {
entry:
  %c = cmplt i64 %n, 10
  br %c, low, high
low:
  %a = add i64 %n, 1
  jmp join
high:
  %b = add i64 %n, 2
  jmp join
join:
  %r = phi i64 [%a, low], [%b, high]
  ret i64 %r
}
)";

const char *kLoopModule = R"(
module "loop"
func @sumTo(i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [0, entry], [%i2, loop]
  %acc = phi i64 [0, entry], [%acc2, loop]
  %i2 = add i64 %i, 1
  %acc2 = add i64 %acc, %i2
  %done = cmplt i64 %i2, %n
  br %done, loop, exit
exit:
  ret i64 %acc2
}
)";

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
sourcePath(const std::string &relative)
{
    return std::string(STATS_SOURCE_DIR) + "/" + relative;
}

ir::Module
loadPipelineModule()
{
    return ir::parseModule(readFile(sourcePath("examples/ir/pipeline.ir")));
}

std::size_t
countRule(const std::vector<Diagnostic> &diags, const std::string &rule)
{
    return std::size_t(std::count_if(
        diags.begin(), diags.end(),
        [&](const Diagnostic &d) { return d.rule == rule; }));
}

// ------------------------------------------------------------ framework

TEST(Cfg, DiamondEdgesAndRpo)
{
    const ir::Module module = ir::parseModule(kDiamondModule);
    const Cfg cfg(module.functions[0]);

    ASSERT_EQ(cfg.blockCount(), 4u);
    EXPECT_EQ(cfg.indexOf("entry"), 0);
    const int low = cfg.indexOf("low");
    const int high = cfg.indexOf("high");
    const int join = cfg.indexOf("join");

    EXPECT_EQ(cfg.successors(0), (std::vector<int>{low, high}));
    EXPECT_EQ(cfg.predecessors(join), (std::vector<int>{low, high}));
    EXPECT_TRUE(cfg.successors(join).empty());

    // RPO starts at the entry and orders join last.
    ASSERT_EQ(cfg.reversePostorder().size(), 4u);
    EXPECT_EQ(cfg.reversePostorder().front(), 0);
    EXPECT_EQ(cfg.reversePostorder().back(), join);
    for (int b = 0; b < 4; ++b)
        EXPECT_TRUE(cfg.reachable(b));
}

TEST(Cfg, UnreachableBlockExcludedFromRpo)
{
    const char *text = R"(
module "dead"
func @g() -> i64 {
entry:
  ret i64 1
dead:
  ret i64 2
}
)";
    const ir::Module module = ir::parseModule(text);
    const Cfg cfg(module.functions[0]);
    ASSERT_EQ(cfg.blockCount(), 2u);
    EXPECT_EQ(cfg.reversePostorder().size(), 1u);
    EXPECT_TRUE(cfg.reachable(0));
    EXPECT_FALSE(cfg.reachable(1));
}

TEST(DomTree, DiamondDominators)
{
    const ir::Module module = ir::parseModule(kDiamondModule);
    const Cfg cfg(module.functions[0]);
    const DomTree dom(cfg);

    const int low = cfg.indexOf("low");
    const int join = cfg.indexOf("join");
    EXPECT_EQ(dom.idom(cfg.entry()), cfg.entry());
    EXPECT_EQ(dom.idom(low), cfg.entry());
    // Neither branch arm dominates the join; the entry does.
    EXPECT_EQ(dom.idom(join), cfg.entry());
    EXPECT_TRUE(dom.dominates(cfg.entry(), join));
    EXPECT_FALSE(dom.dominates(low, join));
    EXPECT_TRUE(dom.dominates(join, join));
}

TEST(DomTree, LoopHeaderDominatesBody)
{
    const ir::Module module = ir::parseModule(kLoopModule);
    const Cfg cfg(module.functions[0]);
    const DomTree dom(cfg);
    const int loop = cfg.indexOf("loop");
    const int exit = cfg.indexOf("exit");
    EXPECT_TRUE(dom.dominates(loop, exit));
    EXPECT_EQ(dom.idom(exit), loop);
}

TEST(DefUse, TracksDefinitionsAndUses)
{
    const ir::Module module = ir::parseModule(kDiamondModule);
    const DefUse du(module.functions[0]);

    // Parameters are entry definitions with block -1.
    ASSERT_EQ(du.defs("n").size(), 1u);
    EXPECT_EQ(du.defs("n")[0].block, -1);
    EXPECT_EQ(du.uses("n").size(), 3u); // cmplt + both adds.

    ASSERT_EQ(du.defs("a").size(), 1u);
    EXPECT_EQ(du.defs("a")[0], (InstRef{1, 0}));
    EXPECT_EQ(du.uses("a").size(), 1u); // The phi.

    // Comparisons produce I64 regardless of comparand type.
    EXPECT_EQ(du.uniqueDefType("c"), ir::Type::I64);
    EXPECT_EQ(du.uniqueDefType("r"), ir::Type::I64);
    EXPECT_EQ(du.uniqueDefType("missing"), std::nullopt);
}

TEST(ReachingDefs, InBlockShadowing)
{
    const char *text = R"(
module "shadow"
func @h(i64 %x) -> i64 {
entry:
  %v = add i64 %x, 1
  %v = add i64 %v, 2
  %r = add i64 %v, 3
  ret i64 %r
}
)";
    const ir::Module module = ir::parseModule(text);
    const Cfg cfg(module.functions[0]);
    const DefUse du(module.functions[0]);
    const ReachingDefs reaching(cfg, du);

    // The second %v shadows the first within the block.
    auto sites = reaching.reachingAt(0, 2, "v");
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0], (InstRef{0, 1}));
    // ... and the first %v's use sees only the first definition.
    sites = reaching.reachingAt(0, 1, "v");
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0], (InstRef{0, 0}));
}

TEST(ReachingDefs, LoopCarriesParamsAndBackEdgeDefs)
{
    const ir::Module module = ir::parseModule(kLoopModule);
    const Cfg cfg(module.functions[0]);
    const DefUse du(module.functions[0]);
    const ReachingDefs reaching(cfg, du);

    const int loop = cfg.indexOf("loop");
    const int exit = cfg.indexOf("exit");
    // The parameter reaches its use in the loop condition.
    auto sites = reaching.reachingAt(loop, 4, "n");
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].block, -1);
    // The accumulator defined in the loop reaches the exit's ret.
    sites = reaching.reachingAt(exit, 0, "acc2");
    ASSERT_EQ(sites.size(), 1u);
    EXPECT_EQ(sites[0].block, loop);
}

TEST(Liveness, LoopLiveRanges)
{
    const ir::Module module = ir::parseModule(kLoopModule);
    const Cfg cfg(module.functions[0]);
    const DefUse du(module.functions[0]);
    const Liveness live(cfg, du);

    const int loop = cfg.indexOf("loop");
    const int exit = cfg.indexOf("exit");
    EXPECT_TRUE(live.liveIn(cfg.entry(), "n"));
    EXPECT_TRUE(live.liveIn(loop, "n"));
    EXPECT_TRUE(live.liveIn(exit, "acc2"));
    EXPECT_FALSE(live.liveOut(exit, "acc2"));
    EXPECT_FALSE(live.liveIn(exit, "i2"));
    EXPECT_GE(live.liveInCount(loop), 2u); // At least %n and the phis.
}

TEST(AnalysisManager, CachesPerFunctionAndInvalidates)
{
    const ir::Module module = ir::parseModule(kDiamondModule);
    AnalysisManager manager(module);

    const Cfg *first = &manager.cfg("f");
    EXPECT_EQ(&manager.cfg("f"), first); // Cached: same object.
    manager.dominators("f");
    manager.reachingDefs("f");
    manager.liveness("f");
    EXPECT_EQ(manager.cachedFunctionCount(), 1u);

    manager.invalidateFunction("f");
    EXPECT_EQ(manager.cachedFunctionCount(), 0u);
    manager.cfg("f");
    manager.invalidateAll();
    EXPECT_EQ(manager.cachedFunctionCount(), 0u);
}

// ------------------------------------------------------- semantic passes

TEST(Purity, ClassifiesFunctionsBottomUp)
{
    const char *text = R"(
module "purity"
tradeoff T_1 kind=const placeholder=@T_1 getValue=@gv size=@sz default=@di
func @T_1() -> i64 {
entry:
  ret i64 1
}
func @gv(i64 %i) -> i64 {
entry:
  %r = call f64 @rand_uniform
  %c = cast i64 %r
  ret i64 %c
}
func @sz() -> i64 {
entry:
  ret i64 2
}
func @di() -> i64 {
entry:
  ret i64 0
}
func @user(i64 %x) -> i64 {
entry:
  %t = call i64 @T_1()
  %r = add i64 %x, %t
  ret i64 %r
}
func @indirect(i64 %x) -> i64 {
entry:
  %r = call i64 @user %x
  ret i64 %r
}
func @mathy(f64 %x) -> f64 {
entry:
  %r = call f64 @sqrt %x
  ret f64 %r
}
)";
    const ir::Module module = ir::parseModule(text);
    const PurityResult purity = computePurity(module);
    EXPECT_EQ(purity.effectOf("mathy"), Effect::Pure);
    EXPECT_EQ(purity.effectOf("gv"), Effect::Effectful);
    EXPECT_EQ(purity.effectOf("user"), Effect::ReadsTradeoffs);
    // Effects propagate transitively through the call graph.
    EXPECT_EQ(purity.effectOf("indirect"), Effect::ReadsTradeoffs);
    EXPECT_EQ(purity.effectOf("rand_uniform"), Effect::Effectful);
    EXPECT_EQ(purity.effectOf("sqrt"), Effect::Pure);
    EXPECT_EQ(purity.effectOf("no_such_fn"), Effect::Effectful);

    // PUR01: the effectful getValue helper is flagged once.
    AnalysisManager manager(module);
    const auto diags = runPurityPass(manager);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "PUR01");
    EXPECT_EQ(diags[0].severity, Severity::Warning);
    EXPECT_EQ(diags[0].function, "gv");
}

TEST(CloneAudit, CleanOnMiddleEndOutput)
{
    ir::Module module = loadPipelineModule();
    midend::runMiddleEnd(module);
    const auto diags = runAnalyses(module);
    EXPECT_TRUE(diags.empty())
        << "unexpected: " << diags.size() << " diagnostics, first: "
        << (diags.empty() ? "" : diags[0].message);
}

TEST(CloneAudit, TruncationYieldsAud05AndAud06Warnings)
{
    ir::Module module = loadPipelineModule();
    // Budget below computeOutput + smoothHelper: the carrier helper
    // is shared, not cloned, and the dependence is marked truncated.
    midend::generateAuxiliaryCode(module, 8);
    midend::freezeDefaultTradeoffs(module);

    const auto diags = runAnalyses(module);
    EXPECT_FALSE(hasErrors(diags));
    // The truncated clone calls two un-cloned functions...
    EXPECT_EQ(countRule(diags, "AUD05"), 2u);
    // ... and the dependence itself is flagged once.
    EXPECT_EQ(countRule(diags, "AUD06"), 1u);
}

TEST(CloneAudit, DetectsDivergenceAndDefaultMismatch)
{
    const ir::Module module = ir::parseModule(
        readFile(sourcePath("examples/ir/bad/bad_divergent_clone.ir")));
    AnalysisManager manager(module);
    const auto diags = runCloneAudit(manager);
    EXPECT_EQ(countRule(diags, "AUD03"), 1u);
    EXPECT_EQ(countRule(diags, "AUD04"), 1u);
}

TEST(FreezeCheck, MidendOutputHasAuxCallsPreInstantiation)
{
    ir::Module module = loadPipelineModule();
    midend::runMiddleEnd(module);

    AnalysisManager manager(module);
    // Middle-end mode: aux tradeoffs legitimately remain.
    EXPECT_TRUE(runFreezeCheck(manager).empty());
    // Back-end mode: the surviving aux placeholder calls are errors.
    FreezeCheckOptions instantiated;
    instantiated.requireInstantiated = true;
    const auto diags = runFreezeCheck(manager, instantiated);
    EXPECT_TRUE(hasErrors(diags));
    EXPECT_GE(countRule(diags, "FRZ01"), 3u);
}

TEST(FreezeCheck, InstantiatedPipelineIsClean)
{
    ir::Module module = loadPipelineModule();
    midend::runMiddleEnd(module);
    backend::BackendConfig config; // auditFrozen on by default.
    const ir::Module binary = backend::instantiate(module, config);

    AnalysisManager manager(binary);
    FreezeCheckOptions instantiated;
    instantiated.requireInstantiated = true;
    EXPECT_TRUE(runFreezeCheck(manager, instantiated).empty());
}

TEST(FreezeCheck, FlagsAuxPlaceholderCallFromCommittedCode)
{
    const char *text = R"(
module "frz02"
tradeoff aux::T_1 kind=const placeholder=@T_1__aux0 getValue=@gv size=@sz default=@di aux=true origin=T_1
statedep SD0 compute=@computeOutput aux=@computeOutput__aux0
auxclone T_1__aux0 origin=@T_1 statedep=SD0
auxclone computeOutput__aux0 origin=@computeOutput statedep=SD0
func @T_1() -> i64 {
entry:
  ret i64 1
}
func @T_1__aux0() -> i64 {
entry:
  ret i64 1
}
func @gv(i64 %i) -> i64 {
entry:
  ret i64 %i
}
func @sz() -> i64 {
entry:
  ret i64 2
}
func @di() -> i64 {
entry:
  ret i64 0
}
func @computeOutput(i64 %x) -> i64 {
entry:
  %t = cast i64 0
  %r = add i64 %x, %t
  ret i64 %r
}
func @computeOutput__aux0(i64 %x) -> i64 {
entry:
  %t = call i64 @T_1__aux0()
  %r = add i64 %x, %t
  ret i64 %r
}
func @committed(i64 %x) -> i64 {
entry:
  %t = call i64 @T_1__aux0()
  ret i64 %t
}
)";
    const ir::Module module = ir::parseModule(text);
    AnalysisManager manager(module);
    const auto diags = runFreezeCheck(manager);
    ASSERT_EQ(countRule(diags, "FRZ02"), 1u);
    for (const auto &diag : diags) {
        if (diag.rule == "FRZ02") {
            EXPECT_EQ(diag.function, "committed");
        }
    }
}

TEST(EscapeCheck, FlagsEffectfulBuiltinAndHelper)
{
    const char *text = R"(
module "escape"
statedep SD0 compute=@computeOutput aux=@computeOutput__aux0
auxclone computeOutput__aux0 origin=@computeOutput statedep=SD0
func @noisy(f64 %x) -> f64 {
entry:
  %n = call f64 @rand_uniform
  %r = add f64 %x, %n
  ret f64 %r
}
func @computeOutput(f64 %s) -> f64 {
entry:
  %r = call f64 @noisy %s
  ret f64 %r
}
func @computeOutput__aux0(f64 %s) -> f64 {
entry:
  %r = call f64 @noisy %s
  ret f64 %r
}
)";
    const ir::Module module = ir::parseModule(text);
    AnalysisManager manager(module);
    const auto diags = runEscapeCheck(manager);
    // ESC01 at @noisy's PRVG call (reachable from the aux clone),
    // ESC02 at the aux clone's call into the effectful shared helper.
    EXPECT_EQ(countRule(diags, "ESC01"), 1u);
    EXPECT_EQ(countRule(diags, "ESC02"), 1u);
}

TEST(EscapeCheck, FlagsComputeOutputReentry)
{
    const char *text = R"(
module "reentry"
statedep SD0 compute=@computeOutput aux=@computeOutput__aux0
auxclone computeOutput__aux0 origin=@computeOutput statedep=SD0
func @computeOutput(f64 %s) -> f64 {
entry:
  %r = add f64 %s, 1.0
  ret f64 %r
}
func @computeOutput__aux0(f64 %s) -> f64 {
entry:
  %r = call f64 @computeOutput %s
  ret f64 %r
}
)";
    const ir::Module module = ir::parseModule(text);
    AnalysisManager manager(module);
    const auto diags = runEscapeCheck(manager);
    ASSERT_EQ(countRule(diags, "ESC03"), 1u);
}

// ------------------------------------------------------------ lint driver

TEST(Lint, StructuralErrorsSuppressSemanticPasses)
{
    const char *text = R"(
module "broken"
func @f(i64 %n) -> f64 {
entry:
  %c = cmplt i64 %n, 1
  br %c, a, b
a:
  jmp join
b:
  jmp join
join:
  %p = phi f64 [1.0, a]
  %x = cast f32 %n
  %y = add f64 %x, %p
  ret f64 %y
}
)";
    // The module has both a phi-coverage error and a missing cast;
    // only the structural (VER01) finding may be reported.
    const auto diags = runAnalyses(ir::parseModule(text));
    ASSERT_FALSE(diags.empty());
    for (const auto &diag : diags)
        EXPECT_EQ(diag.rule, "VER01");
}

TEST(Lint, PassFilterSelectsOnePass)
{
    const ir::Module module = ir::parseModule(
        readFile(sourcePath("examples/ir/bad/bad_missing_cast.ir")));
    LintOptions purity_only;
    purity_only.pass = "purity";
    EXPECT_TRUE(runAnalyses(module, purity_only).empty());

    LintOptions freeze_only;
    freeze_only.pass = "freeze";
    const auto diags = runAnalyses(module, freeze_only);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_EQ(diags[0].rule, "FRZ03");
}

TEST(Lint, PassNamesAreClosed)
{
    EXPECT_EQ(passNames().size(), 7u);
    for (const auto &name : passNames())
        EXPECT_TRUE(isPassName(name));
    EXPECT_FALSE(isPassName("no-such-pass"));
}

// --------------------------------------------------- registry and schema

TEST(Diagnostics, RegistryHasUniqueStableRuleIds)
{
    std::set<std::string> ids;
    std::set<std::string> passes;
    for (const auto &rule : allRules()) {
        EXPECT_TRUE(ids.insert(rule.id).second)
            << "duplicate rule " << rule.id;
        passes.insert(rule.pass);
    }
    EXPECT_EQ(ids.size(), 22u);
    // Every rule belongs to a runnable pass.
    for (const auto &pass : passes)
        EXPECT_TRUE(isPassName(pass)) << pass;
    EXPECT_EQ(ruleInfo("AUD03").severity, Severity::Error);
    EXPECT_EQ(ruleInfo("AUD06").severity, Severity::Warning);
    EXPECT_STREQ(ruleInfo("ESC01").pass, "escape");
}

TEST(Diagnostics, SortOrderIsLineFunctionRuleMessage)
{
    std::vector<Diagnostic> diags;
    diags.push_back(makeDiagnostic("FRZ03", "b", "", 7, "m"));
    diags.push_back(makeDiagnostic("AUD03", "b", "", 7, "m"));
    diags.push_back(makeDiagnostic("VER01", "a", "", 0, "m"));
    diags.push_back(makeDiagnostic("ESC01", "a", "", 7, "m"));
    sortDiagnostics(diags);
    EXPECT_EQ(diags[0].rule, "VER01"); // line 0 first.
    EXPECT_EQ(diags[1].rule, "ESC01"); // then function "a" at line 7.
    EXPECT_EQ(diags[2].rule, "AUD03"); // then rule order within "b".
    EXPECT_EQ(diags[3].rule, "FRZ03");
}

TEST(Diagnostics, JsonReportCarriesSchemaAndSummary)
{
    std::vector<Diagnostic> diags;
    diags.push_back(makeDiagnostic("ESC01", "aux", "entry", 3, "bad"));
    std::ostringstream out;
    writeDiagnosticsJson(out, "mod", "mod.ir", diags);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"schemaVersion\": 1"), std::string::npos);
    EXPECT_NE(json.find("\"rule\": \"ESC01\""), std::string::npos);
    EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
    EXPECT_NE(json.find("\"errors\": 1"), std::string::npos);
}

TEST(Diagnostics, EveryRuleAndPassIsDocumented)
{
    // docs/ANALYSIS.md is the contract for rule IDs and pass names;
    // adding a rule without documenting it fails here.
    const std::string doc = readFile(sourcePath("docs/ANALYSIS.md"));
    for (const auto &rule : allRules()) {
        EXPECT_NE(doc.find(rule.id), std::string::npos)
            << "rule " << rule.id << " is not documented";
        EXPECT_NE(doc.find(rule.summary), std::string::npos)
            << "summary of " << rule.id << " is not documented";
    }
    for (const auto &pass : passNames())
        EXPECT_NE(doc.find("`" + pass + "`"), std::string::npos)
            << "pass " << pass << " is not documented";
    EXPECT_NE(doc.find("schemaVersion"), std::string::npos);
}

} // namespace
