/**
 * @file
 * Tests for the output-quality metrics, including the metric-space
 * properties the benchmarks rely on (identity, symmetry where
 * applicable, sensitivity).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "quality/metrics.hpp"

namespace {

using namespace stats::quality;

TEST(RelMse, ZeroForIdenticalVectors)
{
    EXPECT_DOUBLE_EQ(
        relativeMeanSquareError({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 0.0);
}

TEST(RelMse, NormalizedByReference)
{
    // err = (0.1^2 * 3), ref = 1+4+9 = 14.
    const double v =
        relativeMeanSquareError({1.1, 2.1, 3.1}, {1.0, 2.0, 3.0});
    EXPECT_NEAR(v, 0.03 / 14.0, 1e-12);
}

TEST(RelMse, ScaleInvariance)
{
    const double small =
        relativeMeanSquareError({1.01, 2.02}, {1.0, 2.0});
    const double large =
        relativeMeanSquareError({101.0, 202.0}, {100.0, 200.0});
    EXPECT_NEAR(small, large, 1e-12);
}

TEST(Euclidean, KnownDistances)
{
    // Two 2-D points, each displaced by (3,4) -> distance 5.
    const std::vector<double> a{0, 0, 10, 10};
    const std::vector<double> b{3, 4, 13, 14};
    EXPECT_DOUBLE_EQ(averageEuclideanDistance(a, b, 2), 5.0);
}

TEST(Euclidean, IdentityAndSymmetry)
{
    const std::vector<double> a{1, 2, 3, 4, 5, 6};
    const std::vector<double> b{2, 4, 3, 1, 0, 6};
    EXPECT_DOUBLE_EQ(averageEuclideanDistance(a, a, 3), 0.0);
    EXPECT_DOUBLE_EQ(averageEuclideanDistance(a, b, 3),
                     averageEuclideanDistance(b, a, 3));
}

TEST(RelDiff, KnownValue)
{
    EXPECT_NEAR(averageRelativeDifference({1.1, 4.0}, {1.0, 5.0}),
                (0.1 / 1.0 + 1.0 / 5.0) / 2.0, 1e-12);
}

TEST(DaviesBouldin, WellSeparatedBeatsOverlapping)
{
    // Two tight clusters far apart.
    std::vector<double> tight{0.0, 0.1, -0.1, 10.0, 10.1, 9.9};
    std::vector<int> assign{0, 0, 0, 1, 1, 1};
    const double good = daviesBouldinIndex(tight, 1, assign, 2);

    // Same structure but clusters nearly touching.
    std::vector<double> loose{0.0, 0.4, -0.4, 1.0, 1.4, 0.6};
    const double bad = daviesBouldinIndex(loose, 1, assign, 2);

    EXPECT_LT(good, bad);
    EXPECT_GT(good, 0.0);
}

TEST(DaviesBouldin, SingleClusterIsZero)
{
    EXPECT_DOUBLE_EQ(
        daviesBouldinIndex({1.0, 2.0, 3.0}, 1, {0, 0, 0}, 1), 0.0);
}

TEST(DaviesBouldin, IgnoresEmptyClusters)
{
    std::vector<double> pts{0.0, 0.1, 5.0, 5.1};
    std::vector<int> assign{0, 0, 2, 2}; // Cluster 1 empty.
    const double v = daviesBouldinIndex(pts, 1, assign, 3);
    EXPECT_GT(v, 0.0);
    EXPECT_TRUE(std::isfinite(v));
}

TEST(BCubed, PerfectClusteringScoresOne)
{
    const auto score = bCubed({0, 0, 1, 1}, {5, 5, 9, 9});
    EXPECT_DOUBLE_EQ(score.precision, 1.0);
    EXPECT_DOUBLE_EQ(score.recall, 1.0);
    EXPECT_DOUBLE_EQ(score.f1, 1.0);
}

TEST(BCubed, AllMergedLosesPrecision)
{
    // One predicted cluster over two gold classes of equal size.
    const auto score = bCubed({0, 0, 0, 0}, {1, 1, 2, 2});
    EXPECT_DOUBLE_EQ(score.precision, 0.5);
    EXPECT_DOUBLE_EQ(score.recall, 1.0);
    EXPECT_NEAR(score.f1, 2.0 * 0.5 / 1.5, 1e-12);
}

TEST(BCubed, AllSplitLosesRecall)
{
    const auto score = bCubed({0, 1, 2, 3}, {1, 1, 2, 2});
    EXPECT_DOUBLE_EQ(score.precision, 1.0);
    EXPECT_DOUBLE_EQ(score.recall, 0.5);
}

TEST(BCubed, EmptyInputIsPerfect)
{
    const auto score = bCubed({}, {});
    EXPECT_DOUBLE_EQ(score.f1, 1.0);
}

} // namespace
