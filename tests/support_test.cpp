/**
 * @file
 * Unit tests for the support library: PRVGs, statistics, JSON
 * writing, string utilities.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/statistics.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"

namespace {

using namespace stats::support;

TEST(Rng, SameSeedSameSequence)
{
    Xoshiro256 a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Xoshiro256 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a() == b();
    EXPECT_LT(same, 2);
}

TEST(Rng, NextDoubleInUnitInterval)
{
    Xoshiro256 rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Xoshiro256 rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        saw_lo |= v == 3;
        saw_hi |= v == 7;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMoments)
{
    Xoshiro256 rng(11);
    RunningStat stat;
    for (int i = 0; i < 50000; ++i)
        stat.add(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(stat.mean(), 5.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.05);
}

TEST(Rng, EntropySeedsDistinct)
{
    const auto a = entropySeed();
    const auto b = entropySeed();
    EXPECT_NE(a, b);
}

TEST(Rng, DeterministicSeedScope)
{
    std::uint64_t first, second;
    {
        ScopedDeterministicSeeds scope(123);
        first = entropySeed();
    }
    {
        ScopedDeterministicSeeds scope(123);
        second = entropySeed();
    }
    EXPECT_EQ(first, second);
}

TEST(Statistics, RunningStatMatchesClosedForm)
{
    RunningStat stat;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        stat.add(x);
    EXPECT_DOUBLE_EQ(stat.mean(), 5.0);
    EXPECT_NEAR(stat.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_EQ(stat.count(), 8u);
    EXPECT_DOUBLE_EQ(stat.min(), 2.0);
    EXPECT_DOUBLE_EQ(stat.max(), 9.0);
}

TEST(Statistics, GeomeanOfPowers)
{
    EXPECT_NEAR(geomean({1.0, 4.0, 16.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({8.0}), 8.0, 1e-12);
}

TEST(Statistics, MedianEvenOdd)
{
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
    EXPECT_DOUBLE_EQ(median({}), 0.0);
}

TEST(Statistics, MeasureToConfidenceStopsEarlyOnStableSamples)
{
    int calls = 0;
    const double result = measureToConfidence([&] {
        ++calls;
        return 10.0;
    });
    EXPECT_DOUBLE_EQ(result, 10.0);
    EXPECT_EQ(calls, 3); // minRuns with zero variance.
}

TEST(Json, ObjectWithNestedArray)
{
    std::ostringstream out;
    {
        JsonWriter json(out, /* pretty */ false);
        json.beginObject()
            .field("name", "fig12")
            .key("series")
            .beginArray()
            .value(1.0)
            .value(2.5)
            .endArray()
            .field("ok", true)
            .endObject();
    }
    EXPECT_EQ(out.str(), "{\"name\":\"fig12\",\"series\":[1,2.5],"
                         "\"ok\":true}\n");
}

TEST(Json, EscapesStrings)
{
    EXPECT_EQ(JsonWriter::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(StringUtils, SplitAndTrim)
{
    const auto parts = split("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(trim("  hi \t\n"), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim("   "), "");
}

TEST(StringUtils, SplitWhitespace)
{
    const auto words = splitWhitespace("  foo\tbar \n baz ");
    ASSERT_EQ(words.size(), 3u);
    EXPECT_EQ(words[0], "foo");
    EXPECT_EQ(words[2], "baz");
}

TEST(StringUtils, PrefixSuffixJoin)
{
    EXPECT_TRUE(startsWith("tradeoff TO_x", "tradeoff"));
    EXPECT_FALSE(startsWith("x", "xyz"));
    EXPECT_TRUE(endsWith("file.cpp", ".cpp"));
    EXPECT_EQ(join({"a", "b", "c"}, "::"), "a::b::c");
}

TEST(StringUtils, CountLines)
{
    EXPECT_EQ(countLines(""), 0u);
    EXPECT_EQ(countLines("one"), 1u);
    EXPECT_EQ(countLines("one\ntwo\n"), 2u);
    EXPECT_EQ(countLines("one\ntwo\nthree"), 3u);
}

TEST(Table, AlignsColumns)
{
    TextTable table({"bench", "speedup"});
    table.addRow({"swaptions", "24.00"});
    table.addRow("bodytrack", {12.345}, 2);
    std::ostringstream out;
    table.print(out);
    const std::string text = out.str();
    EXPECT_NE(text.find("swaptions"), std::string::npos);
    EXPECT_NE(text.find("12.35"), std::string::npos);
    EXPECT_NE(text.find("-----"), std::string::npos);
}

} // namespace
