/**
 * @file
 * TaskArena unit tests: the epoch-reclamation contract the engine's
 * zero-allocation hot path rests on (src/threading/arena.hpp).
 *
 * The load-bearing property is *no reuse before the epoch drains*: a
 * destroyed record's storage must never be handed to a later create()
 * in the same epoch (a stale pointer then reads destroyed-but-intact
 * memory instead of someone else's record), and after drainEpoch()
 * the same blocks must be recycled without new heap traffic.
 */

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "threading/arena.hpp"

namespace {

using stats::threading::TaskArena;

struct Record
{
    std::uint64_t payload[6] = {};
};

TEST(TaskArena, NoReuseWithinAnEpoch)
{
    TaskArena arena;
    std::set<void *> seen;
    // Create/destroy in a tight loop: every slot must be distinct
    // because destroy() never returns memory inside an epoch.
    for (int i = 0; i < 500; ++i) {
        Record *rec = arena.create<Record>();
        EXPECT_TRUE(seen.insert(rec).second)
            << "slot recycled before drainEpoch at iteration " << i;
        arena.destroy(rec);
    }
    EXPECT_EQ(arena.stats().live, 0u);
    EXPECT_EQ(arena.stats().allocations, 500u);
}

TEST(TaskArena, DrainEpochRecyclesBlocksWithoutHeapTraffic)
{
    TaskArena arena(4 * 1024);
    // Warm up: force a few block refills.
    for (int i = 0; i < 400; ++i)
        arena.destroy(arena.create<Record>());
    const auto warm = arena.stats();
    ASSERT_GT(warm.blockAllocs, 1u);

    arena.drainEpoch();
    EXPECT_EQ(arena.stats().epoch, 1u);

    // Same traffic in the next epoch: blocks are retained, so zero
    // additional heap allocations — the drops-to-0 steady state.
    for (int i = 0; i < 400; ++i)
        arena.destroy(arena.create<Record>());
    EXPECT_EQ(arena.stats().blockAllocs, warm.blockAllocs);

    // And the recycled epoch hands out the same storage again.
    arena.drainEpoch();
    Record *first = arena.create<Record>();
    arena.destroy(first);
    arena.drainEpoch();
    Record *again = arena.create<Record>();
    EXPECT_EQ(static_cast<void *>(first), static_cast<void *>(again));
    arena.destroy(again);
    arena.drainEpoch();
}

TEST(TaskArena, DrainEpochPanicsWithLiveRecords)
{
    EXPECT_DEATH(
        {
            TaskArena arena;
            arena.create<Record>();
            arena.drainEpoch();
        },
        "live record");
}

TEST(TaskArena, OversizedRequestsGetADedicatedBlock)
{
    TaskArena arena(4 * 1024);
    void *big = arena.allocate(64 * 1024, alignof(std::max_align_t));
    ASSERT_NE(big, nullptr);
    // Oversized block is retained and reusable next epoch.
    const auto warm = arena.stats();
    arena.drainEpoch();
    void *again = arena.allocate(64 * 1024, alignof(std::max_align_t));
    EXPECT_EQ(big, again);
    EXPECT_EQ(arena.stats().blockAllocs, warm.blockAllocs);
    arena.drainEpoch();
}

TEST(TaskArena, RefillHookReportsHeapVsRecycled)
{
    TaskArena arena(4 * 1024);
    std::vector<bool> heap_flags;
    arena.setRefillHook([&heap_flags](std::size_t bytes, bool heap) {
        EXPECT_GE(bytes, std::size_t(4 * 1024));
        heap_flags.push_back(heap);
    });
    for (int i = 0; i < 400; ++i)
        arena.destroy(arena.create<Record>());
    ASSERT_GE(heap_flags.size(), 2u);
    for (bool heap : heap_flags)
        EXPECT_TRUE(heap); // First epoch: all refills hit the heap.

    heap_flags.clear();
    arena.drainEpoch();
    for (int i = 0; i < 400; ++i)
        arena.destroy(arena.create<Record>());
    ASSERT_GE(heap_flags.size(), 1u);
    for (bool heap : heap_flags)
        EXPECT_FALSE(heap); // Second epoch: all recycled.
}

TEST(TaskArena, AlignmentIsRespected)
{
    TaskArena arena;
    for (std::size_t align : {std::size_t(8), std::size_t(16),
                              std::size_t(32), std::size_t(64)}) {
        for (int i = 0; i < 16; ++i) {
            void *p = arena.allocate(3, align);
            EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
                << "align " << align;
        }
    }
}

} // namespace
