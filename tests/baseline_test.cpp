/**
 * @file
 * Tests of the related-work baselines (paper section 4.4): their
 * structural applicability, Fast Track's always-aborting behaviour,
 * and the dependence-breaking policies.
 */

#include <gtest/gtest.h>

#include "baselines/baseline.hpp"

namespace {

using namespace stats;
using namespace stats::baselines;
using namespace stats::benchmarks;

TEST(Baselines, ApplicabilityTable)
{
    // Only swaptions' reduction-variable state is within reach of
    // ALTER / QuickStep / HELIX-UP.
    for (const auto kind :
         {BaselineKind::AlterLike, BaselineKind::QuickStepLike,
          BaselineKind::HelixUpLike}) {
        EXPECT_TRUE(applicable(kind, "swaptions"));
        EXPECT_FALSE(applicable(kind, "bodytrack"));
        EXPECT_FALSE(applicable(kind, "facedet"));
        EXPECT_FALSE(applicable(kind, "streamcluster"));
        EXPECT_FALSE(applicable(kind, "fluidanimate"));
    }
    for (const auto &name : allBenchmarkNames())
        EXPECT_TRUE(applicable(BaselineKind::FastTrack, name));
}

TEST(Baselines, FastTrackAlwaysAborts)
{
    // "Fast Track always aborted its speculations in our
    // experiments" (paper section 4.4).
    for (const std::string name : {"swaptions", "bodytrack"}) {
        auto bench = createBenchmark(name);
        const auto result =
            runBaseline(BaselineKind::FastTrack, *bench,
                        /* parallel_original */ true, 14,
                        sim::MachineConfig{});
        EXPECT_TRUE(result.usedSpeculation) << name;
        EXPECT_EQ(result.engineStats.aborts, 1) << name;
        EXPECT_EQ(result.engineStats.validations, 0) << name;
    }
}

TEST(Baselines, AlterLikeSpeedsUpSwaptionsOnly)
{
    sim::MachineConfig machine;
    {
        auto bench = createBenchmark("swaptions");
        RunRequest seq;
        seq.threads = 1;
        seq.mode = Mode::Original;
        const double base = bench->run(seq).virtualSeconds;
        const auto alter = runBaseline(BaselineKind::AlterLike, *bench,
                                       false, 28, machine);
        EXPECT_GT(base / alter.virtualSeconds, 4.0);
        EXPECT_TRUE(alter.usedSpeculation);
    }
    {
        auto bench = createBenchmark("bodytrack");
        const auto alter = runBaseline(BaselineKind::AlterLike, *bench,
                                       false, 28, machine);
        // Inapplicable + Seq flavor: sequential performance.
        EXPECT_FALSE(alter.usedSpeculation);
        EXPECT_EQ(alter.engineStats.groups, 0);
    }
}

TEST(Baselines, BreakingDependencesSkipsAuxiliaryWork)
{
    auto bench = createBenchmark("swaptions");
    RunRequest request;
    request.threads = 14;
    request.mode = Mode::SeqStats;
    request.policy = SpeculationPolicy::BreakNoCheck;
    const RunResult result = bench->run(request);
    // No auxiliary inputs consumed and every group committed.
    EXPECT_EQ(result.engineStats.aborts, 0);
    EXPECT_GT(result.engineStats.validations, 0);
    EXPECT_EQ(result.engineStats.mismatches, 0);
}

TEST(Baselines, InapplicableParFlavorEqualsOriginal)
{
    auto bench = createBenchmark("streamcluster");
    const auto baseline = runBaseline(BaselineKind::QuickStepLike,
                                      *bench, true, 14,
                                      sim::MachineConfig{});
    RunRequest original;
    original.threads = 14;
    original.mode = Mode::Original;
    const double original_time = bench->run(original).virtualSeconds;
    // Same mode, nondeterministic runs: times agree loosely.
    EXPECT_NEAR(baseline.virtualSeconds, original_time,
                0.4 * original_time);
}

} // namespace
