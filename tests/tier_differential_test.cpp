/**
 * @file
 * AST-vs-bytecode tier differential (ctest label `tierdiff`, see
 * docs/TESTING.md): every valid fuzzer-generated module is lowered
 * through the real pipeline (verify -> midend -> backend) and its
 * state-dependence functions are executed on both tiers with the same
 * arguments. The tiers must agree bit-for-bit — the bytecode compiler
 * has no license to re-associate, contract, or re-round anything
 * (docs/INTERPRETER.md §4).
 *
 * The campaign is fixed-seed so a divergence is a reproducible case
 * name, not a flake. STATS_TIERDIFF_RUNS overrides the module count
 * (sanitizer CI uses a smaller campaign; the default is 600).
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "ir/exec_tier.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "midend/midend.hpp"
#include "midend/substitute.hpp"
#include "support/rng.hpp"
#include "testing/generator.hpp"

namespace {

using namespace stats;
using ir::RtValue;

constexpr std::uint64_t kRootSeed = 20260808;

std::size_t
campaignRuns()
{
    if (const char *env = std::getenv("STATS_TIERDIFF_RUNS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0)
            return std::size_t(parsed);
    }
    return 600;
}

bool
sameBits(const RtValue &a, const RtValue &b)
{
    if (ir::isFloating(a.type) != ir::isFloating(b.type))
        return false;
    if (ir::isFloating(a.type)) {
        std::uint64_t ab, bb;
        std::memcpy(&ab, &a.f, 8);
        std::memcpy(&bb, &b.f, 8);
        return ab == bb;
    }
    return a.i == b.i;
}

std::string
describe(const RtValue &v)
{
    return ir::isFloating(v.type) ? std::to_string(v.f)
                                  : std::to_string(v.i);
}

TEST(TierDifferential, AstAndBytecodeAgreeOnGeneratedModules)
{
    const std::size_t runs = campaignRuns();
    std::size_t executed = 0, skipped = 0, bytecode_fns = 0, calls = 0;

    for (std::size_t index = 0; index < runs; ++index) {
        const stats::testing::FuzzCase fuzz_case =
            stats::testing::generateCase(kRootSeed, index);
        if (fuzz_case.expect == stats::testing::Expectation::Reject) {
            ++skipped; // Near-miss: the pipeline's job, not ours.
            continue;
        }
        ASSERT_TRUE(ir::verifyModule(fuzz_case.module).empty())
            << fuzz_case.name;

        ir::Module midend_ir = fuzz_case.module;
        midend::runMiddleEnd(midend_ir);
        backend::BackendConfig config;
        for (const auto &dep : midend_ir.stateDeps)
            config.auxiliaryDeps.insert(dep.name);
        const ir::Module instantiated =
            backend::instantiate(midend_ir, config);
        ASSERT_FALSE(instantiated.stateDeps.empty()) << fuzz_case.name;

        ir::ExecutableModule ast(instantiated, ir::ExecTier::Ast);
        ir::ExecutableModule fast(instantiated, ir::ExecTier::Auto);
        ast.setStepBudget(1'000'000);
        fast.setStepBudget(1'000'000);
        bytecode_fns += fast.bytecode().compiledCount();

        const ir::StateDepMeta &dep = instantiated.stateDeps.front();
        std::vector<std::string> functions{dep.computeFn};
        if (!dep.auxFn.empty() && dep.auxFn != dep.computeFn)
            functions.push_back(dep.auxFn);

        // Oracle-domain arguments: inputs like the scenario draws
        // them, states across the wrapState range plus edge values.
        support::Xoshiro256 rng(kRootSeed ^ (index * 0x9e3779b9u));
        std::vector<std::pair<std::int64_t, std::int64_t>> points;
        for (int k = 0; k < 6; ++k)
            points.emplace_back(
                std::int64_t(rng.nextBelow(1000)),
                std::int64_t(rng.nextBelow(std::uint64_t(1) << 20)));
        points.emplace_back(0, 0);
        points.emplace_back(999, (std::int64_t(1) << 20) - 1);

        for (const std::string &fn : functions) {
            for (const auto &[input, state] : points) {
                const std::vector<RtValue> args{RtValue::ofInt(input),
                                                RtValue::ofInt(state)};
                const RtValue reference = ast.call(fn, args);
                const RtValue candidate = fast.call(fn, args);
                ++calls;
                ASSERT_TRUE(sameBits(reference, candidate))
                    << fuzz_case.name << " @" << fn << "(" << input
                    << ", " << state << "): ast="
                    << describe(reference)
                    << " bytecode=" << describe(candidate)
                    << " (tier " << ir::execTierName(fast.tierFor(fn))
                    << ")";
            }
        }
        ++executed;
    }

    RecordProperty("modules", std::to_string(executed));
    RecordProperty("calls", std::to_string(calls));
    EXPECT_GT(executed, 0u);
    // The campaign is vacuous if nothing actually ran on bytecode.
    EXPECT_GT(bytecode_fns, 0u);
    std::printf("tierdiff: %zu modules (%zu near-miss skipped), "
                "%zu compiled functions, %zu differential calls\n",
                executed, skipped, bytecode_fns, calls);
}

/**
 * Tradeoff substitution is itself IR execution (defaultIndex / size /
 * getValue run through an ExecutableModule since the interpreter-
 * construction cleanup), so it gets the same tier guarantee: the
 * metadata calls must agree bit-for-bit between tiers, and applying a
 * tradeoff with each tier's fetched value must produce byte-identical
 * modules.
 */
TEST(TierDifferential, SubstitutionIsTierInvariant)
{
    const std::size_t runs = std::min<std::size_t>(campaignRuns(), 80);
    std::size_t tradeoffs_checked = 0;

    for (std::size_t index = 0; index < runs; ++index) {
        const stats::testing::FuzzCase fuzz_case =
            stats::testing::generateCase(kRootSeed + 1, index);
        if (fuzz_case.expect == stats::testing::Expectation::Reject)
            continue;
        if (!ir::verifyModule(fuzz_case.module).empty())
            continue;
        const ir::Module &module = fuzz_case.module;

        ir::ExecutableModule ast(module, ir::ExecTier::Ast);
        ir::ExecutableModule fast(module, ir::ExecTier::Auto);

        for (const ir::TradeoffMeta &meta : module.tradeoffs) {
            const std::int64_t size_ast =
                ast.call(meta.sizeFn, {}).asInt();
            const std::int64_t size_fast =
                fast.call(meta.sizeFn, {}).asInt();
            ASSERT_EQ(size_ast, size_fast)
                << fuzz_case.name << " " << meta.name << " size";
            ASSERT_EQ(ast.call(meta.defaultIndexFn, {}).asInt(),
                      fast.call(meta.defaultIndexFn, {}).asInt())
                << fuzz_case.name << " " << meta.name
                << " defaultIndex";
            // The public entry points run on the Auto tier; anchor
            // them against the AST reference too.
            ASSERT_EQ(midend::sizeOf(module, meta), size_ast)
                << fuzz_case.name << " " << meta.name;
            ASSERT_EQ(midend::defaultIndexOf(module, meta),
                      ast.call(meta.defaultIndexFn, {}).asInt())
                << fuzz_case.name << " " << meta.name;

            for (std::int64_t i = 0; i < size_ast; ++i) {
                if (meta.kind == ir::TradeoffKind::Constant) {
                    const RtValue v_ast = ast.call(
                        meta.getValueFn, {RtValue::ofInt(i)});
                    const RtValue v_fast = fast.call(
                        meta.getValueFn, {RtValue::ofInt(i)});
                    ASSERT_TRUE(sameBits(v_ast, v_fast))
                        << fuzz_case.name << " " << meta.name << "["
                        << i << "]: ast=" << describe(v_ast)
                        << " bytecode=" << describe(v_fast);
                }
                const midend::ChosenValue value =
                    midend::evaluateTradeoffValue(module, meta, i);
                ir::Module substituted = module;
                midend::applyTradeoff(substituted, meta, value);
                // Bit-identical substitution: freeze the reference
                // once per (tradeoff, index) and compare the printed
                // module byte for byte.
                ir::Module reference = module;
                midend::ChosenValue ref_value;
                ref_value.kind = meta.kind;
                if (meta.kind == ir::TradeoffKind::Constant)
                    ref_value.constant = ast.call(
                        meta.getValueFn, {RtValue::ofInt(i)});
                else
                    ref_value.name =
                        meta.nameChoices[std::size_t(i)];
                midend::applyTradeoff(reference, meta, ref_value);
                ASSERT_EQ(ir::printModule(substituted),
                          ir::printModule(reference))
                    << fuzz_case.name << " " << meta.name << "[" << i
                    << "]: substitution diverged across tiers";
            }
            ++tradeoffs_checked;
        }
    }
    EXPECT_GT(tradeoffs_checked, 0u);
    std::printf("tierdiff: %zu tradeoffs substitution-checked\n",
                tradeoffs_checked);
}

} // namespace
