/**
 * @file
 * Unit tests for the thread pool and latch.
 */

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "threading/thread_pool.hpp"

namespace {

using namespace stats::threading;

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, AtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
    std::atomic<bool> ran{false};
    pool.submit([&] { ran.store(true); });
    pool.waitIdle();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, JobsMaySubmitJobs)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] {
        count.fetch_add(1);
        pool.submit([&] { count.fetch_add(1); });
    });
    // waitIdle must observe the nested job too: the outer job is
    // active while it submits, so the pool never looks idle between.
    pool.waitIdle();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, BlockingJobCannotStrandItsOwnSubmission)
{
    // A job that submits work and then *blocks until that work runs*
    // must make progress on any pool with a second worker. The
    // worker-side fast path parks the first nested submission in the
    // owner's next-task slot, which siblings normally never look at;
    // this pins the desperate slot-steal that keeps the pattern live
    // (the owner cannot run the slot — it is busy blocking on it).
    ThreadPool pool(2);
    std::atomic<int> ran{0};
    for (int round = 0; round < 50; ++round) {
        pool.submit([&pool, &ran, round] {
            const int want = 3 * (round + 1);
            pool.submit([&ran] { ran.fetch_add(1); });
            pool.submit([&ran] { ran.fetch_add(1); });
            pool.submit([&ran] { ran.fetch_add(1); });
            while (ran.load() < want)
                std::this_thread::yield();
        });
        pool.waitIdle();
        ASSERT_EQ(ran.load(), 3 * (round + 1)) << "round " << round;
    }
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns)
{
    ThreadPool pool(2);
    pool.waitIdle();
    SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                count.fetch_add(1);
            });
        }
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DestructorDrainsNestedSpawns)
{
    // Drain-on-shutdown covers jobs spawned by running jobs: the
    // destructor may only join once the whole tree has executed.
    std::atomic<int> count{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 10; ++i) {
            pool.submit([&count, &pool] {
                count.fetch_add(1);
                pool.submit([&count] { count.fetch_add(1); });
            });
        }
    }
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, SubmitBatchRunsEveryTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    std::vector<PoolTask> batch;
    for (int i = 0; i < 64; ++i) {
        PoolTask task;
        task.run = [&count](bool cancelled) {
            if (!cancelled)
                count.fetch_add(1);
        };
        batch.push_back(std::move(task));
    }
    pool.submitBatch(std::move(batch));
    pool.waitIdle();
    EXPECT_EQ(count.load(), 64);
    EXPECT_EQ(pool.stats().executed, 64u);
}

TEST(ThreadPool, CancelledTaskIsReportedCancelled)
{
    ThreadPool pool(2);
    auto flag = std::make_shared<std::atomic<bool>>(true);
    std::atomic<int> ran{0};
    std::atomic<int> cancelled{0};
    PoolTask task;
    task.cancel = flag;
    task.run = [&](bool was_cancelled) {
        (was_cancelled ? cancelled : ran).fetch_add(1);
    };
    pool.submit(std::move(task));
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 0);
    EXPECT_EQ(cancelled.load(), 1);
    EXPECT_EQ(pool.stats().cancelled, 1u);
}

TEST(ThreadPool, MoveOnlyJobsAreAccepted)
{
    // The submit path must be move-only end to end: a job capturing a
    // unique_ptr would not compile against a copy-requiring wrapper.
    ThreadPool pool(2);
    auto payload = std::make_unique<int>(41);
    std::atomic<int> seen{0};
    pool.submit([payload = std::move(payload), &seen] {
        seen.store(*payload + 1);
    });
    pool.waitIdle();
    EXPECT_EQ(seen.load(), 42);
}

TEST(ThreadPool, StatsCountSubmittedAndExecuted)
{
    ThreadPool pool(2);
    for (int i = 0; i < 25; ++i)
        pool.submit([] {});
    pool.waitIdle();
    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.submitted, 25u);
    EXPECT_EQ(stats.executed, 25u);
    EXPECT_EQ(stats.cancelled, 0u);
}

TEST(CountdownLatch, ReleasesAtZero)
{
    CountdownLatch latch(3);
    std::atomic<bool> released{false};
    std::thread waiter([&] {
        latch.wait();
        released.store(true);
    });
    latch.countDown();
    latch.countDown();
    EXPECT_FALSE(released.load());
    latch.countDown();
    waiter.join();
    EXPECT_TRUE(released.load());
}

TEST(CountdownLatch, ZeroCountReleasesImmediately)
{
    CountdownLatch latch(0);
    latch.wait();
    SUCCEED();
}

TEST(CountdownLatch, TryWaitNeverBlocks)
{
    CountdownLatch latch(1);
    EXPECT_FALSE(latch.tryWait());
    latch.countDown();
    EXPECT_TRUE(latch.tryWait());
}

TEST(CountdownLatch, WaitForTimesOutThenReleases)
{
    CountdownLatch latch(1);
    EXPECT_FALSE(latch.waitFor(std::chrono::milliseconds(1)));
    latch.countDown();
    EXPECT_TRUE(latch.waitFor(std::chrono::milliseconds(1)));
}

TEST(CountdownLatch, FinalCountWakesEveryWaiter)
{
    CountdownLatch latch(1);
    std::atomic<int> released{0};
    std::vector<std::thread> waiters;
    for (int i = 0; i < 4; ++i) {
        waiters.emplace_back([&] {
            latch.wait();
            released.fetch_add(1);
        });
    }
    latch.countDown();
    for (auto &waiter : waiters)
        waiter.join();
    EXPECT_EQ(released.load(), 4);
}

TEST(CountdownLatchDeathTest, CountingBelowZeroPanics)
{
    CountdownLatch latch(1);
    latch.countDown();
    EXPECT_DEATH(latch.countDown(), "CountdownLatch");
}

} // namespace
