/**
 * @file
 * Unit tests for the thread pool and latch.
 */

#include <atomic>
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "threading/thread_pool.hpp"

namespace {

using namespace stats::threading;

TEST(ThreadPool, RunsAllJobs)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, AtLeastOneWorker)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threadCount(), 1);
    std::atomic<bool> ran{false};
    pool.submit([&] { ran.store(true); });
    pool.waitIdle();
    EXPECT_TRUE(ran.load());
}

TEST(ThreadPool, JobsMaySubmitJobs)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] {
        count.fetch_add(1);
        pool.submit([&] { count.fetch_add(1); });
    });
    // waitIdle must observe the nested job too: the outer job is
    // active while it submits, so the pool never looks idle between.
    pool.waitIdle();
    EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns)
{
    ThreadPool pool(2);
    pool.waitIdle();
    SUCCEED();
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i) {
            pool.submit([&] {
                std::this_thread::sleep_for(std::chrono::microseconds(50));
                count.fetch_add(1);
            });
        }
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(CountdownLatch, ReleasesAtZero)
{
    CountdownLatch latch(3);
    std::atomic<bool> released{false};
    std::thread waiter([&] {
        latch.wait();
        released.store(true);
    });
    latch.countDown();
    latch.countDown();
    EXPECT_FALSE(released.load());
    latch.countDown();
    waiter.join();
    EXPECT_TRUE(released.load());
}

TEST(CountdownLatch, ZeroCountReleasesImmediately)
{
    CountdownLatch latch(0);
    latch.wait();
    SUCCEED();
}

} // namespace
