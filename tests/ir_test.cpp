/**
 * @file
 * Tests of the mini-IR: parse/print round trips, the verifier, the
 * interpreter (the LLVM-JIT substitute), and the call graph's
 * bottom-up tradeoff analysis.
 */

#include <gtest/gtest.h>

#include "ir/call_graph.hpp"
#include "ir/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace {

using namespace stats::ir;

const char *kToyModule = R"(
module "toy"
tradeoff T_42 kind=const placeholder=@T_42 getValue=@T_42_getValue size=@T_42_size default=@T_42_getDefaultIndex
statedep SD0 compute=@computeOutput

func @T_42() -> i64 {
entry:
  ret i64 5
}

func @T_42_getValue(i64 %i) -> i64 {
entry:
  %v = add i64 %i, 1
  ret i64 %v
}

func @T_42_size() -> i64 {
entry:
  ret i64 10
}

func @T_42_getDefaultIndex() -> i64 {
entry:
  ret i64 4
}

func @helper(f64 %x) -> f64 {
entry:
  %r = call f64 @sqrt %x
  ret f64 %r
}

func @plain(f64 %x) -> f64 {
entry:
  %y = add f64 %x, 0.5
  ret f64 %y
}

func @computeOutput(i64 %input, f64 %state) -> f64 {
entry:
  %iters = call i64 @T_42()
  %f = cast f64 %input
  %h = call f64 @helper %f
  %p = call f64 @plain %h
  %itf = cast f64 %iters
  %r = add f64 %p, %itf
  ret f64 %r
}
)";

TEST(IrParser, ParsesToyModule)
{
    const Module module = parseModule(kToyModule);
    EXPECT_EQ(module.name, "toy");
    EXPECT_EQ(module.functions.size(), 7u);
    ASSERT_EQ(module.tradeoffs.size(), 1u);
    EXPECT_EQ(module.tradeoffs[0].placeholder, "T_42");
    EXPECT_EQ(module.tradeoffs[0].kind, TradeoffKind::Constant);
    ASSERT_EQ(module.stateDeps.size(), 1u);
    EXPECT_EQ(module.stateDeps[0].computeFn, "computeOutput");
    const Function *fn = module.findFunction("computeOutput");
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->params.size(), 2u);
    EXPECT_EQ(fn->returnType, Type::F64);
    EXPECT_EQ(fn->instructionCount(), 7u);
}

TEST(IrParser, PrintParseRoundTrip)
{
    const Module module = parseModule(kToyModule);
    const std::string printed = printModule(module);
    const Module reparsed = parseModule(printed);
    EXPECT_EQ(printModule(reparsed), printed);
    EXPECT_EQ(reparsed.functions.size(), module.functions.size());
}

TEST(IrParser, MalformedNumericOperandsFailCleanly)
{
    // Regression: float-looking operands used to call std::stod
    // outside the try/catch, so '.', 'e9999…', etc. escaped as
    // std::invalid_argument / std::out_of_range instead of the
    // parser's own error. tryParseModule is the serving admission
    // path — an untrusted module must never throw past it.
    const char *broken[] = {".", "e", "1e999999", ".e.",
                            "9999999999999999999999999"};
    for (const char *operand : broken) {
        const std::string text =
            std::string("module \"bad\"\n"
                        "func @f(i64 %x) -> i64 {\n"
                        "entry:\n"
                        "  %a = add i64 %x, ") +
            operand + "\n  ret i64 %a\n}\n";
        std::string error;
        EXPECT_FALSE(tryParseModule(text, error).has_value())
            << "operand: " << operand;
        EXPECT_NE(error.find("bad operand"), std::string::npos)
            << "operand: " << operand << " error: " << error;
    }
}

TEST(IrParser, ParsesControlFlowAndPhi)
{
    const char *text = R"(
module "loop"
func @sumTo(i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %i = phi i64 [0, entry], [%i2, loop]
  %acc = phi i64 [0, entry], [%acc2, loop]
  %i2 = add i64 %i, 1
  %acc2 = add i64 %acc, %i2
  %done = cmplt i64 %i2, %n
  br %done, loop, exit
exit:
  ret i64 %acc2
}
)";
    const Module module = parseModule(text);
    EXPECT_TRUE(verifyModule(module).empty());
    Interpreter interp(module);
    EXPECT_EQ(interp.call("sumTo", {RtValue::ofInt(5)}).asInt(), 15);
    // Round trip with phis.
    const Module reparsed = parseModule(printModule(module));
    Interpreter interp2(reparsed);
    EXPECT_EQ(interp2.call("sumTo", {RtValue::ofInt(10)}).asInt(), 55);
}

TEST(IrVerifier, AcceptsToyModule)
{
    const auto problems = verifyModule(parseModule(kToyModule));
    EXPECT_TRUE(problems.empty());
}

TEST(IrVerifier, RejectsMissingTerminator)
{
    Module module = parseModule(kToyModule);
    module.findFunction("plain")->blocks[0].instructions.pop_back();
    const auto problems = verifyModule(module);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("terminator"), std::string::npos);
}

TEST(IrVerifier, RejectsUndefinedTemp)
{
    Module module = parseModule(kToyModule);
    Instruction bad;
    bad.op = Opcode::Add;
    bad.type = Type::I64;
    bad.result = "z";
    bad.operands = {Operand::temp("nope"), Operand::constInt(1)};
    auto &insts = module.findFunction("plain")->blocks[0].instructions;
    insts.insert(insts.begin(), bad);
    const auto problems = verifyModule(module);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("undefined temp"), std::string::npos);
}

TEST(IrVerifier, RejectsUnknownCallee)
{
    Module module = parseModule(kToyModule);
    module.findFunction("helper")
        ->blocks[0]
        .instructions[0]
        .callee = "missing";
    const auto problems = verifyModule(module);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("unknown function"), std::string::npos);
}

TEST(IrVerifier, RejectsBadBranchTarget)
{
    const char *text = R"(
module "bad"
func @f() -> void {
entry:
  jmp nowhere
}
)";
    const auto problems = verifyModule(parseModule(text));
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("unknown label"), std::string::npos);
}

TEST(IrInterpreter, ArithmeticAndCalls)
{
    const Module module = parseModule(kToyModule);
    Interpreter interp(module);
    // computeOutput(9, _) = plain(sqrt(9)) + 5 = 3.5 + 5 = 8.5.
    const RtValue result = interp.call(
        "computeOutput", {RtValue::ofInt(9), RtValue::ofFloat(0.0)});
    EXPECT_DOUBLE_EQ(result.asFloat(), 8.5);
    EXPECT_GT(interp.executedInstructions(), 0u);
}

TEST(IrInterpreter, SelectAndComparisons)
{
    const char *text = R"(
module "sel"
func @maxOf(i64 %a, i64 %b) -> i64 {
entry:
  %c = cmplt i64 %a, %b
  %m = select i64 %c, %b, %a
  ret i64 %m
}
)";
    const Module module = parseModule(text);
    Interpreter interp(module);
    EXPECT_EQ(interp
                  .call("maxOf",
                        {RtValue::ofInt(3), RtValue::ofInt(7)})
                  .asInt(),
              7);
    EXPECT_EQ(interp
                  .call("maxOf",
                        {RtValue::ofInt(9), RtValue::ofInt(2)})
                  .asInt(),
              9);
}

TEST(IrInterpreter, F32CastLosesPrecision)
{
    const char *text = R"(
module "prec"
func @roundtrip(f64 %x) -> f64 {
entry:
  %n = cast f32 %x
  %w = cast f64 %n
  ret f64 %w
}
)";
    const Module module = parseModule(text);
    Interpreter interp(module);
    const double big = 16777217.0; // 2^24 + 1: not representable in f32.
    const double out =
        interp.call("roundtrip", {RtValue::ofFloat(big)}).asFloat();
    EXPECT_NE(out, big);
    EXPECT_DOUBLE_EQ(out, 16777216.0);
}

TEST(IrInterpreter, StepBudgetStopsRunawayLoops)
{
    const char *text = R"(
module "inf"
func @spin() -> void {
entry:
  jmp entry
}
)";
    const Module module = parseModule(text);
    Interpreter interp(module);
    interp.setStepBudget(1000);
    EXPECT_DEATH(interp.call("spin", {}), "step budget");
}

TEST(IrInterpreter, Recursion)
{
    const char *text = R"(
module "rec"
func @fib(i64 %n) -> i64 {
entry:
  %base = cmplt i64 %n, 2
  br %base, small, big
small:
  ret i64 %n
big:
  %n1 = sub i64 %n, 1
  %n2 = sub i64 %n, 2
  %a = call i64 @fib %n1
  %b = call i64 @fib %n2
  %r = add i64 %a, %b
  ret i64 %r
}
)";
    const Module module = parseModule(text);
    Interpreter interp(module);
    EXPECT_EQ(interp.call("fib", {RtValue::ofInt(10)}).asInt(), 55);
}

TEST(CallGraph, EdgesAndReachability)
{
    const Module module = parseModule(kToyModule);
    const CallGraph graph(module);
    EXPECT_TRUE(graph.callees("computeOutput").count("helper"));
    EXPECT_TRUE(graph.callees("computeOutput").count("plain"));
    EXPECT_TRUE(graph.callees("computeOutput").count("T_42"));
    const auto reachable = graph.reachableFrom("computeOutput");
    EXPECT_TRUE(reachable.count("helper"));
    EXPECT_TRUE(reachable.count("computeOutput"));
}

TEST(CallGraph, BottomUpTradeoffAnalysis)
{
    const Module module = parseModule(kToyModule);
    const CallGraph graph(module);
    EXPECT_TRUE(graph.hasDirectTradeoff("computeOutput"));
    EXPECT_FALSE(graph.hasDirectTradeoff("plain"));
    const auto carriers = graph.tradeoffCarriers();
    EXPECT_TRUE(carriers.count("computeOutput"));
    EXPECT_FALSE(carriers.count("plain"));
    EXPECT_FALSE(carriers.count("helper")); // sqrt is a builtin.
}

TEST(CallGraph, TransitiveCarrier)
{
    const char *text = R"(
module "deep"
tradeoff T_1 kind=const placeholder=@T_1 getValue=@T_1 size=@T_1 default=@T_1
func @T_1() -> i64 {
entry:
  ret i64 1
}
func @inner() -> i64 {
entry:
  %v = call i64 @T_1()
  ret i64 %v
}
func @middle() -> i64 {
entry:
  %v = call i64 @inner()
  ret i64 %v
}
func @outer() -> i64 {
entry:
  %v = call i64 @middle()
  ret i64 %v
}
)";
    const CallGraph graph(parseModule(text));
    const auto carriers = graph.tradeoffCarriers();
    EXPECT_TRUE(carriers.count("inner"));
    EXPECT_TRUE(carriers.count("middle"));
    EXPECT_TRUE(carriers.count("outer"));
}


TEST(IrParser, MetadataWithChoicesRoundTrips)
{
    const char *text = R"(
module "meta"
tradeoff T_7 kind=type placeholder=@T_7 getValue=@T_7 size=@T_7 default=@T_7 choices=f64,f32
tradeoff T_8 kind=fn placeholder=@T_8 getValue=@T_8 size=@T_8 default=@T_8 aux=true origin=T_2 choices=a,b,c
statedep SD0 compute=@f aux=@f runtime=true
func @T_7() -> i64 {
entry:
  ret i64 0
}
func @T_8() -> i64 {
entry:
  ret i64 0
}
func @f() -> void {
entry:
  ret
}
)";
    const Module module = parseModule(text);
    ASSERT_EQ(module.tradeoffs.size(), 2u);
    EXPECT_EQ(module.tradeoffs[0].kind, TradeoffKind::DataType);
    ASSERT_EQ(module.tradeoffs[0].nameChoices.size(), 2u);
    EXPECT_EQ(module.tradeoffs[1].kind, TradeoffKind::FunctionChoice);
    EXPECT_TRUE(module.tradeoffs[1].auxClone);
    EXPECT_EQ(module.tradeoffs[1].origin, "T_2");
    EXPECT_TRUE(module.stateDeps[0].runtimeLinked);

    const std::string printed = printModule(module);
    const Module reparsed = parseModule(printed);
    EXPECT_EQ(printModule(reparsed), printed);
    EXPECT_EQ(reparsed.tradeoffs[1].nameChoices,
              module.tradeoffs[1].nameChoices);
}

TEST(IrVerifier, FlagsPhiIncomingPredecessorMismatch)
{
    // A phi's incoming labels must exactly cover the block's CFG
    // predecessors: a missing edge traps at runtime, an extra edge is
    // dead and hides a wiring bug.
    const char *missing = R"(
module "phi_missing"
func @pick(i64 %n) -> i64 {
entry:
  %c = cmplt i64 %n, 10
  br %c, low, high
low:
  jmp join
high:
  jmp join
join:
  %r = phi i64 [1, low]
  ret i64 %r
}
)";
    auto problems = verifyModule(parseModule(missing));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("missing incoming for predecessor "
                               "'high'"),
              std::string::npos);

    const char *extra = R"(
module "phi_extra"
func @pick(i64 %n) -> i64 {
entry:
  jmp join
dead:
  jmp join
join:
  %r = phi i64 [1, entry], [2, dead], [3, join]
  ret i64 %r
}
)";
    problems = verifyModule(parseModule(extra));
    ASSERT_EQ(problems.size(), 1u);
    EXPECT_NE(problems[0].find("incoming for non-predecessor 'join'"),
              std::string::npos);
}

} // namespace
