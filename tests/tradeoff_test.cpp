/**
 * @file
 * Tests for the Tradeoff Interface: value kinds, option ranges, the
 * registry with auxiliary cloning, assignments with default
 * fallback, and the state space.
 */

#include <gtest/gtest.h>

#include "tradeoff/registry.hpp"
#include "tradeoff/state_space.hpp"
#include "tradeoff/tradeoff.hpp"

namespace {

using namespace stats::tradeoff;

TEST(TradeoffValue, KindsAndAccessors)
{
    const auto i = TradeoffValue::integer(7);
    EXPECT_EQ(i.kind(), TradeoffValue::Kind::Integer);
    EXPECT_EQ(i.asInteger(), 7);
    EXPECT_DOUBLE_EQ(i.asReal(), 7.0); // Integers widen to real.

    const auto r = TradeoffValue::real(2.5);
    EXPECT_DOUBLE_EQ(r.asReal(), 2.5);

    const auto t = TradeoffValue::typeName("float");
    EXPECT_EQ(t.asName(), "float");
    EXPECT_EQ(t.toString(), "type:float");

    const auto f = TradeoffValue::functionName("sqrt_fast");
    EXPECT_EQ(f.toString(), "fn:sqrt_fast");

    EXPECT_TRUE(TradeoffValue::integer(3) == TradeoffValue::integer(3));
    EXPECT_FALSE(TradeoffValue::integer(3) == TradeoffValue::real(3.0));
}

TEST(TradeoffOptions, PaperFigure10AnnealingLayers)
{
    // tradeoff TO_numAnnealingLayers: values 1..10, default index 4.
    IntRangeOptions options(/* lo */ 1, /* count */ 10, /* step */ 1,
                            /* default */ 4);
    EXPECT_EQ(options.getMaxIndex(), 10);
    EXPECT_EQ(options.getValue(0).asInteger(), 1);
    EXPECT_EQ(options.getValue(9).asInteger(), 10);
    EXPECT_EQ(options.getDefaultIndex(), 4);
    EXPECT_EQ(options.getValue(options.getDefaultIndex()).asInteger(), 5);
}

TEST(TradeoffOptions, NameListForTypesAndFunctions)
{
    NameListOptions types(TradeoffValue::Kind::TypeName,
                          {"double", "float", "half"}, 0);
    EXPECT_EQ(types.getMaxIndex(), 3);
    EXPECT_EQ(types.getValue(1).asName(), "float");
    EXPECT_EQ(types.getValue(1).kind(), TradeoffValue::Kind::TypeName);

    NameListOptions fns(TradeoffValue::Kind::FunctionName,
                        {"sqrt_exact", "sqrt_newton2", "sqrt_lut"}, 0);
    EXPECT_EQ(fns.getValue(2).kind(),
              TradeoffValue::Kind::FunctionName);
}

TEST(TradeoffOptions, RealList)
{
    RealListOptions options({0.1, 0.5, 0.9}, 1);
    EXPECT_EQ(options.getMaxIndex(), 3);
    EXPECT_DOUBLE_EQ(options.getValue(2).asReal(), 0.9);
    EXPECT_DOUBLE_EQ(
        options.getValue(options.getDefaultIndex()).asReal(), 0.5);
}

TEST(Registry, AddLookupAndDefaults)
{
    Registry registry;
    registry.add("layers",
                 std::make_unique<IntRangeOptions>(1, 10, 1, 4));
    registry.add("precision",
                 std::make_unique<NameListOptions>(
                     TradeoffValue::Kind::TypeName,
                     std::vector<std::string>{"double", "float"}, 0));

    EXPECT_EQ(registry.size(), 2u);
    EXPECT_TRUE(registry.has("layers"));
    EXPECT_FALSE(registry.has("nope"));

    const Assignment defaults = registry.defaults();
    EXPECT_EQ(registry.intValue("layers", defaults), 5);
    EXPECT_EQ(registry.nameValue("precision", defaults), "double");
}

TEST(Registry, AssignmentOverridesAndFallsBack)
{
    Registry registry;
    registry.add("layers",
                 std::make_unique<IntRangeOptions>(1, 10, 1, 4));
    registry.add("particles",
                 std::make_unique<IntRangeOptions>(50, 4, 50, 1));

    Assignment assignment;
    assignment.set("layers", 9);
    // "particles" not mentioned: falls back to default index 1 -> 100.
    EXPECT_EQ(registry.intValue("layers", assignment), 10);
    EXPECT_EQ(registry.intValue("particles", assignment), 100);
}

TEST(Registry, AuxiliaryCloneIsIndependent)
{
    Registry registry;
    registry.add("layers",
                 std::make_unique<IntRangeOptions>(1, 10, 1, 4));
    const Tradeoff &clone = registry.cloneForAuxiliary("layers");

    EXPECT_EQ(clone.name(), "aux::layers");
    EXPECT_TRUE(clone.isAuxClone());
    EXPECT_EQ(clone.origin(), "layers");
    EXPECT_EQ(registry.size(), 2u);
    ASSERT_EQ(registry.auxNames().size(), 1u);
    EXPECT_EQ(registry.auxNames()[0], "aux::layers");

    Assignment assignment;
    assignment.set("aux::layers", 0); // Aux uses 1 layer...
    EXPECT_EQ(registry.intValue("aux::layers", assignment), 1);
    // ...while the original stays at its default of 5.
    EXPECT_EQ(registry.intValue("layers", assignment), 5);
}

TEST(StateSpace, TotalPointsAndDefaults)
{
    StateSpace space;
    space.add("groupSize", 5, 1);
    space.add("auxWindow", 4, 0);
    space.add("aux::layers", 10, 4);
    EXPECT_EQ(space.dimensionCount(), 3u);
    EXPECT_DOUBLE_EQ(space.totalPoints(), 200.0);

    const Configuration config = space.defaultConfiguration();
    EXPECT_TRUE(space.valid(config));
    EXPECT_EQ(space.at(config, "aux::layers"), 4);
}

TEST(StateSpace, ValidationRejectsOutOfRange)
{
    StateSpace space;
    space.add("a", 3);
    space.add("b", 2);
    EXPECT_FALSE(space.valid({0}));
    EXPECT_FALSE(space.valid({3, 0}));
    EXPECT_FALSE(space.valid({0, -1}));
    EXPECT_TRUE(space.valid({2, 1}));
}

TEST(StateSpace, RandomConfigurationsAreValidAndVaried)
{
    StateSpace space;
    space.add("a", 7);
    space.add("b", 13);
    stats::support::Xoshiro256 rng(5);
    bool varied = false;
    Configuration first = space.randomConfiguration(rng);
    for (int i = 0; i < 50; ++i) {
        const Configuration config = space.randomConfiguration(rng);
        EXPECT_TRUE(space.valid(config));
        varied |= config != first;
    }
    EXPECT_TRUE(varied);
}

TEST(StateSpace, SetAndDescribe)
{
    StateSpace space;
    space.add("g", 4);
    Configuration config = space.defaultConfiguration();
    space.set(config, "g", 3);
    EXPECT_EQ(space.at(config, "g"), 3);
    EXPECT_EQ(space.describe(config), "g=3");
}

} // namespace
