/**
 * @file
 * Unit tests of the benchmark kernels themselves: the annealed
 * particle filter tracks, the SPH fluid obeys physical invariants,
 * the Monte-Carlo pricer converges, the online clusterer respects its
 * bounds, and the face tracker locks on — independent of the STATS
 * runtime.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "benchmarks/bodytrack/bodytrack.hpp"
#include "benchmarks/facedet/facedet.hpp"
#include "benchmarks/fluidanimate/fluidanimate.hpp"
#include "benchmarks/streamcluster/streamcluster.hpp"
#include "benchmarks/swaptions/swaptions.hpp"

namespace {

using namespace stats;
using namespace stats::benchmarks;

TEST(BodytrackKernel, FilterTracksTheBody)
{
    using namespace stats::benchmarks::bodytrack;
    const auto workload = makeWorkload(WorkloadKind::Representative, 3);
    const FilterParams params{5, 60, false};
    BodyModel model = makeInitialModel(workload, params);
    support::Xoshiro256 rng(17);

    for (std::size_t f = 0; f < workload.frames.size(); ++f)
        updateModel(model, workload.frames[f], params, rng);

    // The final estimate is near the final true positions (well
    // within the initial cloud's +-1.5 spread).
    const auto estimate = model.estimate();
    const auto &truth = workload.truth.back();
    double err = 0.0;
    for (int part = 0; part < kParts; ++part)
        err += (estimate[static_cast<std::size_t>(part)] -
                truth[static_cast<std::size_t>(part)])
                   .norm();
    EXPECT_LT(err / kParts, 0.4);
}

TEST(BodytrackKernel, MoreLayersTrackBetterOnAverage)
{
    using namespace stats::benchmarks::bodytrack;
    const auto workload = makeWorkload(WorkloadKind::Representative, 5);

    const auto mean_error = [&](int layers, std::uint64_t seed) {
        const FilterParams params{layers, 50, false};
        BodyModel model = makeInitialModel(workload, params);
        support::Xoshiro256 rng(seed);
        double total = 0.0;
        for (std::size_t f = 0; f < workload.frames.size(); ++f) {
            updateModel(model, workload.frames[f], params, rng);
            const auto estimate = model.estimate();
            for (int part = 0; part < kParts; ++part) {
                total += (estimate[static_cast<std::size_t>(part)] -
                          workload.truth[f][static_cast<std::size_t>(
                              part)])
                             .norm();
            }
        }
        return total;
    };

    double shallow = 0.0, deep = 0.0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        shallow += mean_error(1, seed);
        deep += mean_error(8, seed + 100);
    }
    EXPECT_LT(deep, shallow);
}

TEST(BodytrackKernel, DistanceIsAMetricOnEstimates)
{
    using namespace stats::benchmarks::bodytrack;
    const auto workload = makeWorkload(WorkloadKind::Representative, 1);
    const FilterParams params{3, 30, false};
    BodyModel a = makeInitialModel(workload, params);
    BodyModel b = a;
    EXPECT_DOUBLE_EQ(a.distance(b), 0.0);
    support::Xoshiro256 rng(5);
    updateModel(b, workload.frames[0], params, rng);
    EXPECT_GT(a.distance(b), 0.0);
    EXPECT_DOUBLE_EQ(a.distance(b), b.distance(a));
}

TEST(FluidKernel, ParticlesStayInTheBox)
{
    using namespace stats::benchmarks::fluidanimate;
    const auto workload = makeWorkload(WorkloadKind::Representative, 2);
    Fluid fluid = workload.initial;
    const SphParams params;
    support::Xoshiro256 rng(23);
    for (const auto &step : workload.steps)
        advanceFrame(fluid, step, params, rng);
    for (const auto &p : fluid.positions) {
        EXPECT_GE(p.x, 0.0);
        EXPECT_LE(p.x, 1.0);
        EXPECT_GE(p.y, 0.0);
        EXPECT_LE(p.y, 1.0);
        EXPECT_GE(p.z, 0.0);
        EXPECT_LE(p.z, 1.0);
    }
}

TEST(FluidKernel, GravityPullsTheFluidDown)
{
    using namespace stats::benchmarks::fluidanimate;
    const auto workload = makeWorkload(WorkloadKind::Representative, 2);
    Fluid fluid = workload.initial;
    double initial_height = 0.0;
    for (const auto &p : fluid.positions)
        initial_height += p.y;
    const SphParams params;
    support::Xoshiro256 rng(29);
    for (const auto &step : workload.steps)
        advanceFrame(fluid, step, params, rng);
    double final_height = 0.0;
    for (const auto &p : fluid.positions)
        final_height += p.y;
    EXPECT_LT(final_height, initial_height);
}

TEST(FluidKernel, TinyNoiseDivergesSlowlyButSurely)
{
    // The race-condition stand-in: two runs differ, but only a little
    // over this horizon — which is why fluidanimate's Figure 2
    // variability is orders of magnitude below the PRVG benchmarks'.
    using namespace stats::benchmarks::fluidanimate;
    const auto workload = makeWorkload(WorkloadKind::Representative, 2);
    Fluid a = workload.initial;
    Fluid b = workload.initial;
    const SphParams params;
    support::Xoshiro256 ra(1), rb(2);
    for (const auto &step : workload.steps) {
        advanceFrame(a, step, params, ra);
        advanceFrame(b, step, params, rb);
    }
    const double d = a.distance(b);
    EXPECT_GT(d, 0.0);
    EXPECT_LT(d, 1e-4);
}

TEST(SwaptionsKernel, PriceConvergesWithTrials)
{
    using namespace stats::benchmarks::swaptions;
    const auto workload = makeWorkload(WorkloadKind::Representative, 4);
    const auto &terms = workload.terms[0];
    const McParams params;

    // Two independent estimates with many trials agree much better
    // than two with few trials.
    const auto price = [&](int batches, std::uint64_t seed) {
        PriceState state;
        support::Xoshiro256 rng(seed);
        for (int b = 0; b < batches; ++b) {
            Batch batch{0, b, kTrialsPerBatch};
            simulateBatch(state, batch, terms, params, rng);
        }
        return state.sumPayoff / static_cast<double>(state.trials);
    };

    const double few_spread = std::abs(price(1, 1) - price(1, 2));
    double big_spread_total = 0.0, few_spread_total = 0.0;
    for (std::uint64_t s = 0; s < 4; ++s) {
        few_spread_total += std::abs(price(1, 10 + s) - price(1, 20 + s));
        big_spread_total += std::abs(price(64, 30 + s) - price(64, 40 + s));
    }
    (void)few_spread;
    EXPECT_LT(big_spread_total, few_spread_total);
}

TEST(SwaptionsKernel, AccumulatorResetsAcrossSwaptions)
{
    using namespace stats::benchmarks::swaptions;
    const auto workload = makeWorkload(WorkloadKind::Representative, 4);
    PriceState state;
    support::Xoshiro256 rng(7);
    simulateBatch(state, Batch{0, 0, 16}, workload.terms[0],
                  McParams{}, rng);
    EXPECT_EQ(state.swaption, 0);
    EXPECT_EQ(state.trials, 16);
    simulateBatch(state, Batch{1, 0, 16}, workload.terms[1],
                  McParams{}, rng);
    EXPECT_EQ(state.swaption, 1);
    EXPECT_EQ(state.trials, 16); // Fresh accumulator for swaption 1.
}

TEST(StreamclusterKernel, RespectsClusterBounds)
{
    using namespace stats::benchmarks::streamcluster;
    const auto workload = makeWorkload(WorkloadKind::Representative, 6);
    ClusterParams params;
    params.maxClusters = 10;
    params.minClusters = 3;
    Solution solution;
    support::Xoshiro256 rng(31);
    for (const auto &batch : workload.batches) {
        processBatch(solution, batch, params, rng);
        EXPECT_LE(solution.centroids.size(), 10u);
    }
    EXPECT_GE(solution.centroids.size(), 3u);
}

TEST(StreamclusterKernel, SolutionCoversTheData)
{
    using namespace stats::benchmarks::streamcluster;
    const auto workload = makeWorkload(WorkloadKind::Representative, 6);
    ClusterParams params;
    Solution solution;
    support::Xoshiro256 rng(37);
    for (const auto &batch : workload.batches)
        processBatch(solution, batch, params, rng);

    // Every point's nearest centroid is within a few noise sigmas
    // (the mixture's components are separated by ~10).
    for (const auto &point : workload.allPoints)
        EXPECT_LT(std::sqrt(solution.nearestDistance2(point)), 5.0);
}

TEST(StreamclusterKernel, AssignAllLabelsEveryPoint)
{
    using namespace stats::benchmarks::streamcluster;
    const auto workload = makeWorkload(WorkloadKind::Representative, 6);
    ClusterParams params;
    Solution solution;
    support::Xoshiro256 rng(41);
    for (const auto &batch : workload.batches)
        processBatch(solution, batch, params, rng);
    const auto labels = assignAll(workload.allPoints, solution);
    ASSERT_EQ(labels.size(), workload.allPoints.size());
    for (int label : labels) {
        EXPECT_GE(label, 0);
        EXPECT_LT(label,
                  static_cast<int>(solution.centroids.size()));
    }
}

TEST(FacedetKernel, TrackerLocksOntoTheFace)
{
    using namespace stats::benchmarks::facedet;
    const auto workload = makeWorkload(WorkloadKind::Representative, 8);
    const FilterParams params{60, 4, 6.0, false};
    FaceModel model = makeInitialModel(workload, params);
    support::Xoshiro256 rng(43);
    for (const auto &frame : workload.frames)
        updateModel(model, frame, params, rng);
    const double err =
        model.estimate().cornerDistance(workload.truth.back());
    EXPECT_LT(err, 15.0); // Pixels; initial cloud spread is +-200.
}

TEST(FacedetKernel, CornersAreConsistent)
{
    using namespace stats::benchmarks::facedet;
    FaceBox box;
    box.center = {100.0, 50.0};
    box.width = 40.0;
    box.height = 60.0;
    const auto corners = box.corners();
    EXPECT_DOUBLE_EQ(corners[0].x, 80.0);
    EXPECT_DOUBLE_EQ(corners[0].y, 20.0);
    EXPECT_DOUBLE_EQ(corners[2].x, 120.0);
    EXPECT_DOUBLE_EQ(corners[2].y, 80.0);
    EXPECT_DOUBLE_EQ(box.cornerDistance(box), 0.0);
}

} // namespace
