/**
 * @file
 * Tests of the observability layer (docs/OBSERVABILITY.md).
 *
 * Three angles:
 *  - the Trace sink itself (ring-buffer wrap accounting, adjacent
 *    span sequence numbers, the disabled path recording nothing);
 *  - event streams of real engine runs obey the documented ordering
 *    guarantees of the group status machine (no Commit before the
 *    group's BodyEnd; Squash only after a ValidateMismatch) and
 *    reconcile with the engine's own EngineStats counters;
 *  - the schema is closed: every event type is named in
 *    docs/OBSERVABILITY.md and appears in the exporters' output.
 */

#include <algorithm>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sim_executor.hpp"
#include "exec/thread_executor.hpp"
#include "observability/chrome_trace.hpp"
#include "observability/summary.hpp"
#include "observability/trace.hpp"
#include "sdi/matchers.hpp"
#include "sdi/spec_engine.hpp"

namespace {

using namespace stats;
using obs::Event;
using obs::EventType;
using sdi::SpecConfig;

struct ToyState
{
    long long v = 0;
    bool operator==(const ToyState &other) const { return v == other.v; }
};

struct ToyOutput
{
    long long observedPriorState;
    int input;
};

using Engine = sdi::SpecEngine<int, ToyState, ToyOutput>;

/** Noise by (input position, attempt number); default 0. */
class NoiseModel
{
  public:
    void
    set(int input, int attempt, long long noise)
    {
        _noise[{input, attempt}] = noise;
    }

    long long
    next(int input)
    {
        const int attempt = _attempts[input]++;
        auto it = _noise.find({input, attempt});
        return it == _noise.end() ? 0 : it->second;
    }

  private:
    std::map<std::pair<int, int>, long long> _noise;
    std::map<int, int> _attempts;
};

Engine::ComputeFn
makeCompute(std::shared_ptr<NoiseModel> noise)
{
    return [noise](const int &input, ToyState &state,
                   const sdi::ComputeContext &ctx) -> Engine::Invocation {
        auto out = std::make_unique<ToyOutput>();
        out->observedPriorState = state.v;
        out->input = input;
        const long long n =
            (!ctx.auxiliary && noise) ? noise->next(input) : 0;
        state.v = static_cast<long long>(input) * 10 + n;
        return {std::move(out), exec::Work{0.001, 0.0}};
    };
}

Engine::MatchFn
exactAnyMatcher()
{
    return [](const ToyState &spec,
              const std::vector<ToyState> &originals) -> int {
        for (std::size_t i = 0; i < originals.size(); ++i) {
            if (originals[i] == spec)
                return static_cast<int>(i);
        }
        return -1;
    };
}

std::vector<int>
makeInputs(int n)
{
    std::vector<int> inputs;
    for (int i = 1; i <= n; ++i)
        inputs.push_back(i);
    return inputs;
}

sim::MachineConfig
simMachine()
{
    sim::MachineConfig config;
    config.dispatchOverhead = 0.0;
    return config;
}

/**
 * Fixture: a clean, enabled trace per test. Tests that need the
 * disabled path call disable() themselves.
 */
class ObsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        if (!STATS_OBS_ENABLED)
            GTEST_SKIP() << "tracing compiled out (STATS_OBS_DISABLE)";
        obs::Trace::global().disable();
        obs::Trace::global().clear();
        obs::Trace::global().enable();
    }

    void
    TearDown() override
    {
        obs::Trace::global().disable();
        obs::Trace::global().clear();
    }
};

/** Run the toy engine on the simulator and return (events, stats). */
std::pair<std::vector<Event>, sdi::EngineStats>
tracedRun(const std::vector<int> &inputs, const SpecConfig &config,
          Engine::MatchFn matcher,
          std::shared_ptr<NoiseModel> noise = nullptr)
{
    exec::SimExecutor ex(simMachine(), 8);
    Engine engine(ex, inputs, ToyState{}, makeCompute(noise),
                  makeCompute(nullptr), std::move(matcher), config);
    engine.start();
    engine.join();
    return {obs::Trace::global().collect(), engine.stats()};
}

std::int64_t
countType(const std::vector<Event> &events, EventType type)
{
    return std::count_if(events.begin(), events.end(),
                         [type](const Event &e) { return e.type == type; });
}

// ---------------------------------------------------------------- sink

TEST_F(ObsTest, RecordsNothingWhileDisabled)
{
    obs::Trace::global().disable();
    const auto [events, stats] = tracedRun(
        makeInputs(20),
        [] {
            SpecConfig config;
            config.groupSize = 4;
            config.auxWindow = 1;
            return config;
        }(),
        exactAnyMatcher());
    EXPECT_GT(stats.groups, 0);
    EXPECT_TRUE(events.empty());
    EXPECT_EQ(obs::Trace::global().dropped(), 0u);
}

TEST_F(ObsTest, RingBufferKeepsNewestEventsAndCountsDrops)
{
    auto &trace = obs::Trace::global();
    trace.disable();
    trace.clear();
    trace.enable(/* per_thread_capacity */ 16); // The floor capacity.
    for (int i = 0; i < 40; ++i)
        trace.record(EventType::Commit, i, i, i + 1, 0.1 * i,
                     obs::kFrontierTrack, 0);
    const auto events = trace.collect();
    ASSERT_EQ(events.size(), 16u);
    EXPECT_EQ(trace.dropped(), 24u);
    // The survivors are the newest 16, in seq order.
    for (std::size_t i = 1; i < events.size(); ++i)
        EXPECT_LT(events[i - 1].seq, events[i].seq);
    EXPECT_EQ(events.back().group, 39);
    EXPECT_EQ(events.front().group, 24);
}

TEST_F(ObsTest, SpanPairsGetAdjacentSequenceNumbers)
{
    auto &trace = obs::Trace::global();
    obs::TaskTag tag;
    tag.kind = obs::TaskKind::Body;
    tag.group = 3;
    tag.inputBegin = 12;
    tag.inputEnd = 16;
    trace.recordSpan(tag, 1.0, 2.0, /* track */ 0);
    const auto events = trace.collect();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].type, EventType::BodyStart);
    EXPECT_EQ(events[1].type, EventType::BodyEnd);
    EXPECT_EQ(events[0].seq + 1, events[1].seq);
    EXPECT_EQ(events[0].ts, 1.0);
    EXPECT_EQ(events[1].ts, 2.0);
    EXPECT_EQ(events[0].group, 3);
    EXPECT_EQ(events[1].inputEnd, 16);
}

TEST_F(ObsTest, ClearResetsEventsAndDropCounter)
{
    auto &trace = obs::Trace::global();
    trace.record(EventType::Commit, 0, 0, 1, 0.0, obs::kFrontierTrack,
                 0);
    ASSERT_EQ(trace.collect().size(), 1u);
    trace.clear();
    EXPECT_TRUE(trace.collect().empty());
    EXPECT_EQ(trace.dropped(), 0u);
    // Recording still works after a clear (new epoch, new sinks).
    trace.record(EventType::Commit, 1, 1, 2, 0.0, obs::kFrontierTrack,
                 0);
    EXPECT_EQ(trace.collect().size(), 1u);
}

// ------------------------------------------------- ordering guarantees

TEST_F(ObsTest, CleanRunOrderingFollowsTheStatusMachine)
{
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.sdThreads = 8;
    const auto [events, stats] =
        tracedRun(makeInputs(20), config, exactAnyMatcher());
    ASSERT_EQ(stats.aborts, 0);

    // Collected order is seq order.
    for (std::size_t i = 1; i < events.size(); ++i)
        ASSERT_LT(events[i - 1].seq, events[i].seq);

    std::map<std::int32_t, std::uint64_t> body_end, aux_end, commit,
        validate;
    for (const auto &event : events) {
        switch (event.type) {
        case EventType::BodyEnd:
            body_end[event.group] = event.seq;
            break;
        case EventType::AuxEnd:
            aux_end[event.group] = event.seq;
            break;
        case EventType::Commit:
            ASSERT_EQ(commit.count(event.group), 0u)
                << "group committed twice";
            commit[event.group] = event.seq;
            break;
        case EventType::ValidateMatch:
            validate[event.group] = event.seq;
            break;
        default:
            break;
        }
    }

    // Every group committed exactly once, and only after its body
    // finished: a Commit instant is emitted from the completion
    // callback that *follows* the recorded BodyEnd.
    EXPECT_EQ(static_cast<std::int64_t>(commit.size()), stats.groups);
    for (const auto &[group, seq] : commit) {
        ASSERT_TRUE(body_end.count(group)) << "group " << group;
        EXPECT_LT(body_end[group], seq) << "group " << group;
    }

    // Speculative groups validate after their auxiliary run and
    // before their commit.
    EXPECT_EQ(static_cast<std::int64_t>(validate.size()),
              stats.validations);
    for (const auto &[group, seq] : validate) {
        ASSERT_TRUE(aux_end.count(group)) << "group " << group;
        EXPECT_LT(aux_end[group], seq) << "group " << group;
        ASSERT_TRUE(commit.count(group)) << "group " << group;
        EXPECT_LT(seq, commit[group]) << "group " << group;
    }

    // Commits advance the frontier in group order, each immediately
    // followed by its FrontierAdvance instant.
    std::int32_t last_committed = -1;
    for (const auto &event : events) {
        if (event.type != EventType::Commit)
            continue;
        EXPECT_EQ(event.group, last_committed + 1);
        last_committed = event.group;
    }
    EXPECT_EQ(countType(events, EventType::FrontierAdvance),
              stats.groups);
}

TEST_F(ObsTest, SquashImpliesAPriorValidateMismatch)
{
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.maxReexecutions = 0;
    const auto [events, stats] =
        tracedRun(makeInputs(17), config, sdi::neverMatch<ToyState>());
    ASSERT_EQ(stats.aborts, 1);

    const auto first_mismatch = std::find_if(
        events.begin(), events.end(), [](const Event &e) {
            return e.type == EventType::ValidateMismatch;
        });
    ASSERT_NE(first_mismatch, events.end());

    const auto squashes = countType(events, EventType::Squash);
    EXPECT_EQ(squashes, stats.squashedGroups);
    EXPECT_GT(squashes, 0);
    for (const auto &event : events) {
        if (event.type == EventType::Squash ||
            event.type == EventType::Abort) {
            EXPECT_GT(event.seq, first_mismatch->seq);
        }
    }

    // Recovery reprocesses the squashed inputs sequentially, after
    // the abort.
    const auto abort_it = std::find_if(
        events.begin(), events.end(),
        [](const Event &e) { return e.type == EventType::Abort; });
    ASSERT_NE(abort_it, events.end());
    const auto recovery = std::find_if(
        events.begin(), events.end(), [](const Event &e) {
            return e.type == EventType::RecoveryStart;
        });
    ASSERT_NE(recovery, events.end());
    EXPECT_GT(recovery->seq, abort_it->seq);
    EXPECT_EQ(recovery->inputEnd, 17);
}

TEST_F(ObsTest, ReexecutionEmitsRollbackThenReexecSpan)
{
    auto noise = std::make_shared<NoiseModel>();
    noise->set(/* input */ 4, /* attempt */ 0, /* noise */ 7);
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.rollbackDepth = 1;
    config.maxReexecutions = 2;
    const auto [events, stats] =
        tracedRun(makeInputs(12), config, exactAnyMatcher(), noise);
    ASSERT_EQ(stats.mismatches, 1);
    ASSERT_EQ(stats.reexecutions, 1);

    // ValidateMismatch -> Rollback -> ReExecStart/End -> the
    // consumer's ValidateMatch, all in seq order.
    std::uint64_t mismatch_seq = 0, rollback_seq = 0, reexec_seq = 0;
    for (const auto &event : events) {
        if (event.type == EventType::ValidateMismatch)
            mismatch_seq = event.seq;
        if (event.type == EventType::Rollback)
            rollback_seq = event.seq;
        if (event.type == EventType::ReExecStart)
            reexec_seq = event.seq;
    }
    ASSERT_GT(mismatch_seq, 0u);
    EXPECT_GT(rollback_seq, mismatch_seq);
    EXPECT_GT(reexec_seq, rollback_seq);
    EXPECT_EQ(countType(events, EventType::ReExecEnd), 1);
}

// --------------------------------------------------- reconciliation

TEST_F(ObsTest, SummaryReconcilesWithEngineStats)
{
    auto noise = std::make_shared<NoiseModel>();
    noise->set(4, 0, 7);
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.rollbackDepth = 1;
    config.maxReexecutions = 2;
    const auto [events, stats] =
        tracedRun(makeInputs(12), config, exactAnyMatcher(), noise);

    const auto summary = obs::summarizeTrace(events);
    EXPECT_EQ(summary.count(EventType::ValidateMatch),
              stats.validations);
    EXPECT_EQ(summary.count(EventType::ValidateMismatch),
              stats.mismatches);
    EXPECT_EQ(summary.count(EventType::ReExecStart),
              stats.reexecutions);
    EXPECT_EQ(summary.count(EventType::Rollback), stats.reexecutions);
    EXPECT_EQ(summary.count(EventType::Abort), stats.aborts);
    EXPECT_EQ(summary.count(EventType::Squash), stats.squashedGroups);
    // No abort: every group commits.
    EXPECT_EQ(summary.count(EventType::Commit), stats.groups);
    EXPECT_EQ(summary.count(EventType::AuxStart), stats.auxTasks);
    EXPECT_EQ(summary.groupsSeen, stats.groups);
    EXPECT_DOUBLE_EQ(summary.commitRate, 1.0);
    EXPECT_GT(summary.auxSeconds, 0.0);
    EXPECT_GT(summary.bodySeconds, 0.0);
    EXPECT_GT(summary.reexecSeconds, 0.0);
}

TEST_F(ObsTest, AbortRunSummaryCountsSquashedGroups)
{
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.maxReexecutions = 0;
    const auto [events, stats] =
        tracedRun(makeInputs(17), config, sdi::neverMatch<ToyState>());
    const auto summary = obs::summarizeTrace(events);
    EXPECT_EQ(summary.count(EventType::Abort), stats.aborts);
    EXPECT_EQ(summary.count(EventType::Squash), stats.squashedGroups);
    EXPECT_EQ(summary.count(EventType::Commit) +
                  summary.count(EventType::Squash),
              stats.groups);
    EXPECT_GT(summary.squashRate, 0.0);
    EXPECT_GT(summary.recoverySeconds, 0.0);
}

TEST_F(ObsTest, ThreadExecutorRunProducesAConsistentTrace)
{
    exec::ThreadExecutor ex(4);
    SpecConfig config;
    config.groupSize = 5;
    config.auxWindow = 1;
    config.sdThreads = 4;
    const auto inputs = makeInputs(30);
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr),
                  makeCompute(nullptr), exactAnyMatcher(), config);
    engine.start();
    engine.join();
    const auto events = obs::Trace::global().collect();
    const auto summary = obs::summarizeTrace(events);
    EXPECT_EQ(summary.count(EventType::Commit), engine.stats().groups);
    EXPECT_EQ(summary.count(EventType::ValidateMatch),
              engine.stats().validations);
    // Worker threads registered real (non-frontier) tracks.
    bool saw_worker_track = false;
    for (const auto &event : events)
        saw_worker_track |= event.track >= 0;
    EXPECT_TRUE(saw_worker_track);
}

// ------------------------------------------------- schema and exports

TEST(ObservabilitySchema, EveryEventTypeHasAUniqueName)
{
    std::vector<std::string> names;
    for (int i = 0; i < obs::kEventTypeCount; ++i)
        names.push_back(
            obs::eventTypeName(static_cast<EventType>(i)));
    auto sorted = names;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end());
    for (const auto &name : names)
        EXPECT_FALSE(name.empty());
}

TEST(ObservabilitySchema, DocumentationCoversEveryEventType)
{
    const std::string path =
        std::string(STATS_SOURCE_DIR) + "/docs/OBSERVABILITY.md";
    std::ifstream in(path);
    ASSERT_TRUE(in) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string doc = buffer.str();
    for (int i = 0; i < obs::kEventTypeCount; ++i) {
        const std::string name =
            obs::eventTypeName(static_cast<EventType>(i));
        EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
            << "docs/OBSERVABILITY.md does not document event type "
            << name;
    }
    EXPECT_NE(doc.find("schemaVersion"), std::string::npos);
}

TEST_F(ObsTest, ChromeExportPairsSpansAndNamesTracks)
{
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.sdThreads = 8;
    const auto [events, stats] =
        tracedRun(makeInputs(20), config, exactAnyMatcher());
    std::ostringstream out;
    obs::writeChromeTrace(out, events);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("frontier"), std::string::npos);
    EXPECT_NE(json.find("exec 0"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    // Spans became one complete event each: no dangling Start halves.
    EXPECT_EQ(json.find("BodyStart"), std::string::npos);

    // The metrics document carries the same commit count the chrome
    // instants show (the acceptance cross-check).
    std::ostringstream metrics;
    obs::writeSummaryJson(metrics, obs::summarizeTrace(events));
    std::ostringstream commits;
    commits << "\"Commit\": " << stats.groups;
    EXPECT_NE(metrics.str().find(commits.str()), std::string::npos);
}

} // namespace
