/**
 * @file
 * Tests of the STATS speculation engine (paper section 3.1).
 *
 * A deterministic toy state dependence drives every path of the
 * execution model: speculative commits, mismatch + producer
 * re-execution with tail-output replacement, re-execution exhaustion
 * with squash-and-sequential-restart, the conventional path, and the
 * full-history pattern (fluidanimate-like) whose auxiliary code can
 * never match.
 *
 * Toy semantics: the state is the value of the *last* input processed
 * (short memory, so auxiliary code with window k >= 1 reproduces it),
 * plus optional per-(position, attempt) noise injected to emulate
 * nondeterminism. Each invocation's output records the prior state,
 * so any incorrect state chaining shows up in the outputs.
 */

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sim_executor.hpp"
#include "exec/thread_executor.hpp"
#include "observability/metrics.hpp"
#include "sdi/matchers.hpp"
#include "sdi/spec_engine.hpp"

namespace {

using namespace stats;
using sdi::SpecConfig;

struct ToyState
{
    long long v = 0;
    bool operator==(const ToyState &other) const { return v == other.v; }
};

struct ToyOutput
{
    long long observedPriorState;
    int input;
};

using Engine = sdi::SpecEngine<int, ToyState, ToyOutput>;

/** Noise by (input position, attempt number); default 0. */
class NoiseModel
{
  public:
    void
    set(int input, int attempt, long long noise)
    {
        _noise[{input, attempt}] = noise;
    }

    /** Consume the next attempt's noise for this input. */
    long long
    next(int input)
    {
        const int attempt = _attempts[input]++;
        auto it = _noise.find({input, attempt});
        return it == _noise.end() ? 0 : it->second;
    }

  private:
    std::map<std::pair<int, int>, long long> _noise;
    std::map<int, int> _attempts;
};

/** Original compute: may be noisy. Output records the prior state. */
Engine::ComputeFn
makeCompute(std::shared_ptr<NoiseModel> noise)
{
    return [noise](const int &input, ToyState &state,
                   const sdi::ComputeContext &ctx) -> Engine::Invocation {
        auto out = std::make_unique<ToyOutput>();
        out->observedPriorState = state.v;
        out->input = input;
        const long long n =
            (!ctx.auxiliary && noise) ? noise->next(input) : 0;
        state.v = static_cast<long long>(input) * 10 + n;
        return {std::move(out), exec::Work{0.001, 0.0}};
    };
}

/** Auxiliary compute: noise-free clone (its own tradeoff settings). */
Engine::ComputeFn
makeAux()
{
    return makeCompute(nullptr);
}

/** Exact-equality matcher over the whole original set. */
Engine::MatchFn
exactAnyMatcher()
{
    return [](const ToyState &spec,
              const std::vector<ToyState> &originals) -> int {
        for (std::size_t i = 0; i < originals.size(); ++i) {
            if (originals[i] == spec)
                return static_cast<int>(i);
        }
        return -1;
    };
}

std::vector<int>
makeInputs(int n)
{
    std::vector<int> inputs;
    for (int i = 1; i <= n; ++i)
        inputs.push_back(i);
    return inputs;
}

/** Noise-free sequential reference. */
std::vector<ToyOutput>
reference(const std::vector<int> &inputs)
{
    std::vector<ToyOutput> out;
    ToyState state;
    for (int input : inputs) {
        out.push_back({state.v, input});
        state.v = static_cast<long long>(input) * 10;
    }
    return out;
}

void
expectOutputsEqual(const std::vector<std::unique_ptr<ToyOutput>> &got,
                   const std::vector<ToyOutput> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i]->observedPriorState, want[i].observedPriorState)
            << "at position " << i;
        EXPECT_EQ(got[i]->input, want[i].input) << "at position " << i;
    }
}

sim::MachineConfig
simMachine()
{
    sim::MachineConfig config;
    config.dispatchOverhead = 0.0;
    return config;
}

TEST(SpecEngine, SpeculativeRunMatchesSequentialReference)
{
    const auto inputs = makeInputs(20);
    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.sdThreads = 8;
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr), makeAux(),
                  exactAnyMatcher(), config);
    engine.start();
    engine.join();

    expectOutputsEqual(engine.outputs(), reference(inputs));
    EXPECT_EQ(engine.stats().groups, 5);
    EXPECT_EQ(engine.stats().validations, 4);
    EXPECT_EQ(engine.stats().mismatches, 0);
    EXPECT_EQ(engine.stats().aborts, 0);
}

TEST(SpecEngine, SpeculationIsFasterThanSequentialInVirtualTime)
{
    const auto inputs = makeInputs(64);
    double sequential_time = 0.0;
    {
        exec::SimExecutor ex(simMachine(), 8);
        SpecConfig config;
        config.useAuxiliary = false;
        Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr),
                      makeAux(), exactAnyMatcher(), config);
        engine.start();
        engine.join();
        sequential_time = ex.now();
    }
    double speculative_time = 0.0;
    {
        exec::SimExecutor ex(simMachine(), 8);
        SpecConfig config;
        config.groupSize = 8;
        config.auxWindow = 1;
        config.sdThreads = 8;
        Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr),
                      makeAux(), exactAnyMatcher(), config);
        engine.start();
        engine.join();
        speculative_time = ex.now();
    }
    // 8 groups of 8 inputs, each group preceded by a 1-input auxiliary
    // warmup: near-8x parallelism on this toy.
    EXPECT_LT(speculative_time, sequential_time / 4.0);
}

TEST(SpecEngine, NeverMatchingSpeculationAbortsAndRecovers)
{
    const auto inputs = makeInputs(17);
    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.maxReexecutions = 0;
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr), makeAux(),
                  sdi::neverMatch<ToyState>(), config);
    engine.start();
    engine.join();

    expectOutputsEqual(engine.outputs(), reference(inputs));
    EXPECT_EQ(engine.stats().aborts, 1);
    EXPECT_EQ(engine.stats().validations, 0);
    EXPECT_GT(engine.stats().squashedGroups, 0);
    // Groups after the first are all reprocessed sequentially.
    EXPECT_EQ(engine.stats().sequentialInputs, 17 - 4);
}

TEST(SpecEngine, ReexecutionRecoversFromOneMismatch)
{
    const auto inputs = makeInputs(12);
    auto noise = std::make_shared<NoiseModel>();
    // The last input of group 0 (input 4) is noisy on its first
    // attempt only: the first final state mismatches the speculative
    // state, the re-execution's matches.
    noise->set(/* input */ 4, /* attempt */ 0, /* noise */ 7);

    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.rollbackDepth = 1;
    config.maxReexecutions = 2;
    Engine engine(ex, inputs, ToyState{}, makeCompute(noise), makeAux(),
                  exactAnyMatcher(), config);
    engine.start();
    engine.join();

    // The re-execution's tail outputs replace the first attempt's, so
    // the final output stream is the noise-free reference.
    expectOutputsEqual(engine.outputs(), reference(inputs));
    EXPECT_EQ(engine.stats().mismatches, 1);
    EXPECT_EQ(engine.stats().reexecutions, 1);
    EXPECT_EQ(engine.stats().validations, 2);
    EXPECT_EQ(engine.stats().aborts, 0);
}

TEST(SpecEngine, PersistentMismatchExhaustsReexecutionsAndAborts)
{
    const auto inputs = makeInputs(12);
    auto noise = std::make_shared<NoiseModel>();
    for (int attempt = 0; attempt < 8; ++attempt)
        noise->set(4, attempt, 7); // Input 4 is always noisy.

    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.rollbackDepth = 1;
    config.maxReexecutions = 2;
    Engine engine(ex, inputs, ToyState{}, makeCompute(noise), makeAux(),
                  exactAnyMatcher(), config);
    engine.start();
    engine.join();

    EXPECT_EQ(engine.stats().reexecutions, 2);
    EXPECT_EQ(engine.stats().aborts, 1);

    // Recovery restarts from the first original state: input 4's
    // state keeps its attempt-0 noise, and the output at position 4
    // observes it.
    auto want = reference(inputs);
    want[4].observedPriorState = 4 * 10 + 7;
    expectOutputsEqual(engine.outputs(), want);
}

TEST(SpecEngine, FullHistoryStateNeverMatchesAndStaysCorrect)
{
    // fluidanimate-like: the state depends on *all* previous inputs,
    // so auxiliary code starting from the initial state cannot
    // reproduce it (paper section 4.8). The hash chain wraps, so step
    // it in unsigned arithmetic.
    const auto inputs = makeInputs(16);
    auto step = [](long long v, int input) {
        return (long long)((unsigned long long)v * 31u +
                           (unsigned long long)input);
    };
    auto compute = [step](const int &input, ToyState &state,
                          const sdi::ComputeContext &) -> Engine::Invocation {
        auto out = std::make_unique<ToyOutput>();
        out->observedPriorState = state.v;
        out->input = input;
        state.v = step(state.v, input);
        return {std::move(out), exec::Work{0.001, 0.0}};
    };

    std::vector<ToyOutput> want;
    {
        ToyState state;
        for (int input : inputs) {
            want.push_back({state.v, input});
            state.v = step(state.v, input);
        }
    }

    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 2;
    config.maxReexecutions = 1;
    Engine engine(ex, inputs, ToyState{}, compute, compute,
                  exactAnyMatcher(), config);
    engine.start();
    engine.join();

    expectOutputsEqual(engine.outputs(), want);
    EXPECT_EQ(engine.stats().aborts, 1);
    EXPECT_EQ(engine.stats().validations, 0);
}

TEST(SpecEngine, ConventionalPathWhenAuxiliaryDisabled)
{
    const auto inputs = makeInputs(10);
    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.useAuxiliary = false;
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr), makeAux(),
                  exactAnyMatcher(), config);
    engine.start();
    engine.join();
    expectOutputsEqual(engine.outputs(), reference(inputs));
    EXPECT_EQ(engine.stats().groups, 0);
    EXPECT_EQ(engine.stats().auxTasks, 0);
}

TEST(SpecEngine, SingleGroupFallsBackToConventional)
{
    const auto inputs = makeInputs(3);
    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = 8; // Larger than the input count.
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr), makeAux(),
                  exactAnyMatcher(), config);
    engine.start();
    engine.join();
    expectOutputsEqual(engine.outputs(), reference(inputs));
    EXPECT_EQ(engine.stats().groups, 0);
}

TEST(SpecEngine, ValidByConstructionWithoutMatcher)
{
    const auto inputs = makeInputs(20);
    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = 5;
    config.auxWindow = 1;
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr), makeAux(),
                  /* match */ nullptr, config);
    engine.start();
    engine.join();
    expectOutputsEqual(engine.outputs(), reference(inputs));
    EXPECT_EQ(engine.stats().validations, 3);
}

/** Correctness sweep across group size / window / concurrency. */
class SpecEngineSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
};

TEST_P(SpecEngineSweep, OutputsAlwaysMatchReference)
{
    const auto [n, group_size, aux_window, sd_threads] = GetParam();
    const auto inputs = makeInputs(n);
    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = group_size;
    config.auxWindow = aux_window;
    config.sdThreads = sd_threads;
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr), makeAux(),
                  exactAnyMatcher(), config);
    engine.start();
    engine.join();
    expectOutputsEqual(engine.outputs(), reference(inputs));
    if (aux_window >= 1) {
        EXPECT_EQ(engine.stats().aborts, 0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpecEngineSweep,
    ::testing::Combine(::testing::Values(1, 7, 24, 37),
                       ::testing::Values(1, 3, 8),
                       ::testing::Values(0, 1, 4),
                       ::testing::Values(1, 2, 16)));

TEST(SpecEngine, PublishesArenaMetricsAtJoin)
{
    // join() exports the arena allocation profile to the global
    // metrics registry (docs/OBSERVABILITY.md §3). The registry is
    // cumulative across tests, so assert on deltas and bounds.
    auto &registry = obs::MetricsRegistry::global();
    const std::int64_t recordsBefore =
        registry.counter("engine.arena.records").value();
    const auto inputs = makeInputs(40);
    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.sdThreads = 8;
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr), makeAux(),
                  exactAnyMatcher(), config);
    engine.start();
    engine.join();
    expectOutputsEqual(engine.outputs(), reference(inputs));

    EXPECT_GT(registry.counter("engine.arena.records").value(),
              recordsBefore)
        << "join() must publish the arena's record count";
    const obs::Gauge *perTask =
        registry.findGauge("engine.arena.allocations_per_task");
    ASSERT_NE(perTask, nullptr);
    // Heap allocations charged per task record: a handful of block
    // refills amortized over every window task, far below one.
    EXPECT_GE(perTask->value(), 0.0);
    EXPECT_LT(perTask->value(), 1.0);
    const obs::Gauge *perCommit =
        registry.findGauge("engine.arena.bytes_per_commit");
    ASSERT_NE(perCommit, nullptr);
    EXPECT_GT(perCommit->value(), 0.0);
}

TEST(SpecEngine, RunsOnRealThreads)
{
    const auto inputs = makeInputs(30);
    exec::ThreadExecutor ex(4);
    SpecConfig config;
    config.groupSize = 5;
    config.auxWindow = 1;
    config.sdThreads = 4;
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr), makeAux(),
                  exactAnyMatcher(), config);
    engine.start();
    engine.join();
    expectOutputsEqual(engine.outputs(), reference(inputs));
    EXPECT_EQ(engine.stats().aborts, 0);
}

TEST(SpecEngine, RealThreadsWithAbort)
{
    const auto inputs = makeInputs(30);
    exec::ThreadExecutor ex(4);
    SpecConfig config;
    config.groupSize = 5;
    config.auxWindow = 1;
    config.maxReexecutions = 1;
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr), makeAux(),
                  sdi::neverMatch<ToyState>(), config);
    engine.start();
    engine.join();
    expectOutputsEqual(engine.outputs(), reference(inputs));
    EXPECT_EQ(engine.stats().aborts, 1);
}

TEST(SpecEngine, MultipleDependencesShareOneExecutor)
{
    // The paper's runtime shares one thread pool among all state
    // dependences (section 3.4): two engines interleave their tasks
    // on the same executor without interference.
    const auto inputs_a = makeInputs(20);
    const auto inputs_b = makeInputs(32);
    exec::SimExecutor ex(simMachine(), 8);
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;

    Engine engine_a(ex, inputs_a, ToyState{}, makeCompute(nullptr),
                    makeAux(), exactAnyMatcher(), config);
    Engine engine_b(ex, inputs_b, ToyState{}, makeCompute(nullptr),
                    makeAux(), exactAnyMatcher(), config);
    engine_a.start();
    engine_b.start();
    engine_a.join();
    engine_b.join();

    expectOutputsEqual(engine_a.outputs(), reference(inputs_a));
    expectOutputsEqual(engine_b.outputs(), reference(inputs_b));
    EXPECT_EQ(engine_a.stats().aborts, 0);
    EXPECT_EQ(engine_b.stats().aborts, 0);
}

TEST(SpecEngine, SharedRealThreadPool)
{
    const auto inputs_a = makeInputs(15);
    const auto inputs_b = makeInputs(25);
    exec::ThreadExecutor ex(4);
    SpecConfig config;
    config.groupSize = 5;
    config.auxWindow = 1;

    Engine engine_a(ex, inputs_a, ToyState{}, makeCompute(nullptr),
                    makeAux(), exactAnyMatcher(), config);
    Engine engine_b(ex, inputs_b, ToyState{}, makeCompute(nullptr),
                    makeAux(), exactAnyMatcher(), config);
    engine_a.start();
    engine_b.start();
    engine_b.join();
    engine_a.join();

    expectOutputsEqual(engine_a.outputs(), reference(inputs_a));
    expectOutputsEqual(engine_b.outputs(), reference(inputs_b));
}

} // namespace
