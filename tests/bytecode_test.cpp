/**
 * @file
 * Tests of the bytecode execution tier (src/ir/bytecode.cpp, vm.cpp,
 * exec_tier.cpp; docs/INTERPRETER.md): compiler lowering, exact
 * equivalence with the AST walker on the semantics corners (wrapping,
 * saturation, F32 rounding, phi swaps, select), superinstruction
 * fusion, the batched SoA mode, tier selection, and the
 * docs-lockstep check that pins the opcode and superinstruction
 * tables in docs/INTERPRETER.md to the X-macro definitions.
 */

#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ir/bytecode.hpp"
#include "ir/disasm.hpp"
#include "ir/exec_tier.hpp"
#include "ir/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "ir/vm.hpp"

namespace {

using namespace stats;
using ir::RtValue;

ir::Module
parse(const std::string &text)
{
    ir::Module module = ir::parseModule(text);
    const auto problems = ir::verifyModule(module);
    EXPECT_TRUE(problems.empty())
        << (problems.empty() ? "" : problems.front());
    return module;
}

/** Both tiers on the same call; expect identical tagged bits. */
void
expectTiersAgree(const ir::Module &module, const std::string &fn,
                 const std::vector<RtValue> &args)
{
    ir::Interpreter interp(module);
    ir::ExecutableModule exec(module, ir::ExecTier::Bytecode);
    const RtValue expected = interp.call(fn, args);
    const RtValue got = exec.call(fn, args);
    EXPECT_EQ(ir::isFloating(expected.type), ir::isFloating(got.type))
        << fn;
    if (ir::isFloating(expected.type)) {
        // Bit-exact, NaN-tolerant comparison.
        std::uint64_t eb, gb;
        std::memcpy(&eb, &expected.f, 8);
        std::memcpy(&gb, &got.f, 8);
        EXPECT_EQ(eb, gb) << fn << ": " << expected.f << " vs " << got.f;
    } else {
        EXPECT_EQ(expected.i, got.i) << fn;
    }
}

TEST(BytecodeCompiler, CompilesTheExampleModules)
{
    for (const char *name : {"loop_phi", "pipeline", "aux_cloned"}) {
        std::ifstream in(std::string(STATS_SOURCE_DIR) +
                         "/examples/ir/" + name + ".ir");
        ASSERT_TRUE(in.is_open()) << name;
        std::ostringstream buffer;
        buffer << in.rdbuf();
        const ir::Module module = parse(buffer.str());
        const ir::bc::BcModule bc = ir::bc::compileModule(module);
        EXPECT_EQ(bc.compiledCount(), module.functions.size()) << name;
    }
}

TEST(BytecodeCompiler, IntegerSemanticsMatchTheWalkerExactly)
{
    const ir::Module module = parse(R"(module "ints"
func @arith(i64 %a, i64 %b) -> i64 {
entry:
  %s = add i64 %a, %b
  %d = sub i64 %s, %b
  %m = mul i64 %d, %a
  %q = div i64 %m, %b
  ret i64 %q
}
)");
    const std::int64_t min = std::numeric_limits<std::int64_t>::min();
    const std::int64_t max = std::numeric_limits<std::int64_t>::max();
    for (const auto &[a, b] :
         std::vector<std::pair<std::int64_t, std::int64_t>>{
             {7, 3},
             {max, 1},       // add wraps
             {min, -1},      // MIN/-1 wraps back to MIN
             {max, max},     // mul wraps
             {-9, 2},        // C++ truncating division
             {min, 17}}) {
        expectTiersAgree(module, "arith",
                         {RtValue::ofInt(a), RtValue::ofInt(b)});
    }
}

TEST(BytecodeCompiler, SaturatingCastAndFloatClassing)
{
    const ir::Module module = parse(R"(module "casts"
func @roundtrip(f64 %x) -> i64 {
entry:
  %i = cast i64 %x
  %back = cast f64 %i
  %sum = add f64 %back, %x
  %r = cast i64 %sum
  ret i64 %r
}
)");
    for (double x :
         {0.5, -7.25, 9.3e18, -9.3e18, 1e300, -1e300,
          std::numeric_limits<double>::quiet_NaN(),
          std::numeric_limits<double>::infinity()}) {
        expectTiersAgree(module, "roundtrip", {RtValue::ofFloat(x)});
    }
}

TEST(BytecodeCompiler, F32ArithmeticRoundsLikeTheWalker)
{
    const ir::Module module = parse(R"(module "f32"
func @narrow(f64 %x, f64 %y) -> f32 {
entry:
  %a = add f32 %x, %y
  %m = mul f32 %a, %x
  %d = div f32 %m, %y
  ret f32 %d
}
)");
    for (const auto &[x, y] : std::vector<std::pair<double, double>>{
             {1.1, 3.7}, {1e30, 1e-30}, {1.0000001, 1.0000002}}) {
        expectTiersAgree(module, "narrow",
                         {RtValue::ofFloat(x), RtValue::ofFloat(y)});
    }
}

TEST(BytecodeCompiler, PhiSwapNeedsTheParallelCopyCycleBreaker)
{
    // Classic swap problem: both phis read the other's previous value,
    // so a naive sequential copy on the back edge corrupts one of
    // them. The walker applies phis simultaneously; the edge stub must
    // pass through the scratch register to match.
    const ir::Module module = parse(R"(module "swap"
func @swap(i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %a = phi i64 [1, entry], [%b, loop]
  %b = phi i64 [2, entry], [%a, loop]
  %k = phi i64 [0, entry], [%k2, loop]
  %k2 = add i64 %k, 1
  %go = cmplt i64 %k2, %n
  br %go, loop, exit
exit:
  %r = mul i64 %a, 10
  %r2 = add i64 %r, %b
  ret i64 %r2
}
)");
    for (std::int64_t n : {1, 2, 3, 7, 8}) {
        expectTiersAgree(module, "swap", {RtValue::ofInt(n)});
    }
}

TEST(BytecodeCompiler, SelectCopiesTheChosenArmRaw)
{
    const ir::Module module = parse(R"(module "sel"
func @pick(i64 %c, f64 %x, f64 %y) -> f64 {
entry:
  %r = select f64 %c, %x, %y
  ret f64 %r
}
)");
    const double nan = std::numeric_limits<double>::quiet_NaN();
    expectTiersAgree(module, "pick",
                     {RtValue::ofInt(1), RtValue::ofFloat(nan),
                      RtValue::ofFloat(2.0)});
    expectTiersAgree(module, "pick",
                     {RtValue::ofInt(0), RtValue::ofFloat(1.0),
                      RtValue::ofFloat(-0.0)});
}

TEST(BytecodeCompiler, FusesChainsAndKeepsBothRoundings)
{
    const ir::Module module = parse(R"(module "fuse"
func @chain(f64 %x, f64 %s) -> f64 {
entry:
  %t = mul f64 %s, %x
  %r = add f64 %t, %s
  ret f64 %r
}
)");
    const ir::bc::BcModule bc = ir::bc::compileModule(module);
    const ir::bc::BcFunction *fn = bc.find("chain");
    ASSERT_NE(fn, nullptr);
    ASSERT_TRUE(fn->compiled);
    EXPECT_EQ(fn->fusedCount, 1u);
    bool has_muladd = false;
    for (const auto &inst : fn->code)
        has_muladd |= inst.op == ir::bc::BcOp::MulAddF;
    EXPECT_TRUE(has_muladd);
    // Inputs chosen so a contracted FMA would give different bits than
    // the walker's two roundings.
    for (const auto &[x, s] : std::vector<std::pair<double, double>>{
             {1.0 + 1e-16, 1.0}, {1e16, 1.0}, {3.0, 1.0 / 3.0}}) {
        expectTiersAgree(module, "chain",
                         {RtValue::ofFloat(x), RtValue::ofFloat(s)});
    }
}

TEST(BytecodeCompiler, IntermediateWithTwoReadersDoesNotFuse)
{
    const ir::Module module = parse(R"(module "nofuse"
func @twice(i64 %x) -> i64 {
entry:
  %t = mul i64 %x, 3
  %a = add i64 %t, %t
  ret i64 %a
}
)");
    const ir::bc::BcModule bc = ir::bc::compileModule(module);
    const ir::bc::BcFunction *fn = bc.find("twice");
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->fusedCount, 0u);
    expectTiersAgree(module, "twice", {RtValue::ofInt(41)});
}

TEST(BytecodeCompiler, MixedClassSelectFallsBackWithAReason)
{
    const ir::Module module = parse(R"(module "conflict"
func @mix(i64 %c, i64 %i, f64 %f) -> i64 {
entry:
  %r = select i64 %c, %i, %f
  %out = cast i64 %r
  ret i64 %out
}
)");
    const ir::bc::BcModule bc = ir::bc::compileModule(module);
    const ir::bc::BcFunction *fn = bc.find("mix");
    ASSERT_NE(fn, nullptr);
    EXPECT_FALSE(fn->compiled);
    EXPECT_FALSE(fn->fallbackReason.empty());
    // Tier auto executes it through the walker, identically.
    ir::ExecutableModule exec(module, ir::ExecTier::Auto);
    EXPECT_EQ(exec.tierFor("mix"), ir::ExecTier::Ast);
    const RtValue r = exec.call("mix", {RtValue::ofInt(0),
                                        RtValue::ofInt(3),
                                        RtValue::ofFloat(2.5)});
    EXPECT_EQ(r.i, 2);
}

TEST(BytecodeCompiler, CallsCrossTiersThroughTheSlowPath)
{
    // @weird fails lowering on a structural bail (a phi below the
    // leading group, which the walker tolerates by ignoring it), but
    // its return class is clean — so @caller still compiles and must
    // route the call through the AST walker.
    const ir::Module module = parse(R"(module "crosstier"
func @weird(i64 %x) -> i64 {
entry:
  jmp next
next:
  %p = phi i64 [%x, entry]
  %y = add i64 %p, 1
  %q = phi i64 [%y, entry]
  ret i64 %y
}
func @caller(i64 %x) -> i64 {
entry:
  %v = call i64 @weird %x
  %r = add i64 %v, 100
  ret i64 %r
}
)");
    ir::ExecutableModule exec(module, ir::ExecTier::Auto);
    EXPECT_EQ(exec.tierFor("caller"), ir::ExecTier::Bytecode);
    EXPECT_EQ(exec.tierFor("weird"), ir::ExecTier::Ast);
    EXPECT_EQ(exec.call("caller", {RtValue::ofInt(7)}).i, 108);
}

TEST(BytecodeCompiler, ExternalCallsUseTheInterpretersBindings)
{
    const ir::Module module = parse(R"(module "ext"
func @hyp(f64 %x, f64 %y) -> f64 {
entry:
  %xx = mul f64 %x, %x
  %yy = mul f64 %y, %y
  %ss = add f64 %xx, %yy
  %r = call f64 @sqrt %ss
  ret f64 %r
}
)");
    ir::ExecutableModule exec(module, ir::ExecTier::Bytecode);
    const RtValue r =
        exec.call("hyp", {RtValue::ofFloat(3.0), RtValue::ofFloat(4.0)});
    EXPECT_DOUBLE_EQ(r.f, 5.0);

    // Rebinding an external with an integer result class recompiles.
    // The walker returns ret operands raw, so the result is the
    // external's tagged integer — the bytecode tier must match that,
    // not the function's declared f64.
    ir::ExecutableModule rebound(module, ir::ExecTier::Auto);
    rebound.bindExternal(
        "sqrt",
        [](const std::vector<RtValue> &args) {
            return RtValue::ofInt(args.at(0).asInt() * 2);
        },
        ir::Type::I64);
    const RtValue r2 = rebound.call(
        "hyp", {RtValue::ofFloat(3.0), RtValue::ofFloat(4.0)});
    EXPECT_FALSE(ir::isFloating(r2.type));
    EXPECT_EQ(r2.i, 50);
}

TEST(BytecodeVm, BatchedExecutionMatchesScalarCalls)
{
    const ir::Module module = parse(R"(module "batch"
func @step(i64 %i, i64 %s) -> i64 {
entry:
  %t = mul i64 %s, 3
  %u = add i64 %t, %i
  %c = cmplt i64 %u, 0
  %flip = sub i64 0, %u
  %r = select i64 %c, %flip, %u
  ret i64 %r
}
)");
    ir::ExecutableModule exec(module, ir::ExecTier::Bytecode);
    const ir::bc::BcFunction *fn = exec.bytecode().find("step");
    ASSERT_NE(fn, nullptr);
    EXPECT_TRUE(fn->batchable);

    const std::size_t lanes = 37; // Odd: exercises SIMD tails.
    std::vector<RtValue> in_col, st_col, out(lanes);
    for (std::size_t k = 0; k < lanes; ++k) {
        in_col.push_back(RtValue::ofInt(std::int64_t(k) * 7 - 100));
        st_col.push_back(RtValue::ofInt(std::int64_t(k) * 13 - 200));
    }
    ASSERT_TRUE(exec.callBatch("step", lanes,
                               {in_col.data(), st_col.data()},
                               out.data()));
    for (std::size_t k = 0; k < lanes; ++k) {
        const RtValue scalar = exec.call("step", {in_col[k], st_col[k]});
        EXPECT_EQ(out[k].i, scalar.i) << "lane " << k;
    }
}

TEST(BytecodeVm, BatchRefusesClassMismatchedLanes)
{
    const ir::Module module = parse(R"(module "batchclass"
func @idf(f64 %x) -> f64 {
entry:
  %r = add f64 %x, 1.0
  ret f64 %r
}
)");
    ir::ExecutableModule exec(module, ir::ExecTier::Auto);
    std::vector<RtValue> col{RtValue::ofFloat(1.0), RtValue::ofInt(2)};
    std::vector<RtValue> out(2);
    EXPECT_FALSE(exec.callBatch("idf", 2, {col.data()}, out.data()));
}

TEST(BytecodeVm, LoopsAndBranchesMatchTheWalker)
{
    std::ifstream in(std::string(STATS_SOURCE_DIR) +
                     "/examples/ir/loop_phi.ir");
    ASSERT_TRUE(in.is_open());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const ir::Module module = parse(buffer.str());
    for (std::int64_t n : {0, 1, 2, 10, 999}) {
        expectTiersAgree(module, "sumTo", {RtValue::ofInt(n)});
        expectTiersAgree(module, "clampedMean", {RtValue::ofInt(n)});
    }
}

TEST(BytecodeVmDeath, DivisionByZeroPanicsLikeTheWalker)
{
    const ir::Module module = parse(R"(module "div0"
func @div(i64 %a, i64 %b) -> i64 {
entry:
  %q = div i64 %a, %b
  ret i64 %q
}
)");
    ir::ExecutableModule exec(module, ir::ExecTier::Bytecode);
    EXPECT_EQ(exec.call("div", {RtValue::ofInt(7), RtValue::ofInt(2)}).i,
              3);
    EXPECT_DEATH(
        exec.call("div", {RtValue::ofInt(7), RtValue::ofInt(0)}),
        "division by 0");
}

TEST(BytecodeVmDeath, TierBytecodePanicsOnFallbackFunctions)
{
    const ir::Module module = parse(R"(module "strict"
func @mix(i64 %c, i64 %i, f64 %f) -> i64 {
entry:
  %r = select i64 %c, %i, %f
  %out = cast i64 %r
  ret i64 %out
}
)");
    ir::ExecutableModule exec(module, ir::ExecTier::Bytecode);
    EXPECT_DEATH(exec.call("mix", {RtValue::ofInt(0), RtValue::ofInt(1),
                                   RtValue::ofFloat(1.0)}),
                 "did not compile");
}

TEST(BytecodeVmDeath, StepBudgetBoundsRunawayLoops)
{
    const ir::Module module = parse(R"(module "spin"
func @spin(i64 %n) -> i64 {
entry:
  jmp loop
loop:
  %k = phi i64 [0, entry], [%k2, loop]
  %k2 = add i64 %k, 1
  %go = cmplt i64 %k2, %n
  br %go, loop, exit
exit:
  ret i64 %k2
}
)");
    ir::ExecutableModule exec(module, ir::ExecTier::Bytecode);
    exec.setStepBudget(100);
    EXPECT_DEATH(exec.call("spin", {RtValue::ofInt(1'000'000)}),
                 "step budget");
}

TEST(ExecTier, NamesRoundTripAndCountersAdvance)
{
    EXPECT_EQ(ir::parseExecTier("ast"), ir::ExecTier::Ast);
    EXPECT_EQ(ir::parseExecTier("bytecode"), ir::ExecTier::Bytecode);
    EXPECT_EQ(ir::parseExecTier("auto"), ir::ExecTier::Auto);
    EXPECT_FALSE(ir::parseExecTier("jit").has_value());
    EXPECT_STREQ(ir::execTierName(ir::ExecTier::Auto), "auto");

    const ir::Module module = parse(R"(module "count"
func @inc(i64 %x) -> i64 {
entry:
  %r = add i64 %x, 1
  ret i64 %r
}
)");
    ir::ExecutableModule exec(module, ir::ExecTier::Auto);
    const std::uint64_t before = exec.executedInstructions();
    exec.call("inc", {RtValue::ofInt(1)});
    EXPECT_GT(exec.executedInstructions(), before);
}

/**
 * Docs lockstep (the pattern from tests/fuzz_corpus_test.cpp): every
 * opcode mnemonic and every superinstruction must appear backticked
 * in docs/INTERPRETER.md, so the ISA tables there cannot rot.
 */
TEST(InterpreterDocs, EveryMnemonicIsDocumented)
{
    std::ifstream in(std::string(STATS_SOURCE_DIR) +
                     "/docs/INTERPRETER.md");
    ASSERT_TRUE(in.is_open()) << "docs/INTERPRETER.md is missing";
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string docs = buffer.str();

    for (std::size_t k = 0; k < ir::bc::opcodeCount(); ++k) {
        const auto op = static_cast<ir::bc::BcOp>(k);
        const std::string needle =
            std::string("`") + ir::bc::opcodeMnemonic(op) + "`";
        EXPECT_NE(docs.find(needle), std::string::npos)
            << "docs/INTERPRETER.md does not document opcode "
            << ir::bc::opcodeMnemonic(op);
    }
    // The tier vocabulary is part of the contract too.
    for (const char *tier : {"`ast`", "`bytecode`", "`auto`"}) {
        EXPECT_NE(docs.find(tier), std::string::npos)
            << "docs/INTERPRETER.md does not document tier " << tier;
    }
}

} // namespace
