/**
 * @file
 * The serving subsystem (src/serving/, docs/SERVING.md): execution
 * plans, admission control, the WDRR scheduler with cross-request
 * batching, the plan runner, the in-process server, the wire
 * protocol, and the socket daemon end to end.
 *
 * Also the docs-lockstep suite for docs/SERVING.md — the reject
 * reasons, wire message types, and plan text keys named there must
 * match the code — and the byte-exact goldens pinning the plan's
 * binary and text encodings (tests/golden/serving_plan.stpl / .txt).
 * To regenerate after an intentional schema change, write
 * `goldenPlan().saveToString()` / `goldenPlan().toText()` to those
 * files and bump kPlanSchemaVersion.
 */

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "replay/record_log.hpp"
#include "replay/session.hpp"
#include "serving/admission.hpp"
#include "serving/client.hpp"
#include "serving/daemon.hpp"
#include "serving/execution_plan.hpp"
#include "serving/protocol.hpp"
#include "serving/runner.hpp"
#include "serving/scheduler.hpp"
#include "serving/server.hpp"

#include "serving_test_util.hpp"

namespace {

using namespace stats;
using serving::AdmissionController;
using serving::AdmissionVerdict;
using serving::ExecutionPlan;
using serving::JobKind;
using serving::PlanResult;
using serving::PlanRunner;
using serving::PlanScheduler;
using serving::QueuedPlan;
using serving::RejectReason;
using serving::RequestState;
using serving::Server;
using serving::TenantQuota;

/** A minimal valid module: one state dependence, pure arithmetic. */
const char *const kFixtureModule =
    "module \"serving_fixture\"\n"
    "statedep SD0 compute=@computeOutput\n"
    "\n"
    "func @computeOutput(i64 %input, i64 %state) -> i64 {\n"
    "entry:\n"
    "  %a = add i64 %state, %input\n"
    "  ret i64 %a\n"
    "}\n";

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
sourcePath(const std::string &relative)
{
    return std::string(STATS_SOURCE_DIR) + "/" + relative;
}

/** A sequential plan over the fixture module. */
ExecutionPlan
seqPlan(std::uint64_t seed = 7, const std::string &tenant = "alpha")
{
    ExecutionPlan plan;
    plan.kind = JobKind::IrSequential;
    plan.tenant = tenant;
    plan.moduleText = kFixtureModule;
    plan.rootSeed = seed;
    plan.inputs = 12;
    plan.noisyPercent = 25;
    plan.maxNoise = 2;
    return plan;
}

/** A speculative plan (engine-backed, records choice points). */
ExecutionPlan
specPlan(std::uint64_t seed = 7)
{
    ExecutionPlan plan = seqPlan(seed);
    plan.kind = JobKind::IrSpeculative;
    return plan;
}

/** The fixed plan behind the byte-exact goldens: every field set. */
ExecutionPlan
goldenPlan()
{
    ExecutionPlan plan;
    plan.tenant = "golden";
    plan.priority = -3;
    plan.kind = JobKind::IrSequential;
    plan.moduleText = kFixtureModule;
    plan.tradeoffIndices = {{"aux::T_42", 4}, {"aux::T_43", 1}};
    plan.limits.useAuxiliary = true;
    plan.limits.groupSize = 5;
    plan.limits.auxWindow = 3;
    plan.limits.maxReexecutions = 1;
    plan.limits.rollbackDepth = 1;
    plan.limits.sdThreads = 6;
    plan.limits.innerThreads = 2;
    plan.limits.auxBatchGroups = 2;
    plan.stepBudget = 250000;
    plan.execTier = ir::ExecTier::Bytecode;
    plan.batchLanes = 4;
    plan.rootSeed = 20260808;
    plan.inputs = 16;
    plan.initialState = 11;
    plan.noisyPercent = 50;
    plan.maxNoise = 2;
    plan.faults = "mismatch@g3";
    plan.recordChoices = false;
    plan.noCache = true;
    return plan;
}

QueuedPlan
queued(const ExecutionPlan &plan, std::uint64_t request_id = 0)
{
    QueuedPlan item;
    item.requestId = request_id;
    item.plan = std::make_shared<const ExecutionPlan>(plan);
    return item;
}

// ===================================================== ExecutionPlan

TEST(ExecutionPlanTest, BinaryRoundTripPreservesEveryField)
{
    const ExecutionPlan plan = goldenPlan();
    std::string error;
    const auto loaded = ExecutionPlan::load(plan.saveToString(), error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(plan, *loaded);
}

TEST(ExecutionPlanTest, TextRoundTripPreservesEveryField)
{
    const ExecutionPlan plan = goldenPlan();
    std::string error;
    const auto parsed = ExecutionPlan::fromText(plan.toText(), error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(plan, *parsed);
}

TEST(ExecutionPlanTest, BenchmarkKindRoundTrips)
{
    ExecutionPlan plan;
    plan.kind = JobKind::Benchmark;
    plan.moduleRef = "swaptions";
    plan.benchMode = "seq";
    plan.benchThreads = 4;
    plan.benchWorkload = "bad";
    std::string error;
    const auto binary = ExecutionPlan::load(plan.saveToString(), error);
    ASSERT_TRUE(binary.has_value()) << error;
    EXPECT_EQ(plan, *binary);
    const auto text = ExecutionPlan::fromText(plan.toText(), error);
    ASSERT_TRUE(text.has_value()) << error;
    EXPECT_EQ(plan, *text);
}

TEST(ExecutionPlanTest, BinaryGoldenIsByteExact)
{
    EXPECT_EQ(goldenPlan().saveToString(),
              readFile(sourcePath("tests/golden/serving_plan.stpl")));
}

TEST(ExecutionPlanTest, TextGoldenIsByteExact)
{
    EXPECT_EQ(goldenPlan().toText(),
              readFile(sourcePath("tests/golden/serving_plan.txt")));
}

TEST(ExecutionPlanTest, VersionSkewIsRejectedNotGuessed)
{
    // Magic + varint(schema+1): a plan from a future build.
    std::string bytes = "STPL";
    bytes.push_back(
        static_cast<char>(serving::kPlanSchemaVersion + 1));
    std::string error;
    EXPECT_FALSE(ExecutionPlan::load(bytes, error).has_value());
    EXPECT_NE(error.find("unsupported plan schema"),
              std::string::npos)
        << error;
}

TEST(ExecutionPlanTest, BadMagicAndTruncationFailCleanly)
{
    std::string error;
    EXPECT_FALSE(ExecutionPlan::load("NOPE", error).has_value());
    const std::string good = goldenPlan().saveToString();
    for (const std::size_t cut : {std::size_t(5), good.size() / 2,
                                  good.size() - 1})
        EXPECT_FALSE(
            ExecutionPlan::load(good.substr(0, cut), error)
                .has_value())
            << "cut at " << cut;
    // Trailing garbage is also an error, not silently ignored.
    EXPECT_FALSE(ExecutionPlan::load(good + "x", error).has_value());
}

TEST(ExecutionPlanTest, HugeDeclaredStringLengthFailsCleanly)
{
    // Regression: a string-length varint near UINT64_MAX used to
    // wrap the decoder's `pos + size` bounds check. The decoder must
    // fail fast, not proceed on a wrapped cursor.
    std::string bytes = "STPL";
    replay::putVarint(bytes, serving::kPlanSchemaVersion);
    // Tenant string claiming UINT64_MAX bytes, none present.
    replay::putVarint(bytes, ~std::uint64_t{0});
    std::string error;
    EXPECT_FALSE(ExecutionPlan::load(bytes, error).has_value());
}

TEST(ExecutionPlanTest, TextParserRejectsUnknownKeysWithLineNumbers)
{
    const std::string header =
        "plan v" + std::to_string(serving::kPlanSchemaVersion);
    std::string error;
    EXPECT_FALSE(ExecutionPlan::fromText(
                     header + "\nflavor vanilla\n", error)
                     .has_value());
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
    EXPECT_FALSE(
        ExecutionPlan::fromText("kind ir-seq\n", error).has_value());
    EXPECT_NE(error.find("missing the '" + header + "' header"),
              std::string::npos)
        << error;
}

TEST(ExecutionPlanTest, CompatibilityKeySeparatesPrograms)
{
    const ExecutionPlan a = seqPlan(1);
    ExecutionPlan b = seqPlan(2); // Seed differs: still compatible.
    EXPECT_EQ(a.compatibilityKey(), b.compatibilityKey());
    EXPECT_TRUE(a.canBatchWith(b));

    b.stepBudget += 1;
    EXPECT_NE(a.compatibilityKey(), b.compatibilityKey());
    EXPECT_FALSE(a.canBatchWith(b));

    ExecutionPlan c = seqPlan(3);
    c.batchLanes = 1; // Fusion disabled for this plan.
    EXPECT_FALSE(a.canBatchWith(c));
    EXPECT_FALSE(a.canBatchWith(specPlan()));
}

// ========================================================= Admission

TEST(AdmissionTest, ValidatesInlineIrThroughTheCompilerGates)
{
    EXPECT_TRUE(
        AdmissionController::validate(seqPlan(), true).admitted());

    ExecutionPlan bad_parse = seqPlan();
    bad_parse.moduleText = "module \"x\"\nfunc @f( {\n";
    EXPECT_EQ(AdmissionController::validate(bad_parse, true).reason,
              RejectReason::ParseError);

    ExecutionPlan no_dep = seqPlan();
    no_dep.moduleText =
        "module \"x\"\n"
        "func @f(i64 %a, i64 %b) -> i64 {\nentry:\n  ret i64 %a\n}\n";
    const auto verdict = AdmissionController::validate(no_dep, true);
    EXPECT_EQ(verdict.reason, RejectReason::VerifyError);
    EXPECT_NE(verdict.detail.find("no state dependence"),
              std::string::npos);
}

TEST(AdmissionTest, LintRunsAtAdmissionUnlessDisabled)
{
    ExecutionPlan impure = seqPlan();
    impure.moduleText =
        readFile(sourcePath("examples/ir/bad/bad_impure_clone.ir"));
    EXPECT_EQ(AdmissionController::validate(impure, true).reason,
              RejectReason::AnalysisError);
    // statsd --no-analysis skips exactly this stage.
    EXPECT_TRUE(
        AdmissionController::validate(impure, false).admitted());
}

TEST(AdmissionTest, ConfigurationPointMustBindToRealTradeoffs)
{
    ExecutionPlan plan = seqPlan();
    plan.moduleText = readFile(sourcePath("examples/ir/pipeline.ir"));

    plan.tradeoffIndices = {{"aux::T_42", 4}};
    EXPECT_TRUE(AdmissionController::validate(plan, true).admitted());

    plan.tradeoffIndices = {{"aux::T_99", 0}};
    auto verdict = AdmissionController::validate(plan, true);
    EXPECT_EQ(verdict.reason, RejectReason::VerifyError);
    EXPECT_NE(verdict.detail.find("unknown tradeoff"),
              std::string::npos);

    // aux::T_42 has size 10: valid indices are [0, 10).
    plan.tradeoffIndices = {{"aux::T_42", 10}};
    verdict = AdmissionController::validate(plan, true);
    EXPECT_EQ(verdict.reason, RejectReason::VerifyError);
    EXPECT_NE(verdict.detail.find("out of range"), std::string::npos);
}

TEST(AdmissionTest, UnknownBenchmarkAndBadFaultSpecAreRejected)
{
    ExecutionPlan bench;
    bench.kind = JobKind::Benchmark;
    bench.moduleRef = "no-such-benchmark";
    EXPECT_EQ(AdmissionController::validate(bench, true).reason,
              RejectReason::UnknownModule);

    ExecutionPlan faulty = seqPlan();
    faulty.faults = "not a fault spec";
    EXPECT_EQ(AdmissionController::validate(faulty, true).reason,
              RejectReason::MalformedPlan);
}

TEST(AdmissionTest, TokenBucketEnforcesRateAndRefillsOverTime)
{
    double now = 0.0;
    TenantQuota quota;
    quota.ratePerSec = 1.0;
    quota.burst = 2.0;
    AdmissionController admission(quota, [&now] { return now; });

    EXPECT_TRUE(admission.admitQuota("t", 0).admitted());
    EXPECT_TRUE(admission.admitQuota("t", 0).admitted());
    const auto rejected = admission.admitQuota("t", 0);
    EXPECT_EQ(rejected.reason, RejectReason::QuotaExceeded);
    EXPECT_GT(rejected.retryAfterSeconds, 0.0);
    EXPECT_TRUE(serving::isBackpressure(rejected.reason));

    now += rejected.retryAfterSeconds; // One token has refilled.
    EXPECT_TRUE(admission.admitQuota("t", 0).admitted());
    EXPECT_EQ(admission.admitQuota("t", 0).reason,
              RejectReason::QuotaExceeded);
}

TEST(AdmissionTest, QueueBoundIsPerTenant)
{
    double now = 0.0;
    TenantQuota quota;
    quota.maxQueued = 2;
    AdmissionController admission(quota, [&now] { return now; });
    EXPECT_TRUE(admission.admitQuota("t", 1).admitted());
    const auto full = admission.admitQuota("t", 2);
    EXPECT_EQ(full.reason, RejectReason::QueueFull);
    EXPECT_TRUE(serving::isBackpressure(full.reason));
    // Another tenant's queue is independent.
    EXPECT_TRUE(admission.admitQuota("u", 0).admitted());
}

// ========================================================= Scheduler

TEST(SchedulerTest, WeightedDeficitRoundRobinIsProportional)
{
    PlanScheduler scheduler(1.0);
    scheduler.setWeight("a", 2);
    scheduler.setWeight("b", 1);

    ExecutionPlan a = seqPlan(1, "a");
    ExecutionPlan b = seqPlan(2, "b");
    a.batchLanes = 1; // Keep dispatch units at one plan each.
    b.batchLanes = 1;
    for (std::uint64_t i = 0; i < 6; ++i)
        scheduler.enqueue(100 + i,
                          std::make_shared<const ExecutionPlan>(a));
    for (std::uint64_t i = 0; i < 3; ++i)
        scheduler.enqueue(200 + i,
                          std::make_shared<const ExecutionPlan>(b));

    std::vector<std::string> order;
    while (!scheduler.empty()) {
        const auto batch = scheduler.nextBatch();
        ASSERT_EQ(batch.size(), 1u);
        order.push_back(batch.front().plan->tenant);
    }
    // Weight 2:1 with unit quantum: a, a, b repeating.
    const std::vector<std::string> expected = {"a", "a", "b", "a", "a",
                                              "b", "a", "a", "b"};
    EXPECT_EQ(order, expected);
}

TEST(SchedulerTest, PriorityOrdersWithinATenantFifoWithinALevel)
{
    PlanScheduler scheduler;
    ExecutionPlan low = seqPlan(1);
    ExecutionPlan high = seqPlan(2);
    ExecutionPlan high2 = seqPlan(3);
    low.batchLanes = high.batchLanes = high2.batchLanes = 1;
    low.priority = 0;
    high.priority = 5;
    high2.priority = 5;
    scheduler.enqueue(1, std::make_shared<const ExecutionPlan>(low));
    scheduler.enqueue(2, std::make_shared<const ExecutionPlan>(high));
    scheduler.enqueue(3, std::make_shared<const ExecutionPlan>(high2));

    EXPECT_EQ(scheduler.nextBatch().front().requestId, 2u);
    EXPECT_EQ(scheduler.nextBatch().front().requestId, 3u);
    EXPECT_EQ(scheduler.nextBatch().front().requestId, 1u);
}

TEST(SchedulerTest, FusesCompatiblePlansAcrossTenants)
{
    PlanScheduler scheduler;
    ExecutionPlan a = seqPlan(1, "a");
    ExecutionPlan b = seqPlan(2, "b");
    ExecutionPlan other = seqPlan(3, "a");
    other.stepBudget += 1; // Different program: incompatible.
    a.batchLanes = b.batchLanes = other.batchLanes = 4;

    scheduler.enqueue(1, std::make_shared<const ExecutionPlan>(a));
    scheduler.enqueue(2, std::make_shared<const ExecutionPlan>(other));
    scheduler.enqueue(3, std::make_shared<const ExecutionPlan>(a));
    scheduler.enqueue(4, std::make_shared<const ExecutionPlan>(b));

    const auto batch = scheduler.nextBatch();
    ASSERT_EQ(batch.size(), 3u); // 1 + 3 (own queue) + 4 (tenant b).
    EXPECT_EQ(batch[0].requestId, 1u);
    EXPECT_EQ(batch[1].requestId, 3u);
    EXPECT_EQ(batch[2].requestId, 4u);

    // The incompatible plan dispatches on its own afterwards.
    const auto rest = scheduler.nextBatch();
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest.front().requestId, 2u);
    EXPECT_TRUE(scheduler.empty());
}

TEST(SchedulerTest, BatchCapIsTheSmallestMemberLaneCount)
{
    PlanScheduler scheduler;
    ExecutionPlan wide = seqPlan(1);
    wide.batchLanes = 8;
    ExecutionPlan narrow = seqPlan(2);
    narrow.batchLanes = 2;
    scheduler.enqueue(1, std::make_shared<const ExecutionPlan>(wide));
    scheduler.enqueue(2,
                      std::make_shared<const ExecutionPlan>(narrow));
    scheduler.enqueue(3, std::make_shared<const ExecutionPlan>(wide));

    // narrow joins (cap drops to 2), so the third plan must wait.
    EXPECT_EQ(scheduler.nextBatch().size(), 2u);
    EXPECT_EQ(scheduler.nextBatch().size(), 1u);
}

TEST(SchedulerTest, LateNarrowPlanCannotJoinAnOversizedBatch)
{
    // Regression: a candidate seen only after the batch had already
    // grown past the candidate's own batchLanes used to be admitted
    // anyway (the cap shrank only after the size check), giving a
    // batch larger than one member's lane cap.
    PlanScheduler scheduler;
    ExecutionPlan wide = seqPlan(1);
    wide.batchLanes = 8;
    ExecutionPlan narrow = seqPlan(2);
    narrow.batchLanes = 2;
    scheduler.enqueue(1, std::make_shared<const ExecutionPlan>(wide));
    scheduler.enqueue(2, std::make_shared<const ExecutionPlan>(wide));
    scheduler.enqueue(3,
                      std::make_shared<const ExecutionPlan>(narrow));

    // The two wides fuse; narrow (cap 2) must not become lane 3.
    const auto batch = scheduler.nextBatch();
    ASSERT_EQ(batch.size(), 2u);
    EXPECT_EQ(batch[0].requestId, 1u);
    EXPECT_EQ(batch[1].requestId, 2u);
    const auto rest = scheduler.nextBatch();
    ASSERT_EQ(rest.size(), 1u);
    EXPECT_EQ(rest.front().requestId, 3u);
}

// ============================================================ Runner

TEST(RunnerTest, FusedLanesAreByteIdenticalToSoloRuns)
{
    PlanRunner solo;
    const PlanResult a = solo.runPlan(seqPlan(11));
    const PlanResult b = solo.runPlan(seqPlan(12));
    const PlanResult c = solo.runPlan(seqPlan(13));
    ASSERT_TRUE(a.ok && b.ok && c.ok);
    EXPECT_NE(a.resultBlob, b.resultBlob); // Seeds differ.

    PlanRunner fused;
    const auto results = fused.runBatch(
        {queued(seqPlan(11)), queued(seqPlan(12)),
         queued(seqPlan(13))});
    ASSERT_EQ(results.size(), 3u);
    for (const auto &result : results) {
        ASSERT_TRUE(result.ok) << result.error;
        EXPECT_EQ(result.batchedLanes, 3);
    }
    EXPECT_EQ(results[0].resultBlob, a.resultBlob);
    EXPECT_EQ(results[1].resultBlob, b.resultBlob);
    EXPECT_EQ(results[2].resultBlob, c.resultBlob);
    EXPECT_EQ(results[0].finalState, a.finalState);
    // One compiled program served every lane and the solo runs alike.
    EXPECT_EQ(fused.cacheSize(), 1u);
}

TEST(RunnerTest, CompileCacheIsKeyedByCompatibility)
{
    PlanRunner runner;
    EXPECT_TRUE(runner.runPlan(seqPlan(1)).ok);
    EXPECT_TRUE(runner.runPlan(seqPlan(2)).ok);
    EXPECT_EQ(runner.cacheSize(), 1u);
    EXPECT_GE(runner.cacheHits(), 1u);

    ExecutionPlan bytecode = seqPlan(1);
    bytecode.execTier = ir::ExecTier::Bytecode;
    EXPECT_TRUE(runner.runPlan(bytecode).ok);
    EXPECT_EQ(runner.cacheSize(), 2u); // Tier is part of the key.
}

TEST(RunnerTest, ExecTierDoesNotChangeResultBytes)
{
    PlanRunner runner;
    ExecutionPlan ast = seqPlan(5);
    ast.execTier = ir::ExecTier::Ast;
    ExecutionPlan bytecode = seqPlan(5);
    bytecode.execTier = ir::ExecTier::Bytecode;
    const PlanResult a = runner.runPlan(ast);
    const PlanResult b = runner.runPlan(bytecode);
    ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
    EXPECT_EQ(a.resultBlob, b.resultBlob);
    EXPECT_EQ(a.finalState, b.finalState);
}

TEST(RunnerTest, SpeculativeRunsAreDeterministic)
{
    PlanRunner runner;
    const PlanResult a = runner.runPlan(specPlan(21));
    const PlanResult b = runner.runPlan(specPlan(21));
    ASSERT_TRUE(a.ok && b.ok) << a.error << b.error;
    EXPECT_EQ(a.resultBlob, b.resultBlob);
    EXPECT_EQ(a.recordLog, b.recordLog);
    EXPECT_FALSE(a.recordLog.empty());
    EXPECT_GT(a.invocations, 0);

    const PlanResult c = runner.runPlan(specPlan(22));
    ASSERT_TRUE(c.ok);
    EXPECT_NE(a.resultBlob, c.resultBlob);
}

TEST(RunnerTest, ServedRecordLogReplaysWithZeroDivergence)
{
    PlanRunner runner;
    const ExecutionPlan recorded = specPlan(33);
    const PlanResult first = runner.runPlan(recorded);
    ASSERT_TRUE(first.ok) << first.error;
    ASSERT_FALSE(first.recordLog.empty());

    std::istringstream stream(first.recordLog);
    std::string error;
    const auto log = replay::RecordLog::load(stream, error);
    ASSERT_TRUE(log.has_value()) << error;
    ASSERT_FALSE(log->records.empty());

    // Re-run the same plan under replay: every engine choice point
    // must match the served log — the byte-identical-reproducibility
    // contract of docs/SERVING.md §5.
    ExecutionPlan again = recorded;
    again.recordChoices = false;
    auto &session = replay::ReplaySession::global();
    session.startReplay(*log);
    const PlanResult second = runner.runPlan(again);
    const replay::ReplayReport report = session.finishReplay();
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_FALSE(report.diverged) << report.first.describe();
    EXPECT_EQ(report.recordsMatched, log->records.size());
    EXPECT_EQ(second.resultBlob, first.resultBlob);
}

// ============================================================ Server

TEST(ServerTest, ServedRunsAreByteIdenticalAcrossSubmissions)
{
    Server server;
    const auto first = server.submitPlan(specPlan(44));
    const auto second = server.submitPlan(specPlan(44));
    ASSERT_TRUE(first.admitted()) << first.verdict.detail;
    ASSERT_TRUE(second.admitted()) << second.verdict.detail;
    server.drain();

    const auto a = server.status(first.requestId);
    const auto b = server.status(second.requestId);
    ASSERT_EQ(a.state, RequestState::Done) << a.result.error;
    ASSERT_EQ(b.state, RequestState::Done) << b.result.error;
    EXPECT_EQ(a.result.resultBlob, b.result.resultBlob);
    EXPECT_EQ(a.result.finalState, b.result.finalState);
    EXPECT_EQ(server.replayLog(first.requestId),
              server.replayLog(second.requestId));
    EXPECT_FALSE(server.replayLog(first.requestId).empty());
}

TEST(ServerTest, SubmitClassifiesVersionSkewSeparately)
{
    Server server;
    EXPECT_EQ(server.submit("garbage").verdict.reason,
              RejectReason::MalformedPlan);
    std::string future = "STPL";
    future.push_back(
        static_cast<char>(serving::kPlanSchemaVersion + 1));
    EXPECT_EQ(server.submit(future).verdict.reason,
              RejectReason::VersionSkew);
    EXPECT_TRUE(
        server.submit(seqPlan().saveToString()).admitted());
    server.drain();
}

TEST(ServerTest, QuotaRejectionsAreGracefulBackpressure)
{
    double now = 0.0;
    Server::Options options;
    options.clock = [&now] { return now; };
    options.defaultQuota.ratePerSec = 1.0;
    options.defaultQuota.burst = 1.0;
    Server server(options);

    EXPECT_TRUE(server.submitPlan(seqPlan(1)).admitted());
    const auto rejected = server.submitPlan(seqPlan(2));
    EXPECT_EQ(rejected.verdict.reason, RejectReason::QuotaExceeded);
    EXPECT_GT(rejected.verdict.retryAfterSeconds, 0.0);

    now += 1.5;
    EXPECT_TRUE(server.submitPlan(seqPlan(3)).admitted());
    server.drain();
}

TEST(ServerTest, DrainCompletesQueuedWorkAndRejectsNewSubmits)
{
    Server server;
    const auto admitted = server.submitPlan(seqPlan(1));
    ASSERT_TRUE(admitted.admitted());
    const std::uint64_t completed = server.drain();
    EXPECT_GE(completed, 1u);
    EXPECT_EQ(server.status(admitted.requestId).state,
              RequestState::Done);

    const auto late = server.submitPlan(seqPlan(2));
    EXPECT_EQ(late.verdict.reason, RejectReason::Draining);
    EXPECT_TRUE(serving::isBackpressure(late.verdict.reason));
}

TEST(ServerTest, RuntimeFailuresLandInFailedStateWithDetail)
{
    Server server;
    ExecutionPlan plan = seqPlan();
    plan.kind = JobKind::IrSpeculative;
    plan.faults = "bogus spec"; // Passes nothing: reject up front.
    EXPECT_EQ(server.submitPlan(plan).verdict.reason,
              RejectReason::MalformedPlan);
    server.drain();
}

TEST(ServerTest, StatusObservesAsynchronousCompletion)
{
    // The worker pool completes requests without drain(): status()
    // must transition to Done on its own, observed via the shared
    // poll helper rather than a free-running sleep.
    Server server;
    const auto outcome = server.submitPlan(seqPlan(91));
    ASSERT_TRUE(outcome.admitted()) << outcome.verdict.detail;
    EXPECT_TRUE(serving_testing::pollUntil([&] {
        return server.status(outcome.requestId).state ==
               RequestState::Done;
    }));
    EXPECT_FALSE(server.draining()); // No drain was needed.
    server.drain();
}

TEST(ServerTest, FinishedRequestRegistryIsBounded)
{
    Server::Options options;
    options.maxRetainedResults = 2;
    Server server(std::move(options));
    std::vector<std::uint64_t> ids;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        const auto outcome = server.submitPlan(seqPlan(seed));
        ASSERT_TRUE(outcome.admitted()) << outcome.verdict.detail;
        ids.push_back(outcome.requestId);
    }
    server.drain();

    // Only the two newest finished requests stay queryable; the
    // oldest were evicted so a long-lived server stays bounded.
    // Evicted ids answer the distinct Expired state — they *were*
    // served — while ids never issued stay Unknown.
    EXPECT_EQ(server.status(ids[0]).state, RequestState::Expired);
    EXPECT_EQ(server.status(ids[1]).state, RequestState::Expired);
    EXPECT_EQ(server.status(ids[2]).state, RequestState::Done);
    EXPECT_EQ(server.status(ids[3]).state, RequestState::Done);
    EXPECT_EQ(server.status(0).state, RequestState::Unknown);
    EXPECT_EQ(server.status(ids[3] + 1).state, RequestState::Unknown);
    EXPECT_EQ(server.completedCount(), 4u);
}

// ========================================================== Protocol

TEST(ProtocolTest, BodyCodecsRoundTrip)
{
    AdmissionVerdict verdict;
    verdict.reason = RejectReason::QuotaExceeded;
    verdict.detail = "tenant 'x' is over its admission rate";
    verdict.retryAfterSeconds = 1.25;
    AdmissionVerdict decoded;
    ASSERT_TRUE(serving::decodeSubmitRejected(
        serving::encodeSubmitRejected(verdict), decoded));
    EXPECT_EQ(decoded.reason, verdict.reason);
    EXPECT_EQ(decoded.detail, verdict.detail);
    EXPECT_NEAR(decoded.retryAfterSeconds, verdict.retryAfterSeconds,
                1e-3);

    serving::RequestStatus status;
    status.state = RequestState::Done;
    status.tenant = "alpha";
    status.result.ok = true;
    status.result.resultBlob = std::string("\x01\x02\x00\xff", 4);
    status.result.finalState = -77;
    status.result.invocations = 1234;
    status.result.batchedLanes = 3;
    serving::RequestStatus out;
    ASSERT_TRUE(
        serving::decodeResult(serving::encodeResult(status), out));
    EXPECT_EQ(out.state, status.state);
    EXPECT_EQ(out.result.resultBlob, status.result.resultBlob);
    EXPECT_EQ(out.result.finalState, status.result.finalState);
    EXPECT_EQ(out.result.invocations, status.result.invocations);
    EXPECT_EQ(out.result.batchedLanes, status.result.batchedLanes);

    std::uint64_t id = 0;
    ASSERT_TRUE(serving::decodeRequestId(
        serving::encodeRequestId(987654321), id));
    EXPECT_EQ(id, 987654321u);

    EXPECT_FALSE(serving::decodeResult("trunc", out));
    EXPECT_FALSE(serving::decodeRequestId("", id));
}

TEST(ProtocolTest, HugeDeclaredStringLengthFailsCleanly)
{
    // Regression: a detail-string length varint near UINT64_MAX used
    // to wrap the decoder's `pos + length` bounds check.
    std::string body;
    replay::putVarint(body, 0); // reason
    replay::putVarint(body, 0); // retry-after ms
    replay::putVarint(body, ~std::uint64_t{0}); // detail length
    AdmissionVerdict decoded;
    EXPECT_FALSE(serving::decodeSubmitRejected(body, decoded));
}

TEST(ProtocolTest, FrameLayoutIsLengthPrefixed)
{
    serving::Frame frame;
    frame.type = serving::MsgType::SubmitReq;
    frame.body = "payload";
    const std::string wire = serving::encodeFrame(frame);
    ASSERT_EQ(wire.size(), 4 + 1 + frame.body.size());
    // u32-le length counts the type byte plus the body.
    const auto length =
        static_cast<std::uint32_t>(
            static_cast<unsigned char>(wire[0])) |
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(wire[1]))
         << 8) |
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(wire[2]))
         << 16) |
        (static_cast<std::uint32_t>(
             static_cast<unsigned char>(wire[3]))
         << 24);
    EXPECT_EQ(length, frame.body.size() + 1);
    EXPECT_EQ(wire[4],
              static_cast<char>(serving::MsgType::SubmitReq));
    EXPECT_EQ(wire.substr(5), frame.body);
}

// ===================================================== Daemon + CLI

TEST(DaemonTest, EndToEndOverTheUnixSocket)
{
    const std::string socket_path =
        "serving_test_" + std::to_string(::getpid()) + ".sock";
    serving::Daemon daemon(socket_path);
    std::thread serve([&daemon] { daemon.serveForever(); });

    std::string error;
    serving::Client client(socket_path, error);
    ASSERT_TRUE(client.connected()) << error;

    AdmissionVerdict verdict;
    const auto request_id =
        client.submit(seqPlan(55).saveToString(), verdict, error);
    ASSERT_TRUE(request_id.has_value())
        << error << " " << verdict.detail;

    // Drain finishes all queued work, so the result is ready after.
    const auto drained = client.drain(error);
    ASSERT_TRUE(drained.has_value()) << error;
    EXPECT_GE(*drained, 1u);
    serve.join();

    // The daemon answered the in-flight connection before stopping.
    // Compare against a direct run of the same plan: the served
    // result must be byte-identical to local execution.
    PlanRunner local;
    const PlanResult expected = local.runPlan(seqPlan(55));
    const auto status = daemon.server().status(*request_id);
    EXPECT_EQ(status.state, RequestState::Done);
    EXPECT_EQ(status.result.resultBlob, expected.resultBlob);
}

TEST(DaemonTest, MalformedSubmissionsAreRejectedNotFatal)
{
    const std::string socket_path =
        "serving_test_bad_" + std::to_string(::getpid()) + ".sock";
    serving::Daemon daemon(socket_path);
    std::thread serve([&daemon] { daemon.serveForever(); });

    std::string error;
    serving::Client client(socket_path, error);
    ASSERT_TRUE(client.connected()) << error;

    AdmissionVerdict verdict;
    EXPECT_FALSE(
        client.submit("not a plan", verdict, error).has_value());
    EXPECT_EQ(verdict.reason, RejectReason::MalformedPlan);

    // Regression: a module operand like `1e999999` made std::stod
    // throw std::out_of_range through the IR parser, past submit(),
    // and std::terminate the daemon from the connection thread.
    ExecutionPlan bad = seqPlan();
    bad.moduleText = "module \"bad\"\n"
                     "statedep SD0 compute=@f\n"
                     "func @f(i64 %input, i64 %state) -> i64 {\n"
                     "entry:\n"
                     "  %a = add i64 %input, 1e999999\n"
                     "  ret i64 %a\n"
                     "}\n";
    EXPECT_FALSE(
        client.submit(bad.saveToString(), verdict, error).has_value());
    EXPECT_EQ(verdict.reason, RejectReason::ParseError);

    // The connection survives a rejection.
    const auto request_id =
        client.submit(seqPlan().saveToString(), verdict, error);
    EXPECT_TRUE(request_id.has_value()) << error;
    ASSERT_TRUE(client.drain(error).has_value()) << error;
    serve.join();
}

// ===================================================== Docs lockstep

/** docs/SERVING.md must name every enum constant it documents. */
TEST(ServingDocsTest, DocsNameEveryRejectReasonAndMessageType)
{
    const std::string doc = readFile(sourcePath("docs/SERVING.md"));
    for (int i = 0; i < serving::kRejectReasonCount; ++i) {
        const std::string name = serving::rejectReasonName(
            static_cast<RejectReason>(i));
        if (name == std::string("None"))
            continue;
        EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
            << "docs/SERVING.md must document RejectReason::" << name;
    }
    for (const char *name :
         {"SubmitReq", "StatusReq", "ResultReq", "ReplayFetchReq",
          "DrainReq", "SubmitOk", "SubmitRejected", "StatusResp",
          "ResultResp", "ReplayFetchResp", "DrainResp", "ErrorResp"})
        EXPECT_NE(doc.find("`" + std::string(name) + "`"),
                  std::string::npos)
            << "docs/SERVING.md must document MsgType::" << name;
}

TEST(ServingDocsTest, DocsNameEveryPlanTextKeyAndTheMagic)
{
    const std::string doc = readFile(sourcePath("docs/SERVING.md"));
    EXPECT_NE(doc.find("`STPL`"), std::string::npos);
    for (const char *key :
         {"kind", "tenant", "priority", "seed", "exec-tier",
          "batch-lanes", "step-budget", "record-choices", "no-cache",
         "limits",
          "inputs", "initial-state", "noisy-percent", "max-noise",
          "config", "faults", "benchmark", "bench-mode",
          "bench-threads", "bench-workload", "module"})
        EXPECT_NE(doc.find("`" + std::string(key) + "`"),
                  std::string::npos)
            << "docs/SERVING.md must document plan key " << key;
    for (const char *kind : {"ir-seq", "ir-spec", "benchmark"})
        EXPECT_NE(doc.find("`" + std::string(kind) + "`"),
                  std::string::npos)
            << "docs/SERVING.md must document job kind " << kind;
}

TEST(ServingDocsTest, ServingDocIsLinkedFromTheDocIndexes)
{
    EXPECT_NE(readFile(sourcePath("README.md")).find("SERVING.md"),
              std::string::npos)
        << "README.md must link docs/SERVING.md";
    EXPECT_NE(
        readFile(sourcePath("docs/README.md")).find("SERVING.md"),
        std::string::npos)
        << "docs/README.md must link SERVING.md";
}

} // namespace
