/**
 * @file
 * Post-regalloc bytecode verifier (docs/ANALYSIS.md §8): known-bad
 * corpus with byte-exact diagnostics, the historical back-edge
 * liveness hole reproduced and statically rejected, auto-verify
 * controls, and cleanliness on every shipped example.
 */

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/diagnostics.hpp"
#include "ir/bytecode.hpp"
#include "ir/bytecode_verifier.hpp"
#include "ir/parser.hpp"
#include "testing/generator.hpp"

namespace {

using namespace stats;
using namespace stats::ir::bc;

std::string
sourcePath(const std::string &relative)
{
    return std::string(STATS_SOURCE_DIR) + "/" + relative;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

BcInst
inst(BcOp op, std::uint16_t a = 0, std::uint16_t b = 0,
     std::uint16_t c = 0, std::int32_t imm = 0)
{
    BcInst out;
    out.op = op;
    out.a = a;
    out.b = b;
    out.c = c;
    out.imm = imm;
    return out;
}

/**
 * The known-bad corpus: hand-built ill-formed functions, one per bug
 * class the verifier covers without compiler metadata. (BCV03 needs
 * the compiler's BcVerifyInfo and is exercised by the back-edge test
 * below.)
 */
std::vector<BcFunction>
knownBadCorpus()
{
    std::vector<BcFunction> corpus;

    // BCV04: a branch target outside the code, and a pool index
    // outside the pool.
    BcFunction bad_targets;
    bad_targets.name = "bad_targets";
    bad_targets.compiled = true;
    bad_targets.numRegs = 2;
    bad_targets.retType = ir::Type::I64;
    bad_targets.ipool = {7};
    bad_targets.code = {
        inst(BcOp::LdcI, 0, 0, 0, 3),  // ipool index 3 outside [0, 1)
        inst(BcOp::Brnz, 0, 0, 0, 99), // target 99 outside [0, 3)
        inst(BcOp::Ret, 0),
    };
    corpus.push_back(bad_targets);

    // BCV04: execution falls off the end of the code.
    BcFunction bad_fallthrough;
    bad_fallthrough.name = "bad_fallthrough";
    bad_fallthrough.compiled = true;
    bad_fallthrough.numRegs = 1;
    bad_fallthrough.retType = ir::Type::I64;
    bad_fallthrough.ipool = {1};
    bad_fallthrough.code = {
        inst(BcOp::LdcI, 0, 0, 0, 0),
        inst(BcOp::AddI, 0, 0, 0),
    };
    corpus.push_back(bad_fallthrough);

    // BCV05: operand registers outside the frame, and a missing
    // source on a non-call instruction.
    BcFunction bad_operands;
    bad_operands.name = "bad_operands";
    bad_operands.compiled = true;
    bad_operands.numRegs = 2;
    bad_operands.paramRegs = {0};
    bad_operands.paramClasses = {RegClass::Int};
    bad_operands.retType = ir::Type::I64;
    bad_operands.code = {
        inst(BcOp::AddI, 1, 0, 9),      // r9 outside a 2-slot frame
        inst(BcOp::Mov, 1, kNoReg),     // missing source register
        inst(BcOp::Ret, 1),
    };
    corpus.push_back(bad_operands);

    // BCV01: r1 is read on the path where the branch falls through
    // without ever being written.
    BcFunction bad_readbeforewrite;
    bad_readbeforewrite.name = "bad_readbeforewrite";
    bad_readbeforewrite.compiled = true;
    bad_readbeforewrite.numRegs = 2;
    bad_readbeforewrite.paramRegs = {0};
    bad_readbeforewrite.paramClasses = {RegClass::Int};
    bad_readbeforewrite.retType = ir::Type::I64;
    bad_readbeforewrite.code = {
        inst(BcOp::Brnz, 0, 0, 0, 2),
        inst(BcOp::Mov, 1, 0),
        inst(BcOp::Ret, 1), // r1 unwritten when 0 -> 2 is taken
    };
    corpus.push_back(bad_readbeforewrite);

    // BCV02: r0 is integer-classed (parameter) but read as a float.
    BcFunction bad_class;
    bad_class.name = "bad_class";
    bad_class.compiled = true;
    bad_class.numRegs = 2;
    bad_class.paramRegs = {0};
    bad_class.paramClasses = {RegClass::Int};
    bad_class.retType = ir::Type::F64;
    bad_class.code = {
        inst(BcOp::AddF, 1, 0, 0),
        inst(BcOp::Ret, 1),
    };
    corpus.push_back(bad_class);

    return corpus;
}

/**
 * Byte-exact diagnostics on the known-bad corpus, pinned under
 * tests/golden/. The golden renders each case through the standard
 * text writer; to regenerate, run this test and copy the "actual"
 * block from the failure output.
 */
TEST(BytecodeVerifier, KnownBadCorpusGolden)
{
    BcModule module;
    std::ostringstream out;
    for (const BcFunction &fn : knownBadCorpus()) {
        const auto diags = verifyFunction(module, fn);
        EXPECT_FALSE(diags.empty()) << fn.name;
        analysis::writeDiagnosticsText(out, fn.name, diags);
    }
    const std::string golden =
        readFile(sourcePath("tests/golden/bytecode_verifier.txt"));
    EXPECT_EQ(out.str(), golden);
}

/** Every bad-corpus diagnostic carries the expected leading rule. */
TEST(BytecodeVerifier, KnownBadCorpusRules)
{
    BcModule module;
    const std::vector<std::string> expected{
        "BCV04", "BCV04", "BCV05", "BCV01", "BCV02"};
    const auto corpus = knownBadCorpus();
    ASSERT_EQ(corpus.size(), expected.size());
    for (std::size_t i = 0; i < corpus.size(); ++i) {
        const auto diags = verifyFunction(module, corpus[i]);
        ASSERT_FALSE(diags.empty()) << corpus[i].name;
        EXPECT_EQ(diags.front().rule, expected[i]) << corpus[i].name;
    }
}

/**
 * The historical register-allocator bug: live intervals not widened
 * over back-edge phi-copy stubs. The loop below carries a plain phi
 * (%x) next to a swap cycle (%a <-> %b); with the hole re-opened,
 * %x's interval ends at its own stub copy, the parallel-copy scratch
 * inherits its freed slot, and `scratch = a` destroys the
 * just-written %x mid-stub. The verifier must reject the miscompiled
 * output statically with BCV03, and must be silent again once the
 * hole is closed.
 */
constexpr const char *kSwapLoop = R"(module "swap_loop"

func @spin(i64 %n) -> i64 {
entry:
  jmp head
head:
  %x = phi i64 [3, entry], [%t, body]
  %a = phi i64 [1, entry], [%b, body]
  %b = phi i64 [2, entry], [%a, body]
  %i = phi i64 [0, entry], [%i2, body]
  %s = add i64 %x, %a
  %c = cmplt i64 %i, %n
  br %c, body, exit
body:
  %i2 = add i64 %i, 1
  %t = add i64 %s, %b
  jmp head
exit:
  ret i64 %s
}
)";

TEST(BytecodeVerifier, RejectsBackEdgeLivenessHole)
{
    const ir::Module module = ir::parseModule(kSwapLoop);
    const bool prev_auto = setAutoVerify(false);

    testonly::disableBackEdgeWidening = true;
    const BcModule broken = compileModule(module);
    testonly::disableBackEdgeWidening = false;
    setAutoVerify(prev_auto);

    ASSERT_EQ(broken.compiledCount(), 1u);
    const auto diags = verifyModule(broken);
    ASSERT_FALSE(diags.empty())
        << "the re-opened back-edge hole went undetected";
    bool clobber = false;
    for (const auto &diag : diags)
        clobber = clobber || diag.rule == "BCV03";
    EXPECT_TRUE(clobber) << diags.front().rule << ": "
                         << diags.front().message;

    // With the widening in place the same module verifies clean (and
    // compileModule's auto-verification would panic otherwise).
    const BcModule fixed = compileModule(module);
    EXPECT_TRUE(verifyModule(fixed).empty());
}

/**
 * The re-opened hole must also be caught across a generated-module
 * campaign: whatever the generator produces, a verifier diagnostic
 * is only ever a compiler bug, so the fixed compiler stays clean.
 */
TEST(BytecodeVerifier, GeneratedCampaignCleanWithHoleReopened)
{
    const bool prev_auto = setAutoVerify(false);
    testonly::disableBackEdgeWidening = true;
    std::size_t compiled = 0;
    for (std::size_t index = 0; index < 100; ++index) {
        const stats::testing::FuzzCase fuzz_case =
            stats::testing::generateCase(20260808, index);
        if (fuzz_case.expect == stats::testing::Expectation::Reject)
            continue;
        const BcModule module = compileModule(fuzz_case.module);
        compiled += module.compiledCount();
        for (const auto &diag : verifyModule(module))
            EXPECT_TRUE(diag.rule == "BCV01" || diag.rule == "BCV02" ||
                        diag.rule == "BCV03")
                << fuzz_case.name << ": " << diag.rule;
    }
    testonly::disableBackEdgeWidening = false;
    setAutoVerify(prev_auto);
    EXPECT_GT(compiled, 0u);
}

/** With the hole closed, the same campaign verifies clean. */
TEST(BytecodeVerifier, CleanWithWideningEnabled)
{
    const bool prev_auto = setAutoVerify(false);
    std::size_t verified = 0;
    for (std::size_t index = 0; index < 200; ++index) {
        const stats::testing::FuzzCase fuzz_case =
            stats::testing::generateCase(20260808, index);
        if (fuzz_case.expect == stats::testing::Expectation::Reject)
            continue;
        const BcModule module = compileModule(fuzz_case.module);
        const auto diags = verifyModule(module);
        EXPECT_TRUE(diags.empty())
            << fuzz_case.name << ": [" << diags.front().rule << "] "
            << diags.front().message;
        verified += module.compiledCount();
    }
    setAutoVerify(prev_auto);
    EXPECT_GT(verified, 0u);
}

/** The shipped examples verify clean through the lint-pass entry. */
TEST(BytecodeVerifier, CleanOnExamples)
{
    for (const char *name :
         {"examples/ir/pipeline.ir", "examples/ir/loop_phi.ir",
          "examples/ir/aux_cloned.ir"}) {
        const ir::Module module =
            ir::parseModule(readFile(sourcePath(name)));
        const auto diags = verifyCompiledModule(module);
        EXPECT_TRUE(diags.empty()) << name;
    }
}

/** setAutoVerify returns the previous value and round-trips. */
TEST(BytecodeVerifier, AutoVerifyToggle)
{
    const bool initial = autoVerifyEnabled();
    const bool prev = setAutoVerify(false);
    EXPECT_EQ(prev, initial);
    EXPECT_FALSE(autoVerifyEnabled());
    EXPECT_FALSE(setAutoVerify(true));
    EXPECT_TRUE(autoVerifyEnabled());
    setAutoVerify(initial);
}

/** Uncompiled (fallback) functions are not verified. */
TEST(BytecodeVerifier, SkipsUncompiledFunctions)
{
    BcModule module;
    BcFunction fallback;
    fallback.name = "fallback";
    fallback.compiled = false;
    EXPECT_TRUE(verifyFunction(module, fallback).empty());
}

} // namespace
