/**
 * @file
 * Tests of canneal — including the structural property that excludes
 * it from STATS (paper section 4.2): the number of "inputs" (annealing
 * steps) depends on the evolution of the computation state and is
 * unknown before the first invocation.
 */

#include <set>

#include <gtest/gtest.h>

#include "benchmarks/canneal/canneal.hpp"

namespace {

using namespace stats;
using namespace stats::benchmarks::canneal;

TEST(Canneal, AnnealingImprovesThePlacement)
{
    const Netlist netlist = makeNetlist(3);
    Placement identity;
    identity.gridSide = netlist.gridSide;
    identity.slotOf.resize(netlist.nets.size());
    for (std::size_t e = 0; e < netlist.nets.size(); ++e)
        identity.slotOf[e] = static_cast<int>(e);
    const double initial_cost = identity.wireLength(netlist);

    support::Xoshiro256 rng(5);
    const AnnealResult result = anneal(netlist, rng);
    EXPECT_LT(result.finalCost, initial_cost);
    EXPECT_GT(result.temperatureSteps, 0);
}

TEST(Canneal, PlacementStaysAPermutation)
{
    const Netlist netlist = makeNetlist(7);
    support::Xoshiro256 rng(9);
    const AnnealResult result = anneal(netlist, rng);
    std::set<int> slots(result.placement.slotOf.begin(),
                        result.placement.slotOf.end());
    EXPECT_EQ(slots.size(), netlist.nets.size()); // No collisions.
}

TEST(Canneal, IsNondeterministic)
{
    const Netlist netlist = makeNetlist(11);
    support::Xoshiro256 a(1), b(2);
    const AnnealResult ra = anneal(netlist, a);
    const AnnealResult rb = anneal(netlist, b);
    EXPECT_NE(ra.placement.slotOf, rb.placement.slotOf);
}

TEST(Canneal, StepCountIsStateDependent)
{
    // The property that excludes canneal from STATS: the number of
    // temperature steps varies across nondeterministic runs, so the
    // SDI's input vector cannot be materialized before the loop.
    const Netlist netlist = makeNetlist(13);
    std::set<int> step_counts;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        support::Xoshiro256 rng(seed * 31);
        step_counts.insert(anneal(netlist, rng).temperatureSteps);
    }
    EXPECT_GT(step_counts.size(), 1u);
}

TEST(Canneal, WireLengthIsZeroOnlyForCoincidentNets)
{
    Netlist netlist;
    netlist.gridSide = 4;
    netlist.nets = {{1}, {0}};
    Placement placement;
    placement.gridSide = 4;
    placement.slotOf = {0, 1};
    EXPECT_DOUBLE_EQ(placement.wireLength(netlist), 1.0);
    placement.slotOf = {0, 5}; // Diagonal: Manhattan distance 2.
    EXPECT_DOUBLE_EQ(placement.wireLength(netlist), 2.0);
}

} // namespace
