/**
 * @file
 * Tests of the autotuner results store persistence (the paper's
 * reusable state-space exploration results, section 3.2).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "autotuner/results_io.hpp"
#include "autotuner/tuner.hpp"

namespace {

using namespace stats;
using namespace stats::autotuner;

tradeoff::StateSpace
space2x3()
{
    tradeoff::StateSpace space;
    space.add("a", 2);
    space.add("b", 3);
    return space;
}

TEST(ResultsIo, RoundTrip)
{
    const auto space = space2x3();
    ResultsStore store;
    store[{0, 0}] = 1.5;
    store[{1, 2}] = 0.25;

    std::stringstream buffer;
    writeResults(buffer, space, store);
    const ResultsStore loaded = readResults(buffer, space);
    ASSERT_EQ(loaded.size(), 2u);
    EXPECT_DOUBLE_EQ(loaded.at({0, 0}), 1.5);
    EXPECT_DOUBLE_EQ(loaded.at({1, 2}), 0.25);
}

TEST(ResultsIo, DropsEntriesThatNoLongerFit)
{
    const auto space = space2x3();
    ResultsStore store;
    store[{1, 2}] = 3.0;
    std::stringstream buffer;
    writeResults(buffer, space, store);

    // A shrunken space: the saved point is now out of range.
    tradeoff::StateSpace smaller;
    smaller.add("a", 2);
    smaller.add("b", 2);
    const ResultsStore loaded = readResults(buffer, smaller);
    EXPECT_TRUE(loaded.empty());
}

TEST(ResultsIo, RejectsMissingHeader)
{
    std::stringstream buffer("point 0 0 = 1.0\n");
    EXPECT_DEATH(readResults(buffer, space2x3()), "missing header");
}

TEST(ResultsIo, RejectsGarbageLines)
{
    std::stringstream buffer("statsdb 1\nnonsense here\n");
    EXPECT_DEATH(readResults(buffer, space2x3()), "bad line");
}

TEST(ResultsIo, PreloadedStoreShortCircuitsTheObjective)
{
    const auto space = space2x3();
    // Exhaustive store of the 6-point space.
    ResultsStore store;
    for (std::int64_t a = 0; a < 2; ++a) {
        for (std::int64_t b = 0; b < 3; ++b)
            store[{a, b}] = static_cast<double>(a * 10 + b);
    }
    std::stringstream buffer;
    writeResults(buffer, space, store);

    Autotuner tuner(space, 3);
    tuner.preload(readResults(buffer, space));
    int objective_calls = 0;
    const auto result = tuner.tune(
        [&](const tradeoff::Configuration &) {
            ++objective_calls;
            return 99.0;
        },
        50);
    // Every configuration was preloaded: nothing re-profiled.
    EXPECT_EQ(objective_calls, 0);
    EXPECT_EQ(result.bestObjective, 0.0);
    EXPECT_EQ(result.best, (tradeoff::Configuration{0, 0}));
}

} // namespace
