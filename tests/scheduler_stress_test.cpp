/**
 * @file
 * Stress and determinism tests for the work-stealing scheduler.
 *
 * The stress tests hammer the pool with many external producers,
 * random-size task bursts, and cancellation storms, asserting the
 * conservation law the completion accounting promises: every
 * submitted task runs exactly once (as executed or as cancelled),
 * and waitIdle() never returns while work remains. The determinism
 * test pins that the speculation engine's committed output — which
 * depends only on the serialized commit lane, not on which worker
 * ran which task — is unchanged under stealing.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_executor.hpp"
#include "sdi/matchers.hpp"
#include "sdi/spec_engine.hpp"
#include "threading/thread_pool.hpp"

namespace {

using namespace stats;
using threading::PoolTask;
using threading::ThreadPool;

TEST(SchedulerStress, ManyProducersLoseNoTasks)
{
    ThreadPool pool(4);
    constexpr int kProducers = 8;
    constexpr int kBurstsPerProducer = 40;
    std::atomic<std::uint64_t> ran{0};
    std::atomic<std::uint64_t> submitted{0};

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            std::mt19937 rng(static_cast<unsigned>(p) * 7919u + 1);
            std::uniform_int_distribution<int> burst(1, 32);
            for (int b = 0; b < kBurstsPerProducer; ++b) {
                const int count = burst(rng);
                if (b % 2 == 0) {
                    for (int i = 0; i < count; ++i)
                        pool.submit([&ran] {
                            ran.fetch_add(1, std::memory_order_relaxed);
                        });
                } else {
                    std::vector<PoolTask> batch;
                    batch.reserve(static_cast<std::size_t>(count));
                    for (int i = 0; i < count; ++i) {
                        PoolTask task;
                        task.run = [&ran](bool) {
                            ran.fetch_add(1, std::memory_order_relaxed);
                        };
                        batch.push_back(std::move(task));
                    }
                    pool.submitBatch(std::move(batch));
                }
                submitted.fetch_add(
                    static_cast<std::uint64_t>(count),
                    std::memory_order_relaxed);
            }
        });
    }
    for (auto &producer : producers)
        producer.join();
    pool.waitIdle();

    EXPECT_EQ(ran.load(), submitted.load());
    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.submitted, submitted.load());
    EXPECT_EQ(stats.executed, submitted.load());
}

TEST(SchedulerStress, CancellationStormConservesTasks)
{
    // Flip cancel flags concurrently with execution: every task must
    // still complete exactly once, either run or observed-cancelled.
    ThreadPool pool(4);
    constexpr int kTasks = 2000;
    std::atomic<std::uint64_t> ran{0};
    std::atomic<std::uint64_t> cancelled{0};

    std::vector<threading::CancelFlag> flags;
    flags.reserve(kTasks);
    for (int i = 0; i < kTasks; ++i)
        flags.push_back(std::make_shared<std::atomic<bool>>(false));

    std::thread storm([&flags] {
        std::mt19937 rng(12345);
        std::uniform_int_distribution<int> pick(0, kTasks - 1);
        for (int i = 0; i < kTasks; ++i)
            flags[static_cast<std::size_t>(pick(rng))]->store(true);
    });

    for (int i = 0; i < kTasks; ++i) {
        PoolTask task;
        task.cancel = flags[static_cast<std::size_t>(i)];
        task.run = [&ran, &cancelled](bool was_cancelled) {
            (was_cancelled ? cancelled : ran)
                .fetch_add(1, std::memory_order_relaxed);
        };
        pool.submit(std::move(task));
    }
    storm.join();
    pool.waitIdle();

    EXPECT_EQ(ran.load() + cancelled.load(),
              static_cast<std::uint64_t>(kTasks));
    const ThreadPool::Stats stats = pool.stats();
    EXPECT_EQ(stats.executed, static_cast<std::uint64_t>(kTasks));
    EXPECT_EQ(stats.cancelled, cancelled.load());
}

TEST(SchedulerStress, DrainNeverReturnsEarly)
{
    // Each task leaves a visible mark before it counts as done; if
    // waitIdle ever returned with work outstanding, the counts at
    // the check would disagree.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> done{0};
    std::mt19937 rng(99);
    std::uniform_int_distribution<int> burst(1, 64);
    std::uint64_t expected = 0;
    for (int round = 0; round < 50; ++round) {
        const int count = burst(rng);
        for (int i = 0; i < count; ++i)
            pool.submit([&done] {
                done.fetch_add(1, std::memory_order_relaxed);
            });
        expected += static_cast<std::uint64_t>(count);
        pool.waitIdle();
        ASSERT_EQ(done.load(), expected) << "round " << round;
    }
}

TEST(SchedulerStress, WorkerSpawnedTasksAreStolen)
{
    // One worker floods its own deque (worker-thread submits go to
    // the submitter's deque), then keeps its worker busy: while it
    // sleeps, only thieves can make progress on the backlog, so the
    // steal counter must move.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> ran{0};
    pool.submit([&pool, &ran] {
        for (int i = 0; i < 2000; ++i)
            pool.submit([&ran] {
                ran.fetch_add(1, std::memory_order_relaxed);
            });
        while (pool.stats().stolen == 0 && ran.load() < 2000)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    });
    pool.waitIdle();
    EXPECT_EQ(ran.load(), 2000u);
    EXPECT_GT(pool.stats().stolen, 0u);
}

// ---------------------------------------------------------------------
// Engine determinism under stealing (same toy dependence as
// spec_engine_test: state = 10 * last input, outputs record the prior
// state, so any mis-chaining is visible in the committed stream).

struct ToyState
{
    long long v = 0;
};

struct ToyOutput
{
    long long observedPriorState;
    int input;
};

using Engine = sdi::SpecEngine<int, ToyState, ToyOutput>;

Engine::ComputeFn
toyCompute()
{
    return [](const int &input, ToyState &state,
              const sdi::ComputeContext &) -> Engine::Invocation {
        auto out = std::make_unique<ToyOutput>();
        out->observedPriorState = state.v;
        out->input = input;
        state.v = static_cast<long long>(input) * 10;
        return {std::move(out), exec::Work{0.0001, 0.0}};
    };
}

Engine::MatchFn
exactMatcher()
{
    return [](const ToyState &spec,
              const std::vector<ToyState> &originals) -> int {
        for (std::size_t i = 0; i < originals.size(); ++i) {
            if (originals[i].v == spec.v)
                return static_cast<int>(i);
        }
        return -1;
    };
}

TEST(SchedulerDeterminism, EngineOutputUnchangedUnderStealing)
{
    const int n = 60;
    std::vector<int> inputs;
    for (int i = 1; i <= n; ++i)
        inputs.push_back(i);

    // Sequential reference.
    std::vector<ToyOutput> want;
    {
        ToyState state;
        for (int input : inputs) {
            want.push_back({state.v, input});
            state.v = static_cast<long long>(input) * 10;
        }
    }

    // Oversubscribed executor maximizes interleavings and steals.
    for (int repeat = 0; repeat < 5; ++repeat) {
        exec::ThreadExecutor ex(8);
        sdi::SpecConfig config;
        config.groupSize = 5;
        config.auxWindow = 1;
        config.sdThreads = 8;
        Engine engine(ex, inputs, ToyState{}, toyCompute(), toyCompute(),
                      exactMatcher(), config);
        engine.start();
        engine.join();

        ASSERT_EQ(engine.outputs().size(), inputs.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            ASSERT_EQ(engine.outputs()[i]->observedPriorState,
                      want[i].observedPriorState)
                << "repeat " << repeat << " position " << i;
            ASSERT_EQ(engine.outputs()[i]->input, want[i].input);
        }
        // Every group committed: the engine's bookkeeping (mutated
        // only in the commit lane) saw no squash or abort.
        EXPECT_EQ(engine.stats().aborts, 0);
        EXPECT_EQ(engine.stats().squashedGroups, 0);
        EXPECT_EQ(engine.stats().validations,
                  engine.stats().groups - 1);
    }
}

} // namespace
