/**
 * @file
 * Golden-file tests of the analyzer's exact output. Each seeded-bad
 * module under examples/ir/bad/ exercises one pass; the goldens under
 * tests/golden/ pin both renderers byte-for-byte, so any change to
 * the diagnostic format, rule wording, or pass behavior shows up as a
 * readable diff.
 *
 * Goldens are regenerated from the repo root with:
 *   build/tools/stats-lint examples/ir/bad/<name>.ir > tests/golden/<name>.txt
 *   build/tools/stats-lint --analysis-format=json ... > tests/golden/<name>.json
 */

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/lint.hpp"
#include "ir/parser.hpp"

namespace {

using namespace stats;
using namespace stats::analysis;

struct BadModule
{
    const char *name;
    std::vector<const char *> rules; ///< Expected distinct rule IDs.
    bool errors = true; ///< false: the designed rules only warn.
};

const std::vector<BadModule> &
badModules()
{
    static const std::vector<BadModule> modules = {
        {"bad_divergent_clone", {"AUD03", "AUD04"}},
        {"bad_impure_clone", {"ESC01"}},
        {"bad_missing_cast", {"FRZ03"}},
        {"bad_phi_mismatch", {"VER01"}},
        {"bad_range_abuse", {"RNG01", "RNG02", "RNG03"}, false},
        {"bad_unfrozen_tradeoff", {"FRZ01"}},
    };
    return modules;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** The goldens carry the repo-relative path stats-lint was run with. */
std::string
relativeIrPath(const std::string &name)
{
    return "examples/ir/bad/" + name + ".ir";
}

std::vector<Diagnostic>
analyzeBadModule(const std::string &name)
{
    const std::string source = readFile(std::string(STATS_SOURCE_DIR) +
                                        "/" + relativeIrPath(name));
    return runAnalyses(ir::parseModule(source));
}

TEST(AnalysisGolden, EachBadModuleTriggersItsDesignedRules)
{
    for (const auto &bad : badModules()) {
        const auto diags = analyzeBadModule(bad.name);
        if (bad.errors)
            EXPECT_TRUE(hasErrors(diags)) << bad.name;
        else
            EXPECT_FALSE(diags.empty()) << bad.name;
        std::vector<std::string> seen;
        for (const auto &diag : diags)
            seen.push_back(diag.rule);
        std::sort(seen.begin(), seen.end());
        seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
        std::vector<std::string> expected(bad.rules.begin(),
                                          bad.rules.end());
        EXPECT_EQ(seen, expected) << bad.name;
    }
}

TEST(AnalysisGolden, TextReportsMatchGoldens)
{
    for (const auto &bad : badModules()) {
        const auto diags = analyzeBadModule(bad.name);
        std::ostringstream out;
        writeDiagnosticsText(out, relativeIrPath(bad.name), diags);
        const std::string golden =
            readFile(std::string(STATS_SOURCE_DIR) + "/tests/golden/" +
                     bad.name + ".txt");
        EXPECT_EQ(out.str(), golden) << bad.name;
    }
}

TEST(AnalysisGolden, JsonReportsMatchGoldens)
{
    for (const auto &bad : badModules()) {
        const auto diags = analyzeBadModule(bad.name);
        std::ostringstream out;
        writeDiagnosticsJson(out, bad.name, relativeIrPath(bad.name),
                             diags);
        const std::string golden =
            readFile(std::string(STATS_SOURCE_DIR) + "/tests/golden/" +
                     bad.name + ".json");
        EXPECT_EQ(out.str(), golden) << bad.name;
    }
}

/** Every diagnostic in the goldens points at a real source line. */
TEST(AnalysisGolden, DiagnosticsCarrySourceLines)
{
    for (const auto &bad : badModules()) {
        for (const auto &diag : analyzeBadModule(bad.name))
            EXPECT_GT(diag.line, 0u)
                << bad.name << ": " << diag.rule << " " << diag.message;
    }
}

} // namespace
