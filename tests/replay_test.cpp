/**
 * @file
 * Tests of the deterministic record/replay + fault-injection
 * subsystem (src/replay/, docs/REPLAY.md).
 *
 * Covers the binary log codec, the SeedSequence / nested seed-pinning
 * support, the fault-plan grammar and its order-independent decision
 * hashes, and — through the same toy state dependence the engine
 * tests use — the full record → replay → divergence-detection loop on
 * the speculation engine, including fault composition and the
 * EngineStats/Trace reconciliation of a forced abort.
 */

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sim_executor.hpp"
#include "exec/thread_executor.hpp"
#include "observability/trace.hpp"
#include "replay/fault_plan.hpp"
#include "replay/record_log.hpp"
#include "replay/session.hpp"
#include "sdi/spec_engine.hpp"
#include "support/rng.hpp"
#include "support/seed_sequence.hpp"

namespace {

using namespace stats;
using sdi::SpecConfig;

// =====================================================================
// Varint / zigzag codec
// =====================================================================

TEST(Varint, RoundTripsBoundaryValues)
{
    const std::uint64_t values[] = {
        0,   1,   127,        128,        16383, 16384,
        ~0ULL >> 1, ~0ULL, 0x8000000000000000ULL, 42};
    for (std::uint64_t value : values) {
        std::string buffer;
        replay::putVarint(buffer, value);
        std::size_t pos = 0;
        std::uint64_t decoded = 0;
        ASSERT_TRUE(replay::getVarint(buffer, pos, decoded));
        EXPECT_EQ(decoded, value);
        EXPECT_EQ(pos, buffer.size());
    }
}

TEST(Varint, DetectsTruncation)
{
    std::string buffer;
    replay::putVarint(buffer, 1ULL << 40);
    buffer.resize(buffer.size() - 1); // Drop the terminating byte.
    std::size_t pos = 0;
    std::uint64_t decoded = 0;
    EXPECT_FALSE(replay::getVarint(buffer, pos, decoded));
}

TEST(Zigzag, RoundTripsSignedValues)
{
    const std::int64_t values[] = {0, -1, 1, -2, 2, 1LL << 62,
                                   -(1LL << 62), INT64_MIN, INT64_MAX};
    for (std::int64_t value : values)
        EXPECT_EQ(replay::zigzagDecode(replay::zigzagEncode(value)),
                  value);
    // Small magnitudes stay small (the point of the encoding).
    EXPECT_LE(replay::zigzagEncode(-3), 8u);
}

// =====================================================================
// RecordLog serialization
// =====================================================================

replay::RecordLog
sampleLog()
{
    replay::RecordLog log;
    log.rootSeed = 1234;
    log.setMeta("benchmark", "swaptions");
    log.setMeta("mode", "par");

    replay::Record begin;
    begin.kind = replay::RecordKind::RunBegin;
    begin.payload = replay::encodeConfig(
        {1, 4, 4, 2, 1, 8, 1, 1088});
    log.records.push_back(begin);

    replay::Record verdict;
    verdict.kind = replay::RecordKind::MatchVerdict;
    verdict.epoch = 1;
    verdict.group = 1;
    verdict.a = -1;
    log.records.push_back(verdict);

    replay::Record end;
    end.kind = replay::RecordKind::RunEnd;
    end.epoch = 2;
    end.payload = replay::encodeStats({4, 1, 1, 0, 0, 20});
    log.records.push_back(end);
    return log;
}

TEST(RecordLog, SaveLoadRoundTrip)
{
    const replay::RecordLog log = sampleLog();
    const std::string bytes = log.saveToString();

    std::istringstream in(bytes);
    std::string error;
    const auto loaded = replay::RecordLog::load(in, error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_EQ(loaded->rootSeed, log.rootSeed);
    EXPECT_EQ(loaded->metadata, log.metadata);
    ASSERT_EQ(loaded->records.size(), log.records.size());
    for (std::size_t i = 0; i < log.records.size(); ++i)
        EXPECT_EQ(loaded->records[i], log.records[i]) << "record " << i;
    EXPECT_EQ(loaded->runCount(), 1u);
    EXPECT_EQ(loaded->meta("benchmark", ""), "swaptions");
    EXPECT_EQ(loaded->meta("absent", "fallback"), "fallback");

    // Decoders recover the fingerprints.
    const auto config =
        replay::decodeConfig(loaded->records[0].payload);
    ASSERT_TRUE(config.has_value());
    EXPECT_EQ(config->groupSize, 4);
    EXPECT_EQ(config->inputCount, 1088);
    const auto stats = replay::decodeStats(loaded->records[2].payload);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->validations, 4);
}

TEST(RecordLog, SerializationIsDeterministic)
{
    EXPECT_EQ(sampleLog().saveToString(), sampleLog().saveToString());
}

TEST(RecordLog, RejectsCorruptInputs)
{
    const std::string good = sampleLog().saveToString();
    std::string error;

    const auto tryLoad = [&](const std::string &bytes) {
        std::istringstream in(bytes);
        return replay::RecordLog::load(in, error);
    };

    EXPECT_FALSE(tryLoad("not a log at all").has_value());
    EXPECT_NE(error.find("magic"), std::string::npos);

    EXPECT_FALSE(tryLoad(good.substr(0, good.size() / 2)).has_value());

    std::string versioned = good;
    versioned[4] = 99; // Schema version byte follows the magic.
    EXPECT_FALSE(tryLoad(versioned).has_value());
    EXPECT_NE(error.find("version"), std::string::npos);

    EXPECT_FALSE(tryLoad(good + "junk").has_value());
    EXPECT_NE(error.find("trailer"), std::string::npos);

    const auto ok = tryLoad(good);
    EXPECT_TRUE(ok.has_value());
}

TEST(RecordLog, EveryRecordKindHasAName)
{
    for (int k = 0; k < replay::kRecordKindCount; ++k) {
        const char *name =
            replay::recordKindName(static_cast<replay::RecordKind>(k));
        EXPECT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
    }
}

// =====================================================================
// SeedSequence
// =====================================================================

TEST(SeedSequence, DerivationIsDeterministicAndStreamSeparated)
{
    const support::SeedSequence a(42);
    const support::SeedSequence b(42);
    EXPECT_EQ(a.derive("workload"), b.derive("workload"));
    EXPECT_EQ(a.derive("run", 3), b.derive("run", 3));

    // Distinct streams, indices, and roots give distinct seeds.
    EXPECT_NE(a.derive("workload"), a.derive("run"));
    EXPECT_NE(a.derive("run", 0), a.derive("run", 1));
    EXPECT_NE(a.derive("workload"),
              support::SeedSequence(43).derive("workload"));

    // Order independence: deriving is pure, not stateful.
    const std::uint64_t first = a.derive("x");
    (void)a.derive("y");
    (void)a.derive("z", 7);
    EXPECT_EQ(a.derive("x"), first);
}

TEST(SeedSequence, ChildSequencesAreIndependent)
{
    const support::SeedSequence root(7);
    const support::SeedSequence tuner = root.child("tuner");
    EXPECT_EQ(tuner.root(), root.derive("tuner"));
    EXPECT_NE(tuner.derive("bandit"), root.derive("bandit"));
    // Reconstructible from the same path.
    EXPECT_EQ(root.child("tuner").derive("bandit"),
              tuner.derive("bandit"));
}

TEST(ScopedDeterministicSeeds, ScopesNest)
{
    // Inner scopes pin, and leaving them restores the outer pin
    // including its counter position — what lets a per-run pin
    // compose with record mode's process-wide pin.
    const support::ScopedDeterministicSeeds outer(100);
    const std::uint64_t a = support::entropySeed();
    {
        const support::ScopedDeterministicSeeds inner(200);
        const std::uint64_t inner_first = support::entropySeed();
        {
            const support::ScopedDeterministicSeeds again(200);
            EXPECT_EQ(support::entropySeed(), inner_first);
        }
    }
    const std::uint64_t b = support::entropySeed();
    EXPECT_NE(a, b); // The outer counter kept advancing.

    // The whole outer sequence is reproducible.
    std::uint64_t replayed_a, replayed_b;
    {
        const support::ScopedDeterministicSeeds outer2(100);
        replayed_a = support::entropySeed();
        {
            const support::ScopedDeterministicSeeds inner2(200);
            (void)support::entropySeed();
            {
                const support::ScopedDeterministicSeeds again2(200);
                (void)support::entropySeed();
            }
        }
        replayed_b = support::entropySeed();
    }
    EXPECT_EQ(a, replayed_a);
    EXPECT_EQ(b, replayed_b);
}

// =====================================================================
// FaultPlan
// =====================================================================

TEST(FaultPlan, ParsesTheFullGrammar)
{
    std::string error;
    const auto plan = replay::FaultPlan::parse(
        "seed=9; mismatch@g3, mismatch@g7; storm=0.25; corrupt@g2; "
        "corrupt=0.5; stall=150us; stallp=0.75; mistrain=0.1",
        error);
    ASSERT_TRUE(plan.has_value()) << error;
    EXPECT_EQ(plan->seed, 9u);
    EXPECT_EQ(plan->mismatchGroups,
              (std::vector<std::int64_t>{3, 7}));
    EXPECT_DOUBLE_EQ(plan->stormProbability, 0.25);
    EXPECT_EQ(plan->corruptGroups, (std::vector<std::int64_t>{2}));
    EXPECT_DOUBLE_EQ(plan->corruptProbability, 0.5);
    EXPECT_DOUBLE_EQ(plan->stallMicros, 150.0);
    EXPECT_DOUBLE_EQ(plan->stallProbability, 0.75);
    EXPECT_DOUBLE_EQ(plan->mistrainAmplitude, 0.1);
    EXPECT_TRUE(plan->active());

    // describe() round-trips through parse().
    const auto reparsed =
        replay::FaultPlan::parse(plan->describe(), error);
    ASSERT_TRUE(reparsed.has_value()) << error;
    EXPECT_EQ(reparsed->describe(), plan->describe());
}

TEST(FaultPlan, RejectsMalformedSpecs)
{
    std::string error;
    EXPECT_FALSE(replay::FaultPlan::parse("bogus=1", error));
    EXPECT_NE(error.find("bogus"), std::string::npos);
    EXPECT_FALSE(replay::FaultPlan::parse("storm=1.5", error));
    EXPECT_FALSE(replay::FaultPlan::parse("mismatch@x3", error));
    EXPECT_FALSE(replay::FaultPlan::parse("mismatch", error));
    EXPECT_FALSE(replay::FaultPlan::parse("stall=-2", error));
    EXPECT_FALSE(replay::FaultPlan::fromSpec("storm=nope", error));
}

TEST(FaultPlan, DefaultPlanIsInert)
{
    const replay::FaultPlan plan;
    EXPECT_FALSE(plan.active());
    EXPECT_FALSE(plan.forcesMismatch(0, 0));
    EXPECT_FALSE(plan.corruptsSpecState(0, 0));
    EXPECT_DOUBLE_EQ(plan.stallSeconds(0, 0), 0.0);
    EXPECT_DOUBLE_EQ(plan.mistrainFactor(0), 1.0);
}

TEST(FaultPlan, DecisionsAreOrderIndependentHashes)
{
    std::string error;
    const auto plan =
        replay::FaultPlan::parse("storm=0.5; seed=11", error);
    ASSERT_TRUE(plan.has_value()) << error;

    // Same coordinates always answer the same, no matter how many
    // other questions were asked in between.
    const bool first = plan->forcesMismatch(2, 17);
    for (int i = 0; i < 100; ++i)
        (void)plan->forcesMismatch(i, i);
    EXPECT_EQ(plan->forcesMismatch(2, 17), first);

    // A storm at p=0.5 actually injects (and spares) some sites.
    int hits = 0;
    for (int g = 0; g < 200; ++g)
        hits += plan->forcesMismatch(0, g) ? 1 : 0;
    EXPECT_GT(hits, 50);
    EXPECT_LT(hits, 150);

    // A different seed picks different sites.
    const auto other =
        replay::FaultPlan::parse("storm=0.5; seed=12", error);
    ASSERT_TRUE(other.has_value());
    int diffs = 0;
    for (int g = 0; g < 200; ++g) {
        if (plan->forcesMismatch(0, g) != other->forcesMismatch(0, g))
            ++diffs;
    }
    EXPECT_GT(diffs, 0);

    // Mistrain factors stay within the amplitude band.
    const auto mistrain =
        replay::FaultPlan::parse("mistrain=0.2", error);
    ASSERT_TRUE(mistrain.has_value());
    for (std::uint64_t i = 0; i < 100; ++i) {
        const double factor = mistrain->mistrainFactor(i);
        EXPECT_GE(factor, 0.8);
        EXPECT_LE(factor, 1.2);
        EXPECT_DOUBLE_EQ(factor, mistrain->mistrainFactor(i));
    }
}

// =====================================================================
// Toy engine harness (same semantics as spec_engine_test.cpp)
// =====================================================================

struct ToyState
{
    long long v = 0;
    bool operator==(const ToyState &other) const { return v == other.v; }
};

struct ToyOutput
{
    long long observedPriorState;
    int input;
};

using Engine = sdi::SpecEngine<int, ToyState, ToyOutput>;

/** Noise by (input position, attempt number); default 0. */
class NoiseModel
{
  public:
    void
    set(int input, int attempt, long long noise)
    {
        _noise[{input, attempt}] = noise;
    }

    long long
    next(int input)
    {
        const int attempt = _attempts[input]++;
        auto it = _noise.find({input, attempt});
        return it == _noise.end() ? 0 : it->second;
    }

  private:
    std::map<std::pair<int, int>, long long> _noise;
    std::map<int, int> _attempts;
};

Engine::ComputeFn
makeCompute(std::shared_ptr<NoiseModel> noise)
{
    return [noise](const int &input, ToyState &state,
                   const sdi::ComputeContext &ctx) -> Engine::Invocation {
        auto out = std::make_unique<ToyOutput>();
        out->observedPriorState = state.v;
        out->input = input;
        const long long n =
            (!ctx.auxiliary && noise) ? noise->next(input) : 0;
        state.v = static_cast<long long>(input) * 10 + n;
        return {std::move(out), exec::Work{0.001, 0.0}};
    };
}

Engine::MatchFn
exactAnyMatcher()
{
    return [](const ToyState &spec,
              const std::vector<ToyState> &originals) -> int {
        for (std::size_t i = 0; i < originals.size(); ++i) {
            if (originals[i] == spec)
                return static_cast<int>(i);
        }
        return -1;
    };
}

std::vector<int>
makeInputs(int n)
{
    std::vector<int> inputs;
    for (int i = 1; i <= n; ++i)
        inputs.push_back(i);
    return inputs;
}

sim::MachineConfig
simMachine()
{
    sim::MachineConfig config;
    config.dispatchOverhead = 0.0;
    return config;
}

SpecConfig
toyConfig()
{
    SpecConfig config;
    config.groupSize = 4;
    config.auxWindow = 1;
    config.sdThreads = 8;
    config.maxReexecutions = 1;
    return config;
}

/** Run the toy engine once on the simulator; return its stats. */
sdi::EngineStats
runToyEngine(const std::vector<int> &inputs,
             std::shared_ptr<NoiseModel> noise = nullptr,
             std::vector<long long> *outputs = nullptr)
{
    exec::SimExecutor ex(simMachine(), 8);
    Engine engine(ex, inputs, ToyState{}, makeCompute(std::move(noise)),
                  makeCompute(nullptr), exactAnyMatcher(), toyConfig());
    engine.start();
    engine.join();
    if (outputs) {
        outputs->clear();
        for (const auto &out : engine.outputs())
            outputs->push_back(out->observedPriorState);
    }
    return engine.stats();
}

/**
 * Fixture guaranteeing the global session is quiet before and after
 * each test (the session is process-global; leaked state would bleed
 * between tests).
 */
class ReplaySessionTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        auto &session = replay::ReplaySession::global();
        ASSERT_EQ(session.mode(), replay::Mode::Off);
        session.setFaultPlan(replay::FaultPlan{});
        ASSERT_FALSE(session.engaged());
    }

    void
    TearDown() override
    {
        auto &session = replay::ReplaySession::global();
        if (session.mode() == replay::Mode::Record)
            (void)session.finishRecording();
        if (session.mode() == replay::Mode::Replay)
            (void)session.finishReplay();
        session.setFaultPlan(replay::FaultPlan{});
        obs::Trace::global().disable();
    }

    /** Record one toy-engine run and return its log. */
    replay::RecordLog
    recordToyRun(const std::vector<int> &inputs,
                 std::vector<long long> *outputs = nullptr)
    {
        auto &session = replay::ReplaySession::global();
        session.startRecording(/* root seed */ 77);
        (void)runToyEngine(inputs, nullptr, outputs);
        return session.finishRecording();
    }
};

// =====================================================================
// Record → replay on the engine
// =====================================================================

TEST_F(ReplaySessionTest, RecordCapturesTheChoicePointSequence)
{
    const replay::RecordLog log = recordToyRun(makeInputs(20));

    EXPECT_EQ(log.rootSeed, 77u);
    EXPECT_EQ(log.runCount(), 1u);
    ASSERT_GE(log.records.size(), 2u);
    EXPECT_EQ(log.records.front().kind, replay::RecordKind::RunBegin);
    EXPECT_EQ(log.records.back().kind, replay::RecordKind::RunEnd);

    // 5 groups: 4 validations (all match) and 5 commits.
    int verdicts = 0, commits = 0;
    for (const auto &record : log.records) {
        verdicts +=
            record.kind == replay::RecordKind::MatchVerdict ? 1 : 0;
        commits += record.kind == replay::RecordKind::Commit ? 1 : 0;
    }
    EXPECT_EQ(verdicts, 4);
    EXPECT_EQ(commits, 5);

    // Epochs are the dense per-run record ordinals.
    for (std::size_t i = 0; i < log.records.size(); ++i)
        EXPECT_EQ(log.records[i].epoch, i) << "record " << i;
}

TEST_F(ReplaySessionTest, CleanReplayMatchesEverything)
{
    std::vector<long long> recorded_outputs;
    const replay::RecordLog log =
        recordToyRun(makeInputs(20), &recorded_outputs);
    const std::size_t total = log.records.size();

    auto &session = replay::ReplaySession::global();
    std::vector<long long> replayed_outputs;
    session.startReplay(log);
    (void)runToyEngine(makeInputs(20), nullptr, &replayed_outputs);
    const replay::ReplayReport report = session.finishReplay();

    EXPECT_FALSE(report.diverged) << report.first.describe();
    EXPECT_EQ(report.recordsMatched, total);
    EXPECT_EQ(report.runsReplayed, 1u);
    EXPECT_EQ(replayed_outputs, recorded_outputs);
}

TEST_F(ReplaySessionTest, InProcessDoubleRecordIsByteIdentical)
{
    const replay::RecordLog a = recordToyRun(makeInputs(24));
    const replay::RecordLog b = recordToyRun(makeInputs(24));
    EXPECT_EQ(a.saveToString(), b.saveToString());
}

TEST_F(ReplaySessionTest, FlippedVerdictIsReportedAsValueDivergence)
{
    replay::RecordLog log = recordToyRun(makeInputs(20));

    // Seed a bad log: flip the first MatchVerdict from "matched 0" to
    // "mismatch". The replayed engine computes 0, the log says -1.
    std::size_t flipped = 0;
    for (std::size_t i = 0; i < log.records.size(); ++i) {
        if (log.records[i].kind == replay::RecordKind::MatchVerdict) {
            log.records[i].a = -1;
            flipped = i;
            break;
        }
    }
    ASSERT_GT(flipped, 0u);

    auto &session = replay::ReplaySession::global();
    session.startReplay(log);
    (void)runToyEngine(makeInputs(20));
    const replay::ReplayReport report = session.finishReplay();

    ASSERT_TRUE(report.diverged);
    EXPECT_EQ(report.first.epoch, flipped);
    EXPECT_EQ(report.first.expectedKind,
              replay::RecordKind::MatchVerdict);
    EXPECT_EQ(report.first.actualKind,
              replay::RecordKind::MatchVerdict);
    EXPECT_EQ(report.first.expectedValue, -1);
    EXPECT_EQ(report.first.actualValue, 0);
    // The report's one-liner names the epoch and both values.
    const std::string what = report.first.describe();
    EXPECT_NE(what.find("MatchVerdict"), std::string::npos);
    EXPECT_NE(what.find("-1"), std::string::npos);
}

TEST_F(ReplaySessionTest, ForcedVerdictKeepsReplayOnTheRecordedPath)
{
    // Record WITH a fault that aborts speculation; replay the log
    // without the plan. The verdict diverges (computed 0, logged -1)
    // but replay forces the logged value, so the replayed engine
    // still aborts exactly like the recording did.
    auto &session = replay::ReplaySession::global();
    std::string error;
    const auto plan =
        replay::FaultPlan::parse("mismatch@g2", error);
    ASSERT_TRUE(plan.has_value()) << error;

    session.setFaultPlan(*plan);
    session.startRecording(77);
    const sdi::EngineStats faulted = runToyEngine(makeInputs(20));
    replay::RecordLog log = session.finishRecording();
    session.setFaultPlan(replay::FaultPlan{});

    EXPECT_EQ(faulted.aborts, 1);

    session.startReplay(log);
    const sdi::EngineStats replayed = runToyEngine(makeInputs(20));
    const replay::ReplayReport report = session.finishReplay();

    EXPECT_TRUE(report.diverged); // The fault isn't there anymore...
    EXPECT_EQ(replayed.aborts, faulted.aborts); // ...but it's forced.
    EXPECT_EQ(replayed.mismatches, faulted.mismatches);
    EXPECT_EQ(replayed.squashedGroups, faulted.squashedGroups);
}

TEST_F(ReplaySessionTest, StructuralDivergenceStopsConsumingTheLog)
{
    replay::RecordLog log = recordToyRun(makeInputs(20));

    // Seed a bad log: change the first Commit's group, a structural
    // skew (the engine commits group 0 first, always).
    for (auto &record : log.records) {
        if (record.kind == replay::RecordKind::Commit) {
            record.group = 3;
            break;
        }
    }

    auto &session = replay::ReplaySession::global();
    session.startReplay(log);
    (void)runToyEngine(makeInputs(20));
    const replay::ReplayReport report = session.finishReplay();

    ASSERT_TRUE(report.diverged);
    EXPECT_EQ(report.first.expectedKind, replay::RecordKind::Commit);
    EXPECT_EQ(report.first.expectedGroup, 3);
    EXPECT_EQ(report.first.actualGroup, 0);
}

TEST_F(ReplaySessionTest, TruncatedLogDivergesWhenRecordsRemain)
{
    // Replaying a 24-input log against a 20-input run: the log
    // expects more records than the execution produces.
    const replay::RecordLog log = recordToyRun(makeInputs(24));
    auto &session = replay::ReplaySession::global();
    session.startReplay(log);
    (void)runToyEngine(makeInputs(20));
    const replay::ReplayReport report = session.finishReplay();
    EXPECT_TRUE(report.diverged);
}

TEST_F(ReplaySessionTest, FaultedRecordingReplaysExactlyUnderSamePlan)
{
    auto &session = replay::ReplaySession::global();
    std::string error;
    const auto plan = replay::FaultPlan::parse(
        "mismatch@g2; corrupt@g4; seed=5", error);
    ASSERT_TRUE(plan.has_value()) << error;

    session.setFaultPlan(*plan);
    session.startRecording(77);
    const sdi::EngineStats recorded = runToyEngine(makeInputs(32));
    replay::RecordLog log = session.finishRecording();
    const std::size_t total = log.records.size();

    // FaultInjected annotations made it into the log.
    int injected = 0;
    for (const auto &record : log.records) {
        injected +=
            record.kind == replay::RecordKind::FaultInjected ? 1 : 0;
    }
    EXPECT_GT(injected, 0);

    // Same plan still installed: replay reproduces every record.
    session.startReplay(std::move(log));
    const sdi::EngineStats replayed = runToyEngine(makeInputs(32));
    const replay::ReplayReport report = session.finishReplay();

    EXPECT_FALSE(report.diverged) << report.first.describe();
    EXPECT_EQ(report.recordsMatched, total);
    EXPECT_EQ(replayed.aborts, recorded.aborts);
    EXPECT_EQ(replayed.mismatches, recorded.mismatches);
}

TEST_F(ReplaySessionTest, CorruptStateFaultForcesMismatch)
{
    auto &session = replay::ReplaySession::global();
    std::string error;
    const auto plan = replay::FaultPlan::parse("corrupt@g1", error);
    ASSERT_TRUE(plan.has_value()) << error;

    const std::uint64_t before =
        session.faultCount(replay::FaultKind::CorruptState);
    session.setFaultPlan(*plan);
    const sdi::EngineStats stats = runToyEngine(makeInputs(20));
    session.setFaultPlan(replay::FaultPlan{});

    // The stale state cannot match any original final, so group 1's
    // validation mismatches and the producer re-executes.
    EXPECT_GE(stats.mismatches, 1);
    EXPECT_EQ(session.faultCount(replay::FaultKind::CorruptState),
              before + 1);
}

// =====================================================================
// Forced-abort reconciliation: EngineStats vs Trace events
// =====================================================================

TEST_F(ReplaySessionTest, EngineStatsReconcileWithTraceAcrossAbort)
{
    if (!STATS_OBS_ENABLED)
        GTEST_SKIP() << "tracing compiled out (STATS_OBS_DISABLE)";
    auto &session = replay::ReplaySession::global();
    std::string error;
    // maxReexecutions = 1, so two forced mismatches of group 2 abort.
    const auto plan = replay::FaultPlan::parse("mismatch@g2", error);
    ASSERT_TRUE(plan.has_value()) << error;
    session.setFaultPlan(*plan);

    obs::Trace::global().enable();
    const sdi::EngineStats stats = runToyEngine(makeInputs(32));
    const auto events = obs::Trace::global().collect();
    obs::Trace::global().disable();
    session.setFaultPlan(replay::FaultPlan{});

    ASSERT_EQ(stats.aborts, 1);

    std::map<obs::EventType, int> counts;
    for (const auto &event : events)
        ++counts[event.type];

    // Every stats counter the abort path touches has its event-stream
    // counterpart.
    EXPECT_EQ(counts[obs::EventType::Abort], stats.aborts);
    EXPECT_EQ(counts[obs::EventType::Squash],
              static_cast<int>(stats.squashedGroups));
    EXPECT_EQ(counts[obs::EventType::ValidateMismatch],
              static_cast<int>(stats.mismatches));
    EXPECT_EQ(counts[obs::EventType::Rollback],
              static_cast<int>(stats.reexecutions));
    EXPECT_EQ(counts[obs::EventType::Commit] +
                  static_cast<int>(stats.squashedGroups),
              static_cast<int>(stats.groups));
    // The injections that caused it all are visible in the trace.
    EXPECT_EQ(counts[obs::EventType::FaultInjected],
              static_cast<int>(stats.mismatches));
    EXPECT_EQ(counts[obs::EventType::ReplayDivergence], 0);
}

// =====================================================================
// Stalled-worker faults on the real thread pool
// =====================================================================

TEST_F(ReplaySessionTest, StalledWorkersDelayButDoNotCorrupt)
{
    auto &session = replay::ReplaySession::global();
    std::string error;
    const auto plan =
        replay::FaultPlan::parse("stall=200us; stallp=0.5", error);
    ASSERT_TRUE(plan.has_value()) << error;
    session.setFaultPlan(*plan);

    const std::uint64_t before =
        session.faultCount(replay::FaultKind::StalledWorker);
    const auto inputs = makeInputs(24);
    exec::ThreadExecutor ex(4);
    Engine engine(ex, inputs, ToyState{}, makeCompute(nullptr),
                  makeCompute(nullptr), exactAnyMatcher(), toyConfig());
    engine.start();
    engine.join();
    session.setFaultPlan(replay::FaultPlan{});

    // Outputs stay correct under the induced timing chaos...
    ASSERT_EQ(engine.outputs().size(), inputs.size());
    long long prior = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        EXPECT_EQ(engine.outputs()[i]->observedPriorState, prior);
        prior = static_cast<long long>(inputs[i]) * 10;
    }
    // ...and some tasks really were stalled (p=0.5 over ~11 tasks).
    EXPECT_GT(session.faultCount(replay::FaultKind::StalledWorker),
              before);
}

// =====================================================================
// Mistrain faults
// =====================================================================

TEST_F(ReplaySessionTest, MistrainPerturbsObjectivesDeterministically)
{
    auto &session = replay::ReplaySession::global();
    EXPECT_DOUBLE_EQ(session.mistrainObjective(10.0), 10.0);

    std::string error;
    const auto plan =
        replay::FaultPlan::parse("mistrain=0.5; seed=3", error);
    ASSERT_TRUE(plan.has_value()) << error;
    session.setFaultPlan(*plan);

    const std::uint64_t before =
        session.faultCount(replay::FaultKind::Mistrain);
    bool perturbed = false;
    for (int i = 0; i < 8; ++i) {
        const double value = session.mistrainObjective(10.0);
        EXPECT_GE(value, 5.0);
        EXPECT_LE(value, 15.0);
        perturbed = perturbed || value != 10.0;
    }
    EXPECT_TRUE(perturbed);
    EXPECT_EQ(session.faultCount(replay::FaultKind::Mistrain),
              before + 8);
    session.setFaultPlan(replay::FaultPlan{});
}

// =====================================================================
// Documentation lockstep (docs/REPLAY.md)
// =====================================================================

std::string
readRepoFile(const std::string &relative)
{
    const std::string path =
        std::string(STATS_SOURCE_DIR) + "/" + relative;
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

TEST(ReplayDocs, DocumentationCoversTheSchema)
{
    const std::string doc = readRepoFile("docs/REPLAY.md");
    ASSERT_FALSE(doc.empty());

    // The documented schema version matches the code.
    EXPECT_NE(doc.find("version: **" +
                       std::to_string(replay::kLogSchemaVersion) +
                       "**"),
              std::string::npos)
        << "docs/REPLAY.md does not state log schema version "
        << replay::kLogSchemaVersion;

    // Every record kind and fault kind is documented by name.
    for (int k = 0; k < replay::kRecordKindCount; ++k) {
        const std::string name =
            replay::recordKindName(static_cast<replay::RecordKind>(k));
        EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
            << "docs/REPLAY.md does not document record kind " << name;
    }
    for (int k = 0; k < replay::kFaultKindCount; ++k) {
        const std::string name =
            replay::faultKindName(static_cast<replay::FaultKind>(k));
        EXPECT_NE(doc.find("`" + name + "`"), std::string::npos)
            << "docs/REPLAY.md does not document fault kind " << name;
    }

    // The fault-plan grammar keys are documented.
    for (const char *key : {"mismatch@g", "storm=", "corrupt=",
                            "stall=", "stallp=", "mistrain=", "seed="}) {
        EXPECT_NE(doc.find(key), std::string::npos)
            << "docs/REPLAY.md does not document fault clause " << key;
    }
}

} // namespace
