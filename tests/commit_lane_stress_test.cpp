/**
 * @file
 * Stress tests for the thread executor's lock-free commit lane
 * (docs/INTERNALS.md §4): serialized completions are pushed onto a
 * Treiber stack and drained by exactly one elected worker, replacing
 * the former pool-wide commit mutex.
 *
 * What must hold under storms:
 *  - mutual exclusion: at most one serialized callback runs at a
 *    time (the engine mutates its bookkeeping there without locks);
 *  - conservation: every serialized completion runs exactly once —
 *    none lost in a drainer handoff race, none run twice;
 *  - commit-order protocol: under validation-mismatch storms (replay
 *    FaultPlan) and steal storms, the engine's Commit trace stream
 *    stays strictly frontier-ordered and the committed outputs equal
 *    the sequential reference.
 *
 * Runs under the `stress` ctest label, so the tsan/ubsan CI jobs pick
 * it up (docs/TESTING.md).
 */

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/thread_executor.hpp"
#include "observability/trace.hpp"
#include "replay/fault_plan.hpp"
#include "replay/session.hpp"
#include "sdi/spec_engine.hpp"

namespace {

using namespace stats;

TEST(CommitLaneStress, SerializedCompletionsAreMutuallyExclusive)
{
    exec::ThreadExecutor ex(8);
    constexpr int kProducers = 4;
    constexpr int kTasksPerProducer = 1500;
    constexpr int kTotal = kProducers * kTasksPerProducer;

    std::atomic<bool> in_lane{false};
    std::atomic<int> overlaps{0};
    // Deliberately unsynchronized: the commit lane's serialization is
    // the only thing making this vector safe. tsan verifies it.
    std::vector<int> completions;
    completions.reserve(kTotal);

    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&ex, &in_lane, &overlaps, &completions,
                                p] {
            for (int i = 0; i < kTasksPerProducer; ++i) {
                exec::Task task;
                const int id = p * kTasksPerProducer + i;
                task.run = [] { return exec::Work{0.0, 0.0}; };
                task.onComplete = [&in_lane, &overlaps, &completions,
                                   id] {
                    if (in_lane.exchange(true,
                                         std::memory_order_acquire))
                        overlaps.fetch_add(1,
                                           std::memory_order_relaxed);
                    completions.push_back(id);
                    in_lane.store(false, std::memory_order_release);
                };
                ex.submit(std::move(task));
            }
        });
    }
    for (auto &producer : producers)
        producer.join();
    ex.drain();

    EXPECT_EQ(overlaps.load(), 0) << "two callbacks ran concurrently";
    ASSERT_EQ(completions.size(), std::size_t(kTotal));
    std::set<int> unique(completions.begin(), completions.end());
    EXPECT_EQ(unique.size(), std::size_t(kTotal))
        << "a completion ran twice (and another was lost)";

    const auto stats = ex.commitStats();
    EXPECT_EQ(stats.laneEnqueues, std::uint64_t(kTotal));
}

TEST(CommitLaneStress, DrainerHandoffLosesNothingAcrossWaves)
{
    // Many small waves: each drain() is a full quiescent point, so a
    // single stranded record (the classic release-recheck race) shows
    // up as a missing completion in that wave, not as end-of-test
    // noise.
    exec::ThreadExecutor ex(4);
    std::atomic<int> completed{0};
    int expected = 0;
    for (int wave = 0; wave < 200; ++wave) {
        const int count = 1 + (wave * 7) % 23;
        for (int i = 0; i < count; ++i) {
            exec::Task task;
            task.run = [] { return exec::Work{0.0, 0.0}; };
            task.onComplete = [&completed] {
                completed.fetch_add(1, std::memory_order_relaxed);
            };
            ex.submit(std::move(task));
        }
        expected += count;
        ex.drain();
        ASSERT_EQ(completed.load(), expected) << "wave " << wave;
    }
}

TEST(CommitLaneStress, CompletionChainsSurviveStealStorms)
{
    // Serialized completions that submit follow-up work: the chain's
    // next link enters the pool from whatever worker drained the
    // lane, so links hop workers (steal storms on an oversubscribed
    // pool). Chain order within each chain must still be sequential.
    exec::ThreadExecutor ex(8);
    constexpr int kChains = 16;
    constexpr int kLinks = 300;
    std::vector<int> progress(kChains, 0);
    std::atomic<int> broken{0};

    // Each chain link verifies it is its chain's next expected link.
    struct Chain
    {
        exec::ThreadExecutor *ex;
        std::vector<int> *progress;
        std::atomic<int> *broken;
        int chain;
        int link;

        void
        operator()() const
        {
            if ((*progress)[std::size_t(chain)] != link)
                broken->fetch_add(1, std::memory_order_relaxed);
            (*progress)[std::size_t(chain)] = link + 1;
            if (link + 1 == kLinks)
                return;
            exec::Task next;
            next.run = [] { return exec::Work{0.0, 0.0}; };
            next.onComplete =
                Chain{ex, progress, broken, chain, link + 1};
            ex->submit(std::move(next));
        }
    };

    for (int c = 0; c < kChains; ++c) {
        exec::Task task;
        task.run = [] { return exec::Work{0.0, 0.0}; };
        task.onComplete = Chain{&ex, &progress, &broken, c, 0};
        ex.submit(std::move(task));
    }
    ex.drain();

    EXPECT_EQ(broken.load(), 0);
    for (int c = 0; c < kChains; ++c)
        EXPECT_EQ(progress[std::size_t(c)], kLinks) << "chain " << c;
}

// ---------------------------------------------------------------------
// Engine commit protocol under mismatch storms (replay FaultPlan).

struct ToyState
{
    long long v = 0;
};

struct ToyOutput
{
    long long observedPriorState;
    int input;
};

using Engine = sdi::SpecEngine<int, ToyState, ToyOutput>;

Engine::ComputeFn
toyCompute()
{
    return [](const int &input, ToyState &state,
              const sdi::ComputeContext &) -> Engine::Invocation {
        auto out = std::make_unique<ToyOutput>();
        out->observedPriorState = state.v;
        out->input = input;
        state.v = static_cast<long long>(input) * 10;
        return {std::move(out), exec::Work{0.0001, 0.0}};
    };
}

Engine::MatchFn
exactMatcher()
{
    return [](const ToyState &spec,
              const std::vector<ToyState> &originals) -> int {
        for (std::size_t i = 0; i < originals.size(); ++i) {
            if (originals[i].v == spec.v)
                return static_cast<int>(i);
        }
        return -1;
    };
}

TEST(CommitLaneStress, MismatchStormsPreserveCommitOrder)
{
    const int n = 80;
    std::vector<int> inputs;
    for (int i = 1; i <= n; ++i)
        inputs.push_back(i);

    // Sequential reference (the toy dependence is deterministic, so
    // even abort-recovery must reproduce it exactly).
    std::vector<long long> want_prior;
    {
        ToyState state;
        for (int input : inputs) {
            want_prior.push_back(state.v);
            state.v = static_cast<long long>(input) * 10;
        }
    }

    auto &session = replay::ReplaySession::global();
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        std::string error;
        const auto plan = replay::FaultPlan::parse(
            "seed=" + std::to_string(seed) + ";storm=0.3", error);
        ASSERT_TRUE(plan.has_value()) << error;
        session.setFaultPlan(*plan);
        obs::Trace::global().enable();

        exec::ThreadExecutor ex(8);
        sdi::SpecConfig config;
        config.groupSize = 5;
        config.auxWindow = 1;
        config.maxReexecutions = 1;
        config.sdThreads = 8;
        Engine engine(ex, inputs, ToyState{}, toyCompute(),
                      toyCompute(), exactMatcher(), config);
        engine.start();
        engine.join();

        // No lost or duplicated commits: the committed stream is the
        // sequential one, whatever the storm squashed along the way.
        ASSERT_EQ(engine.outputs().size(), inputs.size());
        for (std::size_t i = 0; i < want_prior.size(); ++i) {
            ASSERT_EQ(engine.outputs()[i]->observedPriorState,
                      want_prior[i])
                << "seed " << seed << " position " << i;
        }

        // Commit-order protocol: Commit events are emitted from the
        // serialized lane with strictly increasing group indices, and
        // FrontierAdvance never moves backwards.
        const auto events = obs::Trace::global().collect();
        std::int64_t last_commit = -1;
        std::int64_t frontier = 0;
        std::int64_t commits = 0;
        for (const auto &event : events) {
            if (event.type == obs::EventType::Commit) {
                EXPECT_GT(event.group, last_commit)
                    << "seed " << seed
                    << ": commit out of frontier order";
                last_commit = event.group;
                ++commits;
            } else if (event.type ==
                       obs::EventType::FrontierAdvance) {
                EXPECT_GE(event.arg, frontier) << "seed " << seed;
                frontier = event.arg;
            }
        }
        const auto &stats = engine.stats();
        // Group 0 commits without validation; every other committed
        // group passed exactly one successful validation.
        EXPECT_EQ(commits, stats.validations + 1) << "seed " << seed;
        if (stats.aborts > 0)
            EXPECT_GT(stats.squashedGroups, 0) << "seed " << seed;

        // The committed path flowed through the lock-free lane.
        EXPECT_GT(ex.commitStats().laneEnqueues, 0u);

        obs::Trace::global().disable();
        obs::Trace::global().clear();
        session.setFaultPlan(replay::FaultPlan{});
    }
}

} // namespace
