/**
 * @file
 * Unit tests for the discrete-event many-core simulator: placement,
 * FIFO gang scheduling, Hyper-Threading speed sharing, the NUMA
 * penalty, cancellation, and activity accounting.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/machine.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace stats;
using sim::MachineConfig;
using sim::Simulator;

MachineConfig
paperMachine(bool ht = false)
{
    MachineConfig config;
    config.sockets = 2;
    config.coresPerSocket = 14;
    config.hyperThreading = ht;
    config.dispatchOverhead = 0.0; // Exact arithmetic in tests.
    return config;
}

exec::Task
unitTask(double work, double mem_bound = 0.0, int width = 1,
         std::function<void()> done = {})
{
    exec::Task task;
    task.width = width;
    task.run = [work, mem_bound] { return exec::Work{work, mem_bound}; };
    task.onComplete = std::move(done);
    return task;
}

TEST(Machine, PlacementFillsPhysicalCoresFirst)
{
    const auto placement = sim::placeThreads(paperMachine(true), 30);
    ASSERT_EQ(placement.size(), 30u);
    // First 28 logical cores are the 28 physical cores (hw thread 0).
    for (int i = 0; i < 28; ++i)
        EXPECT_EQ(placement[static_cast<std::size_t>(i)].hwThread, 0);
    // 29th and 30th are HT siblings.
    EXPECT_EQ(placement[28].hwThread, 1);
    EXPECT_EQ(placement[29].hwThread, 1);
    // Sockets alternate in 14-core blocks.
    EXPECT_EQ(placement[0].socket, 0);
    EXPECT_EQ(placement[13].socket, 0);
    EXPECT_EQ(placement[14].socket, 1);
}

TEST(Machine, SingleSocketPlacementUsesSiblingsBeforeSocket1)
{
    auto config = paperMachine(true);
    config.placement = MachineConfig::Placement::SingleSocketFirst;
    const auto placement = sim::placeThreads(config, 28);
    for (const auto &core : placement)
        EXPECT_EQ(core.socket, 0);
    EXPECT_EQ(placement[14].hwThread, 1);
    EXPECT_FALSE(sim::spansSockets(placement));
}

TEST(Machine, ClampsToCapacity)
{
    const auto placement = sim::placeThreads(paperMachine(false), 100);
    EXPECT_EQ(placement.size(), 28u);
}

TEST(Simulator, SequentialOnOneCore)
{
    Simulator sim(paperMachine(), 1);
    sim.submit(unitTask(1.0));
    sim.submit(unitTask(2.0));
    sim.run();
    EXPECT_NEAR(sim.activity().makespan, 3.0, 1e-9);
    EXPECT_NEAR(sim.activity().busyCoreSeconds, 3.0, 1e-9);
    EXPECT_EQ(sim.activity().tasksRun, 2u);
}

TEST(Simulator, ParallelOnTwoCores)
{
    Simulator sim(paperMachine(), 2);
    sim.submit(unitTask(1.0));
    sim.submit(unitTask(1.0));
    sim.run();
    EXPECT_NEAR(sim.activity().makespan, 1.0, 1e-9);
    EXPECT_NEAR(sim.activity().busyCoreSeconds, 2.0, 1e-9);
}

TEST(Simulator, GangTaskOccupiesWidthCores)
{
    Simulator sim(paperMachine(), 4);
    sim.submit(unitTask(1.0, 0.0, 4));
    sim.run();
    EXPECT_NEAR(sim.activity().makespan, 1.0, 1e-9);
    EXPECT_NEAR(sim.activity().busyCoreSeconds, 4.0, 1e-9);
}

TEST(Simulator, FifoHeadBlocksUntilGangFits)
{
    // width-2 gang must wait for both width-1 tasks (FIFO order).
    Simulator sim(paperMachine(), 2);
    sim.submit(unitTask(1.0));
    sim.submit(unitTask(2.0));
    sim.submit(unitTask(1.0, 0.0, 2));
    sim.run();
    // Cores free at t=2 (the longer width-1 task), gang ends at t=3.
    EXPECT_NEAR(sim.activity().makespan, 3.0, 1e-9);
}

TEST(Simulator, HyperThreadingSharesAPhysicalCore)
{
    // One physical core, two HT threads: two 1.0-work tasks run
    // concurrently at htSpeedFactor each.
    auto config = paperMachine(true);
    config.sockets = 1;
    config.coresPerSocket = 1;
    Simulator sim(config, 2);
    sim.submit(unitTask(1.0));
    sim.submit(unitTask(1.0));
    sim.run();
    EXPECT_NEAR(sim.activity().makespan, 1.0 / 0.65, 1e-9);
}

TEST(Simulator, HyperThreadingRescalesWhenSiblingFinishes)
{
    // Task A: 0.65 work; task B: 1.30 work, sharing one physical core.
    // Both run at 0.65 until A finishes at t=1.0 (A consumed 0.65).
    // B then has 1.30 - 0.65 = 0.65 work left at speed 1.0 -> ends at
    // t = 1.0 + 0.65 = 1.65.
    auto config = paperMachine(true);
    config.sockets = 1;
    config.coresPerSocket = 1;
    Simulator sim(config, 2);
    sim.submit(unitTask(0.65));
    sim.submit(unitTask(1.30));
    sim.run();
    EXPECT_NEAR(sim.activity().makespan, 1.65, 1e-9);
}

TEST(Simulator, NumaPenaltyAppliesOnlyAcrossSockets)
{
    // 14 threads: single socket, no penalty.
    {
        Simulator sim(paperMachine(), 14);
        EXPECT_FALSE(sim.numaActive());
        sim.submit(unitTask(1.0, /* memBound */ 1.0));
        sim.run();
        EXPECT_NEAR(sim.activity().makespan, 1.0, 1e-9);
    }
    // 15 threads: spans sockets, memory-bound work stretched.
    {
        Simulator sim(paperMachine(), 15);
        EXPECT_TRUE(sim.numaActive());
        sim.submit(unitTask(1.0, 1.0));
        sim.run();
        EXPECT_NEAR(sim.activity().makespan, 1.45, 1e-9);
    }
    // Mixed task: only the memory-bound half is stretched.
    {
        Simulator sim(paperMachine(), 15);
        sim.submit(unitTask(1.0, 0.5));
        sim.run();
        EXPECT_NEAR(sim.activity().makespan, 0.5 + 0.5 * 1.45, 1e-9);
    }
}

TEST(Simulator, CancelledTaskSkipsWorkButCompletes)
{
    Simulator sim(paperMachine(), 1);
    bool completed = false;
    auto task = unitTask(100.0, 0.0, 1, [&] { completed = true; });
    task.cancel = exec::makeCancelToken();
    task.cancel->store(true);
    sim.submit(std::move(task));
    sim.run();
    EXPECT_TRUE(completed);
    EXPECT_NEAR(sim.activity().makespan, 0.0, 1e-9);
    EXPECT_EQ(sim.activity().tasksCancelled, 1u);
    EXPECT_EQ(sim.activity().tasksRun, 0u);
}

TEST(Simulator, TasksSubmittedFromCallbacksRun)
{
    Simulator sim(paperMachine(), 2);
    int chain = 0;
    std::function<void()> submit_next = [&] {
        if (++chain < 5) {
            sim.submit(unitTask(1.0, 0.0, 1, submit_next));
        }
    };
    sim.submit(unitTask(1.0, 0.0, 1, submit_next));
    sim.run();
    EXPECT_EQ(chain, 5);
    EXPECT_NEAR(sim.activity().makespan, 5.0, 1e-9);
}

TEST(Simulator, DispatchOverheadIsAccounted)
{
    auto config = paperMachine();
    config.dispatchOverhead = 0.25;
    Simulator sim(config, 1);
    sim.submit(unitTask(1.0));
    sim.run();
    EXPECT_NEAR(sim.activity().makespan, 1.25, 1e-9);
}

TEST(Simulator, WidthClampedToThreads)
{
    Simulator sim(paperMachine(), 2);
    sim.submit(unitTask(1.0, 0.0, /* width */ 16));
    sim.run();
    EXPECT_NEAR(sim.activity().busyCoreSeconds, 2.0, 1e-9);
}

TEST(Simulator, ManyTasksSaturateAllCores)
{
    Simulator sim(paperMachine(), 28);
    for (int i = 0; i < 280; ++i)
        sim.submit(unitTask(1.0));
    sim.run();
    EXPECT_NEAR(sim.activity().makespan, 10.0, 1e-9);
    EXPECT_NEAR(sim.activity().busyCoreSeconds, 280.0, 1e-9);
}

} // namespace
