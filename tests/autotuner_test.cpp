/**
 * @file
 * Tests of the autotuner: techniques, the AUC bandit, convergence on
 * synthetic objectives, caching, and exhaustion of small spaces.
 */

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "autotuner/bandit.hpp"
#include "autotuner/technique.hpp"
#include "autotuner/tuner.hpp"

namespace {

using namespace stats;
using namespace stats::autotuner;

tradeoff::StateSpace
bowlSpace(std::size_t dims, std::int64_t cardinality)
{
    tradeoff::StateSpace space;
    for (std::size_t d = 0; d < dims; ++d)
        space.add("d" + std::to_string(d), cardinality, 0);
    return space;
}

/** Quadratic bowl with minimum at index `target` in every dimension. */
Autotuner::Objective
bowl(std::int64_t target)
{
    return [target](const tradeoff::Configuration &config) {
        double total = 0.0;
        for (const auto v : config) {
            const double d = static_cast<double>(v - target);
            total += d * d;
        }
        return total;
    };
}

TEST(Techniques, ProposalsAreAlwaysValid)
{
    const auto space = bowlSpace(6, 9);
    support::Xoshiro256 rng(3);
    std::vector<EvalRecord> history;
    EvalRecord best{space.defaultConfiguration(), 1.0};

    for (auto &technique : defaultTechniques()) {
        TuningContext context(space, rng, history, &best);
        for (int i = 0; i < 50; ++i) {
            const auto config = technique->propose(context);
            EXPECT_TRUE(space.valid(config)) << technique->name();
            technique->feedback(config, 1.0, false);
        }
    }
}

TEST(Techniques, GreedyMutationStaysNearBest)
{
    const auto space = bowlSpace(8, 10);
    support::Xoshiro256 rng(5);
    std::vector<EvalRecord> history;
    EvalRecord best{space.defaultConfiguration(), 1.0};
    GreedyMutation technique;
    TuningContext context(space, rng, history, &best);
    const auto config = technique.propose(context);
    std::size_t changed = 0;
    for (std::size_t d = 0; d < config.size(); ++d)
        changed += config[d] != best.config[d];
    EXPECT_LE(changed, 2u);
}

TEST(Techniques, PatternSearchStepsOneDimension)
{
    const auto space = bowlSpace(4, 10);
    support::Xoshiro256 rng(5);
    std::vector<EvalRecord> history;
    tradeoff::Configuration center{5, 5, 5, 5};
    EvalRecord best{center, 1.0};
    PatternSearch technique;
    TuningContext context(space, rng, history, &best);
    for (int i = 0; i < 8; ++i) {
        const auto config = technique.propose(context);
        int total_delta = 0;
        for (std::size_t d = 0; d < config.size(); ++d)
            total_delta += std::abs(static_cast<int>(config[d] - 5));
        EXPECT_EQ(total_delta, 1);
    }
}

TEST(Bandit, PlaysEveryArmOnce)
{
    AucBandit bandit(4);
    std::set<std::size_t> played;
    for (int i = 0; i < 4; ++i) {
        const auto arm = bandit.select();
        played.insert(arm);
        bandit.reward(arm, false);
    }
    EXPECT_EQ(played.size(), 4u);
}

TEST(Bandit, PrefersSuccessfulArm)
{
    AucBandit bandit(2, 20, /* low exploration */ 0.01);
    for (int i = 0; i < 30; ++i) {
        const auto arm = bandit.select();
        bandit.reward(arm, arm == 1);
    }
    int wins = 0;
    for (int i = 0; i < 20; ++i) {
        const auto arm = bandit.select();
        wins += arm == 1;
        bandit.reward(arm, arm == 1);
    }
    EXPECT_GT(wins, 15);
}

TEST(Bandit, CreditWeightsRecentOutcomes)
{
    AucBandit bandit(1, 10, 0.0);
    // Old success, then failures: credit decays.
    bandit.reward(0, true);
    const double fresh = bandit.credit(0);
    for (int i = 0; i < 5; ++i)
        bandit.reward(0, false);
    EXPECT_LT(bandit.credit(0), fresh);
}

TEST(Autotuner, ConvergesOnQuadraticBowl)
{
    const auto space = bowlSpace(6, 9); // 531441 points.
    Autotuner tuner(space, 17);
    const auto result = tuner.tune(bowl(4), 120);
    // Within 120 evaluations the ensemble should be essentially at
    // the optimum (objective 0 at all-4s).
    EXPECT_LE(result.bestObjective, 2.0);
    EXPECT_LE(result.evaluations, 120);
}

TEST(Autotuner, TraceIsMonotoneNonIncreasing)
{
    Autotuner tuner(bowlSpace(4, 8), 23);
    const auto result = tuner.tune(bowl(3), 60);
    for (std::size_t i = 1; i < result.trace.size(); ++i)
        EXPECT_LE(result.trace[i], result.trace[i - 1]);
}

TEST(Autotuner, CachesRepeatedConfigurations)
{
    int calls = 0;
    Autotuner tuner(bowlSpace(2, 3), 7); // Tiny space: 9 points.
    const auto objective = [&](const tradeoff::Configuration &config) {
        ++calls;
        return bowl(1)(config);
    };
    const auto result = tuner.tune(objective, 100);
    // Exhausting the 9-point space stops the search: the objective
    // can never be called more than 9 times.
    EXPECT_LE(calls, 9);
    EXPECT_EQ(result.bestObjective, 0.0);
}

TEST(Autotuner, EvaluatesDefaultConfigurationFirst)
{
    tradeoff::StateSpace space;
    space.add("a", 5, 2);
    space.add("b", 5, 3);
    Autotuner tuner(space, 1);
    tradeoff::Configuration first;
    const auto objective = [&](const tradeoff::Configuration &config) {
        if (first.empty())
            first = config;
        return 1.0;
    };
    tuner.tune(objective, 5);
    EXPECT_EQ(first, space.defaultConfiguration());
}

TEST(Autotuner, DifferentSeedsMayDiverge)
{
    // The paper: "The autotuner uses nondeterminism for better
    // exploration; different searches may find different best
    // configurations." The search paths must differ.
    const auto space = bowlSpace(5, 7);
    Autotuner a(space, 1), b(space, 2);
    const auto ra = a.tune(bowl(2), 30);
    const auto rb = b.tune(bowl(2), 30);
    EXPECT_NE(ra.trace, rb.trace);
}


TEST(Autotuner, SeedsAreEvaluatedBeforeTheSearch)
{
    tradeoff::StateSpace space;
    space.add("a", 9, 0);
    Autotuner tuner(space, 3);
    std::vector<tradeoff::Configuration> order;
    const auto objective = [&](const tradeoff::Configuration &config) {
        order.push_back(config);
        return 1.0;
    };
    tuner.tune(objective, 6, {{7}, {3}});
    ASSERT_GE(order.size(), 3u);
    EXPECT_EQ(order[0], space.defaultConfiguration());
    EXPECT_EQ(order[1], (tradeoff::Configuration{7}));
    EXPECT_EQ(order[2], (tradeoff::Configuration{3}));
}

TEST(Autotuner, InvalidSeedsAreIgnored)
{
    tradeoff::StateSpace space;
    space.add("a", 4, 0);
    Autotuner tuner(space, 5);
    const auto result = tuner.tune(bowl(1), 8, {{99}, {-1, 0}});
    EXPECT_LE(result.bestObjective, 9.0); // Search still ran fine.
}

} // namespace
