/**
 * @file
 * Unit tests of the generative-testing subsystem (src/testing/): the
 * generator's determinism contract, the case serialization round
 * trip, the oracle's verdicts on known-good and known-bad cases, and
 * the shrinker's guarantees (failure kind preserved, result smaller).
 */

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "ir/verifier.hpp"
#include "testing/fuzz_case.hpp"
#include "testing/generator.hpp"
#include "testing/oracle.hpp"
#include "testing/shrinker.hpp"

namespace {

using namespace stats;
using namespace stats::testing;

// ---------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------

TEST(FuzzGenerator, SameSeedAndIndexIsByteIdentical)
{
    const FuzzCase a = generateCase(5, 3);
    const FuzzCase b = generateCase(5, 3);
    EXPECT_EQ(serializeCase(a), serializeCase(b));
}

TEST(FuzzGenerator, DifferentIndicesDiffer)
{
    EXPECT_NE(serializeCase(generateCase(5, 3)),
              serializeCase(generateCase(5, 4)));
    EXPECT_NE(serializeCase(generateCase(5, 3)),
              serializeCase(generateCase(6, 3)));
}

TEST(FuzzGenerator, ValidCasesPassTheVerifier)
{
    for (std::uint64_t index : {0u, 1u, 2u, 4u, 5u, 9u, 12u}) {
        const FuzzCase fuzz_case = generateCase(17, index);
        ASSERT_EQ(fuzz_case.expect, Expectation::Pass) << index;
        EXPECT_TRUE(ir::verifyModule(fuzz_case.module).empty())
            << "case " << index;
        EXPECT_FALSE(fuzz_case.module.stateDeps.empty()) << index;
    }
}

TEST(FuzzGenerator, NearMissCadenceProducesRejectCases)
{
    GeneratorOptions options;
    options.nearMissEvery = 8;
    // Indices 7, 15, 23, ... are near-misses; everything else passes.
    std::set<std::string> stages;
    for (std::uint64_t index : {7u, 15u, 23u, 31u, 39u}) {
        const FuzzCase fuzz_case = generateCase(17, index, options);
        ASSERT_EQ(fuzz_case.expect, Expectation::Reject) << index;
        ASSERT_FALSE(fuzz_case.expectStage.empty()) << index;
        EXPECT_TRUE(fuzz_case.scenario.faults.empty()) << index;
        stages.insert(fuzz_case.expectStage);
    }
    for (const auto &stage : stages)
        EXPECT_TRUE(stage == "verify" || stage == "analysis") << stage;
}

TEST(FuzzGenerator, FaultCadenceAttachesFaultPlans)
{
    GeneratorOptions options;
    options.faultsEvery = 4;
    options.nearMissEvery = 0;
    const FuzzCase with = generateCase(17, 3, options);
    const FuzzCase without = generateCase(17, 4, options);
    EXPECT_FALSE(with.scenario.faults.empty());
    EXPECT_TRUE(without.scenario.faults.empty());
}

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

TEST(FuzzCaseFormat, SerializeParseRoundTripIsExact)
{
    for (std::uint64_t index : {0u, 3u, 7u}) {
        const FuzzCase original = generateCase(23, index);
        const std::string text = serializeCase(original);
        std::string error;
        const auto parsed = parseCase(text, error);
        ASSERT_TRUE(parsed.has_value()) << error;
        EXPECT_EQ(serializeCase(*parsed), text) << "index " << index;
    }
}

TEST(FuzzCaseFormat, BadScenarioTokensAreRejected)
{
    std::string error;
    EXPECT_FALSE(parseCase("; fuzz-case: v1\n; bogus=1\n\nmodule \"m\"\n",
                           error)
                     .has_value());
    EXPECT_FALSE(error.empty());
    EXPECT_FALSE(parseCase("module \"m\"\n", error).has_value());
}

// ---------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------

TEST(FuzzOracle, GeneratedPassCasesHoldTheDifferentialProperty)
{
    for (std::uint64_t index : {0u, 1u, 2u}) {
        const FuzzCase fuzz_case = generateCase(29, index);
        const OracleResult result = runOracle(fuzz_case);
        EXPECT_TRUE(result.ok)
            << "case " << index << ": " << result.failKind << " at "
            << result.stage << ": " << result.detail;
        EXPECT_FALSE(result.sequentialFinals.empty());
    }
}

TEST(FuzzOracle, VerdictsAreDeterministic)
{
    const FuzzCase fuzz_case = generateCase(31, 3);
    const OracleResult a = runOracle(fuzz_case);
    const OracleResult b = runOracle(fuzz_case);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.sequentialFinals, b.sequentialFinals);
    EXPECT_EQ(a.cleanStats.validations, b.cleanStats.validations);
    EXPECT_EQ(a.cleanStats.aborts, b.cleanStats.aborts);
}

TEST(FuzzOracle, NearMissCasesAreRejectedAtTheirStage)
{
    bool saw_reject = false;
    for (std::uint64_t index : {7u, 15u, 23u}) {
        const FuzzCase fuzz_case = generateCase(29, index);
        if (fuzz_case.expect != Expectation::Reject)
            continue;
        const OracleResult result = runOracle(fuzz_case);
        EXPECT_TRUE(result.ok) << result.detail;
        EXPECT_TRUE(result.rejected);
        EXPECT_EQ(result.stage, fuzz_case.expectStage);
        saw_reject = true;
    }
    EXPECT_TRUE(saw_reject);
}

TEST(FuzzOracle, AcceptedNearMissIsAFailure)
{
    // A valid module marked reject must yield missed-rejection: the
    // oracle's own failure path, which the shrinker test reuses.
    FuzzCase fuzz_case = generateCase(29, 0);
    fuzz_case.expect = Expectation::Reject;
    fuzz_case.expectStage = "verify";
    const OracleResult result = runOracle(fuzz_case);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.failKind, "missed-rejection");
}

TEST(FuzzOracle, NoiseModelIsPureAndGated)
{
    EXPECT_EQ(noiseFor(9, 4, 1, 50, 3), noiseFor(9, 4, 1, 50, 3));
    EXPECT_EQ(noiseFor(9, 4, 1, 0, 3), 0);
    for (int attempt = 0; attempt < 16; ++attempt) {
        const long long noise = noiseFor(9, 4, attempt, 100, 3);
        EXPECT_GE(noise, 0);
        EXPECT_LE(noise, 3);
    }
}

TEST(FuzzOracle, WrapStateConfinesToDomain)
{
    EXPECT_EQ(wrapState(0), 0);
    EXPECT_EQ(wrapState((1LL << 20) + 5), 5);
    EXPECT_GE(wrapState(-3), 0);
    EXPECT_LT(wrapState(-3), 1LL << 20);
}

TEST(FuzzOracle, LegalAttemptsTracksReexecutionBudget)
{
    Scenario scenario;
    scenario.config.maxReexecutions = 0;
    EXPECT_EQ(legalAttempts(scenario), 2);
    scenario.config.maxReexecutions = 3;
    EXPECT_EQ(legalAttempts(scenario), 5);
}

// ---------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------

TEST(FuzzShrinker, PreservesFailureKindAndReducesTheCase)
{
    FuzzCase failing = generateCase(37, 2);
    failing.expect = Expectation::Reject; // Valid module: must fail.
    failing.expectStage = "verify";

    ShrinkOptions options;
    options.maxEvaluations = 120;
    const ShrinkResult result = shrinkCase(failing, options);
    EXPECT_EQ(result.failKind, "missed-rejection");
    EXPECT_LE(result.minimized.scenario.inputs,
              failing.scenario.inputs);
    EXPECT_LE(result.minimized.module.instructionCount(),
              failing.module.instructionCount());
    // The minimized case still fails the same way.
    const OracleResult check = runOracle(result.minimized);
    EXPECT_FALSE(check.ok);
    EXPECT_EQ(check.failKind, "missed-rejection");
}

TEST(FuzzShrinker, PassingCaseIsReturnedUnchanged)
{
    const FuzzCase passing = generateCase(37, 0);
    const ShrinkResult result = shrinkCase(passing);
    EXPECT_FALSE(result.changed);
    EXPECT_TRUE(result.failKind.empty());
    EXPECT_EQ(serializeCase(result.minimized), serializeCase(passing));
}

} // namespace
