/**
 * @file
 * Golden-file tests of the bytecode disassembler (src/ir/disasm.cpp,
 * `statscc disasm`). The goldens pin the whole lowering pipeline
 * byte-for-byte — register allocation, superinstruction fusion,
 * constant pools, call-site tables — so an accidental change to the
 * compiler's output shows up as a readable diff, the same way the
 * analyzer goldens pin the diagnostic renderers.
 *
 * Goldens are regenerated from the repo root with:
 *   build/statscc disasm examples/ir/<name>.ir > tests/golden/<name>.disasm
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "ir/bytecode.hpp"
#include "ir/disasm.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"

namespace {

using namespace stats;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::string
disassembleExample(const std::string &name)
{
    const std::string source = readFile(
        std::string(STATS_SOURCE_DIR) + "/examples/ir/" + name + ".ir");
    const ir::Module module = ir::parseModule(source);
    EXPECT_TRUE(ir::verifyModule(module).empty()) << name;
    return ir::bc::disassemble(ir::bc::compileModule(module));
}

TEST(DisasmGolden, ExamplesMatchGoldensByteForByte)
{
    for (const char *name : {"loop_phi", "pipeline"}) {
        const std::string golden =
            readFile(std::string(STATS_SOURCE_DIR) + "/tests/golden/" +
                     name + ".disasm");
        EXPECT_EQ(disassembleExample(name), golden) << name;
    }
}

/** The textual form round-trips enough structure to be greppable:
 *  every compiled function header carries its register count. */
TEST(DisasmGolden, HeadersCarryRegisterCounts)
{
    const std::string text = disassembleExample("loop_phi");
    EXPECT_NE(text.find("func @sumTo"), std::string::npos);
    EXPECT_NE(text.find("; regs="), std::string::npos);
}

} // namespace
