/**
 * @file
 * Property-based tests of the speculation engine: randomized
 * configurations and randomized nondeterminism-injection patterns
 * must always preserve the invariants of the execution model
 * (paper section 3.1), on both executors.
 *
 * Invariants checked per scenario:
 *  I1  exactly one output per input, in input order;
 *  I2  every output observes a state value that SOME attempt of the
 *      original producer could have written (chain validity);
 *  I3  counter consistency: at most one abort; commits + squashes
 *      account for all groups; re-executions never exceed the
 *      configured budget per mismatch chain;
 *  I4  with a window >= the state's memory and no noise, zero aborts.
 */

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "exec/sim_executor.hpp"
#include "exec/thread_executor.hpp"
#include "sdi/spec_engine.hpp"
#include "support/rng.hpp"
#include "support/seed_sequence.hpp"

namespace {

using namespace stats;
using sdi::SpecConfig;

/**
 * Every scenario in this file derives from this one root via
 * support::SeedSequence, so a failure reproduces from a single number:
 * change kRootSeed here (or bump it to re-roll every scenario at
 * once), and the failing test's SCOPED_TRACE names the stream and
 * index to re-derive.
 */
constexpr std::uint64_t kRootSeed = 0x57a7557a75ULL;

std::uint64_t
scenarioSeed(const char *stream, int index)
{
    return support::SeedSequence(kRootSeed)
        .derive(stream, static_cast<std::uint64_t>(index));
}

struct ToyState
{
    long long v = 0;
    bool operator==(const ToyState &o) const { return v == o.v; }
};

struct ToyOutput
{
    long long observed;
    int input;
};

using Engine = sdi::SpecEngine<int, ToyState, ToyOutput>;

/** Deterministic pseudo-noise for (input, attempt). */
long long
noiseFor(int input, int attempt, std::uint64_t scenario_seed,
         int noisy_percent, int max_noise)
{
    std::uint64_t h = scenario_seed;
    h ^= static_cast<std::uint64_t>(input) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<std::uint64_t>(attempt) * 0xbf58476d1ce4e5b9ULL;
    h = support::splitmix64(h);
    if (static_cast<int>(h % 100) >= noisy_percent)
        return 0;
    return static_cast<long long>((h >> 8) %
                                  static_cast<std::uint64_t>(max_noise +
                                                             1));
}

struct Scenario
{
    int n;
    SpecConfig config;
    std::uint64_t seed;
    int noisyPercent;
    int maxNoise;
};

/** Runs one scenario and checks the invariants. */
void
checkScenario(const Scenario &scenario, exec::Executor &executor)
{
    std::vector<int> inputs;
    for (int i = 1; i <= scenario.n; ++i)
        inputs.push_back(i);

    // Attempt counters are shared between compute invocations; the
    // SimExecutor runs them sequentially, and the ThreadExecutor
    // variant only uses noise-free scenarios (see the suites below).
    auto attempts = std::make_shared<std::map<int, int>>();
    const auto compute =
        [&, attempts](const int &input, ToyState &state,
                      const sdi::ComputeContext &ctx) ->
        Engine::Invocation {
            long long noise = 0;
            // The attempt map is only touched in noisy scenarios,
            // which run on the (sequential) simulated executor; the
            // real-thread suite uses noise-free scenarios.
            if (!ctx.auxiliary && scenario.noisyPercent > 0) {
                const int attempt = (*attempts)[input]++;
                noise = noiseFor(input, attempt, scenario.seed,
                                 scenario.noisyPercent,
                                 scenario.maxNoise);
            }
            auto out = std::make_unique<ToyOutput>();
            out->observed = state.v;
            out->input = input;
            state.v = static_cast<long long>(input) * 100 + noise;
            return {std::move(out), exec::Work{1e-3, 0.0}};
        };

    const auto matcher = [](const ToyState &spec,
                            const std::vector<ToyState> &originals) {
        for (std::size_t i = 0; i < originals.size(); ++i) {
            if (originals[i] == spec)
                return static_cast<int>(i);
        }
        return -1;
    };

    Engine engine(executor, inputs, ToyState{}, compute, compute,
                  matcher, scenario.config);
    engine.start();
    engine.join();

    // I1: one output per input, in order.
    ASSERT_EQ(engine.outputs().size(), inputs.size());
    for (std::size_t i = 0; i < inputs.size(); ++i)
        EXPECT_EQ(engine.outputs()[i]->input, inputs[i]);

    // I2: chain validity — observed state is one an attempt of the
    // previous input could have written.
    const int max_attempts = scenario.config.maxReexecutions + 2;
    for (std::size_t i = 1; i < inputs.size(); ++i) {
        const long long observed = engine.outputs()[i]->observed;
        bool feasible = false;
        for (int attempt = 0; attempt < max_attempts; ++attempt) {
            const long long candidate =
                static_cast<long long>(inputs[i - 1]) * 100 +
                noiseFor(inputs[i - 1], attempt, scenario.seed,
                         scenario.noisyPercent, scenario.maxNoise);
            feasible |= observed == candidate;
        }
        EXPECT_TRUE(feasible)
            << "position " << i << " observed " << observed;
    }
    EXPECT_EQ(engine.outputs()[0]->observed, 0);

    // I3: counters.
    const auto &stats = engine.stats();
    EXPECT_LE(stats.aborts, 1);
    EXPECT_GE(stats.invocations,
              static_cast<std::int64_t>(inputs.size()));
    if (stats.groups > 0) {
        EXPECT_LE(stats.validations + stats.squashedGroups + 1,
                  stats.groups + 1);
    }

    // I4: noise-free scenarios with window >= 1 never abort (the toy
    // state's memory is one input).
    if (scenario.noisyPercent == 0 && scenario.config.auxWindow >= 1 &&
        scenario.config.useAuxiliary) {
        EXPECT_EQ(stats.aborts, 0);
        EXPECT_EQ(stats.mismatches, 0);
    }
}

Scenario
randomScenario(std::uint64_t seed, bool with_noise)
{
    support::Xoshiro256 rng(seed);
    Scenario scenario;
    scenario.n = static_cast<int>(rng.uniformInt(3, 120));
    scenario.config.groupSize = static_cast<int>(rng.uniformInt(1, 16));
    scenario.config.auxWindow =
        static_cast<int>(rng.uniformInt(with_noise ? 0 : 1, 6));
    scenario.config.maxReexecutions =
        static_cast<int>(rng.uniformInt(0, 3));
    scenario.config.rollbackDepth =
        static_cast<int>(rng.uniformInt(1, 5));
    scenario.config.sdThreads = static_cast<int>(rng.uniformInt(1, 32));
    scenario.config.innerThreads =
        static_cast<int>(rng.uniformInt(1, 4));
    scenario.seed = support::SeedSequence(seed).derive("noise");
    scenario.noisyPercent =
        with_noise ? static_cast<int>(rng.uniformInt(5, 60)) : 0;
    scenario.maxNoise = 3;
    return scenario;
}

class EnginePropertySim : public ::testing::TestWithParam<int>
{
};

TEST_P(EnginePropertySim, RandomNoisyScenarioHoldsInvariants)
{
    SCOPED_TRACE("root seed " + std::to_string(kRootSeed) +
                 ", stream \"sim\", index " +
                 std::to_string(GetParam()));
    const std::uint64_t seed = scenarioSeed("sim", GetParam());
    const Scenario scenario = randomScenario(seed, /* noise */ true);
    sim::MachineConfig machine;
    machine.dispatchOverhead = 0.0;
    exec::SimExecutor executor(machine, 16);
    checkScenario(scenario, executor);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, EnginePropertySim,
                         ::testing::Range(1, 61));

class EnginePropertyThreads : public ::testing::TestWithParam<int>
{
};

TEST_P(EnginePropertyThreads, RandomCleanScenarioHoldsInvariants)
{
    SCOPED_TRACE("root seed " + std::to_string(kRootSeed) +
                 ", stream \"threads\", index " +
                 std::to_string(GetParam()));
    const std::uint64_t seed = scenarioSeed("threads", GetParam());
    const Scenario scenario = randomScenario(seed, /* noise */ false);
    exec::ThreadExecutor executor(4);
    checkScenario(scenario, executor);
}

INSTANTIATE_TEST_SUITE_P(Fuzz, EnginePropertyThreads,
                         ::testing::Range(1, 21));

} // namespace
