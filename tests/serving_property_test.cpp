/**
 * @file
 * Property-based tests of the serving scheduler (docs/SERVING.md §4):
 * randomized tenant sets, weights, priorities, and lane caps must
 * always preserve the WDRR + batching invariants, with and without
 * the multi-worker blocked-key filter.
 *
 * Invariants checked per scenario:
 *  S1  conservation / no starvation: every enqueued plan is
 *      dispatched exactly once and the scheduler drains in a bounded
 *      number of nextBatch calls;
 *  S2  fusion soundness: every batch is single-key, no larger than
 *      its smallest member's lane cap, and multi-plan only when the
 *      members are batchable;
 *  S3  deficit bounds: while every tenant stays backlogged, tenant
 *      t's share of any dispatch prefix is within one full round of
 *      weight_t / Σweights (bounded unfairness);
 *  S4  blocked keys: a batch whose members are batchable never
 *      carries a compatibility key the caller declared in flight,
 *      and skips never forfeit service once the key frees up.
 *
 * Every scenario derives from one root seed via support::SeedSequence
 * and each failure message prints it, so one number reproduces a run.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "serving/execution_plan.hpp"
#include "serving/scheduler.hpp"
#include "support/rng.hpp"
#include "support/seed_sequence.hpp"

namespace {

using namespace stats;
using serving::ExecutionPlan;
using serving::JobKind;
using serving::PlanScheduler;
using serving::QueuedPlan;

constexpr std::uint64_t kRootSeed = 0x5e21f1ab1e5e21fULL;

std::uint64_t
scenarioSeed(const char *stream, int index)
{
    return support::SeedSequence(kRootSeed)
        .derive(stream, static_cast<std::uint64_t>(index));
}

/** "root seed 0x… stream/index" for every assertion in a scenario. */
std::string
seedTag(const char *stream, int index)
{
    char buffer[96];
    std::snprintf(buffer, sizeof buffer,
                  "root seed 0x%llx (%s/%d)",
                  static_cast<unsigned long long>(kRootSeed), stream,
                  index);
    return buffer;
}

/** A plan whose program identity is steered via stepBudget. */
ExecutionPlan
makePlan(const std::string &tenant, int lanes, int priority,
         std::uint64_t program)
{
    ExecutionPlan plan;
    plan.kind = JobKind::IrSequential;
    plan.tenant = tenant;
    plan.moduleText = "unused by the scheduler";
    plan.batchLanes = lanes;
    plan.priority = priority;
    // Distinct stepBudget => distinct compatibilityKey, without
    // having to synthesize distinct module text per program.
    plan.stepBudget = 100000 + program;
    return plan;
}

struct DrainStats
{
    /** requestId -> number of times dispatched. */
    std::map<std::uint64_t, int> dispatched;
    std::vector<std::vector<QueuedPlan>> batches;
};

/**
 * Drain the scheduler with S2/S4 checked on every batch; `blocked`
 * picks the in-flight key set per call (may return an empty set).
 */
void
drainChecked(PlanScheduler &scheduler, const std::string &tag,
             const std::function<std::set<std::uint64_t>()> &blocked,
             DrainStats &stats)
{
    // S1: a drain that outlives this bound means some plan is being
    // starved or re-dispatched.
    const std::size_t limit = (scheduler.totalQueued() + 1) * 64;
    std::size_t calls = 0;
    while (!scheduler.empty()) {
        ASSERT_LT(calls++, limit)
            << tag << ": scheduler failed to drain";
        const auto blocked_keys = blocked();
        const auto batch = scheduler.nextBatch(blocked_keys);
        if (batch.empty()) {
            // Everything dispatchable was blocked; the predicate
            // must agree, and an unblocked retry must make progress.
            EXPECT_FALSE(scheduler.dispatchable(blocked_keys)) << tag;
            EXPECT_TRUE(scheduler.dispatchable({})) << tag;
            const auto retry = scheduler.nextBatch({});
            ASSERT_FALSE(retry.empty()) << tag;
            stats.batches.push_back(retry);
        } else {
            stats.batches.push_back(batch);
        }
        const auto &unit = stats.batches.back();
        // S2: single key, bounded by the smallest member's lane cap.
        const std::uint64_t key =
            unit.front().plan->compatibilityKey();
        int min_lanes = unit.front().plan->batchLanes;
        for (const auto &member : unit) {
            EXPECT_EQ(member.plan->compatibilityKey(), key) << tag;
            min_lanes = std::min(min_lanes, member.plan->batchLanes);
            ++stats.dispatched[member.requestId];
        }
        EXPECT_LE(unit.size(),
                  static_cast<std::size_t>(std::max(1, min_lanes)))
            << tag;
        if (unit.size() > 1)
            EXPECT_TRUE(
                unit.front().plan->canBatchWith(*unit.front().plan))
                << tag << ": multi-plan batch of unbatchable plans";
    }
}

// ============================================= Randomized scenarios

TEST(SchedulerPropertyTest, RandomWorkloadsDispatchEveryPlanOnce)
{
    for (int scenario = 0; scenario < 40; ++scenario) {
        const std::string tag = seedTag("conserve", scenario);
        support::Xoshiro256 rng(scenarioSeed("conserve", scenario));
        PlanScheduler scheduler(1.0);

        const int tenants = static_cast<int>(rng.uniformInt(2, 6));
        for (int t = 0; t < tenants; ++t)
            scheduler.setWeight("t" + std::to_string(t),
                                static_cast<int>(rng.uniformInt(1, 8)));

        std::uint64_t next_id = 1;
        std::set<std::uint64_t> all_ids;
        std::set<std::uint64_t> keys_in_play;
        for (int t = 0; t < tenants; ++t) {
            const int plans = static_cast<int>(rng.uniformInt(0, 12));
            for (int p = 0; p < plans; ++p) {
                auto plan = makePlan(
                    "t" + std::to_string(t),
                    static_cast<int>(rng.uniformInt(1, 8)),
                    static_cast<int>(rng.uniformInt(-2, 2)),
                    static_cast<std::uint64_t>(rng.uniformInt(0, 3)));
                keys_in_play.insert(plan.compatibilityKey());
                all_ids.insert(next_id);
                scheduler.enqueue(
                    next_id++,
                    std::make_shared<const ExecutionPlan>(plan));
            }
        }

        // Randomly pretend some keys are in flight on other workers.
        std::vector<std::uint64_t> keys(keys_in_play.begin(),
                                        keys_in_play.end());
        const auto blocked = [&rng, &keys] {
            std::set<std::uint64_t> in_flight;
            for (const auto key : keys)
                if (rng.uniformInt(0, 3) == 0)
                    in_flight.insert(key);
            return in_flight;
        };

        DrainStats stats;
        drainChecked(scheduler, tag, blocked, stats);
        // S1: exactly-once dispatch, nothing lost, nothing repeated.
        EXPECT_EQ(stats.dispatched.size(), all_ids.size()) << tag;
        for (const auto &[id, count] : stats.dispatched) {
            EXPECT_EQ(count, 1) << tag << ": request " << id;
            EXPECT_TRUE(all_ids.count(id)) << tag;
        }
        EXPECT_TRUE(scheduler.empty()) << tag;
    }
}

TEST(SchedulerPropertyTest, BlockedBatchableKeysAreNeverDispatched)
{
    for (int scenario = 0; scenario < 40; ++scenario) {
        const std::string tag = seedTag("blocked", scenario);
        support::Xoshiro256 rng(scenarioSeed("blocked", scenario));
        PlanScheduler scheduler(1.0);

        std::uint64_t next_id = 1;
        std::set<std::uint64_t> keys_in_play;
        const int plans = static_cast<int>(rng.uniformInt(4, 24));
        for (int p = 0; p < plans; ++p) {
            auto plan = makePlan(
                "t" + std::to_string(rng.uniformInt(0, 3)),
                static_cast<int>(rng.uniformInt(1, 6)),
                static_cast<int>(rng.uniformInt(-1, 1)),
                static_cast<std::uint64_t>(rng.uniformInt(0, 2)));
            keys_in_play.insert(plan.compatibilityKey());
            scheduler.enqueue(
                next_id++,
                std::make_shared<const ExecutionPlan>(plan));
        }

        std::vector<std::uint64_t> keys(keys_in_play.begin(),
                                        keys_in_play.end());
        std::set<std::uint64_t> current;
        const auto blocked = [&rng, &keys, &current] {
            current.clear();
            for (const auto key : keys)
                if (rng.uniformInt(0, 1) == 0)
                    current.insert(key);
            return current;
        };

        DrainStats stats;
        drainChecked(scheduler, tag, blocked, stats);
        // S4: drainChecked falls back to an unblocked call when the
        // whole ready set is blocked; every batch that came from a
        // *blocked* call must avoid the declared keys. (Re-check via
        // the batches the checker kept: a batchable unit formed while
        // its key was declared in flight would have tripped the
        // predicate assertions inside drainChecked already — here we
        // confirm every plan still got served, i.e. skipping never
        // starved a key once it freed up.)
        std::size_t served = 0;
        for (const auto &unit : stats.batches)
            served += unit.size();
        EXPECT_EQ(served, static_cast<std::size_t>(plans)) << tag;
    }
}

TEST(SchedulerPropertyTest, BackloggedTenantsGetWeightedShares)
{
    for (int scenario = 0; scenario < 25; ++scenario) {
        const std::string tag = seedTag("wdrr", scenario);
        support::Xoshiro256 rng(scenarioSeed("wdrr", scenario));
        PlanScheduler scheduler(1.0);

        const int tenants = static_cast<int>(rng.uniformInt(2, 5));
        std::vector<int> weight(tenants);
        std::vector<int> backlog(tenants);
        int weight_sum = 0;
        constexpr int kRounds = 6;
        std::uint64_t next_id = 1;
        std::map<std::uint64_t, int> owner;
        for (int t = 0; t < tenants; ++t) {
            weight[t] = static_cast<int>(rng.uniformInt(1, 6));
            weight_sum += weight[t];
            scheduler.setWeight("t" + std::to_string(t), weight[t]);
            // Enough backlog that nobody runs dry mid-measurement.
            backlog[t] = weight[t] * kRounds;
            for (int p = 0; p < backlog[t]; ++p) {
                // Lanes 1: dispatch units are single plans, so the
                // prefix counts below measure pure WDRR service.
                auto plan = makePlan("t" + std::to_string(t), 1, 0,
                                     /*program=*/0);
                owner[next_id] = t;
                scheduler.enqueue(
                    next_id++,
                    std::make_shared<const ExecutionPlan>(plan));
            }
        }

        std::vector<int> served(tenants, 0);
        std::vector<int> remaining = backlog;
        int prefix = 0;
        while (!scheduler.empty()) {
            const auto batch = scheduler.nextBatch();
            ASSERT_EQ(batch.size(), 1u) << tag;
            const int t = owner[batch.front().requestId];
            ++served[t];
            --remaining[t];
            ++prefix;
            // S3: while all tenants are backlogged, nobody drifts
            // more than one full round (weight_t) from the exact
            // weighted share of the prefix.
            const bool all_backlogged =
                *std::min_element(remaining.begin(),
                                  remaining.end()) > 0;
            if (!all_backlogged)
                continue;
            for (int i = 0; i < tenants; ++i) {
                const double share =
                    static_cast<double>(prefix) * weight[i] /
                    weight_sum;
                EXPECT_LE(std::abs(served[i] - share),
                          static_cast<double>(weight[i]) + 1.0)
                    << tag << ": tenant " << i << " after " << prefix
                    << " dispatches";
            }
        }
        for (int t = 0; t < tenants; ++t)
            EXPECT_EQ(served[t], backlog[t]) << tag;
    }
}

} // namespace
