/**
 * @file
 * Tests for the executor implementations: both must run every task,
 * serialize completion callbacks, honor cancellation, and support
 * submission from callbacks — the contract the speculation engine
 * relies on.
 */

#include <atomic>
#include <memory>

#include <gtest/gtest.h>

#include "exec/sim_executor.hpp"
#include "exec/thread_executor.hpp"

namespace {

using namespace stats;

std::unique_ptr<exec::Executor>
makeExecutor(bool simulated, int threads)
{
    if (simulated) {
        sim::MachineConfig config;
        return std::make_unique<exec::SimExecutor>(config, threads);
    }
    return std::make_unique<exec::ThreadExecutor>(threads);
}

class ExecutorContract : public ::testing::TestWithParam<bool>
{
};

TEST_P(ExecutorContract, RunsTasksAndCallbacks)
{
    auto ex = makeExecutor(GetParam(), 4);
    std::atomic<int> ran{0};
    int completed = 0; // Callbacks are serialized: plain int is safe.
    for (int i = 0; i < 32; ++i) {
        exec::Task task;
        task.run = [&ran] {
            ran.fetch_add(1);
            return exec::Work{1e-6, 0.0};
        };
        task.onComplete = [&completed] { ++completed; };
        ex->submit(std::move(task));
    }
    ex->drain();
    EXPECT_EQ(ran.load(), 32);
    EXPECT_EQ(completed, 32);
}

TEST_P(ExecutorContract, CallbackMaySubmit)
{
    auto ex = makeExecutor(GetParam(), 2);
    int depth = 0;
    std::function<void()> chain = [&] {
        if (depth >= 4)
            return;
        ++depth;
        exec::Task task;
        task.run = [] { return exec::Work{1e-6, 0.0}; };
        task.onComplete = chain;
        ex->submit(std::move(task));
    };
    chain();
    ex->drain();
    EXPECT_EQ(depth, 4);
}

TEST_P(ExecutorContract, CancelledTaskSkipsRunButCompletes)
{
    auto ex = makeExecutor(GetParam(), 1);
    std::atomic<bool> ran{false};
    bool completed = false;
    exec::Task task;
    task.cancel = exec::makeCancelToken();
    task.cancel->store(true);
    task.run = [&] {
        ran.store(true);
        return exec::Work{1.0, 0.0};
    };
    task.onComplete = [&] { completed = true; };
    ex->submit(std::move(task));
    ex->drain();
    EXPECT_FALSE(ran.load());
    EXPECT_TRUE(completed);
}

TEST_P(ExecutorContract, ConcurrencyReportsThreads)
{
    auto ex = makeExecutor(GetParam(), 3);
    EXPECT_EQ(ex->concurrency(), 3);
}

TEST_P(ExecutorContract, DrainIsIdempotent)
{
    auto ex = makeExecutor(GetParam(), 2);
    exec::Task task;
    task.run = [] { return exec::Work{1e-6, 0.0}; };
    ex->submit(std::move(task));
    ex->drain();
    ex->drain();
    SUCCEED();
}

TEST_P(ExecutorContract, SubmitBatchRunsEveryTaskAndCallback)
{
    auto ex = makeExecutor(GetParam(), 4);
    std::atomic<int> ran{0};
    int completed = 0; // Callbacks are serialized: plain int is safe.
    std::vector<exec::Task> batch;
    for (int i = 0; i < 16; ++i) {
        exec::Task task;
        task.run = [&ran] {
            ran.fetch_add(1);
            return exec::Work{1e-6, 0.0};
        };
        task.onComplete = [&completed] { ++completed; };
        batch.push_back(std::move(task));
    }
    ex->submitBatch(std::move(batch));
    ex->drain();
    EXPECT_EQ(ran.load(), 16);
    EXPECT_EQ(completed, 16);
}

TEST_P(ExecutorContract, NonSerialCompletionStillCompletes)
{
    auto ex = makeExecutor(GetParam(), 4);
    std::atomic<int> completed{0};
    for (int i = 0; i < 16; ++i) {
        exec::Task task;
        task.serialCompletion = false; // Bypasses the commit lane.
        task.run = [] { return exec::Work{1e-6, 0.0}; };
        task.onComplete = [&completed] { completed.fetch_add(1); };
        ex->submit(std::move(task));
    }
    ex->drain();
    EXPECT_EQ(completed.load(), 16);
}

INSTANTIATE_TEST_SUITE_P(RealAndSimulated, ExecutorContract,
                         ::testing::Values(false, true),
                         [](const auto &info) {
                             return info.param ? "Simulated" : "Real";
                         });

TEST(SimExecutor, VirtualTimeAdvances)
{
    exec::SimExecutor ex(sim::MachineConfig{}, 1);
    exec::Task task;
    task.run = [] { return exec::Work{2.0, 0.0}; };
    ex.submit(std::move(task));
    ex.drain();
    EXPECT_GE(ex.now(), 2.0);
    EXPECT_LT(ex.now(), 2.01);
}

} // namespace
