/**
 * @file
 * Golden-file tests of the `stats-replay diff` renderer
 * (replay/log_render.hpp). The goldens under tests/golden/ pin the
 * diff output byte-for-byte — `stats-replay diff` prints exactly
 * `renderDiff(a, b).text`, so these tests freeze the tool's output
 * format for the three interesting outcomes: a mid-stream record
 * difference, identical logs, and skewed headers with a record-count
 * difference.
 *
 * To regenerate after an intentional format change, print the
 * corresponding renderDiff(...).text for the fixture logs below into
 * tests/golden/replay_diff_<name>.txt.
 */

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "replay/log_render.hpp"
#include "replay/record_log.hpp"

namespace {

using namespace stats;
using replay::Record;
using replay::RecordKind;
using replay::RecordLog;

std::string
readGolden(const std::string &name)
{
    const std::string path = std::string(STATS_SOURCE_DIR) +
                             "/tests/golden/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

Record
record(RecordKind kind, std::uint32_t epoch, std::int32_t group,
       std::int64_t a = 0, std::int64_t b = 0)
{
    Record rec;
    rec.kind = kind;
    rec.run = 0;
    rec.epoch = epoch;
    rec.group = group;
    rec.a = a;
    rec.b = b;
    return rec;
}

/** A small but representative engine run: begin, verdicts, end. */
RecordLog
baseLog()
{
    RecordLog log;
    log.rootSeed = 41;

    replay::RunConfigRecord config;
    config.useAuxiliary = 1;
    config.groupSize = 4;
    config.auxWindow = 2;
    config.maxReexecutions = 1;
    config.rollbackDepth = 2;
    config.sdThreads = 8;
    config.innerThreads = 1;
    config.inputCount = 16;
    Record begin = record(RecordKind::RunBegin, 0, -1);
    begin.payload = replay::encodeConfig(config);
    log.records.push_back(begin);

    log.records.push_back(record(RecordKind::Commit, 1, 0));
    log.records.push_back(
        record(RecordKind::MatchVerdict, 2, 1, /* verdict */ 0));
    log.records.push_back(record(RecordKind::Commit, 3, 1));

    replay::RunStatsRecord stats;
    stats.validations = 3;
    stats.mismatches = 0;
    stats.reexecutions = 0;
    stats.aborts = 0;
    stats.squashedGroups = 0;
    stats.invocations = 16;
    Record end = record(RecordKind::RunEnd, 4, -1);
    end.payload = replay::encodeStats(stats);
    log.records.push_back(end);
    return log;
}

TEST(ReplayDiffGolden, MismatchedVerdictRendersBothSides)
{
    const RecordLog a = baseLog();
    RecordLog b = baseLog();
    // The same choice point decided differently: a fault-forced
    // mismatch verdict in place of the match.
    b.records[2] =
        record(RecordKind::MatchVerdict, 2, 1, -1, /* forced */ 1);

    const replay::DiffRender render = replay::renderDiff(a, b);
    EXPECT_FALSE(render.identical);
    EXPECT_EQ(render.text, readGolden("replay_diff_mismatch.txt"));
}

TEST(ReplayDiffGolden, IdenticalLogsSaySo)
{
    const replay::DiffRender render =
        replay::renderDiff(baseLog(), baseLog());
    EXPECT_TRUE(render.identical);
    EXPECT_EQ(render.text, readGolden("replay_diff_identical.txt"));
}

TEST(ReplayDiffGolden, SeedSkewAndTruncationBothReported)
{
    const RecordLog a = baseLog();
    RecordLog b = baseLog();
    b.rootSeed = 43;
    b.records.pop_back(); // Truncated: no RunEnd.

    const replay::DiffRender render = replay::renderDiff(a, b);
    EXPECT_FALSE(render.identical);
    EXPECT_EQ(render.text, readGolden("replay_diff_seed_skew.txt"));
}

/** The diff renderer and the save/load round trip must agree. */
TEST(ReplayDiffGolden, RoundTrippedLogIsIdenticalToItself)
{
    const RecordLog a = baseLog();
    std::string error;
    std::istringstream in(a.saveToString());
    const auto loaded = RecordLog::load(in, error);
    ASSERT_TRUE(loaded.has_value()) << error;
    EXPECT_TRUE(replay::renderDiff(a, *loaded).identical);
}

} // namespace
