/**
 * @file
 * Shared helpers for the serving test suites (serving_test,
 * serving_concurrency_test): condition-variable gates and bounded
 * poll-until loops, so tests that observe the server's asynchronous
 * worker pool never free-sleep or spin unbounded.
 */

#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>

namespace stats::serving_testing {

/**
 * Re-evaluate `done` (with a short nap between tries) until it holds
 * or `timeout` elapses. Returns whether it held — callers assert on
 * the result so a wedged server fails the test instead of hanging it.
 */
inline bool
pollUntil(const std::function<bool()> &done,
          std::chrono::milliseconds timeout =
              std::chrono::milliseconds(10000))
{
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!done()) {
        if (std::chrono::steady_clock::now() >= deadline)
            return done();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

/**
 * A one-shot start gate: threads park in wait() until open() fires,
 * so N submitter threads hit the server at the same instant instead
 * of serializing on their own startup.
 */
class Gate
{
  public:
    void
    open()
    {
        {
            std::lock_guard<std::mutex> lock(_mutex);
            _open = true;
        }
        _cv.notify_all();
    }

    void
    wait()
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _cv.wait(lock, [this] { return _open; });
    }

  private:
    std::mutex _mutex;
    std::condition_variable _cv;
    bool _open = false;
};

} // namespace stats::serving_testing
