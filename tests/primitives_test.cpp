/**
 * @file
 * Tests of the low-level synchronization primitives: the spin
 * barrier and the bounded MPMC queue.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "threading/primitives.hpp"

namespace {

using namespace stats::threading;

TEST(SpinBarrier, SingleParticipantNeverBlocks)
{
    SpinBarrier barrier(1);
    for (int round = 0; round < 100; ++round)
        barrier.arriveAndWait();
    SUCCEED();
}

TEST(SpinBarrier, SynchronizesPhases)
{
    constexpr int kThreads = 4;
    constexpr int kRounds = 50;
    SpinBarrier barrier(kThreads);
    std::atomic<int> in_phase{0};
    std::atomic<bool> violated{false};

    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int round = 0; round < kRounds; ++round) {
                in_phase.fetch_add(1);
                barrier.arriveAndWait();
                // Everybody must have entered the phase by now.
                if (in_phase.load() < kThreads * (round + 1))
                    violated.store(true);
                barrier.arriveAndWait();
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    EXPECT_FALSE(violated.load());
    EXPECT_EQ(in_phase.load(), kThreads * kRounds);
}

TEST(MpmcQueue, CapacityRoundsUpToPowerOfTwo)
{
    MpmcBoundedQueue<int> queue(5);
    EXPECT_EQ(queue.capacity(), 8u);
    MpmcBoundedQueue<int> tiny(1);
    EXPECT_EQ(tiny.capacity(), 2u);
}

TEST(MpmcQueue, FifoSingleThreaded)
{
    MpmcBoundedQueue<int> queue(8);
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(queue.tryPush(i));
    EXPECT_FALSE(queue.tryPush(99)); // Full.
    for (int i = 0; i < 8; ++i) {
        const auto value = queue.tryPop();
        ASSERT_TRUE(value.has_value());
        EXPECT_EQ(*value, i);
    }
    EXPECT_FALSE(queue.tryPop().has_value()); // Empty.
}

TEST(MpmcQueue, ReusableAfterDrain)
{
    MpmcBoundedQueue<int> queue(4);
    for (int round = 0; round < 10; ++round) {
        for (int i = 0; i < 4; ++i)
            EXPECT_TRUE(queue.tryPush(round * 4 + i));
        for (int i = 0; i < 4; ++i)
            EXPECT_EQ(*queue.tryPop(), round * 4 + i);
    }
}

TEST(MpmcQueue, ConcurrentProducersAndConsumers)
{
    constexpr int kPerProducer = 2000;
    constexpr int kProducers = 2;
    constexpr int kConsumers = 2;
    MpmcBoundedQueue<int> queue(64);
    std::atomic<long long> consumed_sum{0};
    std::atomic<int> consumed_count{0};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < kPerProducer; ++i) {
                const int value = p * kPerProducer + i;
                while (!queue.tryPush(value))
                    std::this_thread::yield();
            }
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            for (;;) {
                if (consumed_count.load() >= kPerProducer * kProducers)
                    return;
                const auto value = queue.tryPop();
                if (!value) {
                    std::this_thread::yield();
                    continue;
                }
                consumed_sum.fetch_add(*value);
                consumed_count.fetch_add(1);
            }
        });
    }
    for (auto &thread : threads)
        thread.join();

    const long long n = kPerProducer * kProducers;
    EXPECT_EQ(consumed_count.load(), n);
    EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);
}

TEST(MpmcQueue, MovesValues)
{
    MpmcBoundedQueue<std::unique_ptr<int>> queue(4);
    EXPECT_TRUE(queue.tryPush(std::make_unique<int>(7)));
    auto out = queue.tryPop();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(**out, 7);
}

} // namespace
