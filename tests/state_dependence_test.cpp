/**
 * @file
 * Tests of the public StateDependence facade — the paper-faithful
 * Figure 9 API on real threads, including the paper-style
 * doesSpecStateMatchAny state method.
 */

#include <atomic>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "sdi/state_dependence.hpp"

namespace {

using namespace stats;

struct Input
{
    int id;
};

struct Output
{
    long long value;
};

struct CounterState
{
    long long lastInput = -1;

    bool
    doesSpecStateMatchAny(const std::set<const CounterState *> &set) const
    {
        for (const CounterState *other : set) {
            if (other->lastInput == lastInput)
                return true;
        }
        return false;
    }
};

/** Deterministic short-memory compute: state = last input. */
Output *
computeOutput(Input *input, CounterState *state)
{
    auto *output = new Output{state->lastInput};
    state->lastInput = input->id;
    return output;
}

std::vector<Input>
makeInputs(int n)
{
    std::vector<Input> inputs;
    for (int i = 0; i < n; ++i)
        inputs.push_back({i});
    return inputs;
}

TEST(StateDependenceFacade, Figure9FlowWithoutAuxiliary)
{
    // No auxiliary code installed: the dependence is satisfied
    // conventionally (the paper's baseline), outputs still correct.
    auto storage = makeInputs(12);
    std::vector<Input *> inputs;
    for (auto &input : storage)
        inputs.push_back(&input);
    CounterState initial;

    sdi::StateDependence<Input, CounterState, Output> dep(
        &inputs, &initial, computeOutput);
    dep.start();
    dep.join();

    ASSERT_EQ(dep.outputs().size(), 12u);
    EXPECT_EQ(dep.outputs()[0]->value, -1);
    for (int i = 1; i < 12; ++i)
        EXPECT_EQ(dep.outputs()[static_cast<std::size_t>(i)]->value,
                  i - 1);
    EXPECT_EQ(dep.stats().auxTasks, 0);
}

TEST(StateDependenceFacade, SpeculatesWithAuxiliaryAndStateMethod)
{
    auto storage = makeInputs(40);
    std::vector<Input *> inputs;
    for (auto &input : storage)
        inputs.push_back(&input);
    CounterState initial;

    sdi::StateDependence<Input, CounterState, Output> dep(
        &inputs, &initial, computeOutput);
    dep.setAuxiliaryCode(computeOutput);
    dep.useStateMatchMethod(); // Paper-style doesSpecStateMatchAny.

    sdi::SpecConfig config;
    config.groupSize = 8;
    config.auxWindow = 1; // One input reconstructs the state exactly.
    dep.setConfig(config);
    dep.setThreads(4);

    dep.start();
    dep.join();

    ASSERT_EQ(dep.outputs().size(), 40u);
    for (int i = 1; i < 40; ++i)
        EXPECT_EQ(dep.outputs()[static_cast<std::size_t>(i)]->value,
                  i - 1);
    EXPECT_GT(dep.stats().validations, 0);
    EXPECT_EQ(dep.stats().aborts, 0);
}

TEST(StateDependenceFacade, CustomMatcherAndConfigKnobs)
{
    auto storage = makeInputs(30);
    std::vector<Input *> inputs;
    for (auto &input : storage)
        inputs.push_back(&input);
    CounterState initial;

    sdi::StateDependence<Input, CounterState, Output> dep(
        &inputs, &initial, computeOutput);
    dep.setAuxiliaryCode(computeOutput);
    dep.setMatcher(sdi::neverMatch<CounterState>());

    sdi::SpecConfig config;
    config.groupSize = 5;
    config.maxReexecutions = 1;
    dep.setConfig(config);
    dep.setThreads(3);

    dep.start();
    dep.join();

    // Speculation aborted; output correctness is unaffected.
    ASSERT_EQ(dep.outputs().size(), 30u);
    for (int i = 1; i < 30; ++i)
        EXPECT_EQ(dep.outputs()[static_cast<std::size_t>(i)]->value,
                  i - 1);
    EXPECT_EQ(dep.stats().aborts, 1);
}

TEST(StateDependenceFacade, RejectsNullArguments)
{
    std::vector<Input *> inputs;
    CounterState state;
    using Dep = sdi::StateDependence<Input, CounterState, Output>;
    EXPECT_DEATH(Dep(nullptr, &state, computeOutput), "null");
    EXPECT_DEATH(Dep(&inputs, nullptr, computeOutput), "null");
    EXPECT_DEATH(Dep(&inputs, &state, nullptr), "null");
}

TEST(StateDependenceFacade, JoinBeforeStartPanics)
{
    auto storage = makeInputs(2);
    std::vector<Input *> inputs{&storage[0], &storage[1]};
    CounterState state;
    sdi::StateDependence<Input, CounterState, Output> dep(
        &inputs, &state, computeOutput);
    EXPECT_DEATH(dep.join(), "join before start");
}

} // namespace
