/**
 * @file
 * Tests of the six benchmark reimplementations: state spaces,
 * deterministic workload generation, quality metrics against the
 * oracle, mode semantics, and the paper's per-benchmark speculation
 * behaviour (fluidanimate aborts, the others commit).
 */

#include <gtest/gtest.h>

#include "benchmarks/common/benchmark.hpp"

namespace {

using namespace stats;
using namespace stats::benchmarks;

class EveryBenchmark : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<Benchmark> bench = createBenchmark(GetParam());
};

TEST_P(EveryBenchmark, StateSpaceIsLargeAndValid)
{
    const auto space = bench->stateSpace(28);
    EXPECT_GE(space.dimensionCount(), 8u);
    // The paper reports ~1.3M-point spaces; ours must be far beyond
    // exhaustive-exploration reach too.
    EXPECT_GT(space.totalPoints(), 1e4);
    EXPECT_TRUE(space.valid(space.defaultConfiguration()));
    EXPECT_TRUE(space.hasDimension(dims::kUseAux));
    EXPECT_TRUE(space.hasDimension(dims::kInnerThreads));
}

TEST_P(EveryBenchmark, SequentialRunProducesOutput)
{
    RunRequest request;
    request.threads = 1;
    request.mode = Mode::Original;
    request.runSeed = 42;
    const RunResult result = bench->run(request);
    EXPECT_GT(result.virtualSeconds, 0.0);
    EXPECT_GT(result.energyJoules, 0.0);
    EXPECT_FALSE(result.signature.empty());
    // Original mode never speculates.
    EXPECT_EQ(result.engineStats.groups, 0);
    EXPECT_EQ(result.engineStats.auxTasks, 0);
}

TEST_P(EveryBenchmark, QualityOfDefaultRunIsBounded)
{
    const auto oracle =
        bench->oracleSignature(WorkloadKind::Representative, 1);
    EXPECT_FALSE(oracle.empty());
    // The oracle matches itself perfectly.
    EXPECT_DOUBLE_EQ(bench->quality(oracle, oracle), 0.0);

    RunRequest request;
    request.threads = 1;
    request.mode = Mode::Original;
    request.runSeed = 7;
    const RunResult result = bench->run(request);
    const double q = bench->quality(result.signature, oracle);
    EXPECT_GE(q, 0.0);
    // Nondeterministic but tracking/pricing/clustering the same data:
    // the domain metric stays within a loose bound.
    EXPECT_LT(q, 10.0);
}

TEST_P(EveryBenchmark, StatsModePreservesOutputQuality)
{
    const auto oracle =
        bench->oracleSignature(WorkloadKind::Representative, 1);

    // The benchmarks are nondeterministic: gate against the
    // *distribution* of the original's quality, not one sample.
    RunRequest request;
    request.threads = 1;
    request.mode = Mode::Original;
    double q_original_max = 0.0;
    for (std::uint64_t seed : {3u, 4u, 5u}) {
        request.runSeed = seed;
        q_original_max = std::max(
            q_original_max,
            bench->quality(bench->run(request).signature, oracle));
    }

    request.threads = 14;
    request.mode = Mode::SeqStats;
    request.runSeed = 6;
    const RunResult stats_run = bench->run(request);
    const double q_stats =
        bench->quality(stats_run.signature, oracle);

    // STATS must not degrade the output beyond the benchmark's own
    // nondeterministic variability (loose multiplicative gate plus an
    // absolute floor for near-zero metrics).
    EXPECT_LT(q_stats, q_original_max * 4.0 + 0.05);
}

TEST_P(EveryBenchmark, WorkloadGenerationIsSeedDeterministic)
{
    RunRequest request;
    request.threads = 4;
    request.mode = Mode::Original;
    request.runSeed = 99; // Pin program nondeterminism too.
    const RunResult a = bench->run(request);
    const RunResult b = bench->run(request);
    ASSERT_EQ(a.signature.size(), b.signature.size());
    for (std::size_t i = 0; i < a.signature.size(); ++i)
        EXPECT_DOUBLE_EQ(a.signature[i], b.signature[i]);
}

TEST_P(EveryBenchmark, NonRepresentativeWorkloadDiffers)
{
    RunRequest request;
    request.threads = 1;
    request.mode = Mode::Original;
    request.runSeed = 5;
    const RunResult rep = bench->run(request);
    request.workload = WorkloadKind::NonRepresentative;
    const RunResult bad = bench->run(request);
    EXPECT_NE(rep.signature, bad.signature);
}

TEST_P(EveryBenchmark, TradeoffCountMatchesTableOne)
{
    EXPECT_GE(bench->tradeoffCount(), 4);
    EXPECT_LE(bench->tradeoffCount(), 9);
}

INSTANTIATE_TEST_SUITE_P(AllSix, EveryBenchmark,
                         ::testing::ValuesIn(allBenchmarkNames()),
                         [](const auto &info) { return info.param; });

TEST(BenchmarkBehaviour, SpeculativeBenchmarksCommit)
{
    // All benchmarks except fluidanimate have the "short memory"
    // property: their auxiliary code produces acceptable states.
    for (const std::string name :
         {"swaptions", "streamcluster", "streamclassifier", "bodytrack",
          "facedet"}) {
        auto bench = createBenchmark(name);
        RunRequest request;
        request.threads = 14;
        request.mode = Mode::SeqStats;
        const RunResult result = bench->run(request);
        EXPECT_GT(result.engineStats.validations, 0) << name;
        EXPECT_GT(result.engineStats.matchRate(), 0.5) << name;
    }
}

TEST(BenchmarkBehaviour, FluidanimateAuxiliaryAlwaysAborts)
{
    // Paper section 4.8: the fluid state requires all previous
    // inputs; the speculative execution is always aborted.
    auto bench = createBenchmark("fluidanimate");
    RunRequest request;
    request.threads = 14;
    request.mode = Mode::SeqStats;
    const RunResult result = bench->run(request);
    EXPECT_EQ(result.engineStats.aborts, 1);
    EXPECT_GT(result.engineStats.mismatches, 0);
}

TEST(BenchmarkBehaviour, StatsGeneratesSpeedupOnManyCores)
{
    // Default (untuned) configurations already show the effect for
    // the short-memory benchmarks.
    for (const std::string name :
         {"swaptions", "streamcluster", "bodytrack"}) {
        auto bench = createBenchmark(name);
        RunRequest seq;
        seq.threads = 1;
        seq.mode = Mode::Original;
        const double base = bench->run(seq).virtualSeconds;

        RunRequest stats_req;
        stats_req.threads = 28;
        stats_req.mode = Mode::SeqStats;
        const double stats_time =
            bench->run(stats_req).virtualSeconds;
        EXPECT_GT(base / stats_time, 3.0) << name;
    }
}

TEST(BenchmarkBehaviour, FactoryRejectsUnknownNames)
{
    EXPECT_DEATH(createBenchmark("nope"), "unknown benchmark");
}

TEST(BenchmarkBehaviour, AverageSignatures)
{
    const auto avg = Benchmark::averageSignatures(
        {{1.0, 2.0}, {3.0, 4.0}});
    ASSERT_EQ(avg.size(), 2u);
    EXPECT_DOUBLE_EQ(avg[0], 2.0);
    EXPECT_DOUBLE_EQ(avg[1], 3.0);
}

} // namespace
