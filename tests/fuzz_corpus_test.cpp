/**
 * @file
 * Replays every checked-in fuzzer find under tests/corpus/ through
 * the differential oracle (ctest label: fuzz). Each corpus file is a
 * minimized case the fuzzer once failed, annotated with its
 * root cause; replaying them keeps the underlying fixes honest.
 *
 * Also keeps docs/TESTING.md's tier table in lockstep with the ctest
 * labels this directory actually registers.
 */

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "testing/fuzz_case.hpp"
#include "testing/oracle.hpp"

namespace {

// gtest owns `::testing`, so the subsystem keeps its full name here.
namespace st = stats::testing;
namespace fs = std::filesystem;

std::vector<fs::path>
corpusFiles()
{
    const fs::path dir =
        fs::path(STATS_SOURCE_DIR) / "tests" / "corpus";
    std::vector<fs::path> files;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.path().extension() == ".ir")
            files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(FuzzCorpus, EveryCaseReplaysClean)
{
    const auto files = corpusFiles();
    ASSERT_FALSE(files.empty());
    for (const auto &path : files) {
        SCOPED_TRACE(path.filename().string());
        std::string error;
        const auto fuzz_case = st::loadCaseFile(path.string(), error);
        ASSERT_TRUE(fuzz_case.has_value()) << error;
        // Corpus cases memorialize a fixed bug: each must say why.
        EXPECT_FALSE(fuzz_case->rootCause.empty())
            << "corpus case without a `; root-cause:` line";
        const st::OracleResult result = st::runOracle(*fuzz_case);
        EXPECT_TRUE(result.ok) << result.failKind << " at "
                               << result.stage << ": " << result.detail;
        if (fuzz_case->expect == st::Expectation::Reject)
            EXPECT_TRUE(result.rejected);
    }
}

// ---------------------------------------------------------------------
// docs/TESTING.md lockstep
// ---------------------------------------------------------------------

std::string
readRepoFile(const char *relative)
{
    const std::string path =
        std::string(STATS_SOURCE_DIR) + "/" + relative;
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** LABELS registered by tests/CMakeLists.txt (`LABELS <name>`). */
std::vector<std::string>
registeredLabels()
{
    const std::string cmake = readRepoFile("tests/CMakeLists.txt");
    std::vector<std::string> labels;
    std::size_t pos = 0;
    while ((pos = cmake.find("LABELS ", pos)) != std::string::npos) {
        pos += 7;
        std::string label;
        while (pos < cmake.size() &&
               (std::isalnum(cmake[pos]) || cmake[pos] == '_' ||
                cmake[pos] == '-'))
            label += cmake[pos++];
        if (!label.empty() &&
            std::find(labels.begin(), labels.end(), label) ==
                labels.end())
            labels.push_back(label);
    }
    return labels;
}

TEST(TestingDocs, TierTableCoversEveryRegisteredLabel)
{
    const std::string docs = readRepoFile("docs/TESTING.md");
    // Every ctest label in use must appear as a documented tier
    // (backticked in the tier table), and the doc's core tiers must
    // keep existing. Adding a new LABELS value without documenting it
    // fails here.
    for (const auto &label : registeredLabels()) {
        EXPECT_NE(docs.find("`" + label + "`"), std::string::npos)
            << "ctest label '" << label
            << "' is not documented in docs/TESTING.md";
    }
    for (const char *tier : {"unit", "golden", "property", "stress",
                             "fuzz"}) {
        EXPECT_NE(docs.find("`" + std::string(tier) + "`"),
                  std::string::npos)
            << "tier '" << tier << "' missing from docs/TESTING.md";
    }
}

} // namespace
