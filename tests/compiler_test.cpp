/**
 * @file
 * Tests of the middle-end (auxiliary-code generation, default
 * freezing) and back-end (configuration instantiation), including an
 * end-to-end pipeline run on a toy module with all three tradeoff
 * kinds (constant, data type, function).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "backend/backend.hpp"
#include "ir/interpreter.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "midend/midend.hpp"
#include "midend/substitute.hpp"

namespace {

using namespace stats;
using namespace stats::ir;

/**
 * Toy program with the three tradeoff kinds:
 *  - T_42: constant (iterations), values 1..10, default index 4 -> 5;
 *  - T_43: data type of one variable, {f64, f32}, default f64;
 *  - T_44: function choice {smooth_exact, smooth_fast}, default exact.
 * computeOutput(input, state) =
 *     smooth(typed(input)) + 0.5 + iterations.
 */
const char *kPipelineModule = R"(
module "pipeline"
tradeoff T_42 kind=const placeholder=@T_42 getValue=@T_42_getValue size=@T_42_size default=@T_42_getDefaultIndex
tradeoff T_43 kind=type placeholder=@T_43_type getValue=@T_43_getValue size=@T_43_size default=@T_43_getDefaultIndex choices=f64,f32
tradeoff T_44 kind=fn placeholder=@T_44_fn getValue=@T_44_getValue size=@T_44_size default=@T_44_getDefaultIndex choices=smooth_exact,smooth_fast
statedep SD0 compute=@computeOutput

func @T_42() -> i64 {
entry:
  ret i64 5
}
func @T_42_getValue(i64 %i) -> i64 {
entry:
  %v = add i64 %i, 1
  ret i64 %v
}
func @T_42_size() -> i64 {
entry:
  ret i64 10
}
func @T_42_getDefaultIndex() -> i64 {
entry:
  ret i64 4
}

func @T_43_type(f64 %v) -> f64 {
entry:
  ret f64 %v
}
func @T_43_getValue(i64 %i) -> i64 {
entry:
  ret i64 %i
}
func @T_43_size() -> i64 {
entry:
  ret i64 2
}
func @T_43_getDefaultIndex() -> i64 {
entry:
  ret i64 0
}

func @smooth_exact(f64 %x) -> f64 {
entry:
  %r = call f64 @sqrt %x
  ret f64 %r
}
func @smooth_fast(f64 %x) -> f64 {
entry:
  %r = mul f64 %x, 0.5
  ret f64 %r
}
func @T_44_fn(f64 %x) -> f64 {
entry:
  %r = call f64 @smooth_exact %x
  ret f64 %r
}
func @T_44_getValue(i64 %i) -> i64 {
entry:
  ret i64 %i
}
func @T_44_size() -> i64 {
entry:
  ret i64 2
}
func @T_44_getDefaultIndex() -> i64 {
entry:
  ret i64 0
}

func @smoothHelper(f64 %x) -> f64 {
entry:
  %r = call f64 @T_44_fn %x
  ret f64 %r
}
func @plainHelper(f64 %x) -> f64 {
entry:
  %r = add f64 %x, 0.5
  ret f64 %r
}

func @computeOutput(i64 %input, f64 %state) -> f64 {
entry:
  %iters = call i64 @T_42()
  %f = cast f64 %input
  %typed = call f64 @T_43_type %f
  %sm = call f64 @smoothHelper %typed
  %pl = call f64 @plainHelper %sm
  %itf = cast f64 %iters
  %r = add f64 %pl, %itf
  ret f64 %r
}
)";

double
runComputeOutput(const Module &module, const std::string &fn,
                 std::int64_t input)
{
    Interpreter interp(module);
    return interp.call(fn, {RtValue::ofInt(input), RtValue::ofFloat(0.0)})
        .asFloat();
}

TEST(Substitute, EvaluatesGetValueViaInterpreter)
{
    const Module module = parseModule(kPipelineModule);
    const TradeoffMeta *meta =
        const_cast<Module &>(module).findTradeoff("T_42");
    ASSERT_NE(meta, nullptr);
    EXPECT_EQ(midend::defaultIndexOf(module, *meta), 4);
    EXPECT_EQ(midend::sizeOf(module, *meta), 10);
    const auto value = midend::evaluateTradeoffValue(module, *meta, 7);
    EXPECT_EQ(value.constant.asInt(), 8); // getValue(i) = i + 1.
}

TEST(MiddleEnd, ClonesComputeOutputAndCarriers)
{
    Module module = parseModule(kPipelineModule);
    const auto report = midend::generateAuxiliaryCode(module);

    // computeOutput and smoothHelper (a tradeoff carrier) cloned;
    // plainHelper (no tradeoff anywhere below it) shared.
    EXPECT_NE(module.findFunction("computeOutput__aux0"), nullptr);
    EXPECT_NE(module.findFunction("smoothHelper__aux0"), nullptr);
    EXPECT_EQ(module.findFunction("plainHelper__aux0"), nullptr);
    EXPECT_FALSE(report.budgetReached);

    // All three tradeoffs cloned with aux metadata.
    EXPECT_NE(module.findTradeoff("aux::T_42"), nullptr);
    EXPECT_NE(module.findTradeoff("aux::T_43"), nullptr);
    EXPECT_NE(module.findTradeoff("aux::T_44"), nullptr);
    EXPECT_TRUE(module.findTradeoff("aux::T_42")->auxClone);
    EXPECT_EQ(module.findTradeoff("aux::T_42")->origin, "T_42");

    // The dependence's metadata links the clone.
    EXPECT_EQ(module.findStateDep("SD0")->auxFn, "computeOutput__aux0");

    // The module still verifies after cloning.
    EXPECT_TRUE(verifyModule(module).empty());
}

TEST(MiddleEnd, CloneBudgetLimitsDeepCloning)
{
    Module module = parseModule(kPipelineModule);
    // Budget below computeOutput + smoothHelper: the helper is not
    // cloned (fewer degrees of freedom, less code).
    const auto report = midend::generateAuxiliaryCode(module, 8);
    EXPECT_TRUE(report.budgetReached);
    EXPECT_NE(module.findFunction("computeOutput__aux0"), nullptr);
    EXPECT_EQ(module.findFunction("smoothHelper__aux0"), nullptr);
    EXPECT_TRUE(verifyModule(module).empty());
}

TEST(MiddleEnd, FreezesDefaultsAndDeletesMetadata)
{
    Module module = parseModule(kPipelineModule);
    midend::generateAuxiliaryCode(module);
    const auto frozen = midend::freezeDefaultTradeoffs(module);
    EXPECT_EQ(frozen.size(), 3u);

    // Only auxiliary tradeoffs remain in the metadata.
    EXPECT_EQ(module.tradeoffs.size(), 3u);
    for (const auto &meta : module.tradeoffs)
        EXPECT_TRUE(meta.auxClone);

    // The original code now computes with defaults baked in:
    // computeOutput(9) = sqrt(9) + 0.5 + 5 = 8.5.
    EXPECT_TRUE(verifyModule(module).empty());
    EXPECT_DOUBLE_EQ(runComputeOutput(module, "computeOutput", 9), 8.5);
}

TEST(BackEnd, InstantiatesConstantTradeoff)
{
    Module midend_ir = parseModule(kPipelineModule);
    midend::runMiddleEnd(midend_ir);

    backend::BackendConfig config;
    config.auxiliaryDeps.insert("SD0");
    config.tradeoffIndices["aux::T_42"] = 0; // 1 iteration.
    const Module binary = backend::instantiate(midend_ir, config);

    EXPECT_TRUE(verifyModule(binary).empty());
    // Auxiliary: sqrt(9) + 0.5 + 1 = 4.5; original unchanged at 8.5.
    EXPECT_DOUBLE_EQ(
        runComputeOutput(binary, "computeOutput__aux0", 9), 4.5);
    EXPECT_DOUBLE_EQ(runComputeOutput(binary, "computeOutput", 9), 8.5);
    EXPECT_TRUE(
        const_cast<Module &>(binary).findStateDep("SD0")->runtimeLinked);
}

TEST(BackEnd, InstantiatesFunctionTradeoff)
{
    Module midend_ir = parseModule(kPipelineModule);
    midend::runMiddleEnd(midend_ir);

    backend::BackendConfig config;
    config.tradeoffIndices["aux::T_44"] = 1; // smooth_fast.
    const Module binary = backend::instantiate(midend_ir, config);

    // Auxiliary: 9 * 0.5 + 0.5 + 5 = 10.0 (default iterations).
    EXPECT_DOUBLE_EQ(
        runComputeOutput(binary, "computeOutput__aux0", 9), 10.0);
    // Original keeps the exact sqrt.
    EXPECT_DOUBLE_EQ(runComputeOutput(binary, "computeOutput", 9), 8.5);
}

TEST(BackEnd, InstantiatesTypeTradeoffWithCasts)
{
    Module midend_ir = parseModule(kPipelineModule);
    midend::runMiddleEnd(midend_ir);

    backend::BackendConfig config;
    config.tradeoffIndices["aux::T_43"] = 1; // float.
    const Module binary = backend::instantiate(midend_ir, config);
    EXPECT_TRUE(verifyModule(binary).empty());

    // 2^24 + 1 is not representable in f32: the narrowed variable
    // loses the +1 in auxiliary code but not in the original.
    const std::int64_t big = (1ll << 24) + 1;
    const double aux =
        runComputeOutput(binary, "computeOutput__aux0", big);
    const double orig = runComputeOutput(binary, "computeOutput", big);
    EXPECT_NE(aux, orig);
    EXPECT_DOUBLE_EQ(orig - aux,
                     std::sqrt(double(big)) -
                         std::sqrt(double(1ll << 24)));
}

TEST(BackEnd, SameIrInstantiatesManyConfigurations)
{
    // The paper decouples state-space IR from instantiation so the
    // autotuner can instantiate cheaply and repeatedly.
    Module midend_ir = parseModule(kPipelineModule);
    midend::runMiddleEnd(midend_ir);

    for (std::int64_t index = 0; index < 10; ++index) {
        backend::BackendConfig config;
        config.tradeoffIndices["aux::T_42"] = index;
        const Module binary = backend::instantiate(midend_ir, config);
        const double expected = 3.0 + 0.5 + double(index + 1);
        EXPECT_DOUBLE_EQ(
            runComputeOutput(binary, "computeOutput__aux0", 9),
            expected);
    }
}

TEST(BackEnd, RejectsBadConfigurations)
{
    Module midend_ir = parseModule(kPipelineModule);
    midend::runMiddleEnd(midend_ir);

    backend::BackendConfig unknown;
    unknown.tradeoffIndices["aux::T_99"] = 0;
    EXPECT_DEATH(backend::instantiate(midend_ir, unknown),
                 "unknown tradeoff");

    backend::BackendConfig out_of_range;
    out_of_range.tradeoffIndices["aux::T_42"] = 10;
    EXPECT_DEATH(backend::instantiate(midend_ir, out_of_range),
                 "out of range");

    backend::BackendConfig bad_dep;
    bad_dep.auxiliaryDeps.insert("SD9");
    EXPECT_DEATH(backend::instantiate(midend_ir, bad_dep),
                 "unknown state dependence");
}

TEST(Pipeline, GeneratedCodeGrowthIsReported)
{
    Module module = parseModule(kPipelineModule);
    const std::size_t before = module.instructionCount();
    const auto report = midend::runMiddleEnd(module);
    EXPECT_GT(report.instructionsAdded, 0u);
    EXPECT_GE(module.instructionCount(), before);
    EXPECT_EQ(report.clonedTradeoffs.size(), 3u);
    EXPECT_EQ(report.clonedFunctions.size(), 2u);
}

} // namespace
