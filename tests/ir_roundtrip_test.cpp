/**
 * @file
 * Print/parse round-trip over every shipped example module: printing
 * a parsed module and re-parsing the result must reproduce the exact
 * same text. This pins the textual format both directions — parser
 * accepting what the printer emits and the printer being a fixed
 * point — including tradeoff/statedep/auxclone metadata and the bad/
 * modules (ill-formed semantically, but syntactically valid).
 */

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ir/parser.hpp"

namespace {

namespace fs = std::filesystem;
using namespace stats;

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.is_open()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

std::vector<fs::path>
exampleModules()
{
    std::vector<fs::path> paths;
    const fs::path root = fs::path(STATS_SOURCE_DIR) / "examples" / "ir";
    for (const auto &entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && entry.path().extension() == ".ir")
            paths.push_back(entry.path());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

TEST(IrRoundTrip, ExamplesDirectoryIsPopulated)
{
    // pipeline, loop_phi, aux_cloned + the five seeded-bad modules.
    EXPECT_GE(exampleModules().size(), 8u);
}

TEST(IrRoundTrip, PrintParsePrintIsByteIdentical)
{
    for (const auto &path : exampleModules()) {
        const std::string source = readFile(path);
        const std::string printed =
            ir::printModule(ir::parseModule(source));
        const std::string reprinted =
            ir::printModule(ir::parseModule(printed));
        EXPECT_EQ(reprinted, printed) << path;
        // Parsing must preserve everything the printer renders.
        EXPECT_FALSE(printed.empty()) << path;
    }
}

/**
 * aux_cloned.ir is machine-generated (`statscc pipeline --emit=midend`)
 * and therefore exactly in the printer's canonical form; this keeps
 * the checked-in file from drifting when the printer changes.
 */
TEST(IrRoundTrip, GeneratedExampleIsCanonical)
{
    const fs::path path =
        fs::path(STATS_SOURCE_DIR) / "examples" / "ir" / "aux_cloned.ir";
    const std::string source = readFile(path);
    EXPECT_EQ(ir::printModule(ir::parseModule(source)), source);
}

} // namespace
