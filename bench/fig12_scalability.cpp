/**
 * @file
 * Figure 12: speedup vs hardware threads for Original / Seq. STATS /
 * Par. STATS, per benchmark, plus the maximum-speedup comparison.
 *
 * "Taking advantage of state dependences doubles the performance of
 * the considered benchmarks (the geometric mean speedup increases
 * from 7.75x to 20.01x) on a 28 core platform" (paper section 4.3).
 */

#include <iostream>
#include <sstream>

#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 12",
        "Speedup vs hardware threads: Original / Seq. STATS / Par. STATS",
        "STATS roughly doubles the original TLP's best; fluidanimate "
        "gains nothing (its auxiliary code aborts); bodytrack's STATS "
        "TLP beats its original TLP; swaptions' Seq. STATS loses to "
        "Original at low core counts");

    const auto &threads = benchx::threadSweep();
    std::vector<double> best_original, best_seq, best_par;
    support::JsonWriter json(std::cout, false);
    std::ostringstream tables;

    json.beginObject().field("figure", "fig12");
    json.key("threads").beginArray();
    for (int t : threads)
        json.value(static_cast<std::int64_t>(t));
    json.endArray();
    json.key("benchmarks").beginArray();

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const auto data = benchx::measureScalability(*bench);

        const auto orig = benchx::speedups(data.original, data.seqTime);
        const auto seqs = benchx::speedups(data.seqStats, data.seqTime);
        const auto pars = benchx::speedups(data.parStats, data.seqTime);
        best_original.push_back(data.seqTime / data.original.bestTime);
        best_seq.push_back(data.seqTime / data.seqStats.bestTime);
        best_par.push_back(data.seqTime / data.parStats.bestTime);

        tables << "\n--- " << name << " ---\n";
        support::TextTable table(
            {"threads", "Original", "Seq. STATS", "Par. STATS"});
        for (std::size_t i = 0; i < threads.size(); ++i) {
            table.addRow(std::to_string(threads[i]),
                         {orig[i], seqs[i], pars[i]}, 2);
        }
        table.addRow("max", {best_original.back(), best_seq.back(),
                             best_par.back()},
                     2);
        table.print(tables);

        json.beginObject()
            .field("name", name)
            .field("original", orig)
            .field("seqStats", seqs)
            .field("parStats", pars)
            .endObject();
    }
    json.endArray();
    json.field("geomeanOriginalBest", support::geomean(best_original))
        .field("geomeanSeqStatsBest", support::geomean(best_seq))
        .field("geomeanParStatsBest", support::geomean(best_par))
        .endObject();

    std::cout << tables.str();
    std::cout << "\nGeometric means of the best speedups:\n"
              << "  Original:   "
              << support::TextTable::formatDouble(
                     support::geomean(best_original), 2)
              << "x\n"
              << "  Seq. STATS: "
              << support::TextTable::formatDouble(
                     support::geomean(best_seq), 2)
              << "x\n"
              << "  Par. STATS: "
              << support::TextTable::formatDouble(
                     support::geomean(best_par), 2)
              << "x  ("
              << support::TextTable::formatDouble(
                     100.0 * (support::geomean(best_par) /
                                  support::geomean(best_original) -
                              1.0),
                     1)
              << "% over the original; the paper reports +158.2%)\n";
    return 0;
}
