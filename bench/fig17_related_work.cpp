/**
 * @file
 * Figure 17: STATS vs related approaches (ALTER-like, QuickStep-like,
 * HELIX-UP-like, Fast Track), in Seq and Par flavors.
 *
 * "Only STATS takes advantage of non-trivial state dependences: they
 * require the auxiliary code only STATS generates." Prior approaches
 * help only swaptions (its state is a register-cloneable reduction
 * variable); Fast Track always aborts. A baseline's speedup counts
 * only while its output stays within the original variability.
 */

#include <iostream>

#include "baselines/baseline.hpp"
#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::baselines;
using namespace stats::benchmarks;

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 17", "Related-work comparison on state dependences",
        "prior approaches speed up only swaptions; Fast Track always "
        "aborts; STATS wins everywhere it applies");

    const auto machine = benchx::paperMachine();
    constexpr int kThreads = 28;

    support::JsonWriter json(std::cout, false);
    json.beginObject().field("figure", "fig17").key("rows").beginArray();

    support::TextTable table({"benchmark", "approach", "Seq speedup",
                              "Par speedup", "notes"});

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const double seq_time = benchx::sequentialTime(*bench);
        const auto oracle =
            bench->oracleSignature(WorkloadKind::Representative, 1);

        // The output-variability gate: the worst original quality.
        double variability_gate = 0.0;
        for (std::uint64_t run = 0; run < 5; ++run) {
            RunRequest request;
            request.threads = 1;
            request.mode = Mode::Original;
            const double q =
                bench->quality(bench->run(request).signature, oracle);
            variability_gate = std::max(variability_gate, q);
        }
        variability_gate = variability_gate * 1.5 + 1e-9;

        for (const auto kind : allBaselines()) {
            double seq_speedup = 1.0, par_speedup = 1.0;
            std::string note;
            for (const bool parallel : {false, true}) {
                const auto result = runBaseline(kind, *bench, parallel,
                                                kThreads, machine);
                double speedup = seq_time / result.virtualSeconds;
                // Quality gate (paper: "kept the highest speedups
                // obtained without exceeding the original output
                // variability").
                if (result.usedSpeculation &&
                    result.quality > variability_gate) {
                    note = "quality-gated to original";
                    RunRequest fallback;
                    fallback.mode = Mode::Original;
                    fallback.threads = parallel ? kThreads : 1;
                    fallback.machine = machine;
                    speedup =
                        seq_time / bench->run(fallback).virtualSeconds;
                } else if (!result.usedSpeculation) {
                    note = "not applicable (complex state)";
                } else if (result.engineStats.aborts > 0) {
                    note = "speculation aborted";
                }
                (parallel ? par_speedup : seq_speedup) = speedup;
            }
            table.addRow({name, baselineName(kind),
                          support::TextTable::formatDouble(seq_speedup,
                                                           2),
                          support::TextTable::formatDouble(par_speedup,
                                                           2),
                          note});
            json.beginObject()
                .field("name", name)
                .field("approach", baselineName(kind))
                .field("seq", seq_speedup)
                .field("par", par_speedup)
                .endObject();
        }

        // STATS itself.
        const auto stats_seq =
            benchx::tuneAt(*bench, Mode::SeqStats, kThreads, machine, 30);
        const auto stats_par =
            benchx::tuneAt(*bench, Mode::ParStats, kThreads, machine, 30);
        const double stats_seq_speedup = seq_time / stats_seq.seconds;
        const double stats_par_speedup =
            seq_time / std::min(stats_par.seconds, stats_seq.seconds);
        table.addRow(
            {name, "STATS",
             support::TextTable::formatDouble(stats_seq_speedup, 2),
             support::TextTable::formatDouble(stats_par_speedup, 2),
             "auxiliary code + state cloning"});
        json.beginObject()
            .field("name", name)
            .field("approach", "STATS")
            .field("seq", stats_seq_speedup)
            .field("par", stats_par_speedup)
            .endObject();
    }
    json.endArray().endObject();
    std::cout << "\n";
    table.print(std::cout);
    return 0;
}
