/**
 * @file
 * Microbenchmark of the work-stealing scheduler's hot path.
 *
 * Measures, per worker count (1/2/4/8):
 *  - submit latency (ns/task, caller side, external submission),
 *  - batched submit latency (ns/task via submitBatch),
 *  - external submit+drain throughput (tasks/s) for the work-stealing
 *    pool AND for an inline copy of the global-queue pool it replaced,
 *  - nested submit+drain throughput: continuation chains where every
 *    task spawns its successor from a *worker* thread — the
 *    speculation engine's actual submission pattern (tasks are spawned
 *    from completion callbacks). This is the headline speedup:
 *    worker-side submits hit the submitter's own lock-free deque,
 *    where the legacy pool serializes every nested submit and every
 *    dequeue through one global mutex. Note: the ratio only exceeds 1
 *    when cores actually contend the legacy mutex; on a single-core
 *    host the mutex is uncontended and near the accounting floor, so
 *    expect ~parity there (EXPERIMENTS.md "Scheduler hot path"),
 *  - steal throughput (steals/s) in a forced-steal scenario where one
 *    worker floods its own deque and the others must steal,
 *  - end-to-end ThreadExecutor throughput (tasks/s including the
 *    commit-lane completion callback),
 *  - an engine-shaped pipeline (window task -> match check -> commit):
 *    arena-backed window records, serialized commit callbacks that
 *    retire the record and submit the next window from inside the
 *    commit lane. A warm-up epoch fills every freelist and arena
 *    block; the measured epoch then runs under this TU's global
 *    operator-new override, and `engineAllocsPerTask` reports what
 *    little heap traffic is left (zero in steady state).
 *
 * Output: a table plus BENCH_scheduler.json. CI runs `--smoke
 * --check=<baseline>` and fails when, at ANY measured worker count,
 *  - submit latency regresses by more than `--factor` (default 2x)
 *    against the checked-in baseline's per-worker `check_w<N>_...`
 *    fields (bench/baselines/BENCH_scheduler.baseline.json), or
 *  - an absolute floor is broken: nested speedup >= 1.0 everywhere,
 *    external speedup >= 1.0 from 4 workers up, and a steady-state
 *    engine epoch at most 0.01 heap allocations per task.
 * Any output file can serve as the next baseline.
 */

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_executor.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "threading/arena.hpp"
#include "threading/thread_pool.hpp"

namespace {

/**
 * Process-wide heap-allocation counter, fed by the global operator-new
 * override below. The engine-shaped scenario snapshots it around a
 * steady-state epoch: the submit -> run -> match-check -> commit round
 * trip is supposed to be allocation-free once the freelists and arena
 * blocks are warm, and this counter is how the claim is enforced
 * rather than asserted.
 */
std::atomic<std::uint64_t> g_heapAllocs{0};

} // namespace

void *
operator new(std::size_t size)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    const std::size_t alignment =
        std::max(static_cast<std::size_t>(align), sizeof(void *));
    void *p = nullptr;
    if (posix_memalign(&p, alignment, size ? size : alignment) == 0)
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return ::operator new(size, align);
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }
void operator delete(void *p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}
void operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace {

using stats::support::Timer;

/**
 * The pre-work-stealing thread pool, kept verbatim as the benchmark
 * baseline: one mutex-protected global deque, every submit takes the
 * lock and signals the condition variable.
 */
class LegacyGlobalQueuePool
{
  public:
    explicit LegacyGlobalQueuePool(int threads)
    {
        const int n = threads < 1 ? 1 : threads;
        _threads.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            _threads.emplace_back([this] { workerLoop(); });
    }

    ~LegacyGlobalQueuePool()
    {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _shutdown = true;
        }
        _cv.notify_all();
        for (auto &thread : _threads)
            thread.join();
    }

    void
    submit(std::function<void()> job)
    {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _queue.push_back(std::move(job));
        }
        _cv.notify_one();
    }

    void
    waitIdle()
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _idleCv.wait(lock,
                     [this] { return _queue.empty() && _active == 0; });
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(_mutex);
                _cv.wait(lock, [this] {
                    return _shutdown || !_queue.empty();
                });
                if (_queue.empty())
                    return; // Shutdown with a drained queue.
                job = std::move(_queue.front());
                _queue.pop_front();
                ++_active;
            }
            job();
            {
                std::unique_lock<std::mutex> lock(_mutex);
                --_active;
                if (_queue.empty() && _active == 0)
                    _idleCv.notify_all();
            }
        }
    }

    std::mutex _mutex;
    std::condition_variable _cv;
    std::condition_variable _idleCv;
    std::deque<std::function<void()>> _queue;
    std::size_t _active = 0;
    bool _shutdown = false;
    std::vector<std::thread> _threads;
};

struct Result
{
    int workers = 0;
    double submitNsPerTask = 0.0;      ///< Caller-side enqueue cost.
    double batchSubmitNsPerTask = 0.0; ///< Same, via submitBatch.
    double drainNs = 0.0;              ///< waitIdle after the last submit.
    double newTasksPerSec = 0.0;       ///< External submit+drain.
    double legacyTasksPerSec = 0.0;    ///< Same, global-queue pool.
    double externalSpeedup = 0.0;
    double nestedTasksPerSec = 0.0;       ///< Worker-side submit+drain.
    double legacyNestedTasksPerSec = 0.0; ///< Same, global-queue pool.
    double speedup = 0.0; ///< Headline: nested (engine pattern) ratio.
    double stealsPerSec = 0.0;
    double executorTasksPerSec = 0.0;  ///< ThreadExecutor end to end.
    double engineTasksPerSec = 0.0;    ///< Engine-shaped pipeline.
    double engineAllocsPerTask = 0.0;  ///< Steady-state heap allocs.
};

/** The measured job: touches one cache line, no allocation. */
inline void
tinyWork(std::atomic<std::uint64_t> &sink)
{
    sink.fetch_add(1, std::memory_order_relaxed);
}

/**
 * Repeats per gated scenario, best taken. One sample of a
 * submit+drain run is bimodal under an oversubscribed host scheduler
 * (an unlucky preemption turns a 1.6x ratio into 0.95x); the best of
 * three measures what the pool can do, which is what the `--check`
 * floors assert. Applied to BOTH pools, so the ratio stays honest.
 */
constexpr int kRepeats = 3;

Result
runConfig(int workers, std::size_t tasks)
{
    namespace th = stats::threading;
    Result result;
    result.workers = workers;
    std::atomic<std::uint64_t> sink{0};

    for (int rep = 0; rep < kRepeats; ++rep) {
        // Work-stealing pool: per-submit latency, then drain.
        th::ThreadPool pool(workers);
        Timer timer;
        for (std::size_t i = 0; i < tasks; ++i)
            pool.submit([&sink] { tinyWork(sink); });
        const double submit_s = timer.elapsedSeconds();
        pool.waitIdle();
        const double total_s = timer.elapsedSeconds();
        const double submitNs =
            submit_s * 1e9 / static_cast<double>(tasks);
        if (rep == 0 || submitNs < result.submitNsPerTask)
            result.submitNsPerTask = submitNs;
        const double perSec = static_cast<double>(tasks) / total_s;
        if (perSec > result.newTasksPerSec) {
            result.newTasksPerSec = perSec;
            result.drainNs = (total_s - submit_s) * 1e9;
        }
    }

    for (int rep = 0; rep < kRepeats; ++rep) {
        // Batched submission of the same load.
        th::ThreadPool pool(workers);
        std::vector<th::PoolTask> batch;
        batch.reserve(tasks);
        Timer timer;
        for (std::size_t i = 0; i < tasks; ++i) {
            th::PoolTask task;
            task.run = [&sink](bool) { tinyWork(sink); };
            batch.push_back(std::move(task));
        }
        pool.submitBatch(std::move(batch));
        const double submit_s = timer.elapsedSeconds();
        pool.waitIdle();
        const double batchNs =
            submit_s * 1e9 / static_cast<double>(tasks);
        if (rep == 0 || batchNs < result.batchSubmitNsPerTask)
            result.batchSubmitNsPerTask = batchNs;
    }

    for (int rep = 0; rep < kRepeats; ++rep) {
        // Legacy global-queue pool, identical load.
        LegacyGlobalQueuePool pool(workers);
        Timer timer;
        for (std::size_t i = 0; i < tasks; ++i)
            pool.submit([&sink] { tinyWork(sink); });
        pool.waitIdle();
        result.legacyTasksPerSec =
            std::max(result.legacyTasksPerSec,
                     static_cast<double>(tasks) /
                         timer.elapsedSeconds());
    }
    result.externalSpeedup =
        result.newTasksPerSec / result.legacyTasksPerSec;

    for (int rep = 0; rep < kRepeats; ++rep) {
        // Nested submission, continuation chains: every task spawns
        // its successor from the worker thread — the engine's
        // completion-callback pattern. Worker-side submits hit the
        // submitter's next-task slot or deque and recycle its node
        // freelist; the legacy pool below serializes the same pattern
        // through one global mutex.
        th::ThreadPool pool(workers);
        std::atomic<std::int64_t> remaining{
            static_cast<std::int64_t>(tasks)}; // Signed: the racing
        // final links may decrement below zero; an unsigned wrap
        // would read as "plenty left" and the chain would never end.
        struct Chain
        {
            th::ThreadPool *pool;
            std::atomic<std::int64_t> *remaining;
            std::atomic<std::uint64_t> *sink;
            void
            operator()() const
            {
                tinyWork(*sink);
                if (remaining->fetch_sub(
                        1, std::memory_order_relaxed) > 1)
                    pool->submit(Chain{pool, remaining, sink});
            }
        };
        Timer timer;
        for (int c = 0; c < workers; ++c)
            pool.submit(Chain{&pool, &remaining, &sink});
        pool.waitIdle();
        result.nestedTasksPerSec =
            std::max(result.nestedTasksPerSec,
                     static_cast<double>(tasks) /
                         timer.elapsedSeconds());
    }

    for (int rep = 0; rep < kRepeats; ++rep) {
        // The same continuation chains through the legacy pool.
        LegacyGlobalQueuePool pool(workers);
        std::atomic<std::int64_t> remaining{
            static_cast<std::int64_t>(tasks)}; // Signed: the racing
        // final links may decrement below zero; an unsigned wrap
        // would read as "plenty left" and the chain would never end.
        struct Chain
        {
            LegacyGlobalQueuePool *pool;
            std::atomic<std::int64_t> *remaining;
            std::atomic<std::uint64_t> *sink;
            void
            operator()() const
            {
                tinyWork(*sink);
                if (remaining->fetch_sub(
                        1, std::memory_order_relaxed) > 1)
                    pool->submit(Chain{pool, remaining, sink});
            }
        };
        Timer timer;
        for (int c = 0; c < workers; ++c)
            pool.submit(Chain{&pool, &remaining, &sink});
        pool.waitIdle();
        result.legacyNestedTasksPerSec =
            std::max(result.legacyNestedTasksPerSec,
                     static_cast<double>(tasks) /
                         timer.elapsedSeconds());
    }
    result.speedup =
        result.nestedTasksPerSec / result.legacyNestedTasksPerSec;

    { // Forced-steal scenario: one worker floods its own deque (a
      // worker-thread submit goes to the submitter's deque) and then
      // keeps its worker busy until the backlog drains, so the other
      // workers can only make progress by stealing.
        th::ThreadPool pool(workers);
        const std::uint64_t before = sink.load();
        Timer timer;
        pool.submit([&pool, &sink, tasks, before, workers] {
            for (std::size_t i = 0; i < tasks; ++i)
                pool.submit([&sink] { tinyWork(sink); });
            while (workers > 1 && sink.load() - before < tasks)
                std::this_thread::yield();
        });
        pool.waitIdle();
        const double elapsed = timer.elapsedSeconds();
        result.stealsPerSec =
            static_cast<double>(pool.stats().stolen) / elapsed;
    }

    { // End to end through the executor (span gate + commit lane).
        stats::exec::ThreadExecutor executor(workers);
        std::atomic<std::uint64_t> completed{0};
        Timer timer;
        for (std::size_t i = 0; i < tasks; ++i) {
            stats::exec::Task task;
            task.run = [&sink] {
                tinyWork(sink);
                return stats::exec::Work{0.0, 0.0};
            };
            task.onComplete = [&completed] {
                completed.fetch_add(1, std::memory_order_relaxed);
            };
            executor.submit(std::move(task));
        }
        executor.drain();
        result.executorTasksPerSec =
            static_cast<double>(tasks) / timer.elapsedSeconds();
    }

    { // Engine-shaped pipeline: window task -> match check -> commit.
      // Mirrors the speculation engine's hot path (spec_engine.hpp):
      // each window's record lives in a TaskArena, the task body
      // computes a digest over the window (the match check), and the
      // serialized commit callback retires the record and submits the
      // next window from inside the commit lane — the exact
      // external-synchronization contract the arena relies on. The
      // first epoch warms the executor's record freelist, the pool's
      // node freelists, and the arena's blocks; the second epoch is
      // measured, and the operator-new override at the top of this
      // file counts every heap allocation anyone performs during it.
        stats::exec::ThreadExecutor executor(workers);
        stats::threading::TaskArena arena;
        struct WindowRec
        {
            std::uint64_t seed = 0;
            std::uint64_t digest = 0;
        };
        struct Pipeline
        {
            stats::exec::ThreadExecutor *executor;
            stats::threading::TaskArena *arena;
            std::atomic<std::uint64_t> *sink;
            std::int64_t toSubmit = 0; ///< Pre-submit + lane only.

            stats::exec::Task
            makeWindow()
            {
                --toSubmit;
                WindowRec *rec = arena->create<WindowRec>();
                rec->seed = static_cast<std::uint64_t>(toSubmit) *
                            0x9e3779b97f4a7c15ull;
                stats::exec::Task task;
                task.run = [rec] {
                    // Window body + match check: a short digest.
                    std::uint64_t h = rec->seed;
                    h ^= h >> 33;
                    h *= 0xff51afd7ed558ccdull;
                    h ^= h >> 33;
                    rec->digest = h;
                    return stats::exec::Work{0.0, 0.0};
                };
                task.onComplete = [this, rec] {
                    // Commit: the lane serializes these, so the
                    // arena needs no lock — and the next window is
                    // submitted from a worker thread, taking the
                    // pool's continuation fast path.
                    sink->fetch_add(rec->digest & 1,
                                    std::memory_order_relaxed);
                    arena->destroy(rec);
                    if (toSubmit > 0)
                        executor->submit(makeWindow());
                };
                return task;
            }

            void
            runEpoch(std::size_t n, int workers)
            {
                toSubmit = static_cast<std::int64_t>(n);
                // Seed one pipeline per worker slot; every later
                // window is spawned by a commit callback, so all
                // arena mutation after this loop is lane-serialized.
                const std::int64_t depth =
                    std::min<std::int64_t>(2 * workers, toSubmit);
                for (std::int64_t i = 0; i < depth; ++i)
                    executor->submit(makeWindow());
                executor->drain();
                arena->drainEpoch();
            }
        };
        Pipeline pipeline{&executor, &arena, &sink};
        pipeline.runEpoch(tasks, workers); // Warm-up epoch.
        const std::uint64_t before =
            g_heapAllocs.load(std::memory_order_relaxed);
        Timer timer;
        pipeline.runEpoch(tasks, workers); // Measured epoch.
        const double elapsed = timer.elapsedSeconds();
        const std::uint64_t allocs =
            g_heapAllocs.load(std::memory_order_relaxed) - before;
        result.engineTasksPerSec =
            static_cast<double>(tasks) / elapsed;
        result.engineAllocsPerTask =
            static_cast<double>(allocs) / static_cast<double>(tasks);
    }

    return result;
}

void
writeJson(std::ostream &out, const std::vector<Result> &results,
          std::size_t tasks, bool smoke)
{
    stats::support::JsonWriter json(out, true);
    json.beginObject();
    json.field("benchmark", "micro_scheduler")
        .field("smoke", smoke)
        .field("tasksPerConfig", tasks);
    json.key("results").beginArray();
    for (const Result &r : results) {
        json.beginObject()
            .field("workers", r.workers)
            .field("submitNsPerTask", r.submitNsPerTask)
            .field("batchSubmitNsPerTask", r.batchSubmitNsPerTask)
            .field("drainNs", r.drainNs)
            .field("newTasksPerSec", r.newTasksPerSec)
            .field("legacyTasksPerSec", r.legacyTasksPerSec)
            .field("externalSpeedup", r.externalSpeedup)
            .field("nestedTasksPerSec", r.nestedTasksPerSec)
            .field("legacyNestedTasksPerSec", r.legacyNestedTasksPerSec)
            .field("speedup", r.speedup)
            .field("stealsPerSec", r.stealsPerSec)
            .field("executorTasksPerSec", r.executorTasksPerSec)
            .field("engineTasksPerSec", r.engineTasksPerSec)
            .field("engineAllocsPerTask", r.engineAllocsPerTask)
            .endObject();
    }
    json.endArray();
    // Regression-guard convenience fields, one set PER worker count:
    // `--check` compares these without a JSON parser, so keep them
    // flat and uniquely named. (A gate that only checked the widest
    // configuration once let a 1-worker regression ship unnoticed.)
    for (const Result &r : results) {
        const std::string prefix =
            "check_w" + std::to_string(r.workers) + "_";
        json.field(prefix + "submitNsPerTask", r.submitNsPerTask)
            .field(prefix + "speedup", r.speedup)
            .field(prefix + "externalSpeedup", r.externalSpeedup)
            .field(prefix + "engineAllocsPerTask",
                   r.engineAllocsPerTask);
    }
    // Legacy single-configuration fields, kept so an old binary can
    // still check against a new baseline.
    const Result &widest = results.back();
    json.field("checkWorkers", widest.workers)
        .field("checkSubmitNsPerTask", widest.submitNsPerTask)
        .field("checkSpeedup", widest.speedup);
    json.endObject();
    out << "\n";
}

/** Scan `text` for `"name": <number>`; nan when absent. */
double
scanField(const std::string &text, const std::string &name)
{
    const std::string needle = "\"" + name + "\":";
    const std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_scheduler.json";
    std::string check_path;
    double factor = 2.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--check=", 0) == 0) {
            check_path = arg.substr(8);
        } else if (arg.rfind("--factor=", 0) == 0) {
            factor = std::strtod(arg.c_str() + 9, nullptr);
        } else {
            std::cerr << "usage: micro_scheduler [--smoke] [--out=FILE]"
                         " [--check=BASELINE] [--factor=N]\n";
            return 2;
        }
    }

    const std::size_t tasks = smoke ? 20000 : 200000;
    std::vector<Result> results;
    for (int workers : {1, 2, 4, 8})
        results.push_back(runConfig(workers, tasks));

    stats::support::TextTable table(
        {"workers", "submit ns", "batch ns", "ext tasks/s", "ext x",
         "nested tasks/s", "legacy nested/s", "speedup", "steals/s",
         "exec tasks/s", "engine tasks/s", "allocs/task"});
    const auto fmt = [](double v) {
        return stats::support::TextTable::formatDouble(v, 1);
    };
    const auto ratio = [](double v) {
        return stats::support::TextTable::formatDouble(v, 2);
    };
    for (const Result &r : results) {
        table.addRow({std::to_string(r.workers), fmt(r.submitNsPerTask),
                      fmt(r.batchSubmitNsPerTask), fmt(r.newTasksPerSec),
                      ratio(r.externalSpeedup), fmt(r.nestedTasksPerSec),
                      fmt(r.legacyNestedTasksPerSec), ratio(r.speedup),
                      fmt(r.stealsPerSec), fmt(r.executorTasksPerSec),
                      fmt(r.engineTasksPerSec),
                      stats::support::TextTable::formatDouble(
                          r.engineAllocsPerTask, 4)});
    }
    table.print(std::cout);

    {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "micro_scheduler: cannot write " << out_path
                      << "\n";
            return 1;
        }
        writeJson(out, results, tasks, smoke);
        std::cout << "wrote " << out_path << "\n";
    }

    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::cerr << "micro_scheduler: cannot read baseline "
                      << check_path << "\n";
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        const std::string baseline = buffer.str();
        // The gate holds at EVERY measured worker count, not just the
        // widest: submit latency is bounded relative to the baseline,
        // and the speedup/allocation floors are absolute (they ARE
        // the acceptance criteria, not a drift allowance).
        bool failed = false;
        for (const Result &r : results) {
            const std::string prefix =
                "check_w" + std::to_string(r.workers) + "_";
            const double base =
                scanField(baseline, prefix + "submitNsPerTask");
            if (base <= 0.0) {
                std::cerr << "micro_scheduler: baseline " << check_path
                          << " has no " << prefix
                          << "submitNsPerTask field\n";
                return 1;
            }
            std::cout << "check w" << r.workers << ": submit ns/task "
                      << r.submitNsPerTask << " vs baseline " << base
                      << " (allowed " << base * factor
                      << "), speedup " << r.speedup
                      << ", external " << r.externalSpeedup
                      << ", engine allocs/task "
                      << r.engineAllocsPerTask << "\n";
            if (r.submitNsPerTask > base * factor) {
                std::cerr << "micro_scheduler: REGRESSION at "
                          << r.workers << " workers — submit latency "
                          << r.submitNsPerTask << " ns/task exceeds "
                          << factor << "x baseline " << base
                          << " ns/task\n";
                failed = true;
            }
            if (r.speedup < 1.0) {
                std::cerr << "micro_scheduler: FLOOR at " << r.workers
                          << " workers — nested speedup " << r.speedup
                          << " fell below 1.0 vs the legacy pool\n";
                failed = true;
            }
            if (r.workers >= 4 && r.externalSpeedup < 1.0) {
                std::cerr << "micro_scheduler: FLOOR at " << r.workers
                          << " workers — external speedup "
                          << r.externalSpeedup
                          << " fell below 1.0 vs the legacy pool\n";
                failed = true;
            }
            if (r.engineAllocsPerTask > 0.01) {
                std::cerr << "micro_scheduler: FLOOR at " << r.workers
                          << " workers — engine-shaped epoch performed "
                          << r.engineAllocsPerTask
                          << " heap allocations per task in steady "
                             "state (limit 0.01)\n";
                failed = true;
            }
        }
        if (failed)
            return 1;
    }
    return 0;
}
