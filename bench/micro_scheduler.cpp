/**
 * @file
 * Microbenchmark of the work-stealing scheduler's hot path.
 *
 * Measures, per worker count (1/2/4/8):
 *  - submit latency (ns/task, caller side, external submission),
 *  - batched submit latency (ns/task via submitBatch),
 *  - external submit+drain throughput (tasks/s) for the work-stealing
 *    pool AND for an inline copy of the global-queue pool it replaced,
 *  - nested submit+drain throughput: continuation chains where every
 *    task spawns its successor from a *worker* thread — the
 *    speculation engine's actual submission pattern (tasks are spawned
 *    from completion callbacks). This is the headline speedup:
 *    worker-side submits hit the submitter's own lock-free deque,
 *    where the legacy pool serializes every nested submit and every
 *    dequeue through one global mutex. Note: the ratio only exceeds 1
 *    when cores actually contend the legacy mutex; on a single-core
 *    host the mutex is uncontended and near the accounting floor, so
 *    expect ~parity there (EXPERIMENTS.md "Scheduler hot path"),
 *  - steal throughput (steals/s) in a forced-steal scenario where one
 *    worker floods its own deque and the others must steal,
 *  - end-to-end ThreadExecutor throughput (tasks/s including the
 *    commit-lane completion callback).
 *
 * Output: a table plus BENCH_scheduler.json. CI runs `--smoke
 * --check=<baseline>` and fails when the submit+drain hot path
 * regresses by more than `--factor` (default 2x) against the
 * checked-in baseline (bench/baselines/BENCH_scheduler.baseline.json).
 * Any output file can serve as the next baseline.
 */

#include <condition_variable>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_executor.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"
#include "threading/thread_pool.hpp"

namespace {

using stats::support::Timer;

/**
 * The pre-work-stealing thread pool, kept verbatim as the benchmark
 * baseline: one mutex-protected global deque, every submit takes the
 * lock and signals the condition variable.
 */
class LegacyGlobalQueuePool
{
  public:
    explicit LegacyGlobalQueuePool(int threads)
    {
        const int n = threads < 1 ? 1 : threads;
        _threads.reserve(static_cast<std::size_t>(n));
        for (int i = 0; i < n; ++i)
            _threads.emplace_back([this] { workerLoop(); });
    }

    ~LegacyGlobalQueuePool()
    {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _shutdown = true;
        }
        _cv.notify_all();
        for (auto &thread : _threads)
            thread.join();
    }

    void
    submit(std::function<void()> job)
    {
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _queue.push_back(std::move(job));
        }
        _cv.notify_one();
    }

    void
    waitIdle()
    {
        std::unique_lock<std::mutex> lock(_mutex);
        _idleCv.wait(lock,
                     [this] { return _queue.empty() && _active == 0; });
    }

  private:
    void
    workerLoop()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(_mutex);
                _cv.wait(lock, [this] {
                    return _shutdown || !_queue.empty();
                });
                if (_queue.empty())
                    return; // Shutdown with a drained queue.
                job = std::move(_queue.front());
                _queue.pop_front();
                ++_active;
            }
            job();
            {
                std::unique_lock<std::mutex> lock(_mutex);
                --_active;
                if (_queue.empty() && _active == 0)
                    _idleCv.notify_all();
            }
        }
    }

    std::mutex _mutex;
    std::condition_variable _cv;
    std::condition_variable _idleCv;
    std::deque<std::function<void()>> _queue;
    std::size_t _active = 0;
    bool _shutdown = false;
    std::vector<std::thread> _threads;
};

struct Result
{
    int workers = 0;
    double submitNsPerTask = 0.0;      ///< Caller-side enqueue cost.
    double batchSubmitNsPerTask = 0.0; ///< Same, via submitBatch.
    double drainNs = 0.0;              ///< waitIdle after the last submit.
    double newTasksPerSec = 0.0;       ///< External submit+drain.
    double legacyTasksPerSec = 0.0;    ///< Same, global-queue pool.
    double externalSpeedup = 0.0;
    double nestedTasksPerSec = 0.0;       ///< Worker-side submit+drain.
    double legacyNestedTasksPerSec = 0.0; ///< Same, global-queue pool.
    double speedup = 0.0; ///< Headline: nested (engine pattern) ratio.
    double stealsPerSec = 0.0;
    double executorTasksPerSec = 0.0;  ///< ThreadExecutor end to end.
};

/** The measured job: touches one cache line, no allocation. */
inline void
tinyWork(std::atomic<std::uint64_t> &sink)
{
    sink.fetch_add(1, std::memory_order_relaxed);
}

Result
runConfig(int workers, std::size_t tasks)
{
    namespace th = stats::threading;
    Result result;
    result.workers = workers;
    std::atomic<std::uint64_t> sink{0};

    { // Work-stealing pool: per-submit latency, then drain.
        th::ThreadPool pool(workers);
        Timer timer;
        for (std::size_t i = 0; i < tasks; ++i)
            pool.submit([&sink] { tinyWork(sink); });
        const double submit_s = timer.elapsedSeconds();
        pool.waitIdle();
        const double total_s = timer.elapsedSeconds();
        result.submitNsPerTask =
            submit_s * 1e9 / static_cast<double>(tasks);
        result.drainNs = (total_s - submit_s) * 1e9;
        result.newTasksPerSec = static_cast<double>(tasks) / total_s;
    }

    { // Batched submission of the same load.
        th::ThreadPool pool(workers);
        std::vector<th::PoolTask> batch;
        batch.reserve(tasks);
        Timer timer;
        for (std::size_t i = 0; i < tasks; ++i) {
            th::PoolTask task;
            task.run = [&sink](bool) { tinyWork(sink); };
            batch.push_back(std::move(task));
        }
        pool.submitBatch(std::move(batch));
        const double submit_s = timer.elapsedSeconds();
        pool.waitIdle();
        result.batchSubmitNsPerTask =
            submit_s * 1e9 / static_cast<double>(tasks);
    }

    { // Legacy global-queue pool, identical load.
        LegacyGlobalQueuePool pool(workers);
        Timer timer;
        for (std::size_t i = 0; i < tasks; ++i)
            pool.submit([&sink] { tinyWork(sink); });
        pool.waitIdle();
        result.legacyTasksPerSec =
            static_cast<double>(tasks) / timer.elapsedSeconds();
    }
    result.externalSpeedup =
        result.newTasksPerSec / result.legacyTasksPerSec;

    { // Nested submission, continuation chains: every task spawns its
      // successor from the worker thread — the engine's completion-
      // callback pattern. Worker-side submits hit the submitter's own
      // deque and recycle its node freelist; the legacy pool below
      // serializes the same pattern through one global mutex.
        th::ThreadPool pool(workers);
        std::atomic<std::int64_t> remaining{
            static_cast<std::int64_t>(tasks)}; // Signed: the racing
        // final links may decrement below zero; an unsigned wrap
        // would read as "plenty left" and the chain would never end.
        struct Chain
        {
            th::ThreadPool *pool;
            std::atomic<std::int64_t> *remaining;
            std::atomic<std::uint64_t> *sink;
            void
            operator()() const
            {
                tinyWork(*sink);
                if (remaining->fetch_sub(
                        1, std::memory_order_relaxed) > 1)
                    pool->submit(Chain{pool, remaining, sink});
            }
        };
        Timer timer;
        for (int c = 0; c < workers; ++c)
            pool.submit(Chain{&pool, &remaining, &sink});
        pool.waitIdle();
        result.nestedTasksPerSec =
            static_cast<double>(tasks) / timer.elapsedSeconds();
    }

    { // The same continuation chains through the legacy pool.
        LegacyGlobalQueuePool pool(workers);
        std::atomic<std::int64_t> remaining{
            static_cast<std::int64_t>(tasks)}; // Signed: the racing
        // final links may decrement below zero; an unsigned wrap
        // would read as "plenty left" and the chain would never end.
        struct Chain
        {
            LegacyGlobalQueuePool *pool;
            std::atomic<std::int64_t> *remaining;
            std::atomic<std::uint64_t> *sink;
            void
            operator()() const
            {
                tinyWork(*sink);
                if (remaining->fetch_sub(
                        1, std::memory_order_relaxed) > 1)
                    pool->submit(Chain{pool, remaining, sink});
            }
        };
        Timer timer;
        for (int c = 0; c < workers; ++c)
            pool.submit(Chain{&pool, &remaining, &sink});
        pool.waitIdle();
        result.legacyNestedTasksPerSec =
            static_cast<double>(tasks) / timer.elapsedSeconds();
    }
    result.speedup =
        result.nestedTasksPerSec / result.legacyNestedTasksPerSec;

    { // Forced-steal scenario: one worker floods its own deque (a
      // worker-thread submit goes to the submitter's deque) and then
      // keeps its worker busy until the backlog drains, so the other
      // workers can only make progress by stealing.
        th::ThreadPool pool(workers);
        const std::uint64_t before = sink.load();
        Timer timer;
        pool.submit([&pool, &sink, tasks, before, workers] {
            for (std::size_t i = 0; i < tasks; ++i)
                pool.submit([&sink] { tinyWork(sink); });
            while (workers > 1 && sink.load() - before < tasks)
                std::this_thread::yield();
        });
        pool.waitIdle();
        const double elapsed = timer.elapsedSeconds();
        result.stealsPerSec =
            static_cast<double>(pool.stats().stolen) / elapsed;
    }

    { // End to end through the executor (span gate + commit lane).
        stats::exec::ThreadExecutor executor(workers);
        std::atomic<std::uint64_t> completed{0};
        Timer timer;
        for (std::size_t i = 0; i < tasks; ++i) {
            stats::exec::Task task;
            task.run = [&sink] {
                tinyWork(sink);
                return stats::exec::Work{0.0, 0.0};
            };
            task.onComplete = [&completed] {
                completed.fetch_add(1, std::memory_order_relaxed);
            };
            executor.submit(std::move(task));
        }
        executor.drain();
        result.executorTasksPerSec =
            static_cast<double>(tasks) / timer.elapsedSeconds();
    }

    return result;
}

void
writeJson(std::ostream &out, const std::vector<Result> &results,
          std::size_t tasks, bool smoke)
{
    stats::support::JsonWriter json(out, true);
    json.beginObject();
    json.field("benchmark", "micro_scheduler")
        .field("smoke", smoke)
        .field("tasksPerConfig", tasks);
    json.key("results").beginArray();
    for (const Result &r : results) {
        json.beginObject()
            .field("workers", r.workers)
            .field("submitNsPerTask", r.submitNsPerTask)
            .field("batchSubmitNsPerTask", r.batchSubmitNsPerTask)
            .field("drainNs", r.drainNs)
            .field("newTasksPerSec", r.newTasksPerSec)
            .field("legacyTasksPerSec", r.legacyTasksPerSec)
            .field("externalSpeedup", r.externalSpeedup)
            .field("nestedTasksPerSec", r.nestedTasksPerSec)
            .field("legacyNestedTasksPerSec", r.legacyNestedTasksPerSec)
            .field("speedup", r.speedup)
            .field("stealsPerSec", r.stealsPerSec)
            .field("executorTasksPerSec", r.executorTasksPerSec)
            .endObject();
    }
    json.endArray();
    // Regression-guard convenience fields: the submit+drain hot path
    // at the widest configuration. `--check` compares these without a
    // JSON parser, so keep them flat and uniquely named.
    const Result &widest = results.back();
    json.field("checkWorkers", widest.workers)
        .field("checkSubmitNsPerTask", widest.submitNsPerTask)
        .field("checkSpeedup", widest.speedup);
    json.endObject();
    out << "\n";
}

/** Scan `text` for `"name": <number>`; nan when absent. */
double
scanField(const std::string &text, const std::string &name)
{
    const std::string needle = "\"" + name + "\":";
    const std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_scheduler.json";
    std::string check_path;
    double factor = 2.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--check=", 0) == 0) {
            check_path = arg.substr(8);
        } else if (arg.rfind("--factor=", 0) == 0) {
            factor = std::strtod(arg.c_str() + 9, nullptr);
        } else {
            std::cerr << "usage: micro_scheduler [--smoke] [--out=FILE]"
                         " [--check=BASELINE] [--factor=N]\n";
            return 2;
        }
    }

    const std::size_t tasks = smoke ? 20000 : 200000;
    std::vector<Result> results;
    for (int workers : {1, 2, 4, 8})
        results.push_back(runConfig(workers, tasks));

    stats::support::TextTable table(
        {"workers", "submit ns", "batch ns", "ext tasks/s", "ext x",
         "nested tasks/s", "legacy nested/s", "speedup", "steals/s",
         "exec tasks/s"});
    const auto fmt = [](double v) {
        return stats::support::TextTable::formatDouble(v, 1);
    };
    const auto ratio = [](double v) {
        return stats::support::TextTable::formatDouble(v, 2);
    };
    for (const Result &r : results) {
        table.addRow({std::to_string(r.workers), fmt(r.submitNsPerTask),
                      fmt(r.batchSubmitNsPerTask), fmt(r.newTasksPerSec),
                      ratio(r.externalSpeedup), fmt(r.nestedTasksPerSec),
                      fmt(r.legacyNestedTasksPerSec), ratio(r.speedup),
                      fmt(r.stealsPerSec), fmt(r.executorTasksPerSec)});
    }
    table.print(std::cout);

    {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "micro_scheduler: cannot write " << out_path
                      << "\n";
            return 1;
        }
        writeJson(out, results, tasks, smoke);
        std::cout << "wrote " << out_path << "\n";
    }

    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::cerr << "micro_scheduler: cannot read baseline "
                      << check_path << "\n";
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        const double baseline =
            scanField(buffer.str(), "checkSubmitNsPerTask");
        if (baseline <= 0.0) {
            std::cerr << "micro_scheduler: baseline " << check_path
                      << " has no checkSubmitNsPerTask field\n";
            return 1;
        }
        const double current = results.back().submitNsPerTask;
        std::cout << "check: submit ns/task " << current
                  << " vs baseline " << baseline << " (allowed "
                  << baseline * factor << ")\n";
        if (current > baseline * factor) {
            std::cerr << "micro_scheduler: REGRESSION — submit latency "
                      << current << " ns/task exceeds " << factor
                      << "x baseline " << baseline << " ns/task\n";
            return 1;
        }
    }
    return 0;
}
