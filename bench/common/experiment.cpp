#include "common/experiment.hpp"

#include <algorithm>
#include <fstream>
#include <iostream>

#include "observability/chrome_trace.hpp"
#include "observability/summary.hpp"
#include "observability/trace.hpp"
#include "replay/fault_plan.hpp"
#include "replay/record_log.hpp"
#include "replay/session.hpp"
#include "support/log.hpp"
#include "support/statistics.hpp"
#include "support/string_utils.hpp"

namespace stats::benchx {

sim::MachineConfig
paperMachine()
{
    sim::MachineConfig config;
    config.sockets = 2;
    config.coresPerSocket = 14;
    config.hyperThreading = false;
    return config;
}

sim::MachineConfig
singleSocketMachine(bool hyper_threading)
{
    sim::MachineConfig config;
    config.sockets = 1;
    config.coresPerSocket = 14;
    config.hyperThreading = hyper_threading;
    config.placement = sim::MachineConfig::Placement::SingleSocketFirst;
    return config;
}

const std::vector<int> &
threadSweep()
{
    static const std::vector<int> sweep{2,  4,  6,  8,  10, 12, 14,
                                        16, 18, 20, 22, 24, 26, 28};
    return sweep;
}

double
sequentialTime(benchmarks::Benchmark &benchmark)
{
    benchmarks::RunRequest request;
    request.threads = 1;
    request.mode = benchmarks::Mode::Original;
    request.machine = paperMachine();
    double total = 0.0;
    constexpr int kReps = 2;
    for (int rep = 0; rep < kReps; ++rep)
        total += benchmark.run(request).virtualSeconds;
    return total / kReps;
}

TunedPoint
tuneAt(benchmarks::Benchmark &benchmark, benchmarks::Mode mode,
       int threads, const sim::MachineConfig &machine, int budget,
       profiler::Objective objective, std::uint64_t seed,
       benchmarks::WorkloadKind workload)
{
    const auto tuned = profiler::tuneBenchmark(
        benchmark, mode, threads, machine, objective, budget, seed,
        workload);
    TunedPoint point;
    point.config = tuned.config;
    point.seconds = tuned.measurement.seconds;
    point.energyJoules = tuned.measurement.energyJoules;
    point.tuning = tuned.tuning;
    return point;
}

namespace {

double
measure(benchmarks::Benchmark &benchmark, benchmarks::Mode mode,
        const tradeoff::Configuration &config, int threads,
        const sim::MachineConfig &machine, int reps = 3)
{
    benchmarks::RunRequest request;
    request.mode = mode;
    request.config = config;
    request.threads = threads;
    request.machine = machine;
    std::vector<double> times;
    for (int rep = 0; rep < reps; ++rep)
        times.push_back(benchmark.run(request).virtualSeconds);
    // Median: robust against an occasional abort-and-recover run.
    return support::median(std::move(times));
}

} // namespace

ModeCurve
originalCurve(benchmarks::Benchmark &benchmark,
              const sim::MachineConfig &machine,
              const std::vector<int> &threads)
{
    ModeCurve curve;
    for (int t : threads) {
        curve.times.push_back(measure(
            benchmark, benchmarks::Mode::Original, {}, t, machine));
    }
    curve.bestTime =
        *std::min_element(curve.times.begin(), curve.times.end());
    return curve;
}

ModeCurve
tunedCurve(benchmarks::Benchmark &benchmark, benchmarks::Mode mode,
           const sim::MachineConfig &machine,
           const std::vector<int> &threads, int budget)
{
    static const std::vector<int> pivots{4, 14, 28};
    std::vector<TunedPoint> tuned;
    for (int pivot : pivots)
        tuned.push_back(
            tuneAt(benchmark, mode, pivot, machine, budget));

    ModeCurve curve;
    for (int t : threads) {
        // Evaluate every pivot's best configuration at this thread
        // count and keep the fastest: the paper's per-core-count
        // searches share one results store, so a configuration found
        // at any pivot is available everywhere.
        double best = 1e300;
        for (const auto &point : tuned) {
            best = std::min(best, measure(benchmark, mode,
                                          point.config, t, machine));
        }
        curve.times.push_back(best);
    }
    curve.bestTime =
        *std::min_element(curve.times.begin(), curve.times.end());
    return curve;
}

Scalability
measureScalability(benchmarks::Benchmark &benchmark, int budget)
{
    const auto machine = paperMachine();
    const auto &threads = threadSweep();

    Scalability result;
    result.name = benchmark.name();
    result.seqTime = sequentialTime(benchmark);
    result.original = originalCurve(benchmark, machine, threads);
    result.seqStats = tunedCurve(benchmark, benchmarks::Mode::SeqStats,
                                 machine, threads, budget);
    const ModeCurve par = tunedCurve(
        benchmark, benchmarks::Mode::ParStats, machine, threads, budget);

    // Par. STATS explores both TLP sources; take the better search
    // outcome per point.
    result.parStats.times.resize(threads.size());
    for (std::size_t i = 0; i < threads.size(); ++i) {
        result.parStats.times[i] =
            std::min(par.times[i], result.seqStats.times[i]);
    }
    result.parStats.bestTime =
        *std::min_element(result.parStats.times.begin(),
                          result.parStats.times.end());
    return result;
}

std::vector<double>
speedups(const ModeCurve &curve, double seq_time)
{
    std::vector<double> out;
    out.reserve(curve.times.size());
    for (double t : curve.times)
        out.push_back(seq_time / t);
    return out;
}

void
printHeader(const std::string &figure, const std::string &caption,
            const std::string &paper_expectation)
{
    std::cout << "==========================================================\n";
    std::cout << "STATS reproduction | " << figure << "\n";
    std::cout << caption << "\n";
    std::cout << "Paper expectation: " << paper_expectation << "\n";
    std::cout << "==========================================================\n";
}

ObsSession::ObsSession(int argc, char **argv)
{
    const auto grab = [&](int &i, const std::string &word,
                          const std::string &flag, std::string &path) {
        const std::string prefix = flag + "=";
        if (support::startsWith(word, prefix)) {
            path = word.substr(prefix.size());
            return true;
        }
        if (word == flag && i + 1 < argc) {
            path = argv[++i];
            return true;
        }
        return false;
    };
    std::string seed_word;
    std::string fault_spec;
    for (int i = 1; i < argc; ++i) {
        const std::string word = argv[i];
        if (!grab(i, word, "--trace", _tracePath) &&
            !grab(i, word, "--metrics", _metricsPath) &&
            !grab(i, word, "--seed", seed_word) &&
            !grab(i, word, "--record", _recordPath) &&
            !grab(i, word, "--replay", _replayPath) &&
            !grab(i, word, "--faults", fault_spec)) {
            std::cerr << "warning: ignoring unknown argument '" << word
                      << "' (known: --trace=FILE, --metrics=FILE, "
                         "--seed=N, --record=FILE, --replay=FILE, "
                         "--faults=PLAN)\n";
        }
    }
    _active = !_tracePath.empty() || !_metricsPath.empty();
    if (_active) {
        obs::Trace::global().enable();
        // Folds to false when the layer is compiled out.
        if (!obs::traceActive())
            support::fatal("--trace/--metrics need tracing compiled "
                           "in (built with STATS_OBS_DISABLE)");
    }

    if (!_recordPath.empty() && !_replayPath.empty())
        support::fatal("--record and --replay are exclusive");
    if (!fault_spec.empty()) {
        std::string error;
        auto plan = replay::FaultPlan::fromSpec(fault_spec, error);
        if (!plan)
            support::fatal(error);
        replay::ReplaySession::global().setFaultPlan(*plan);
        std::cerr << "fault plan: " << plan->describe() << "\n";
    }

    if (!seed_word.empty())
        _seed = std::stoull(seed_word);
    auto &session = replay::ReplaySession::global();
    if (!_replayPath.empty()) {
        std::string error;
        auto log = replay::RecordLog::loadFile(_replayPath, error);
        if (!log)
            support::fatal("--replay: ", error);
        _seed = log->rootSeed;
        session.startReplay(std::move(*log));
    } else if (!_recordPath.empty()) {
        if (_seed == 0) {
            // Entropy seeding cannot be reproduced; pin the run.
            _seed = 1;
            std::cerr << "note: --record without --seed; pinning root "
                         "seed to 1 for determinism\n";
        }
        session.startRecording(_seed);
        session.setMetadata("harness", argc > 0 ? argv[0] : "");
        session.setMetadata("seed", std::to_string(_seed));
    }
    // A nonzero root seed pins entropySeed() for the whole process:
    // what makes two recordings of the same harness byte-identical.
    if (_seed != 0)
        _pinned.emplace(_seed);
}

ObsSession::~ObsSession()
{
    auto &session = replay::ReplaySession::global();
    if (!_recordPath.empty()) {
        const replay::RecordLog log = session.finishRecording();
        log.saveFile(_recordPath);
        std::cerr << "recorded " << log.records.size()
                  << " choice points (" << log.runCount()
                  << " engine runs, seed " << log.rootSeed << ") to "
                  << _recordPath << "\n";
    } else if (!_replayPath.empty()) {
        const replay::ReplayReport report = session.finishReplay();
        if (report.diverged) {
            // Fatal so CI's replay-determinism job fails loudly.
            support::fatal("replay DIVERGED: ",
                           report.first.describe());
        }
        std::cerr << "replay OK: matched " << report.recordsMatched
                  << " choice points across " << report.runsReplayed
                  << " engine runs\n";
    }

    if (!_active)
        return;
    auto &trace = obs::Trace::global();
    const auto events = trace.collect();
    const auto summary = obs::summarizeTrace(events, trace.dropped());
    if (!_tracePath.empty()) {
        std::ofstream out(_tracePath);
        if (!out) {
            std::cerr << "cannot open '" << _tracePath << "'\n";
        } else {
            obs::writeChromeTrace(out, events);
            std::cerr << "wrote " << events.size()
                      << " trace events to " << _tracePath
                      << " (load in chrome://tracing)\n";
        }
    }
    if (!_metricsPath.empty()) {
        std::ofstream out(_metricsPath);
        if (!out) {
            std::cerr << "cannot open '" << _metricsPath << "'\n";
        } else {
            obs::writeSummaryJson(out, summary);
            std::cerr << "wrote metrics to " << _metricsPath << "\n";
        }
    }
    obs::printSummaryTable(std::cerr, summary);
}

} // namespace stats::benchx
