#include "common/ir_synth.hpp"

#include <cctype>

#include "support/log.hpp"

namespace stats::benchx {

namespace {

using namespace stats::ir;

/** First integer literal in a C++ method body; `fallback` if none. */
std::int64_t
firstInteger(const std::string &body, std::int64_t fallback)
{
    for (std::size_t i = 0; i < body.size(); ++i) {
        if (std::isdigit(static_cast<unsigned char>(body[i]))) {
            std::int64_t value = 0;
            while (i < body.size() &&
                   std::isdigit(static_cast<unsigned char>(body[i]))) {
                value = value * 10 + (body[i] - '0');
                ++i;
            }
            return value;
        }
    }
    return fallback;
}

Function
intFunction(const std::string &name, std::int64_t value)
{
    Function fn;
    fn.name = name;
    fn.returnType = Type::I64;
    BasicBlock block;
    block.label = "entry";
    Instruction ret;
    ret.op = Opcode::Ret;
    ret.type = Type::I64;
    ret.operands.push_back(Operand::constInt(value));
    block.instructions.push_back(ret);
    fn.blocks.push_back(std::move(block));
    return fn;
}

/** getValue(i) = i + 1 (canonical enumerable-value function). */
Function
getValueFunction(const std::string &name)
{
    Function fn;
    fn.name = name;
    fn.returnType = Type::I64;
    fn.params.push_back({"i", Type::I64});
    BasicBlock block;
    block.label = "entry";
    Instruction add;
    add.op = Opcode::Add;
    add.type = Type::I64;
    add.result = "v";
    add.operands = {Operand::temp("i"), Operand::constInt(1)};
    block.instructions.push_back(add);
    Instruction ret;
    ret.op = Opcode::Ret;
    ret.type = Type::I64;
    ret.operands.push_back(Operand::temp("v"));
    block.instructions.push_back(ret);
    fn.blocks.push_back(std::move(block));
    return fn;
}

/** f64 -> f64 function with `filler` extra arithmetic instructions. */
Function
floatChain(const std::string &name, std::size_t filler,
           const std::vector<std::string> &placeholder_calls = {})
{
    Function fn;
    fn.name = name;
    fn.returnType = Type::F64;
    fn.params.push_back({"x", Type::F64});
    BasicBlock block;
    block.label = "entry";

    std::string current = "x";
    int temp = 0;
    for (const auto &callee : placeholder_calls) {
        Instruction call;
        call.op = Opcode::Call;
        call.type = Type::F64;
        call.callee = callee;
        call.result = "t" + std::to_string(temp++);
        call.operands.push_back(Operand::temp(current));
        current = call.result;
        block.instructions.push_back(std::move(call));
    }
    for (std::size_t i = 0; i < filler; ++i) {
        Instruction add;
        add.op = Opcode::Add;
        add.type = Type::F64;
        add.result = "t" + std::to_string(temp++);
        add.operands = {Operand::temp(current),
                        Operand::constFloat(1.0)};
        current = add.result;
        block.instructions.push_back(std::move(add));
    }
    Instruction ret;
    ret.op = Opcode::Ret;
    ret.type = Type::F64;
    ret.operands.push_back(Operand::temp(current));
    block.instructions.push_back(ret);
    fn.blocks.push_back(std::move(block));
    return fn;
}

} // namespace

ir::Module
synthesizeIr(const frontend::FrontendResult &frontend_result,
             std::size_t kernel_instructions,
             std::size_t program_instructions)
{
    Module module;
    module.name = frontend_result.unitName;

    std::vector<std::string> const_placeholders;
    std::vector<std::string> wrap_placeholders; // f64 -> f64 shaped.

    for (const auto &decl : frontend_result.tradeoffs) {
        const std::string t = "T_" + std::to_string(decl.id);
        TradeoffMeta meta;
        meta.name = t;
        meta.kind = decl.kind;
        meta.placeholder = t;
        meta.getValueFn = t + "_getValue";
        meta.sizeFn = t + "_size";
        meta.defaultIndexFn = t + "_getDefaultIndex";
        meta.nameChoices = decl.choices;
        // Map C++ type spellings to IR types.
        for (auto &choice : meta.nameChoices) {
            if (choice == "double")
                choice = "f64";
            else if (choice == "float")
                choice = "f32";
        }

        const std::int64_t default_index =
            firstInteger(decl.getDefaultIndexBody, 0);
        const std::int64_t size = firstInteger(decl.getMaxIndexBody, 8);
        module.functions.push_back(
            getValueFunction(meta.getValueFn));
        module.functions.push_back(intFunction(meta.sizeFn, size));
        module.functions.push_back(
            intFunction(meta.defaultIndexFn, default_index));

        switch (decl.kind) {
          case TradeoffKind::Constant:
            module.functions.push_back(
                intFunction(t, default_index + 1));
            const_placeholders.push_back(t);
            break;
          case TradeoffKind::DataType:
            module.functions.push_back(floatChain(t, 0));
            wrap_placeholders.push_back(t);
            break;
          case TradeoffKind::FunctionChoice:
            for (const auto &choice : meta.nameChoices) {
                if (!module.findFunction(choice)) {
                    module.functions.push_back(
                        floatChain(choice, 2));
                }
            }
            {
                Function fn = floatChain(t, 0, {meta.nameChoices[0]});
                module.functions.push_back(std::move(fn));
            }
            wrap_placeholders.push_back(t);
            break;
        }
        module.tradeoffs.push_back(std::move(meta));
    }

    // A helper layer carrying half the wrap placeholders (call-graph
    // depth for the cloning analysis).
    std::vector<std::string> helper_calls, kernel_calls;
    for (std::size_t i = 0; i < wrap_placeholders.size(); ++i) {
        (i % 2 ? helper_calls : kernel_calls)
            .push_back(wrap_placeholders[i]);
    }
    module.functions.push_back(
        floatChain("kernelHelper", 6, helper_calls));

    // computeOutput: references every tradeoff; sized like the kernel.
    {
        Function fn;
        fn.name = "computeOutput";
        fn.returnType = Type::F64;
        fn.params.push_back({"input", Type::I64});
        fn.params.push_back({"state", Type::F64});
        BasicBlock block;
        block.label = "entry";
        int temp = 0;
        std::string current = "state";
        for (const auto &t : const_placeholders) {
            Instruction call;
            call.op = Opcode::Call;
            call.type = Type::I64;
            call.callee = t;
            call.result = "c" + std::to_string(temp);
            block.instructions.push_back(call);
            Instruction cast;
            cast.op = Opcode::Cast;
            cast.type = Type::F64;
            cast.result = "f" + std::to_string(temp);
            cast.operands.push_back(
                Operand::temp("c" + std::to_string(temp)));
            block.instructions.push_back(cast);
            Instruction add;
            add.op = Opcode::Add;
            add.type = Type::F64;
            add.result = "s" + std::to_string(temp);
            add.operands = {Operand::temp(current),
                            Operand::temp("f" + std::to_string(temp))};
            current = add.result;
            block.instructions.push_back(add);
            ++temp;
        }
        for (const auto &t : kernel_calls) {
            Instruction call;
            call.op = Opcode::Call;
            call.type = Type::F64;
            call.callee = t;
            call.result = "w" + std::to_string(temp);
            call.operands.push_back(Operand::temp(current));
            current = call.result;
            block.instructions.push_back(std::move(call));
            ++temp;
        }
        {
            Instruction call;
            call.op = Opcode::Call;
            call.type = Type::F64;
            call.callee = "kernelHelper";
            call.result = "h";
            call.operands.push_back(Operand::temp(current));
            current = "h";
            block.instructions.push_back(std::move(call));
        }
        const std::size_t used = block.instructions.size() + 1;
        for (std::size_t i = used; i < kernel_instructions; ++i) {
            Instruction add;
            add.op = Opcode::Add;
            add.type = Type::F64;
            add.result = "k" + std::to_string(i);
            add.operands = {Operand::temp(current),
                            Operand::constFloat(0.5)};
            current = add.result;
            block.instructions.push_back(add);
        }
        Instruction ret;
        ret.op = Opcode::Ret;
        ret.type = Type::F64;
        ret.operands.push_back(Operand::temp(current));
        block.instructions.push_back(ret);
        fn.blocks.push_back(std::move(block));
        module.functions.push_back(std::move(fn));
    }

    // Rest of the program (never cloned: no tradeoffs below it).
    module.functions.push_back(
        floatChain("restOfProgram", program_instructions));

    for (std::size_t d = 0; d < frontend_result.stateDeps.size(); ++d) {
        StateDepMeta dep;
        dep.name = "SD" + std::to_string(d);
        dep.computeFn = "computeOutput";
        module.stateDeps.push_back(std::move(dep));
    }
    return module;
}

} // namespace stats::benchx
