/**
 * @file
 * Shared machinery of the per-figure benchmark harnesses.
 *
 * Every figure/table binary in bench/ regenerates one table or figure
 * of the paper's evaluation (section 4): it prints the measured
 * rows/series plus a JSON blob for replotting, and a note stating the
 * paper's expected shape. Reproduction targets shapes, not absolute
 * numbers (see DESIGN.md section 2).
 */

#pragma once

#include <optional>
#include <string>
#include <vector>

#include "benchmarks/common/benchmark.hpp"
#include "profiler/profiler.hpp"
#include "sim/machine.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace stats::benchx {

/** The paper's platform: dual-socket 14-core Haswell, HT off. */
sim::MachineConfig paperMachine();

/** Single socket, optionally with 2-way HT (Figure 14's setup). */
sim::MachineConfig singleSocketMachine(bool hyper_threading);

/** Hardware-thread sweep of Figure 12: 2, 4, ..., 28. */
const std::vector<int> &threadSweep();

/** Sequential baseline: the out-of-the-box program on one core. */
double sequentialTime(benchmarks::Benchmark &benchmark);

/** One tuned configuration and its measured run time. */
struct TunedPoint
{
    tradeoff::Configuration config;
    double seconds = 0.0;
    double energyJoules = 0.0;
    autotuner::TuneResult tuning;
};

/** Autotune a benchmark at one (mode, threads) point. */
TunedPoint tuneAt(benchmarks::Benchmark &benchmark, benchmarks::Mode mode,
                  int threads, const sim::MachineConfig &machine,
                  int budget,
                  profiler::Objective objective = profiler::Objective::Time,
                  std::uint64_t seed = 1,
                  benchmarks::WorkloadKind workload =
                      benchmarks::WorkloadKind::Representative);

/** A run-time curve over the thread sweep. */
struct ModeCurve
{
    std::vector<double> times; ///< Seconds per sweep entry.
    double bestTime = 0.0;     ///< Minimum over the sweep.
};

/** Out-of-the-box curve: default configuration, original TLP only. */
ModeCurve originalCurve(benchmarks::Benchmark &benchmark,
                        const sim::MachineConfig &machine,
                        const std::vector<int> &threads);

/**
 * Autotuned curve for one mode: configurations are tuned at pivot
 * thread counts (4, 14, 28) and reused at the nearest pivot for the
 * other sweep points (the paper tunes per core count; pivots bound
 * the harness's run time).
 */
ModeCurve tunedCurve(benchmarks::Benchmark &benchmark,
                     benchmarks::Mode mode,
                     const sim::MachineConfig &machine,
                     const std::vector<int> &threads, int budget);

/** Figure 12 data of one benchmark. */
struct Scalability
{
    std::string name;
    double seqTime = 0.0;
    ModeCurve original;
    ModeCurve seqStats;
    ModeCurve parStats; ///< Best of the Seq and Par searches.
};

/**
 * Measure the three curves of Figure 12 for one benchmark. The Par.
 * STATS curve takes the better of the Seq- and Par-mode searches at
 * each point: Seq. STATS configurations are points of the Par. STATS
 * state space (inner threads = 1), so the combined search is what
 * the paper's single Par search explores.
 */
Scalability measureScalability(benchmarks::Benchmark &benchmark,
                               int budget = 36);

/** Speedups of a curve against a sequential baseline. */
std::vector<double> speedups(const ModeCurve &curve, double seq_time);

/** Print the harness banner: figure id, caption, expectation. */
void printHeader(const std::string &figure, const std::string &caption,
                 const std::string &paper_expectation);

/**
 * Observability + record/replay session of one figure binary.
 * Construct it first thing in main with argc/argv; it recognises
 *
 *   --trace=FILE   (or `--trace FILE`)   chrome://tracing JSON
 *   --metrics=FILE (or `--metrics FILE`) trace-derived metrics JSON
 *   --seed=N       pin the process PRVGs (deterministic run)
 *   --record=FILE  record the engine choice points (implies --seed;
 *                  defaults to seed 1 when none is given)
 *   --replay=FILE  re-drive the harness from a recording; any
 *                  divergence is fatal (nonzero exit, for CI)
 *   --faults=PLAN  inject faults (docs/REPLAY.md §4 grammar)
 *
 * When --trace/--metrics is present, enables the global trace for the
 * whole run. The destructor collects the events, writes the requested
 * files, prints the summary table to stderr (stdout carries the
 * figure's own tables/JSON), then saves the recording or reports the
 * replay verdict. Without these flags the session is inert. See
 * docs/OBSERVABILITY.md and docs/REPLAY.md.
 */
class ObsSession
{
  public:
    ObsSession(int argc, char **argv);
    ~ObsSession();

    ObsSession(const ObsSession &) = delete;
    ObsSession &operator=(const ObsSession &) = delete;

    bool active() const { return _active; }

    /** Root seed pinning this run (0 = entropy, unpinned). */
    std::uint64_t seed() const { return _seed; }

  private:
    std::string _tracePath;
    std::string _metricsPath;
    std::string _recordPath;
    std::string _replayPath;
    std::uint64_t _seed = 0;
    bool _active = false;

    /** Process-wide PRVG pin making the whole harness deterministic. */
    std::optional<support::ScopedDeterministicSeeds> _pinned;
};

} // namespace stats::benchx
