/**
 * @file
 * Synthesis of a benchmark-shaped IR module from a front-end result.
 *
 * The real benchmarks run through clang in the paper; our mini-IR has
 * no C++ lowering (see DESIGN.md section 2), so the Table 1 compiler
 * metrics (generated code, binary-size increase) are measured by
 * running the *real* middle-end on a module whose structure mirrors
 * the benchmark: its tradeoff placeholders and option functions (from
 * the front-end metadata), a computeOutput kernel sized like the
 * benchmark's kernel that references every tradeoff, a helper layer
 * for call-graph depth, and a rest-of-program function sized from the
 * benchmark's source LOC.
 */

#pragma once

#include "frontend/frontend.hpp"
#include "ir/ir.hpp"

namespace stats::benchx {

/**
 * Build the module described above.
 *
 * @param kernel_instructions  size of the computeOutput body
 * @param program_instructions size of the non-kernel program part
 */
ir::Module synthesizeIr(const frontend::FrontendResult &frontend_result,
                        std::size_t kernel_instructions,
                        std::size_t program_instructions);

} // namespace stats::benchx
