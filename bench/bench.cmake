# Benchmark harnesses: one binary per paper table/figure plus
# google-benchmark microbenchmarks of the runtime and compilers.
#
# This file is include()d from the top-level CMakeLists (instead of
# add_subdirectory) so that ${CMAKE_BINARY_DIR}/bench contains ONLY
# the runnable binaries: the whole suite can be executed with
#   for b in build/bench/*; do $b; done

add_library(stats_bench_common STATIC
    bench/common/experiment.cpp
    bench/common/ir_synth.cpp)
target_include_directories(stats_bench_common PUBLIC
    ${PROJECT_SOURCE_DIR}/bench)
target_link_libraries(stats_bench_common PUBLIC
    stats_profiler stats_baselines stats_frontend stats_midend
    stats_backend stats_replay)

function(stats_add_figure name)
    add_executable(${name} bench/${name}.cpp)
    target_link_libraries(${name} PRIVATE stats_bench_common)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

stats_add_figure(fig02_output_variability)
stats_add_figure(fig03_todays_limits)
stats_add_figure(table1_developer_effort)
stats_add_figure(fig12_scalability)
stats_add_figure(fig13_geomean)
stats_add_figure(fig14_hyperthreading)
stats_add_figure(fig15_energy)
stats_add_figure(fig16_quality_improvement)
stats_add_figure(fig17_related_work)
stats_add_figure(fig18_tradeoff_payoff)
stats_add_figure(fig19_bad_training)
stats_add_figure(fig20_autotuner_convergence)
stats_add_figure(ablation_design_choices)

function(stats_add_micro name)
    add_executable(${name} bench/${name}.cpp)
    target_link_libraries(${name} PRIVATE
        stats_bench_common benchmark::benchmark)
    set_target_properties(${name} PROPERTIES
        RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

stats_add_micro(micro_runtime)
stats_add_micro(micro_compilers)

# Scheduler hot-path benchmark: plain binary (no google-benchmark) so
# CI can run its --check regression gate against a checked-in baseline.
add_executable(micro_scheduler bench/micro_scheduler.cpp)
target_link_libraries(micro_scheduler PRIVATE
    stats_exec stats_threading stats_observability stats_support)
set_target_properties(micro_scheduler PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)

# Execution-tier benchmark: AST walker vs bytecode VM vs batched SoA
# mode, with the same --check regression gate (docs/INTERPRETER.md §8).
add_executable(micro_interpreter bench/micro_interpreter.cpp)
target_link_libraries(micro_interpreter PRIVATE
    stats_bytecode stats_ir stats_support)
set_target_properties(micro_interpreter PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
