/**
 * @file
 * Microbenchmarks (google-benchmark) of the compiler pipeline:
 * front-end translation, middle-end auxiliary-code generation, and —
 * critically — back-end instantiation, which the paper requires to
 * be cheap because "the autotuner must instantiate the same IR to
 * multiple configurations" (section 3.4, design choices).
 */

#include <benchmark/benchmark.h>

#include "backend/backend.hpp"
#include "benchmarks/common/extended_sources.hpp"
#include "common/ir_synth.hpp"
#include "frontend/frontend.hpp"
#include "midend/midend.hpp"

namespace {

using namespace stats;

void
BM_FrontendTranslation(benchmark::State &state)
{
    const std::string &source =
        benchmarks::extendedSourceFor("fluidanimate");
    for (auto _ : state) {
        const auto result =
            frontend::compileExtendedSource(source, "fluidanimate");
        benchmark::DoNotOptimize(result.tradeoffs.size());
    }
}
BENCHMARK(BM_FrontendTranslation);

void
BM_MiddleEndCloning(benchmark::State &state)
{
    const auto frontend_result = frontend::compileExtendedSource(
        benchmarks::extendedSourceFor("fluidanimate"), "fluidanimate");
    const ir::Module base =
        benchx::synthesizeIr(frontend_result, 200, 2000);
    for (auto _ : state) {
        ir::Module module = base;
        const auto report = midend::runMiddleEnd(module);
        benchmark::DoNotOptimize(report.instructionsAdded);
    }
}
BENCHMARK(BM_MiddleEndCloning);

void
BM_BackendInstantiation(benchmark::State &state)
{
    const auto frontend_result = frontend::compileExtendedSource(
        benchmarks::extendedSourceFor("bodytrack"), "bodytrack");
    ir::Module midend_ir =
        benchx::synthesizeIr(frontend_result, 140, 1500);
    midend::runMiddleEnd(midend_ir);

    backend::BackendConfig config;
    config.auxiliaryDeps.insert("SD0");
    config.tradeoffIndices["aux::T_42"] = 2;
    for (auto _ : state) {
        const ir::Module binary =
            backend::instantiate(midend_ir, config);
        benchmark::DoNotOptimize(binary.instructionCount());
    }
}
BENCHMARK(BM_BackendInstantiation);

} // namespace

BENCHMARK_MAIN();
