/**
 * @file
 * Figure 19: non-representative training inputs.
 *
 * Autotunes each benchmark on the adversarial training workloads of
 * paper section 4.6 (the subject does not move, points overlap,
 * unrealistic swaption terms, ...) and evaluates the chosen
 * configuration on the representative inputs. "STATS loses only a
 * small fraction of the performance obtained when representative
 * inputs are used" — correctness is guaranteed by the runtime
 * regardless.
 */

#include <iostream>

#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 19", "Training on non-representative inputs",
        "only a small performance fraction is lost; output quality is "
        "unaffected (guaranteed by the runtime checks)");

    const auto machine = benchx::paperMachine();
    constexpr int kThreads = 28;

    support::TextTable table({"benchmark", "Original", "Par. STATS",
                              "Par. STATS w/ bad training"});
    std::vector<double> good, bad;
    support::JsonWriter json(std::cout, false);
    json.beginObject().field("figure", "fig19").key("rows").beginArray();

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const double seq = benchx::sequentialTime(*bench);

        RunRequest original;
        original.threads = kThreads;
        original.mode = Mode::Original;
        original.machine = machine;
        const double original_speedup =
            seq / bench->run(original).virtualSeconds;

        const auto trained_well = benchx::tuneAt(
            *bench, Mode::ParStats, kThreads, machine, 32,
            profiler::Objective::Time, 1,
            WorkloadKind::Representative);
        const auto trained_badly = benchx::tuneAt(
            *bench, Mode::ParStats, kThreads, machine, 32,
            profiler::Objective::Time, 1,
            WorkloadKind::NonRepresentative);

        // Evaluate both configurations on the representative inputs.
        const auto evaluate = [&](const tradeoff::Configuration &config) {
            RunRequest request;
            request.threads = kThreads;
            request.mode = Mode::ParStats;
            request.config = config;
            request.machine = machine;
            double total = 0.0;
            for (int rep = 0; rep < 2; ++rep)
                total += bench->run(request).virtualSeconds;
            return seq / (total / 2);
        };
        const double good_speedup = evaluate(trained_well.config);
        const double bad_speedup = evaluate(trained_badly.config);
        good.push_back(good_speedup);
        bad.push_back(bad_speedup);

        table.addRow(name,
                     {original_speedup, good_speedup, bad_speedup}, 2);
        json.beginObject()
            .field("name", name)
            .field("original", original_speedup)
            .field("parStats", good_speedup)
            .field("parStatsBadTraining", bad_speedup)
            .endObject();
    }
    table.addRow("geo. mean",
                 {0.0, support::geomean(good), support::geomean(bad)},
                 2);
    json.endArray()
        .field("lossPct", 100.0 * (1.0 - support::geomean(bad) /
                                             support::geomean(good)))
        .endObject();

    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nPerformance lost to bad training: "
              << support::TextTable::formatDouble(
                     100.0 * (1.0 - support::geomean(bad) /
                                        support::geomean(good)),
                     1)
              << "% (paper: a small fraction).\n";
    return 0;
}
