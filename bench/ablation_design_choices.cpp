/**
 * @file
 * Ablations of STATS' design choices (beyond the paper's figures):
 *
 *  A. Producer re-execution (the paper's central "exploit the
 *     nondeterminism" mechanism, section 3.1): sweep the re-execution
 *     budget R on the comparison-based benchmarks and measure match
 *     rate and speedup. R = 0 degenerates to single-state checking
 *     (Fast Track's weakness); R >= 1 lets the comparison set grow.
 *  B. Auxiliary input window k: too small a window cannot reproduce
 *     the state (aborts), too large a window wastes work — the
 *     "short memory" property made quantitative.
 *  C. Group size G: the speculation granularity's throughput/recovery
 *     tradeoff.
 *
 * Each ablation fixes every other dimension at the benchmark's
 * defaults and runs on the simulated 28-core platform.
 */

#include <iostream>

#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

namespace {

struct Cell
{
    double speedup = 0.0;
    double matchRate = 0.0;
    double aborts = 0.0;
};

Cell
runWith(Benchmark &bench, double seq_time, const char *dim,
        std::int64_t index, int threads,
        std::int64_t aux_window_index = -1)
{
    const auto space = bench.stateSpace(threads);
    tradeoff::Configuration config = space.defaultConfiguration();
    space.set(config, dim, index);
    if (aux_window_index >= 0)
        space.set(config, dims::kAuxWindow, aux_window_index);

    RunRequest request;
    request.mode = Mode::SeqStats;
    request.config = config;
    request.threads = threads;
    request.machine = benchx::paperMachine();

    Cell cell;
    constexpr int kReps = 10;
    for (int rep = 0; rep < kReps; ++rep) {
        const RunResult run = bench.run(request);
        cell.speedup += seq_time / run.virtualSeconds;
        cell.matchRate += run.engineStats.matchRate();
        cell.aborts += static_cast<double>(run.engineStats.aborts);
    }
    cell.speedup /= kReps;
    cell.matchRate /= kReps;
    cell.aborts /= kReps;
    return cell;
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Ablations", "Design-choice ablations: R, k, and G",
        "re-execution (R >= 1) rescues mismatches that single-state "
        "checking aborts on; the auxiliary window must cover the "
        "state's memory; group size trades throughput vs recovery "
        "cost");

    constexpr int kThreads = 28;

    // --- A: re-execution budget, comparison-based benchmarks. ------
    // The auxiliary window is deliberately stressed (one notch below
    // the state's memory) so first-check mismatches occur; the sweep
    // shows how re-executing the nondeterministic producer rescues
    // them, which single-state checking (R = 0) cannot.
    std::cout << "\n[A] re-execution budget R (Seq. STATS, 28 threads, "
                 "stressed auxiliary window)\n";
    support::TextTable table_r({"benchmark", "R", "speedup",
                                "match rate", "aborts"});
    for (const std::string name : {"bodytrack", "facedet"}) {
        auto bench = createBenchmark(name);
        const double seq = benchx::sequentialTime(*bench);
        for (std::int64_t r_index = 0;
             r_index < static_cast<std::int64_t>(reexecValues().size());
             ++r_index) {
            const Cell cell = runWith(*bench, seq, dims::kReexecs,
                                      r_index, kThreads,
                                      /* k index: 3 inputs */ 2);
            table_r.addRow(
                {name,
                 std::to_string(
                     reexecValues()[static_cast<std::size_t>(r_index)]),
                 support::TextTable::formatDouble(cell.speedup, 2),
                 support::TextTable::formatDouble(cell.matchRate, 2),
                 support::TextTable::formatDouble(cell.aborts, 2)});
        }
    }
    table_r.print(std::cout);

    // --- B: auxiliary window k. -------------------------------------
    std::cout << "\n[B] auxiliary input window k (Seq. STATS, "
                 "28 threads)\n";
    support::TextTable table_k({"benchmark", "k", "speedup",
                                "match rate", "aborts"});
    for (const std::string name : {"bodytrack", "facedet"}) {
        auto bench = createBenchmark(name);
        const double seq = benchx::sequentialTime(*bench);
        for (std::int64_t k_index = 0;
             k_index <
             static_cast<std::int64_t>(auxWindowValues().size());
             ++k_index) {
            const Cell cell = runWith(*bench, seq, dims::kAuxWindow,
                                      k_index, kThreads);
            table_k.addRow(
                {name,
                 std::to_string(auxWindowValues()[static_cast<
                     std::size_t>(k_index)]),
                 support::TextTable::formatDouble(cell.speedup, 2),
                 support::TextTable::formatDouble(cell.matchRate, 2),
                 support::TextTable::formatDouble(cell.aborts, 2)});
        }
    }
    table_k.print(std::cout);

    // --- C: group size G. --------------------------------------------
    std::cout << "\n[C] group size G (Seq. STATS, 28 threads)\n";
    support::TextTable table_g({"benchmark", "G", "speedup",
                                "match rate"});
    for (const std::string name : {"swaptions", "streamcluster"}) {
        auto bench = createBenchmark(name);
        const double seq = benchx::sequentialTime(*bench);
        for (std::int64_t g_index = 0;
             g_index <
             static_cast<std::int64_t>(groupSizeValues().size());
             ++g_index) {
            const Cell cell = runWith(*bench, seq, dims::kGroupSize,
                                      g_index, kThreads);
            table_g.addRow(
                {name,
                 std::to_string(groupSizeValues()[static_cast<
                     std::size_t>(g_index)]),
                 support::TextTable::formatDouble(cell.speedup, 2),
                 support::TextTable::formatDouble(cell.matchRate, 2)});
        }
    }
    table_g.print(std::cout);
    return 0;
}
