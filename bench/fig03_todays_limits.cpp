/**
 * @file
 * Figure 3: highest speedup of the out-of-the-box (traditionally
 * parallelized) benchmarks on the 28-core platform — the "parallelism
 * plateau" motivating STATS.
 */

#include <iostream>

#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 3",
        "Highest speedup of the original benchmarks (28 cores)",
        "all far from the ideal 28x; geometric mean around 7.75x "
        "(paper section 4.3)");

    support::TextTable table({"benchmark", "best speedup", "at threads"});
    std::vector<double> bests;
    support::JsonWriter json(std::cout, false);
    std::vector<std::pair<std::string, double>> rows;

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const double seq = benchx::sequentialTime(*bench);
        const auto curve = benchx::originalCurve(
            *bench, benchx::paperMachine(), benchx::threadSweep());
        const auto speeds = benchx::speedups(curve, seq);
        std::size_t best = 0;
        for (std::size_t i = 1; i < speeds.size(); ++i) {
            if (speeds[i] > speeds[best])
                best = i;
        }
        table.addRow(
            {name, support::TextTable::formatDouble(speeds[best], 2),
             std::to_string(benchx::threadSweep()[best])});
        bests.push_back(speeds[best]);
        rows.emplace_back(name, speeds[best]);
    }
    table.addRow({"geo. mean",
                  support::TextTable::formatDouble(
                      support::geomean(bests), 2),
                  ""});
    table.print(std::cout);
    std::cout << "\n(The distance from the ideal 28x shows the need for "
                 "scavenging additional TLP.)\n";

    std::cout << "\nJSON:\n";
    json.beginObject().field("figure", "fig03").key("bestSpeedup");
    json.beginObject();
    for (const auto &[name, value] : rows)
        json.field(name, value);
    json.endObject()
        .field("geomean", support::geomean(bests))
        .endObject();
    return 0;
}
