/**
 * @file
 * Figure 13: geometric mean of the Figure 12 speedups — the paper's
 * headline curve (Original vs Par. STATS across thread counts).
 */

#include <iostream>

#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 13",
        "Geometric mean of per-benchmark speedups vs hardware threads",
        "Par. STATS's curve keeps climbing well past where the "
        "original TLP's flattens (7.75x -> 20.01x at 28 cores in the "
        "paper)");

    const auto &threads = benchx::threadSweep();
    std::vector<std::vector<double>> original_all, par_all;

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const auto data = benchx::measureScalability(*bench, 24);
        original_all.push_back(
            benchx::speedups(data.original, data.seqTime));
        par_all.push_back(benchx::speedups(data.parStats, data.seqTime));
    }

    std::vector<double> geo_original, geo_par;
    for (std::size_t i = 0; i < threads.size(); ++i) {
        std::vector<double> o, p;
        for (std::size_t b = 0; b < original_all.size(); ++b) {
            o.push_back(original_all[b][i]);
            p.push_back(par_all[b][i]);
        }
        geo_original.push_back(support::geomean(o));
        geo_par.push_back(support::geomean(p));
    }

    support::TextTable table({"threads", "Original", "Par. STATS"});
    for (std::size_t i = 0; i < threads.size(); ++i) {
        table.addRow(std::to_string(threads[i]),
                     {geo_original[i], geo_par[i]}, 2);
    }
    table.print(std::cout);

    std::cout << "\nJSON:\n";
    support::JsonWriter json(std::cout, false);
    std::vector<double> thread_values(threads.begin(), threads.end());
    json.beginObject()
        .field("figure", "fig13")
        .field("threads", thread_values)
        .field("original", geo_original)
        .field("parStats", geo_par)
        .endObject();
    return 0;
}
