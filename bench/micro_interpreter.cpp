/**
 * @file
 * Microbenchmark of the execution tiers (docs/INTERPRETER.md).
 *
 * Three workloads, each the `S = f(I, S)` transition shape the
 * speculation engine executes on its hot paths:
 *
 *  - chain_i64: a straight-line integer multiply-add chain — the
 *    superinstruction fusion target, batchable;
 *  - chain_f64: the same chain in f64 — fused + SIMD batchable;
 *  - branchy:   a loop with phis and a branch — the general shape
 *    (no batch mode, exercises dispatch + register allocation).
 *
 * For each workload: ns/call through the AST walker, ns/call through
 * the bytecode VM, and (where batchable) ns/call through the batched
 * SoA mode, plus the resulting speedups.
 *
 * Output: a table plus BENCH_interpreter.json. CI runs `--smoke
 * --check=<baseline>` and fails when the bytecode tier's speedup over
 * the AST walker on the fused chain workloads drops below
 * `--min-speedup` (default 2) or regresses by more than `--factor`
 * (default 2x) against bench/baselines/BENCH_interpreter.baseline.json.
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "ir/bytecode.hpp"
#include "ir/bytecode_verifier.hpp"
#include "ir/exec_tier.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "support/json.hpp"
#include "support/table.hpp"
#include "support/timer.hpp"

namespace {

using stats::support::Timer;

/**
 * The chain workloads unroll the transition eight times so fusion has
 * adjacent def-use pairs to collapse; every intermediate feeds the
 * next step and dies, exactly the shape fuseRegion targets.
 */
constexpr const char *kModuleText = R"(module "micro_interpreter"

func @chain_i64(i64 %i, i64 %s) -> i64 {
entry:
  %t0 = mul i64 %s, 3
  %s0 = add i64 %t0, %i
  %t1 = mul i64 %s0, 5
  %s1 = add i64 %t1, %i
  %t2 = add i64 %s1, 7
  %s2 = mul i64 %t2, 3
  %t3 = mul i64 %s2, 9
  %s3 = add i64 %t3, %i
  %t4 = mul i64 %s3, 11
  %s4 = add i64 %t4, %i
  %t5 = add i64 %s4, 13
  %s5 = add i64 %t5, %i
  %t6 = mul i64 %s5, 17
  %s6 = add i64 %t6, %i
  %t7 = mul i64 %s6, 19
  %s7 = add i64 %t7, %s
  ret i64 %s7
}

func @chain_f64(i64 %i, i64 %s) -> i64 {
entry:
  %x = cast f64 %i
  %y = cast f64 %s
  %t0 = mul f64 %y, 1.5
  %s0 = add f64 %t0, %x
  %t1 = mul f64 %s0, 0.25
  %s1 = add f64 %t1, %x
  %t2 = add f64 %s1, 2.5
  %s2 = mul f64 %t2, 0.5
  %t3 = mul f64 %s2, 1.25
  %s3 = add f64 %t3, %x
  %t4 = mul f64 %s3, 0.75
  %s4 = add f64 %t4, %y
  %t5 = add f64 %s4, 0.125
  %s5 = mul f64 %t5, 1.0625
  %t6 = mul f64 %s5, 0.9375
  %s6 = add f64 %t6, %x
  %r = cast i64 %s6
  ret i64 %r
}

func @branchy(i64 %i, i64 %s) -> i64 {
entry:
  %seed = add i64 %i, %s
  jmp loop
loop:
  %k = phi i64 [0, entry], [%k2, latch]
  %acc = phi i64 [%seed, entry], [%acc2, latch]
  %k2 = add i64 %k, 1
  %step = mul i64 %acc, 3
  %bump = add i64 %step, %i
  %odd = cmplt i64 %bump, 0
  br %odd, flip, latch
flip:
  %negated = sub i64 0, %bump
  jmp latch
latch:
  %n = phi i64 [%negated, flip], [%bump, loop]
  %acc2 = add i64 %n, %k2
  %done = cmplt i64 %k2, 16
  br %done, loop, exit
exit:
  ret i64 %acc2
}
)";

struct Result
{
    std::string workload;
    bool batchable = false;
    double astNsPerCall = 0.0;
    double bytecodeNsPerCall = 0.0;
    double batchNsPerCall = 0.0;   ///< 0 when not batchable.
    double bytecodeSpeedup = 0.0;  ///< AST / bytecode.
    double batchSpeedup = 0.0;     ///< AST / batch; 0 if n/a.
    std::size_t fused = 0;
};

/** Deterministic workload inputs: (input, state) pairs. */
std::vector<std::pair<long long, long long>>
makeInputs(std::size_t count)
{
    std::vector<std::pair<long long, long long>> inputs;
    inputs.reserve(count);
    std::uint64_t x = 0x2545f4914f6cdd1dULL;
    for (std::size_t k = 0; k < count; ++k) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        inputs.emplace_back((long long)(x % 1000),
                            (long long)((x >> 32) % 1000));
    }
    return inputs;
}

Result
runWorkload(const stats::ir::Module &module, const std::string &fn,
            std::size_t calls)
{
    namespace ir = stats::ir;
    Result result;
    result.workload = fn;

    const auto inputs = makeInputs(calls);
    // Accumulate results so no tier's work can be optimized away, and
    // cross-check the tiers against each other while we're at it.
    long long ast_sum = 0, bc_sum = 0, batch_sum = 0;

    {
        ir::ExecutableModule exec(module, ir::ExecTier::Ast);
        Timer timer;
        for (const auto &[in, st] : inputs) {
            ast_sum += exec.call(fn, {ir::RtValue::ofInt(in),
                                      ir::RtValue::ofInt(st)})
                           .asInt();
        }
        result.astNsPerCall =
            timer.elapsedSeconds() * 1e9 / double(calls);
    }

    {
        ir::ExecutableModule exec(module, ir::ExecTier::Bytecode);
        const auto *bc_fn = exec.bytecode().find(fn);
        result.batchable = bc_fn->batchable;
        result.fused = bc_fn->fusedCount;
        Timer timer;
        for (const auto &[in, st] : inputs) {
            bc_sum += exec.call(fn, {ir::RtValue::ofInt(in),
                                     ir::RtValue::ofInt(st)})
                          .asInt();
        }
        result.bytecodeNsPerCall =
            timer.elapsedSeconds() * 1e9 / double(calls);

        if (result.batchable) {
            std::vector<ir::RtValue> in_col(calls), st_col(calls),
                out(calls);
            for (std::size_t k = 0; k < calls; ++k) {
                in_col[k] = ir::RtValue::ofInt(inputs[k].first);
                st_col[k] = ir::RtValue::ofInt(inputs[k].second);
            }
            const std::vector<const ir::RtValue *> columns{
                in_col.data(), st_col.data()};
            exec.setStepBudget(std::uint64_t(calls) * 10'000'000);
            Timer batch_timer;
            if (!exec.callBatch(fn, calls, columns, out.data())) {
                std::cerr << "micro_interpreter: batchable function "
                          << fn << " refused batch execution\n";
                std::exit(1);
            }
            result.batchNsPerCall =
                batch_timer.elapsedSeconds() * 1e9 / double(calls);
            for (const auto &v : out)
                batch_sum += v.asInt();
        }
    }

    if (bc_sum != ast_sum ||
        (result.batchable && batch_sum != ast_sum)) {
        std::cerr << "micro_interpreter: tier divergence on " << fn
                  << " (ast " << ast_sum << ", bytecode " << bc_sum
                  << ", batch " << batch_sum << ")\n";
        std::exit(1);
    }

    result.bytecodeSpeedup =
        result.astNsPerCall / result.bytecodeNsPerCall;
    if (result.batchable)
        result.batchSpeedup = result.astNsPerCall / result.batchNsPerCall;
    return result;
}

/**
 * The compile+verify scenario (docs/ANALYSIS.md §8): bytecode
 * compilation of the three workloads with auto-verification off,
 * against a separate post-regalloc verifier pass over the result.
 * The overhead ratio is the gated quantity — verification must stay
 * a small fraction of compilation, or turning it on by default in
 * every compile stops being a defensible deal.
 */
struct CompileVerify
{
    double compileNsPerModule = 0.0;
    double verifyNsPerModule = 0.0;
    double overhead = 0.0; ///< verify / compile.
};

CompileVerify
runCompileVerify(const stats::ir::Module &module, std::size_t reps)
{
    namespace bc = stats::ir::bc;
    CompileVerify result;

    const bool prev_auto = bc::setAutoVerify(false);
    std::size_t compiled = 0;
    Timer compile_timer;
    for (std::size_t k = 0; k < reps; ++k)
        compiled += bc::compileModule(module).compiledCount();
    result.compileNsPerModule =
        compile_timer.elapsedSeconds() * 1e9 / double(reps);

    const bc::BcModule bytecode = bc::compileModule(module);
    bc::setAutoVerify(prev_auto);

    std::size_t diagnostics = 0;
    Timer verify_timer;
    for (std::size_t k = 0; k < reps; ++k)
        diagnostics += bc::verifyModule(bytecode).size();
    result.verifyNsPerModule =
        verify_timer.elapsedSeconds() * 1e9 / double(reps);

    if (compiled == 0 || diagnostics != 0) {
        std::cerr << "micro_interpreter: compile+verify scenario "
                     "broken (compiled "
                  << compiled << ", diagnostics " << diagnostics
                  << ")\n";
        std::exit(1);
    }
    result.overhead =
        result.verifyNsPerModule / result.compileNsPerModule;
    return result;
}

void
writeJson(std::ostream &out, const std::vector<Result> &results,
          const CompileVerify &cv, std::size_t calls, bool smoke)
{
    stats::support::JsonWriter json(out, true);
    json.beginObject();
    json.field("benchmark", "micro_interpreter")
        .field("smoke", smoke)
        .field("callsPerWorkload", calls);
    json.key("results").beginArray();
    for (const Result &r : results) {
        json.beginObject()
            .field("workload", r.workload)
            .field("batchable", r.batchable)
            .field("fusedSuperinstructions", r.fused)
            .field("astNsPerCall", r.astNsPerCall)
            .field("bytecodeNsPerCall", r.bytecodeNsPerCall)
            .field("batchNsPerCall", r.batchNsPerCall)
            .field("bytecodeSpeedup", r.bytecodeSpeedup)
            .field("batchSpeedup", r.batchSpeedup)
            .endObject();
    }
    json.endArray();
    // Regression-guard convenience fields: the fused-chain speedups.
    // `--check` compares these without a JSON parser, so keep them
    // flat and uniquely named.
    json.field("checkChainI64Speedup", results[0].bytecodeSpeedup)
        .field("checkChainF64Speedup", results[1].bytecodeSpeedup)
        .field("checkBatchSpeedup", results[0].batchSpeedup);
    // The compile+verify scenario: post-regalloc verification cost as
    // a fraction of bytecode compilation (gated at --max-verify-cost).
    json.field("compileNsPerModule", cv.compileNsPerModule)
        .field("verifyNsPerModule", cv.verifyNsPerModule)
        .field("checkVerifyOverhead", cv.overhead);
    json.endObject();
    out << "\n";
}

/** Scan `text` for `"name": <number>`; -1 when absent. */
double
scanField(const std::string &text, const std::string &name)
{
    const std::string needle = "\"" + name + "\":";
    const std::size_t pos = text.find(needle);
    if (pos == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + pos + needle.size(), nullptr);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_interpreter.json";
    std::string check_path;
    double factor = 2.0;
    double min_speedup = 2.0;
    double max_verify_cost = 0.2;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--smoke") {
            smoke = true;
        } else if (arg.rfind("--out=", 0) == 0) {
            out_path = arg.substr(6);
        } else if (arg.rfind("--check=", 0) == 0) {
            check_path = arg.substr(8);
        } else if (arg.rfind("--factor=", 0) == 0) {
            factor = std::strtod(arg.c_str() + 9, nullptr);
        } else if (arg.rfind("--min-speedup=", 0) == 0) {
            min_speedup = std::strtod(arg.c_str() + 14, nullptr);
        } else if (arg.rfind("--max-verify-cost=", 0) == 0) {
            max_verify_cost = std::strtod(arg.c_str() + 18, nullptr);
        } else {
            std::cerr << "usage: micro_interpreter [--smoke] "
                         "[--out=FILE] [--check=BASELINE] [--factor=N] "
                         "[--min-speedup=N] [--max-verify-cost=N]\n";
            return 2;
        }
    }

    stats::ir::Module module = stats::ir::parseModule(kModuleText);
    if (const auto problems = stats::ir::verifyModule(module);
        !problems.empty()) {
        for (const auto &p : problems)
            std::cerr << "micro_interpreter: verify: " << p << "\n";
        return 1;
    }

    const std::size_t calls = smoke ? 20000 : 200000;
    std::vector<Result> results;
    for (const char *fn : {"chain_i64", "chain_f64", "branchy"})
        results.push_back(runWorkload(module, fn, calls));

    const CompileVerify cv =
        runCompileVerify(module, smoke ? 2000 : 20000);

    stats::support::TextTable table({"workload", "ast ns", "bytecode ns",
                                     "batch ns", "fused", "speedup",
                                     "batch x"});
    const auto fmt = [](double v) {
        return stats::support::TextTable::formatDouble(v, 1);
    };
    const auto ratio = [](double v) {
        return stats::support::TextTable::formatDouble(v, 2);
    };
    for (const Result &r : results) {
        table.addRow({r.workload, fmt(r.astNsPerCall),
                      fmt(r.bytecodeNsPerCall),
                      r.batchable ? fmt(r.batchNsPerCall) : "-",
                      std::to_string(r.fused), ratio(r.bytecodeSpeedup),
                      r.batchable ? ratio(r.batchSpeedup) : "-"});
    }
    table.print(std::cout);
    std::cout << "compile+verify: compile "
              << stats::support::TextTable::formatDouble(
                     cv.compileNsPerModule, 1)
              << " ns/module, verify "
              << stats::support::TextTable::formatDouble(
                     cv.verifyNsPerModule, 1)
              << " ns/module ("
              << stats::support::TextTable::formatDouble(
                     cv.overhead * 100.0, 1)
              << "% overhead)\n";

    {
        std::ofstream out(out_path);
        if (!out) {
            std::cerr << "micro_interpreter: cannot write " << out_path
                      << "\n";
            return 1;
        }
        writeJson(out, results, cv, calls, smoke);
        std::cout << "wrote " << out_path << "\n";
    }

    // The verifier is linear scans over the code; compilation is
    // regalloc + lowering. Verification must stay a small fraction of
    // the compile it rides on.
    if (cv.overhead > max_verify_cost) {
        std::cerr << "micro_interpreter: REGRESSION — post-regalloc "
                     "verification costs "
                  << cv.overhead * 100.0
                  << "% of compilation (allowed <= "
                  << max_verify_cost * 100.0 << "%)\n";
        return 1;
    }

    // Absolute gate: the bytecode tier must beat the AST walker by
    // min_speedup on both fused chain workloads.
    for (int k = 0; k < 2; ++k) {
        if (results[std::size_t(k)].bytecodeSpeedup < min_speedup) {
            std::cerr << "micro_interpreter: REGRESSION — "
                      << results[std::size_t(k)].workload << " speedup "
                      << results[std::size_t(k)].bytecodeSpeedup
                      << " is below the required " << min_speedup
                      << "x\n";
            return 1;
        }
    }

    if (!check_path.empty()) {
        std::ifstream in(check_path);
        if (!in) {
            std::cerr << "micro_interpreter: cannot read baseline "
                      << check_path << "\n";
            return 1;
        }
        std::stringstream buffer;
        buffer << in.rdbuf();
        const double baseline =
            scanField(buffer.str(), "checkChainI64Speedup");
        if (baseline <= 0.0) {
            std::cerr << "micro_interpreter: baseline " << check_path
                      << " has no checkChainI64Speedup field\n";
            return 1;
        }
        const double current = results[0].bytecodeSpeedup;
        std::cout << "check: chain_i64 speedup " << current
                  << " vs baseline " << baseline << " (allowed >= "
                  << baseline / factor << ")\n";
        if (current < baseline / factor) {
            std::cerr << "micro_interpreter: REGRESSION — chain_i64 "
                         "speedup "
                      << current << " fell more than " << factor
                      << "x below baseline " << baseline << "\n";
            return 1;
        }
    }
    return 0;
}
