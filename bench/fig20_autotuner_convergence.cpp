/**
 * @file
 * Figure 20: autotuner convergence.
 *
 * "Evaluating 88 configurations (less than 1%) is sufficient to find
 * the best binary ... The autotuner uses nondeterminism for better
 * exploration; different searches for the same program may find
 * different best configurations. The variance in best speedups
 * disappears after exploring 46 configurations."
 */

#include <algorithm>
#include <iostream>

#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 20",
        "Autotuner convergence: best configuration vs #evaluations",
        "the best binary is found well within ~88 evaluations out of "
        "state spaces of >1e5 points; search variance dies out around "
        "half that");

    const auto machine = benchx::paperMachine();
    constexpr int kThreads = 28;
    constexpr int kBudget = 120;
    constexpr int kSearches = 4; // Independent nondeterministic runs.

    // Average, over benchmarks and search seeds, of the relative
    // performance (best-so-far / final-best) after N evaluations.
    std::vector<std::vector<double>> relative_at(kBudget);
    double total_points = 0.0;
    int space_count = 0;

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        total_points += bench->stateSpace(kThreads).totalPoints();
        ++space_count;
        for (int seed = 1; seed <= kSearches; ++seed) {
            profiler::Profiler profiler(*bench, Mode::ParStats, kThreads,
                                        machine);
            autotuner::Autotuner tuner(
                bench->stateSpace(kThreads),
                static_cast<std::uint64_t>(seed) * 977);
            const auto result = tuner.tune(
                profiler.objectiveFunction(profiler::Objective::Time),
                kBudget);
            const double best = result.bestObjective;
            for (int n = 0; n < kBudget; ++n) {
                const double so_far =
                    result.trace[std::min<std::size_t>(
                        static_cast<std::size_t>(n),
                        result.trace.size() - 1)];
                relative_at[static_cast<std::size_t>(n)].push_back(
                    best / so_far);
            }
        }
    }

    support::TextTable table({"#configurations", "relative speedup %",
                              "stddev %"});
    std::vector<double> curve, spread;
    for (int n : {1, 2, 4, 8, 12, 16, 24, 32, 46, 64, 88, 100, 119}) {
        const auto &values = relative_at[static_cast<std::size_t>(n)];
        const double mean_pct = 100.0 * support::mean(values);
        const double sd_pct = 100.0 * support::stddev(values);
        curve.push_back(mean_pct);
        spread.push_back(sd_pct);
        table.addRow(std::to_string(n), {mean_pct, sd_pct}, 1);
    }
    table.print(std::cout);
    std::cout << "\nAverage state-space size: "
              << total_points / space_count
              << " points per benchmark (paper: ~1.3M).\n";

    std::cout << "\nJSON:\n";
    support::JsonWriter json(std::cout, false);
    json.beginObject()
        .field("figure", "fig20")
        .field("relativeSpeedupPct", curve)
        .field("stddevPct", spread)
        .field("avgStateSpacePoints", total_points / space_count)
        .endObject();
    return 0;
}
