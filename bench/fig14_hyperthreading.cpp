/**
 * @file
 * Figure 14: Intel Hyper-Threading on a single socket.
 *
 * Constrains execution to one 14-core socket and compares Original
 * and Par. STATS with and without the 14 extra HT hardware threads.
 * "The speedup (geometric mean) increased from 12.18x to 16.13x ...
 * STATS obtained a 32% performance improvement" — i.e. STATS is
 * constrained by hardware resources, not by a lack of TLP.
 */

#include <algorithm>
#include <iostream>

#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 14", "Single-socket Hyper-Threading study",
        "HT buys STATS ~+32% (Intel's guidance for a successful HT "
        "use is ~30%) and the original ~+13%");

    const auto no_ht = benchx::singleSocketMachine(false);
    const auto ht = benchx::singleSocketMachine(true);

    support::TextTable table({"benchmark", "Original", "Original w/ HT",
                              "Par. STATS", "Par. STATS w/ HT"});
    std::vector<double> o14, o28, s14, s28;
    support::JsonWriter json(std::cout, false);
    json.beginObject().field("figure", "fig14").key("rows").beginArray();

    const std::vector<int> socket_threads{2, 4, 6, 8, 10, 12, 14};
    const std::vector<int> ht_threads{2,  4,  6,  8,  10, 12, 14,
                                      16, 20, 24, 28};

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const double seq = benchx::sequentialTime(*bench);

        // Original: best thread count on each machine (a user would
        // not force sync-bound code onto every hardware thread).
        const auto original_no_ht =
            benchx::originalCurve(*bench, no_ht, socket_threads);
        const auto original_ht =
            benchx::originalCurve(*bench, ht, ht_threads);

        // STATS: best of the Seq/Par searches (as in Figure 12).
        const auto stats_no_ht = std::min(
            benchx::tuneAt(*bench, Mode::ParStats, 14, no_ht, 32)
                .seconds,
            benchx::tuneAt(*bench, Mode::SeqStats, 14, no_ht, 32)
                .seconds);
        const auto stats_ht = std::min(
            benchx::tuneAt(*bench, Mode::ParStats, 28, ht, 32).seconds,
            benchx::tuneAt(*bench, Mode::SeqStats, 28, ht, 32).seconds);

        const double v_o14 = seq / original_no_ht.bestTime;
        const double v_o28 = seq / original_ht.bestTime;
        const double v_s14 = seq / stats_no_ht;
        const double v_s28 = seq / stats_ht;
        o14.push_back(v_o14);
        o28.push_back(v_o28);
        s14.push_back(v_s14);
        s28.push_back(v_s28);
        table.addRow(name, {v_o14, v_o28, v_s14, v_s28}, 2);

        json.beginObject()
            .field("name", name)
            .field("original", v_o14)
            .field("originalHt", v_o28)
            .field("parStats", v_s14)
            .field("parStatsHt", v_s28)
            .endObject();
    }
    table.addRow("geo. mean",
                 {support::geomean(o14), support::geomean(o28),
                  support::geomean(s14), support::geomean(s28)},
                 2);
    json.endArray()
        .field("statsHtGainPct",
               100.0 * (support::geomean(s28) / support::geomean(s14) -
                        1.0))
        .field("originalHtGainPct",
               100.0 * (support::geomean(o28) / support::geomean(o14) -
                        1.0))
        .endObject();

    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nHT gain: STATS "
              << support::TextTable::formatDouble(
                     100.0 * (support::geomean(s28) /
                                  support::geomean(s14) -
                              1.0),
                     1)
              << "% (paper: +32%), original "
              << support::TextTable::formatDouble(
                     100.0 * (support::geomean(o28) /
                                  support::geomean(o14) -
                              1.0),
                     1)
              << "% (paper: +13%).\n";
    return 0;
}
