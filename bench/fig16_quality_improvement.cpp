/**
 * @file
 * Figure 16: improving output quality with the saved time.
 *
 * "By making the computation several times faster than the original,
 * STATS allows the application to spend the saved time to iterate
 * more over the same dataset, thereby increasing the final output's
 * quality. ... Three benchmarks show quality increases from 6.84x to
 * 33.27x."
 *
 * We run the STATS version repeatedly within the original's time
 * budget and average its outputs; quality improvement is the ratio of
 * the original's distance-to-oracle to the averaged outputs'.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 16",
        "Output-quality improvement within the original's time budget",
        "benchmarks whose metric benefits from averaging repeated "
        "nondeterministic outputs improve by large factors (paper: "
        "6.84x-33.27x on three benchmarks)");

    const auto machine = benchx::paperMachine();
    support::TextTable table({"benchmark", "iterations",
                              "q(original)", "q(STATS, averaged)",
                              "improvement"});
    support::JsonWriter json(std::cout, false);
    json.beginObject().field("figure", "fig16").key("rows").beginArray();

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        if (!bench->supportsQualityIteration()) {
            table.addRow({name, "-", "-", "-",
                          "n/a (metric does not average)"});
            continue;
        }
        const auto oracle =
            bench->oracleSignature(WorkloadKind::Representative, 1);

        // Original: best time on 28 cores; its quality.
        RunRequest original;
        original.threads = 28;
        original.mode = Mode::Original;
        original.machine = machine;
        const RunResult original_run = bench->run(original);
        const double q_original =
            bench->quality(original_run.signature, oracle);

        // STATS: tuned; iterate within the original's budget.
        const auto tuned =
            benchx::tuneAt(*bench, Mode::ParStats, 28, machine, 30);
        const int iterations = std::max(
            1, static_cast<int>(std::llround(
                   original_run.virtualSeconds /
                   std::max(tuned.seconds, 1e-12))));

        std::vector<std::vector<double>> signatures;
        RunRequest stats_run;
        stats_run.threads = 28;
        stats_run.mode = Mode::ParStats;
        stats_run.config = tuned.config;
        stats_run.machine = machine;
        for (int i = 0; i < std::min(iterations, 64); ++i)
            signatures.push_back(bench->run(stats_run).signature);
        const double q_stats = bench->quality(
            Benchmark::averageSignatures(signatures), oracle);

        const double improvement =
            q_stats > 0.0 ? q_original / q_stats : 0.0;
        table.addRow(
            {name, std::to_string(iterations),
             support::TextTable::formatDouble(q_original, 5),
             support::TextTable::formatDouble(q_stats, 5),
             support::TextTable::formatDouble(improvement, 2) + "x"});
        json.beginObject()
            .field("name", name)
            .field("iterations", iterations)
            .field("qualityOriginal", q_original)
            .field("qualityStats", q_stats)
            .field("improvement", improvement)
            .endObject();
    }
    json.endArray().endObject();
    std::cout << "\n";
    table.print(std::cout);
    return 0;
}
