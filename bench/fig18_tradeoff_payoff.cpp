/**
 * @file
 * Figure 18: speedup vs number of tradeoffs encoded.
 *
 * "Developers gain most of the STATS benefits with a minimum effort:
 * encoding a single tradeoff yields around 55% of the speedup of
 * encoding all, and encoding two yields around 95%." Tradeoffs are
 * enabled in the expected-payoff order a developer would pick (the
 * Table 1 ordering = the registration order of each benchmark's
 * auxiliary tradeoffs); with zero tradeoffs encoded STATS has no
 * auxiliary code to generate and the program keeps only its original
 * parallelization.
 */

#include <algorithm>
#include <iostream>

#include "common/experiment.hpp"
#include "support/statistics.hpp"
#include "tradeoff/registry.hpp"

using namespace stats;
using namespace stats::benchmarks;

namespace {

/**
 * Tune with only the first `enabled` auxiliary tradeoffs free; the
 * rest are pinned to their defaults before every evaluation.
 */
double
tunedTimeWithSubset(Benchmark &bench, int enabled, int threads,
                    const sim::MachineConfig &machine, int budget)
{
    const auto space = bench.stateSpace(threads);

    // Auxiliary tradeoff dimension names, in payoff order.
    std::vector<std::string> aux_dims;
    for (std::size_t i = 0; i < space.dimensionCount(); ++i) {
        const auto &name = space.dimension(i).name;
        if (name.rfind(tradeoff::kAuxPrefix, 0) == 0)
            aux_dims.push_back(name);
    }

    profiler::Profiler profiler(bench, Mode::ParStats, threads, machine);
    autotuner::Autotuner tuner(space, 7);
    const auto result = tuner.tune(
        [&](const tradeoff::Configuration &config) {
            tradeoff::Configuration pinned = config;
            for (std::size_t i = static_cast<std::size_t>(enabled);
                 i < aux_dims.size(); ++i) {
                space.set(pinned, aux_dims[i],
                          space.dimension(space.indexOf(aux_dims[i]))
                              .defaultIndex);
            }
            if (enabled == 0) {
                // No tradeoffs encoded: no auxiliary code to tune.
                space.set(pinned, dims::kUseAux, 0);
            }
            return profiler.profile(pinned).seconds;
        },
        budget);
    return result.bestObjective;
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 18",
        "Relative speedup vs number of encoded tradeoffs ('pay as you "
        "go')",
        "1 tradeoff gives ~55% of the full-STATS speedup, 2 give ~95%");

    const auto machine = benchx::paperMachine();
    constexpr int kThreads = 28;
    constexpr int kMaxTradeoffs = 5; // Algorithmic tradeoffs swept.

    // relative[n] = geomean over benchmarks of
    //               speedup(n tradeoffs)/speedup(all).
    std::vector<std::vector<double>> ratios(kMaxTradeoffs + 1);
    support::JsonWriter json(std::cout, false);
    json.beginObject().field("figure", "fig18").key("benchmarks");
    json.beginArray();

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const auto space = bench->stateSpace(kThreads);
        int aux_count = 0;
        for (std::size_t i = 0; i < space.dimensionCount(); ++i) {
            if (space.dimension(i).name.rfind(tradeoff::kAuxPrefix, 0) ==
                0) {
                ++aux_count;
            }
        }

        const double full_time = tunedTimeWithSubset(
            *bench, aux_count, kThreads, machine, 30);
        json.beginObject().field("name", name).key("relative");
        json.beginArray();
        for (int n = 0; n <= kMaxTradeoffs; ++n) {
            const double time = tunedTimeWithSubset(
                *bench, std::min(n, aux_count), kThreads, machine,
                n == 0 ? 8 : 22);
            const double relative = full_time / time; // Speedup ratio.
            ratios[static_cast<std::size_t>(n)].push_back(
                std::min(relative, 1.0));
            json.value(std::min(relative, 1.0));
        }
        json.endArray().endObject();
    }
    json.endArray();

    support::TextTable table({"#tradeoffs", "relative speedup %"});
    std::vector<double> curve;
    for (int n = 0; n <= kMaxTradeoffs; ++n) {
        const double geo =
            100.0 * support::geomean(ratios[static_cast<std::size_t>(n)]);
        curve.push_back(geo);
        table.addRow(std::to_string(n), {geo}, 1);
    }
    json.field("relativeGeomeanPct", curve).endObject();
    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\n(100% = each benchmark's best speedup with all "
                 "tradeoffs encoded.)\n";
    return 0;
}
