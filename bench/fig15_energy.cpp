/**
 * @file
 * Figure 15: system-wide energy consumption.
 *
 * Compares the energy of STATS binaries (autotuned for time, and
 * autotuned for energy) against the peak-performing original.
 * "When targeting time, STATS saves 61.98% of the baseline energy
 * ... and even more (71.35%) in energy mode by avoiding extra cores
 * whose additional performance is not significant."
 */

#include <iostream>

#include "common/experiment.hpp"
#include "platform/energy_model.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 15", "System-wide energy, relative to the original",
        "time-tuned STATS saves ~62% energy; energy-tuned STATS saves "
        "~71%");

    const auto machine = benchx::paperMachine();
    support::TextTable table({"benchmark", "original J",
                              "STATS(time) %", "STATS(energy) %"});
    std::vector<double> time_ratios, energy_ratios;
    support::JsonWriter json(std::cout, false);
    json.beginObject().field("figure", "fig15").key("rows").beginArray();

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);

        // Peak-performing original: best thread count by time.
        double best_original_energy = 0.0;
        double best_original_time = 1e300;
        for (int t : benchx::threadSweep()) {
            RunRequest request;
            request.threads = t;
            request.mode = Mode::Original;
            request.machine = machine;
            const RunResult run = bench->run(request);
            if (run.virtualSeconds < best_original_time) {
                best_original_time = run.virtualSeconds;
                best_original_energy = run.energyJoules;
            }
        }

        const auto time_tuned = benchx::tuneAt(
            *bench, Mode::ParStats, 28, machine, 36,
            profiler::Objective::Time);
        const auto energy_tuned = benchx::tuneAt(
            *bench, Mode::ParStats, 28, machine, 36,
            profiler::Objective::Energy);

        const double time_pct =
            100.0 * time_tuned.energyJoules / best_original_energy;
        const double energy_pct =
            100.0 * energy_tuned.energyJoules / best_original_energy;
        time_ratios.push_back(time_pct / 100.0);
        energy_ratios.push_back(energy_pct / 100.0);

        table.addRow(name,
                     {best_original_energy, time_pct, energy_pct}, 1);
        json.beginObject()
            .field("name", name)
            .field("originalJoules", best_original_energy)
            .field("timeTunedPct", time_pct)
            .field("energyTunedPct", energy_pct)
            .endObject();
    }

    const double geo_time = 100.0 * support::geomean(time_ratios);
    const double geo_energy = 100.0 * support::geomean(energy_ratios);
    table.addRow("geo. mean", {0.0, geo_time, geo_energy}, 1);
    json.endArray()
        .field("geomeanTimeTunedPct", geo_time)
        .field("geomeanEnergyTunedPct", geo_energy)
        .endObject();

    std::cout << "\n";
    table.print(std::cout);
    std::cout << "\nEnergy saved: time mode "
              << support::TextTable::formatDouble(100.0 - geo_time, 1)
              << "% (paper: 61.98%), energy mode "
              << support::TextTable::formatDouble(100.0 - geo_energy, 1)
              << "% (paper: 71.35%).\n";
    return 0;
}
