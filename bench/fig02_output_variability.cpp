/**
 * @file
 * Figure 2: output variability of the nondeterministic benchmarks.
 *
 * Runs each benchmark repeatedly with entropy-seeded PRVGs and
 * measures its domain quality metric against the oracle. The paper
 * plots per-benchmark variability on a log scale, split into
 * race-condition-induced (fluidanimate, canneal) and PRVG-induced
 * nondeterminism. canneal appears here (as in the paper's Figure 2)
 * but in no other experiment: STATS cannot target it because its
 * input count depends on the evolution of the computation state.
 */

#include <cmath>
#include <iomanip>
#include <iostream>
#include <sstream>

#include "benchmarks/canneal/canneal.hpp"
#include "common/experiment.hpp"
#include "support/statistics.hpp"

using namespace stats;
using namespace stats::benchmarks;

namespace {

/** Scientific notation: Figure 2 spans ~9 orders of magnitude. */
std::string
sci(double v)
{
    std::ostringstream out;
    out << std::scientific << std::setprecision(2) << v;
    return out.str();
}

} // namespace

int
main(int argc, char **argv)
{
    benchx::ObsSession obs_session(argc, argv);
    benchx::printHeader(
        "Figure 2", "Output variability over repeated runs (log scale)",
        "several benchmarks exhibit high variability; fluidanimate's "
        "(race-induced) is orders of magnitude below the PRVG-induced "
        "ones");

    constexpr int kRuns = 30;
    support::TextTable table({"benchmark", "nondeterminism", "mean",
                              "min", "max", "stddev"});
    support::JsonWriter json(std::cout, false);

    struct Row
    {
        std::string name;
        std::vector<double> values;
    };
    std::vector<Row> rows;

    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const auto oracle =
            bench->oracleSignature(WorkloadKind::Representative, 1);
        support::RunningStat stat;
        Row row{name, {}};
        for (int run = 0; run < kRuns; ++run) {
            RunRequest request;
            request.threads = 1;
            request.mode = Mode::Original;
            request.runSeed = 0; // Entropy: the real nondeterminism.
            const double quality =
                bench->quality(bench->run(request).signature, oracle);
            stat.add(quality);
            row.values.push_back(quality);
        }
        const bool race_induced = name == "fluidanimate";
        table.addRow({name,
                      race_induced ? "race conditions"
                                   : "random generators",
                      sci(stat.mean()), sci(stat.min()),
                      sci(stat.max()), sci(stat.stddev())});
        rows.push_back(std::move(row));
    }

    // canneal: variability of the final wire length across runs,
    // relative to the mean (it cannot run under STATS, so there is no
    // oracle-producing configuration; the paper's Figure 2 includes
    // it on the same basis).
    {
        using namespace stats::benchmarks::canneal;
        const Netlist netlist = makeNetlist(1);
        std::vector<double> costs;
        for (int run = 0; run < kRuns; ++run) {
            support::Xoshiro256 rng(support::entropySeed());
            costs.push_back(anneal(netlist, rng).finalCost);
        }
        const double mean_cost = support::mean(costs);
        support::RunningStat stat;
        Row row{"canneal", {}};
        for (double cost : costs) {
            const double rel = std::abs(cost - mean_cost) / mean_cost;
            stat.add(rel);
            row.values.push_back(rel);
        }
        table.addRow({"canneal", "race conditions", sci(stat.mean()),
                      sci(stat.min()), sci(stat.max()),
                      sci(stat.stddev())});
        rows.push_back(std::move(row));
    }

    table.print(std::cout);
    std::cout << "\n(canneal is shown for variability only; STATS "
                 "cannot target it — its input count depends on the "
                 "evolution of the computation state.)\n";
    std::cout << "\nJSON:\n";
    json.beginObject().field("figure", "fig02").key("benchmarks");
    json.beginArray();
    for (const auto &row : rows) {
        json.beginObject()
            .field("name", row.name)
            .field("variability", row.values)
            .endObject();
    }
    json.endArray().endObject();
    return 0;
}
