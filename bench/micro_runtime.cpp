/**
 * @file
 * Microbenchmarks (google-benchmark) of the STATS runtime substrate:
 * speculation-engine orchestration overhead, state cloning, thread
 * pool dispatch, and the platform simulator's event throughput.
 *
 * These quantify the "low-level implementations of thread
 * synchronization primitives" and "efficient thread pool" the paper's
 * runtime relies on (section 3.4).
 */

#include <benchmark/benchmark.h>

#include "exec/sim_executor.hpp"
#include "observability/trace.hpp"
#include "sdi/matchers.hpp"
#include "sdi/spec_engine.hpp"
#include "threading/thread_pool.hpp"

namespace {

using namespace stats;

struct TinyState
{
    long long v = 0;
    bool operator==(const TinyState &o) const { return v == o.v; }
};
struct TinyOutput
{
    long long v;
};
using Engine = sdi::SpecEngine<int, TinyState, TinyOutput>;

Engine::ComputeFn
tinyCompute()
{
    return [](const int &input, TinyState &state,
              const sdi::ComputeContext &) -> Engine::Invocation {
        state.v = input;
        auto out = std::make_unique<TinyOutput>();
        out->v = state.v;
        return {std::move(out), exec::Work{1e-4, 0.0}};
    };
}

/** Full engine run on the simulator: orchestration cost per input. */
void
BM_SpecEngineOrchestration(benchmark::State &bench_state)
{
    const auto n = static_cast<std::size_t>(bench_state.range(0));
    std::vector<int> inputs(n);
    for (std::size_t i = 0; i < n; ++i)
        inputs[i] = static_cast<int>(i);

    for (auto _ : bench_state) {
        sim::MachineConfig machine;
        exec::SimExecutor ex(machine, 28);
        sdi::SpecConfig config;
        config.groupSize = 8;
        config.auxWindow = 1;
        config.sdThreads = 28;
        Engine engine(ex, inputs, TinyState{}, tinyCompute(),
                      tinyCompute(), sdi::alwaysMatch<TinyState>(),
                      config);
        engine.start();
        engine.join();
        benchmark::DoNotOptimize(engine.outputs().size());
    }
    bench_state.SetItemsProcessed(
        static_cast<std::int64_t>(bench_state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpecEngineOrchestration)->Arg(64)->Arg(256)->Arg(1024);

/** Simulator event throughput: tasks scheduled per second. */
void
BM_SimulatorDispatch(benchmark::State &bench_state)
{
    const auto tasks = static_cast<int>(bench_state.range(0));
    for (auto _ : bench_state) {
        sim::MachineConfig machine;
        sim::Simulator simulator(machine, 28);
        for (int i = 0; i < tasks; ++i) {
            exec::Task task;
            task.run = [] { return exec::Work{1e-5, 0.0}; };
            simulator.submit(std::move(task));
        }
        simulator.run();
        benchmark::DoNotOptimize(simulator.activity().tasksRun);
    }
    bench_state.SetItemsProcessed(
        static_cast<std::int64_t>(bench_state.iterations()) * tasks);
}
BENCHMARK(BM_SimulatorDispatch)->Arg(1000)->Arg(10000);

/** Thread pool job dispatch latency. */
void
BM_ThreadPoolDispatch(benchmark::State &bench_state)
{
    threading::ThreadPool pool(2);
    std::atomic<int> counter{0};
    for (auto _ : bench_state) {
        constexpr int kJobs = 256;
        for (int i = 0; i < kJobs; ++i)
            pool.submit([&counter] { counter.fetch_add(1); });
        pool.waitIdle();
    }
    benchmark::DoNotOptimize(counter.load());
    bench_state.SetItemsProcessed(
        static_cast<std::int64_t>(bench_state.iterations()) * 256);
}
BENCHMARK(BM_ThreadPoolDispatch);

/**
 * Orchestration with tracing OFF at run time: measures the cost of
 * the disabled-path checks (one relaxed load per instrumentation
 * site). Compare against BM_SpecEngineOrchestration — the acceptance
 * bar is <1% regression (docs/OBSERVABILITY.md, "Cost model"); a
 * build with -DSTATS_OBS_DISABLE=ON removes even the load.
 */
void
BM_SpecEngineTracingDisabled(benchmark::State &bench_state)
{
    obs::Trace::global().disable();
    obs::Trace::global().clear();
    const auto n = static_cast<std::size_t>(bench_state.range(0));
    std::vector<int> inputs(n);
    for (std::size_t i = 0; i < n; ++i)
        inputs[i] = static_cast<int>(i);
    for (auto _ : bench_state) {
        sim::MachineConfig machine;
        exec::SimExecutor ex(machine, 28);
        sdi::SpecConfig config;
        config.groupSize = 8;
        config.auxWindow = 1;
        config.sdThreads = 28;
        Engine engine(ex, inputs, TinyState{}, tinyCompute(),
                      tinyCompute(), sdi::alwaysMatch<TinyState>(),
                      config);
        engine.start();
        engine.join();
        benchmark::DoNotOptimize(engine.outputs().size());
    }
    bench_state.SetItemsProcessed(
        static_cast<std::int64_t>(bench_state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpecEngineTracingDisabled)->Arg(256)->Arg(1024);

/** Orchestration with tracing ON: full per-event recording cost. */
void
BM_SpecEngineTracingEnabled(benchmark::State &bench_state)
{
    const auto n = static_cast<std::size_t>(bench_state.range(0));
    std::vector<int> inputs(n);
    for (std::size_t i = 0; i < n; ++i)
        inputs[i] = static_cast<int>(i);
    for (auto _ : bench_state) {
        obs::Trace::global().clear();
        obs::Trace::global().enable();
        sim::MachineConfig machine;
        exec::SimExecutor ex(machine, 28);
        sdi::SpecConfig config;
        config.groupSize = 8;
        config.auxWindow = 1;
        config.sdThreads = 28;
        Engine engine(ex, inputs, TinyState{}, tinyCompute(),
                      tinyCompute(), sdi::alwaysMatch<TinyState>(),
                      config);
        engine.start();
        engine.join();
        benchmark::DoNotOptimize(engine.outputs().size());
        obs::Trace::global().disable();
    }
    obs::Trace::global().clear();
    bench_state.SetItemsProcessed(
        static_cast<std::int64_t>(bench_state.iterations()) *
        static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SpecEngineTracingEnabled)->Arg(256)->Arg(1024);

/** Raw sink throughput: one record() call, single thread. */
void
BM_TraceRecord(benchmark::State &bench_state)
{
    obs::Trace::global().clear();
    obs::Trace::global().enable();
    std::int64_t i = 0;
    for (auto _ : bench_state) {
        obs::Trace::global().record(obs::EventType::Commit, 0, i,
                                    i + 1, 0.0, obs::kFrontierTrack,
                                    0);
        ++i;
    }
    obs::Trace::global().disable();
    obs::Trace::global().clear();
    bench_state.SetItemsProcessed(
        static_cast<std::int64_t>(bench_state.iterations()));
}
BENCHMARK(BM_TraceRecord);

/** Engine state-cloning path: copy cost of a particle-filter state. */
void
BM_StateCloning(benchmark::State &bench_state)
{
    struct BigState
    {
        std::vector<double> data;
    };
    BigState state;
    state.data.resize(static_cast<std::size_t>(bench_state.range(0)));
    for (auto _ : bench_state) {
        BigState clone = state; // What the runtime does per group.
        benchmark::DoNotOptimize(clone.data.data());
    }
}
BENCHMARK(BM_StateCloning)->Arg(1000)->Arg(10000);

} // namespace

BENCHMARK_MAIN();
