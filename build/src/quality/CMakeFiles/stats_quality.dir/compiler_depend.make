# Empty compiler generated dependencies file for stats_quality.
# This may be replaced when dependencies are built.
