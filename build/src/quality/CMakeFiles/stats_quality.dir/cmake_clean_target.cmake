file(REMOVE_RECURSE
  "libstats_quality.a"
)
