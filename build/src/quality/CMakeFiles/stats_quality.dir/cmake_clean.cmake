file(REMOVE_RECURSE
  "CMakeFiles/stats_quality.dir/metrics.cpp.o"
  "CMakeFiles/stats_quality.dir/metrics.cpp.o.d"
  "libstats_quality.a"
  "libstats_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
