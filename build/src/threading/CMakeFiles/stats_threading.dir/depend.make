# Empty dependencies file for stats_threading.
# This may be replaced when dependencies are built.
