file(REMOVE_RECURSE
  "CMakeFiles/stats_threading.dir/primitives.cpp.o"
  "CMakeFiles/stats_threading.dir/primitives.cpp.o.d"
  "CMakeFiles/stats_threading.dir/thread_pool.cpp.o"
  "CMakeFiles/stats_threading.dir/thread_pool.cpp.o.d"
  "libstats_threading.a"
  "libstats_threading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_threading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
