file(REMOVE_RECURSE
  "libstats_threading.a"
)
