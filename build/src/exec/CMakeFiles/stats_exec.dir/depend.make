# Empty dependencies file for stats_exec.
# This may be replaced when dependencies are built.
