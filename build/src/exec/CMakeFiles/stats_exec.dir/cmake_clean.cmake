file(REMOVE_RECURSE
  "CMakeFiles/stats_exec.dir/sim_executor.cpp.o"
  "CMakeFiles/stats_exec.dir/sim_executor.cpp.o.d"
  "CMakeFiles/stats_exec.dir/thread_executor.cpp.o"
  "CMakeFiles/stats_exec.dir/thread_executor.cpp.o.d"
  "libstats_exec.a"
  "libstats_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
