file(REMOVE_RECURSE
  "libstats_exec.a"
)
