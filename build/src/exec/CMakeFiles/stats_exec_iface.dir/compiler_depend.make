# Empty compiler generated dependencies file for stats_exec_iface.
# This may be replaced when dependencies are built.
