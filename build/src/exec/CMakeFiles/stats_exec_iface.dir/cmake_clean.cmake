file(REMOVE_RECURSE
  "CMakeFiles/stats_exec_iface.dir/task.cpp.o"
  "CMakeFiles/stats_exec_iface.dir/task.cpp.o.d"
  "libstats_exec_iface.a"
  "libstats_exec_iface.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_exec_iface.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
