file(REMOVE_RECURSE
  "libstats_exec_iface.a"
)
