file(REMOVE_RECURSE
  "libstats_profiler.a"
)
