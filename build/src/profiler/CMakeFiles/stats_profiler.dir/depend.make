# Empty dependencies file for stats_profiler.
# This may be replaced when dependencies are built.
