file(REMOVE_RECURSE
  "CMakeFiles/stats_profiler.dir/profiler.cpp.o"
  "CMakeFiles/stats_profiler.dir/profiler.cpp.o.d"
  "libstats_profiler.a"
  "libstats_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
