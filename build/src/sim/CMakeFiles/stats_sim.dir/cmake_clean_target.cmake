file(REMOVE_RECURSE
  "libstats_sim.a"
)
