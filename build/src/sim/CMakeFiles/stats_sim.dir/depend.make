# Empty dependencies file for stats_sim.
# This may be replaced when dependencies are built.
