file(REMOVE_RECURSE
  "CMakeFiles/stats_sim.dir/machine.cpp.o"
  "CMakeFiles/stats_sim.dir/machine.cpp.o.d"
  "CMakeFiles/stats_sim.dir/simulator.cpp.o"
  "CMakeFiles/stats_sim.dir/simulator.cpp.o.d"
  "libstats_sim.a"
  "libstats_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
