file(REMOVE_RECURSE
  "../../statscc"
  "../../statscc.pdb"
  "CMakeFiles/statscc.dir/statscc.cpp.o"
  "CMakeFiles/statscc.dir/statscc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statscc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
