# Empty dependencies file for statscc.
# This may be replaced when dependencies are built.
