
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tradeoff/registry.cpp" "src/tradeoff/CMakeFiles/stats_tradeoff.dir/registry.cpp.o" "gcc" "src/tradeoff/CMakeFiles/stats_tradeoff.dir/registry.cpp.o.d"
  "/root/repo/src/tradeoff/state_space.cpp" "src/tradeoff/CMakeFiles/stats_tradeoff.dir/state_space.cpp.o" "gcc" "src/tradeoff/CMakeFiles/stats_tradeoff.dir/state_space.cpp.o.d"
  "/root/repo/src/tradeoff/tradeoff.cpp" "src/tradeoff/CMakeFiles/stats_tradeoff.dir/tradeoff.cpp.o" "gcc" "src/tradeoff/CMakeFiles/stats_tradeoff.dir/tradeoff.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/stats_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
