file(REMOVE_RECURSE
  "CMakeFiles/stats_tradeoff.dir/registry.cpp.o"
  "CMakeFiles/stats_tradeoff.dir/registry.cpp.o.d"
  "CMakeFiles/stats_tradeoff.dir/state_space.cpp.o"
  "CMakeFiles/stats_tradeoff.dir/state_space.cpp.o.d"
  "CMakeFiles/stats_tradeoff.dir/tradeoff.cpp.o"
  "CMakeFiles/stats_tradeoff.dir/tradeoff.cpp.o.d"
  "libstats_tradeoff.a"
  "libstats_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
