# Empty compiler generated dependencies file for stats_tradeoff.
# This may be replaced when dependencies are built.
