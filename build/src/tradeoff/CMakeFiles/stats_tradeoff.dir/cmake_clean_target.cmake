file(REMOVE_RECURSE
  "libstats_tradeoff.a"
)
