file(REMOVE_RECURSE
  "CMakeFiles/stats_midend.dir/midend.cpp.o"
  "CMakeFiles/stats_midend.dir/midend.cpp.o.d"
  "CMakeFiles/stats_midend.dir/substitute.cpp.o"
  "CMakeFiles/stats_midend.dir/substitute.cpp.o.d"
  "libstats_midend.a"
  "libstats_midend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_midend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
