file(REMOVE_RECURSE
  "libstats_midend.a"
)
