# Empty compiler generated dependencies file for stats_midend.
# This may be replaced when dependencies are built.
