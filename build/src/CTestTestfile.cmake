# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("exec")
subdirs("sim")
subdirs("platform")
subdirs("threading")
subdirs("sdi")
subdirs("tradeoff")
subdirs("quality")
subdirs("benchmarks")
subdirs("autotuner")
subdirs("profiler")
subdirs("baselines")
subdirs("ir")
subdirs("midend")
subdirs("backend")
subdirs("frontend")
subdirs("cli")
