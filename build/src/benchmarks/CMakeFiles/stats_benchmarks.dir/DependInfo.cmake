
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchmarks/bodytrack/bodytrack.cpp" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/bodytrack/bodytrack.cpp.o" "gcc" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/bodytrack/bodytrack.cpp.o.d"
  "/root/repo/src/benchmarks/canneal/canneal.cpp" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/canneal/canneal.cpp.o" "gcc" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/canneal/canneal.cpp.o.d"
  "/root/repo/src/benchmarks/common/benchmark.cpp" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/common/benchmark.cpp.o" "gcc" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/common/benchmark.cpp.o.d"
  "/root/repo/src/benchmarks/common/extended_sources.cpp" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/common/extended_sources.cpp.o" "gcc" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/common/extended_sources.cpp.o.d"
  "/root/repo/src/benchmarks/common/factory.cpp" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/common/factory.cpp.o" "gcc" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/common/factory.cpp.o.d"
  "/root/repo/src/benchmarks/facedet/facedet.cpp" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/facedet/facedet.cpp.o" "gcc" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/facedet/facedet.cpp.o.d"
  "/root/repo/src/benchmarks/fluidanimate/fluidanimate.cpp" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/fluidanimate/fluidanimate.cpp.o" "gcc" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/fluidanimate/fluidanimate.cpp.o.d"
  "/root/repo/src/benchmarks/streamcluster/streamcluster.cpp" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/streamcluster/streamcluster.cpp.o" "gcc" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/streamcluster/streamcluster.cpp.o.d"
  "/root/repo/src/benchmarks/swaptions/swaptions.cpp" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/swaptions/swaptions.cpp.o" "gcc" "src/benchmarks/CMakeFiles/stats_benchmarks.dir/swaptions/swaptions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tradeoff/CMakeFiles/stats_tradeoff.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/stats_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/stats_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stats_support.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/stats_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stats_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/stats_exec_iface.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
