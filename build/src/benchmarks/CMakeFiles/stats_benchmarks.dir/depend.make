# Empty dependencies file for stats_benchmarks.
# This may be replaced when dependencies are built.
