file(REMOVE_RECURSE
  "libstats_benchmarks.a"
)
