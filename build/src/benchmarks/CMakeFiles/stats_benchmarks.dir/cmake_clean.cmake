file(REMOVE_RECURSE
  "CMakeFiles/stats_benchmarks.dir/bodytrack/bodytrack.cpp.o"
  "CMakeFiles/stats_benchmarks.dir/bodytrack/bodytrack.cpp.o.d"
  "CMakeFiles/stats_benchmarks.dir/canneal/canneal.cpp.o"
  "CMakeFiles/stats_benchmarks.dir/canneal/canneal.cpp.o.d"
  "CMakeFiles/stats_benchmarks.dir/common/benchmark.cpp.o"
  "CMakeFiles/stats_benchmarks.dir/common/benchmark.cpp.o.d"
  "CMakeFiles/stats_benchmarks.dir/common/extended_sources.cpp.o"
  "CMakeFiles/stats_benchmarks.dir/common/extended_sources.cpp.o.d"
  "CMakeFiles/stats_benchmarks.dir/common/factory.cpp.o"
  "CMakeFiles/stats_benchmarks.dir/common/factory.cpp.o.d"
  "CMakeFiles/stats_benchmarks.dir/facedet/facedet.cpp.o"
  "CMakeFiles/stats_benchmarks.dir/facedet/facedet.cpp.o.d"
  "CMakeFiles/stats_benchmarks.dir/fluidanimate/fluidanimate.cpp.o"
  "CMakeFiles/stats_benchmarks.dir/fluidanimate/fluidanimate.cpp.o.d"
  "CMakeFiles/stats_benchmarks.dir/streamcluster/streamcluster.cpp.o"
  "CMakeFiles/stats_benchmarks.dir/streamcluster/streamcluster.cpp.o.d"
  "CMakeFiles/stats_benchmarks.dir/swaptions/swaptions.cpp.o"
  "CMakeFiles/stats_benchmarks.dir/swaptions/swaptions.cpp.o.d"
  "libstats_benchmarks.a"
  "libstats_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
