file(REMOVE_RECURSE
  "libstats_autotuner.a"
)
