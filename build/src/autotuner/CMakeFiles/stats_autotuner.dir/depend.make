# Empty dependencies file for stats_autotuner.
# This may be replaced when dependencies are built.
