file(REMOVE_RECURSE
  "CMakeFiles/stats_autotuner.dir/bandit.cpp.o"
  "CMakeFiles/stats_autotuner.dir/bandit.cpp.o.d"
  "CMakeFiles/stats_autotuner.dir/results_io.cpp.o"
  "CMakeFiles/stats_autotuner.dir/results_io.cpp.o.d"
  "CMakeFiles/stats_autotuner.dir/technique.cpp.o"
  "CMakeFiles/stats_autotuner.dir/technique.cpp.o.d"
  "CMakeFiles/stats_autotuner.dir/tuner.cpp.o"
  "CMakeFiles/stats_autotuner.dir/tuner.cpp.o.d"
  "libstats_autotuner.a"
  "libstats_autotuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_autotuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
