
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/autotuner/bandit.cpp" "src/autotuner/CMakeFiles/stats_autotuner.dir/bandit.cpp.o" "gcc" "src/autotuner/CMakeFiles/stats_autotuner.dir/bandit.cpp.o.d"
  "/root/repo/src/autotuner/results_io.cpp" "src/autotuner/CMakeFiles/stats_autotuner.dir/results_io.cpp.o" "gcc" "src/autotuner/CMakeFiles/stats_autotuner.dir/results_io.cpp.o.d"
  "/root/repo/src/autotuner/technique.cpp" "src/autotuner/CMakeFiles/stats_autotuner.dir/technique.cpp.o" "gcc" "src/autotuner/CMakeFiles/stats_autotuner.dir/technique.cpp.o.d"
  "/root/repo/src/autotuner/tuner.cpp" "src/autotuner/CMakeFiles/stats_autotuner.dir/tuner.cpp.o" "gcc" "src/autotuner/CMakeFiles/stats_autotuner.dir/tuner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tradeoff/CMakeFiles/stats_tradeoff.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stats_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
