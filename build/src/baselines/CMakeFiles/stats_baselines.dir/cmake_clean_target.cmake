file(REMOVE_RECURSE
  "libstats_baselines.a"
)
