file(REMOVE_RECURSE
  "CMakeFiles/stats_baselines.dir/baseline.cpp.o"
  "CMakeFiles/stats_baselines.dir/baseline.cpp.o.d"
  "libstats_baselines.a"
  "libstats_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
