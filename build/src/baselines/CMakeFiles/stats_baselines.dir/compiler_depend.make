# Empty compiler generated dependencies file for stats_baselines.
# This may be replaced when dependencies are built.
