# Empty compiler generated dependencies file for stats_ir.
# This may be replaced when dependencies are built.
