file(REMOVE_RECURSE
  "libstats_ir.a"
)
