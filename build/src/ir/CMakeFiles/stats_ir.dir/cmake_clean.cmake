file(REMOVE_RECURSE
  "CMakeFiles/stats_ir.dir/call_graph.cpp.o"
  "CMakeFiles/stats_ir.dir/call_graph.cpp.o.d"
  "CMakeFiles/stats_ir.dir/interpreter.cpp.o"
  "CMakeFiles/stats_ir.dir/interpreter.cpp.o.d"
  "CMakeFiles/stats_ir.dir/ir.cpp.o"
  "CMakeFiles/stats_ir.dir/ir.cpp.o.d"
  "CMakeFiles/stats_ir.dir/parser.cpp.o"
  "CMakeFiles/stats_ir.dir/parser.cpp.o.d"
  "CMakeFiles/stats_ir.dir/verifier.cpp.o"
  "CMakeFiles/stats_ir.dir/verifier.cpp.o.d"
  "libstats_ir.a"
  "libstats_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
