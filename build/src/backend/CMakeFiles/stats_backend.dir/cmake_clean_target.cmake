file(REMOVE_RECURSE
  "libstats_backend.a"
)
