# Empty dependencies file for stats_backend.
# This may be replaced when dependencies are built.
