file(REMOVE_RECURSE
  "CMakeFiles/stats_backend.dir/backend.cpp.o"
  "CMakeFiles/stats_backend.dir/backend.cpp.o.d"
  "libstats_backend.a"
  "libstats_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
