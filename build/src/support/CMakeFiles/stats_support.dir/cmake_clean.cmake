file(REMOVE_RECURSE
  "CMakeFiles/stats_support.dir/json.cpp.o"
  "CMakeFiles/stats_support.dir/json.cpp.o.d"
  "CMakeFiles/stats_support.dir/log.cpp.o"
  "CMakeFiles/stats_support.dir/log.cpp.o.d"
  "CMakeFiles/stats_support.dir/rng.cpp.o"
  "CMakeFiles/stats_support.dir/rng.cpp.o.d"
  "CMakeFiles/stats_support.dir/statistics.cpp.o"
  "CMakeFiles/stats_support.dir/statistics.cpp.o.d"
  "CMakeFiles/stats_support.dir/string_utils.cpp.o"
  "CMakeFiles/stats_support.dir/string_utils.cpp.o.d"
  "CMakeFiles/stats_support.dir/table.cpp.o"
  "CMakeFiles/stats_support.dir/table.cpp.o.d"
  "CMakeFiles/stats_support.dir/timer.cpp.o"
  "CMakeFiles/stats_support.dir/timer.cpp.o.d"
  "libstats_support.a"
  "libstats_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
