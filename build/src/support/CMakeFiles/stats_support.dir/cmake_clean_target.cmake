file(REMOVE_RECURSE
  "libstats_support.a"
)
