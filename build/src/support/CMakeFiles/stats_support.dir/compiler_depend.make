# Empty compiler generated dependencies file for stats_support.
# This may be replaced when dependencies are built.
