file(REMOVE_RECURSE
  "CMakeFiles/stats_frontend.dir/frontend.cpp.o"
  "CMakeFiles/stats_frontend.dir/frontend.cpp.o.d"
  "libstats_frontend.a"
  "libstats_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
