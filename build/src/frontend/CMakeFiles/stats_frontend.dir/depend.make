# Empty dependencies file for stats_frontend.
# This may be replaced when dependencies are built.
