file(REMOVE_RECURSE
  "libstats_frontend.a"
)
