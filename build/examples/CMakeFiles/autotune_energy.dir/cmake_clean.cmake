file(REMOVE_RECURSE
  "CMakeFiles/autotune_energy.dir/autotune_energy.cpp.o"
  "CMakeFiles/autotune_energy.dir/autotune_energy.cpp.o.d"
  "autotune_energy"
  "autotune_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autotune_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
