# Empty dependencies file for autotune_energy.
# This may be replaced when dependencies are built.
