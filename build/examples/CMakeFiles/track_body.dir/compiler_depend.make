# Empty compiler generated dependencies file for track_body.
# This may be replaced when dependencies are built.
