file(REMOVE_RECURSE
  "CMakeFiles/track_body.dir/track_body.cpp.o"
  "CMakeFiles/track_body.dir/track_body.cpp.o.d"
  "track_body"
  "track_body.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/track_body.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
