file(REMOVE_RECURSE
  "CMakeFiles/state_dependence_test.dir/state_dependence_test.cpp.o"
  "CMakeFiles/state_dependence_test.dir/state_dependence_test.cpp.o.d"
  "state_dependence_test"
  "state_dependence_test.pdb"
  "state_dependence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/state_dependence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
