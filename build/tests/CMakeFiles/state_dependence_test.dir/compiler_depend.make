# Empty compiler generated dependencies file for state_dependence_test.
# This may be replaced when dependencies are built.
