# Empty dependencies file for results_io_test.
# This may be replaced when dependencies are built.
