file(REMOVE_RECURSE
  "CMakeFiles/results_io_test.dir/results_io_test.cpp.o"
  "CMakeFiles/results_io_test.dir/results_io_test.cpp.o.d"
  "results_io_test"
  "results_io_test.pdb"
  "results_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/results_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
