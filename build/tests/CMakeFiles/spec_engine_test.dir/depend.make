# Empty dependencies file for spec_engine_test.
# This may be replaced when dependencies are built.
