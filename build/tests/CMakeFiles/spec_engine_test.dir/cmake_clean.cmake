file(REMOVE_RECURSE
  "CMakeFiles/spec_engine_test.dir/spec_engine_test.cpp.o"
  "CMakeFiles/spec_engine_test.dir/spec_engine_test.cpp.o.d"
  "spec_engine_test"
  "spec_engine_test.pdb"
  "spec_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
