file(REMOVE_RECURSE
  "CMakeFiles/spec_engine_property_test.dir/spec_engine_property_test.cpp.o"
  "CMakeFiles/spec_engine_property_test.dir/spec_engine_property_test.cpp.o.d"
  "spec_engine_property_test"
  "spec_engine_property_test.pdb"
  "spec_engine_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_engine_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
