# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for spec_engine_property_test.
