
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/spec_engine_property_test.cpp" "tests/CMakeFiles/spec_engine_property_test.dir/spec_engine_property_test.cpp.o" "gcc" "tests/CMakeFiles/spec_engine_property_test.dir/spec_engine_property_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exec/CMakeFiles/stats_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stats_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/stats_exec_iface.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/stats_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stats_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
