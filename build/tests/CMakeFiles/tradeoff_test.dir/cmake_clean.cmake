file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_test.dir/tradeoff_test.cpp.o"
  "CMakeFiles/tradeoff_test.dir/tradeoff_test.cpp.o.d"
  "tradeoff_test"
  "tradeoff_test.pdb"
  "tradeoff_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
