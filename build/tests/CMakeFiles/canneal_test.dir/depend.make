# Empty dependencies file for canneal_test.
# This may be replaced when dependencies are built.
