file(REMOVE_RECURSE
  "CMakeFiles/canneal_test.dir/canneal_test.cpp.o"
  "CMakeFiles/canneal_test.dir/canneal_test.cpp.o.d"
  "canneal_test"
  "canneal_test.pdb"
  "canneal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canneal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
