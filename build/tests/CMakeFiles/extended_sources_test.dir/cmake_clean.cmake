file(REMOVE_RECURSE
  "CMakeFiles/extended_sources_test.dir/extended_sources_test.cpp.o"
  "CMakeFiles/extended_sources_test.dir/extended_sources_test.cpp.o.d"
  "extended_sources_test"
  "extended_sources_test.pdb"
  "extended_sources_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extended_sources_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
