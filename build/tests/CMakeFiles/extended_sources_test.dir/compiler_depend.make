# Empty compiler generated dependencies file for extended_sources_test.
# This may be replaced when dependencies are built.
