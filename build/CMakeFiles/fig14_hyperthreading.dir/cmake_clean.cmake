file(REMOVE_RECURSE
  "CMakeFiles/fig14_hyperthreading.dir/bench/fig14_hyperthreading.cpp.o"
  "CMakeFiles/fig14_hyperthreading.dir/bench/fig14_hyperthreading.cpp.o.d"
  "bench/fig14_hyperthreading"
  "bench/fig14_hyperthreading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_hyperthreading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
