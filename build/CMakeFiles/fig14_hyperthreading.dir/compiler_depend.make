# Empty compiler generated dependencies file for fig14_hyperthreading.
# This may be replaced when dependencies are built.
