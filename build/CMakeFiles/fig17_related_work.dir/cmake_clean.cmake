file(REMOVE_RECURSE
  "CMakeFiles/fig17_related_work.dir/bench/fig17_related_work.cpp.o"
  "CMakeFiles/fig17_related_work.dir/bench/fig17_related_work.cpp.o.d"
  "bench/fig17_related_work"
  "bench/fig17_related_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
