# Empty compiler generated dependencies file for fig03_todays_limits.
# This may be replaced when dependencies are built.
