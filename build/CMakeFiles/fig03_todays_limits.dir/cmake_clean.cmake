file(REMOVE_RECURSE
  "CMakeFiles/fig03_todays_limits.dir/bench/fig03_todays_limits.cpp.o"
  "CMakeFiles/fig03_todays_limits.dir/bench/fig03_todays_limits.cpp.o.d"
  "bench/fig03_todays_limits"
  "bench/fig03_todays_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_todays_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
