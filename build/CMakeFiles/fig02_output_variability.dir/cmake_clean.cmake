file(REMOVE_RECURSE
  "CMakeFiles/fig02_output_variability.dir/bench/fig02_output_variability.cpp.o"
  "CMakeFiles/fig02_output_variability.dir/bench/fig02_output_variability.cpp.o.d"
  "bench/fig02_output_variability"
  "bench/fig02_output_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_output_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
