# Empty compiler generated dependencies file for fig02_output_variability.
# This may be replaced when dependencies are built.
