file(REMOVE_RECURSE
  "CMakeFiles/fig20_autotuner_convergence.dir/bench/fig20_autotuner_convergence.cpp.o"
  "CMakeFiles/fig20_autotuner_convergence.dir/bench/fig20_autotuner_convergence.cpp.o.d"
  "bench/fig20_autotuner_convergence"
  "bench/fig20_autotuner_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_autotuner_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
