# Empty dependencies file for fig20_autotuner_convergence.
# This may be replaced when dependencies are built.
