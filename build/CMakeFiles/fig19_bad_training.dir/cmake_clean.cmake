file(REMOVE_RECURSE
  "CMakeFiles/fig19_bad_training.dir/bench/fig19_bad_training.cpp.o"
  "CMakeFiles/fig19_bad_training.dir/bench/fig19_bad_training.cpp.o.d"
  "bench/fig19_bad_training"
  "bench/fig19_bad_training.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_bad_training.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
