
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig19_bad_training.cpp" "CMakeFiles/fig19_bad_training.dir/bench/fig19_bad_training.cpp.o" "gcc" "CMakeFiles/fig19_bad_training.dir/bench/fig19_bad_training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/stats_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/profiler/CMakeFiles/stats_profiler.dir/DependInfo.cmake"
  "/root/repo/build/src/autotuner/CMakeFiles/stats_autotuner.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/stats_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/benchmarks/CMakeFiles/stats_benchmarks.dir/DependInfo.cmake"
  "/root/repo/build/src/tradeoff/CMakeFiles/stats_tradeoff.dir/DependInfo.cmake"
  "/root/repo/build/src/quality/CMakeFiles/stats_quality.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/stats_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stats_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/stats_exec_iface.dir/DependInfo.cmake"
  "/root/repo/build/src/threading/CMakeFiles/stats_threading.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/stats_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/backend/CMakeFiles/stats_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/midend/CMakeFiles/stats_midend.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/stats_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/stats_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
