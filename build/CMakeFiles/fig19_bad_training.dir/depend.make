# Empty dependencies file for fig19_bad_training.
# This may be replaced when dependencies are built.
