file(REMOVE_RECURSE
  "CMakeFiles/fig18_tradeoff_payoff.dir/bench/fig18_tradeoff_payoff.cpp.o"
  "CMakeFiles/fig18_tradeoff_payoff.dir/bench/fig18_tradeoff_payoff.cpp.o.d"
  "bench/fig18_tradeoff_payoff"
  "bench/fig18_tradeoff_payoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_tradeoff_payoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
