# Empty dependencies file for fig18_tradeoff_payoff.
# This may be replaced when dependencies are built.
