# Empty compiler generated dependencies file for fig13_geomean.
# This may be replaced when dependencies are built.
