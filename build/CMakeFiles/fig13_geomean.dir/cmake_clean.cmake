file(REMOVE_RECURSE
  "CMakeFiles/fig13_geomean.dir/bench/fig13_geomean.cpp.o"
  "CMakeFiles/fig13_geomean.dir/bench/fig13_geomean.cpp.o.d"
  "bench/fig13_geomean"
  "bench/fig13_geomean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_geomean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
