file(REMOVE_RECURSE
  "CMakeFiles/fig16_quality_improvement.dir/bench/fig16_quality_improvement.cpp.o"
  "CMakeFiles/fig16_quality_improvement.dir/bench/fig16_quality_improvement.cpp.o.d"
  "bench/fig16_quality_improvement"
  "bench/fig16_quality_improvement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_quality_improvement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
