# Empty dependencies file for fig16_quality_improvement.
# This may be replaced when dependencies are built.
