file(REMOVE_RECURSE
  "CMakeFiles/micro_compilers.dir/bench/micro_compilers.cpp.o"
  "CMakeFiles/micro_compilers.dir/bench/micro_compilers.cpp.o.d"
  "bench/micro_compilers"
  "bench/micro_compilers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_compilers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
