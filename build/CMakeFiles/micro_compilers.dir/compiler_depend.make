# Empty compiler generated dependencies file for micro_compilers.
# This may be replaced when dependencies are built.
