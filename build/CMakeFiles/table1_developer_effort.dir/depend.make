# Empty dependencies file for table1_developer_effort.
# This may be replaced when dependencies are built.
