file(REMOVE_RECURSE
  "CMakeFiles/table1_developer_effort.dir/bench/table1_developer_effort.cpp.o"
  "CMakeFiles/table1_developer_effort.dir/bench/table1_developer_effort.cpp.o.d"
  "bench/table1_developer_effort"
  "bench/table1_developer_effort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_developer_effort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
