file(REMOVE_RECURSE
  "libstats_bench_common.a"
)
