file(REMOVE_RECURSE
  "CMakeFiles/stats_bench_common.dir/bench/common/experiment.cpp.o"
  "CMakeFiles/stats_bench_common.dir/bench/common/experiment.cpp.o.d"
  "CMakeFiles/stats_bench_common.dir/bench/common/ir_synth.cpp.o"
  "CMakeFiles/stats_bench_common.dir/bench/common/ir_synth.cpp.o.d"
  "libstats_bench_common.a"
  "libstats_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
