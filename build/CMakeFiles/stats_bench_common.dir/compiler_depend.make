# Empty compiler generated dependencies file for stats_bench_common.
# This may be replaced when dependencies are built.
