/**
 * @file
 * The back-end compiler (paper section 3.4, "Generating a binary").
 *
 * Takes the middle-end's IR and one autotuner configuration, and
 * produces the configured module: for every state dependence to be
 * satisfied with auxiliary code it links the specialized runtime
 * (marked in the metadata) and sets the auxiliary tradeoffs to the
 * configuration's indices — fetching each value by executing the
 * tradeoff's getValue() (the paper's LLVM-JIT step) and rewriting
 * the placeholder references. Instantiation deliberately involves
 * only simple code changes so the autotuner can re-instantiate the
 * same IR cheaply (the paper's compile-time design choice).
 */

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "ir/exec_tier.hpp"
#include "ir/ir.hpp"

namespace stats::backend {

/** One point of the state space, as the back-end consumes it. */
struct BackendConfig
{
    /** aux tradeoff name (e.g. "aux::T_42") -> value index. */
    std::map<std::string, std::int64_t> tradeoffIndices;

    /** State dependences to satisfy with auxiliary code. */
    std::set<std::string> auxiliaryDeps;

    /**
     * Audit the instantiated module with the freeze checker (rules
     * FRZ01-FRZ03): no placeholder call may survive instantiation and
     * the cast discipline must hold. Violations are a compiler bug
     * and panic.
     */
    bool auditFrozen = true;

    /**
     * Audit the instantiated module with the range pass (rules
     * RNG01-RNG03, docs/ANALYSIS.md §7). Range findings are warnings
     * about the *source model* (provable wrap-around, possibly-zero
     * divisors, saturating casts), not compiler bugs, so they are
     * reported on stderr and never fatal.
     */
    bool auditRanges = true;

    /**
     * Execution tier for instantiateExecutable (the paper's LLVM-JIT
     * step): `auto` compiles each function to bytecode and keeps the
     * AST walker for the rest (docs/INTERPRETER.md §6).
     */
    ir::ExecTier execTier = ir::ExecTier::Auto;
};

/**
 * Instantiate one configuration. The input module is copied — the
 * middle-end IR stays reusable for the next configuration.
 *
 * Unmentioned auxiliary tradeoffs take their default index; unknown
 * names in the configuration are an error.
 */
ir::Module instantiate(const ir::Module &midend_ir,
                       const BackendConfig &config);

/**
 * An instantiated configuration bound to its execution tier: the
 * frozen module plus the ExecutableModule that runs it. The module is
 * owned here because the executable holds a reference into it.
 */
struct Executable
{
    std::shared_ptr<const ir::Module> module;
    std::shared_ptr<ir::ExecutableModule> exec;
};

/**
 * Instantiate one configuration and stand up its execution tier
 * (config.execTier). Equivalent to instantiate() followed by
 * ExecutableModule construction, with lifetimes tied together.
 */
Executable instantiateExecutable(const ir::Module &midend_ir,
                                 const BackendConfig &config);

} // namespace stats::backend
