#include "backend/backend.hpp"

#include <algorithm>

#include "analysis/freeze_check.hpp"
#include "analysis/manager.hpp"
#include "analysis/range.hpp"
#include "midend/substitute.hpp"
#include "support/log.hpp"

namespace stats::backend {

ir::Module
instantiate(const ir::Module &midend_ir, const BackendConfig &config)
{
    ir::Module module = midend_ir; // Instantiate a copy.

    for (const auto &[name, index] : config.tradeoffIndices) {
        if (!module.findTradeoff(name))
            support::panic("back-end: unknown tradeoff '", name, "'");
    }
    for (const auto &dep_name : config.auxiliaryDeps) {
        ir::StateDepMeta *dep = module.findStateDep(dep_name);
        if (!dep)
            support::panic("back-end: unknown state dependence '",
                           dep_name, "'");
        if (dep->auxFn.empty())
            support::panic("back-end: state dependence '", dep_name,
                           "' has no auxiliary code");
        // Link the runtime, specialized for this dependence.
        dep->runtimeLinked = true;
    }

    // Set every remaining (auxiliary) tradeoff: the configured index
    // if given, its default otherwise.
    std::vector<std::string> names;
    for (const auto &meta : module.tradeoffs)
        names.push_back(meta.name);
    for (const auto &name : names) {
        const ir::TradeoffMeta meta = *module.findTradeoff(name);
        auto chosen = config.tradeoffIndices.find(name);
        const std::int64_t index =
            chosen != config.tradeoffIndices.end()
                ? chosen->second
                : midend::defaultIndexOf(module, meta);
        const std::int64_t size = midend::sizeOf(module, meta);
        if (index < 0 || index >= size) {
            support::panic("back-end: index ", index,
                           " out of range for tradeoff '", name,
                           "' (size ", size, ")");
        }
        const midend::ChosenValue value =
            midend::evaluateTradeoffValue(module, meta, index);
        midend::applyTradeoff(module, meta, value);
    }

    if (config.auditRanges) {
        analysis::AnalysisManager manager(module);
        for (const auto &diag : analysis::runRangePass(manager)) {
            support::warn("back-end: range audit: [", diag.rule, "] ",
                          diag.message, " (@", diag.function, ")");
        }
    }

    if (config.auditFrozen) {
        analysis::AnalysisManager manager(module);
        analysis::FreezeCheckOptions audit;
        audit.requireInstantiated = true;
        const auto diags = analysis::runFreezeCheck(manager, audit);
        if (analysis::hasErrors(diags)) {
            std::string first;
            for (const auto &diag : diags) {
                if (diag.severity == analysis::Severity::Error) {
                    first = "[" + diag.rule + "] " + diag.message;
                    break;
                }
            }
            support::panic("back-end: instantiated module fails the "
                           "freeze audit: ",
                           first);
        }
    }
    return module;
}

Executable
instantiateExecutable(const ir::Module &midend_ir,
                      const BackendConfig &config)
{
    Executable executable;
    executable.module = std::make_shared<const ir::Module>(
        instantiate(midend_ir, config));
    executable.exec = std::make_shared<ir::ExecutableModule>(
        *executable.module, config.execTier);
    return executable;
}

} // namespace stats::backend
