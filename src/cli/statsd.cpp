/**
 * @file
 * statsd — the STATS serving daemon (docs/SERVING.md).
 *
 * Serves ExecutionPlans over a unix-domain socket: admission
 * (validation + per-tenant token-bucket quotas), weighted
 * deficit-round-robin scheduling, cross-request batching, and
 * record/replay capture per served run. `stats-cli` is the matching
 * client; `stats-cli drain` is the clean shutdown path.
 *
 * Usage:
 *   statsd [--socket=PATH] [--quota=tenant:rate:burst:maxq:weight]...
 *          [--default-quota=rate:burst:maxq:weight] [--quantum=Q]
 *          [--execution-workers=N] [--no-analysis] [--trace]
 *          [--metrics=FILE]
 *
 * `--quota` may repeat (and each accepts a comma-separated list).
 */

#include <iostream>
#include <string>
#include <vector>

#include "serving/serve_main.hpp"
#include "support/string_utils.hpp"

namespace {

void
usage()
{
    std::cerr
        << "usage: statsd [options]\n"
        << "options:\n"
        << "  --socket=PATH            listen socket "
           "(default statsd.sock)\n"
        << "  --quota=T:R:B:Q:W        tenant T: R req/s, burst B,\n"
        << "                           queue bound Q, WDRR weight W\n"
        << "                           (repeatable, comma-separable)\n"
        << "  --default-quota=R:B:Q:W  quota for unlisted tenants\n"
        << "  --quantum=Q              WDRR quantum (default 1)\n"
        << "  --execution-workers=N    plan execution threads\n"
        << "                           (default: half the cores)\n"
        << "  --no-analysis            skip the admission lint stage\n"
        << "  --trace                  enable the trace layer\n"
        << "  --metrics=FILE           dump metrics JSON on drain\n";
}

void
appendCommaSeparated(std::vector<std::string> &out,
                     const std::string &list)
{
    std::size_t begin = 0;
    while (begin <= list.size()) {
        const std::size_t comma = list.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? list.size() : comma;
        if (end > begin)
            out.push_back(list.substr(begin, end - begin));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
}

} // namespace

int
main(int argc, char **argv)
{
    stats::serving::ServeArgs args;
    for (int i = 1; i < argc; ++i) {
        const std::string word = argv[i];
        if (!stats::support::startsWith(word, "--")) {
            usage();
            return 1;
        }
        const auto eq = word.find('=');
        const std::string key =
            word.substr(2, eq == std::string::npos
                               ? std::string::npos
                               : eq - 2);
        const std::string value =
            eq == std::string::npos ? "" : word.substr(eq + 1);
        if (key == "socket") {
            args.socketPath = value;
        } else if (key == "quota") {
            appendCommaSeparated(args.quotaSpecs, value);
        } else if (key == "default-quota") {
            args.defaultQuotaSpec = value;
        } else if (key == "quantum") {
            try {
                args.quantum = std::stod(value);
            } catch (const std::exception &) {
                std::cerr << "statsd: --quantum wants a number, "
                             "got '" << value << "'\n";
                return 1;
            }
            if (!(args.quantum > 0.0)) {
                std::cerr << "statsd: --quantum must be positive\n";
                return 1;
            }
        } else if (key == "execution-workers") {
            try {
                args.executionWorkers = std::stoul(value);
            } catch (const std::exception &) {
                std::cerr << "statsd: --execution-workers wants a "
                             "number, got '" << value << "'\n";
                return 1;
            }
            if (args.executionWorkers < 1) {
                std::cerr << "statsd: --execution-workers must be "
                             "at least 1\n";
                return 1;
            }
        } else if (key == "no-analysis") {
            args.runAnalysis = false;
        } else if (key == "trace") {
            args.trace = true;
        } else if (key == "metrics") {
            args.metricsPath = value;
        } else if (key == "help") {
            usage();
            return 0;
        } else {
            usage();
            return 1;
        }
    }
    return stats::serving::serveMain(args);
}
