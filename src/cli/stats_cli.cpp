/**
 * @file
 * stats-cli — client for the statsd serving daemon (docs/SERVING.md).
 *
 * Subcommands:
 *   submit <plan.txt>     submit a text-form ExecutionPlan
 *                         (`-` reads stdin; --binary sends the file's
 *                         bytes as the wire form unchanged;
 *                         --no-cache bypasses the server's result
 *                         cache for this request)
 *   status <id>           request lifecycle state
 *   result <id>           final result: state, summary numbers, and
 *                         the FNV-1a digest of the result bytes
 *                         (--blob=FILE writes the raw bytes)
 *   replay-fetch <id>     RecordLog captured while serving the
 *                         request (--out=FILE, default <id>.rec)
 *   drain                 drain the daemon and shut it down
 *
 * Common option: --socket=PATH (default statsd.sock).
 *
 * Exit codes: 0 success; 2 graceful backpressure rejection
 * (quota/queue/draining); 1 anything else.
 */

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "serving/client.hpp"
#include "serving/execution_plan.hpp"
#include "support/string_utils.hpp"

using namespace stats;

namespace {

struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> options;

    std::string
    option(const std::string &key, const std::string &fallback) const
    {
        auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 2; i < argc; ++i) {
        const std::string word = argv[i];
        if (support::startsWith(word, "--")) {
            const auto eq = word.find('=');
            if (eq == std::string::npos)
                args.options[word.substr(2)] = "true";
            else
                args.options[word.substr(2, eq - 2)] =
                    word.substr(eq + 1);
        } else {
            args.positional.push_back(word);
        }
    }
    return args;
}

void
usage()
{
    std::cerr
        << "usage: stats-cli <command> [--socket=PATH] [arguments]\n"
        << "commands:\n"
        << "  submit <plan.txt|-> [--binary] [--no-cache]\n"
        << "                                   submit a plan\n"
        << "  status <id>                      request state\n"
        << "  result <id> [--blob=FILE]        finished result\n"
        << "  replay-fetch <id> [--out=FILE]   served RecordLog\n"
        << "  drain                            drain + shut down\n";
}

std::uint64_t
fnv1a(const std::string &bytes)
{
    std::uint64_t hash = 1469598103934665603ull;
    for (const unsigned char byte : bytes) {
        hash ^= byte;
        hash *= 1099511628211ull;
    }
    return hash;
}

bool
readInput(const std::string &path, std::string &contents)
{
    if (path == "-") {
        std::ostringstream buffer;
        buffer << std::cin.rdbuf();
        contents = buffer.str();
        return true;
    }
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    contents = buffer.str();
    return true;
}

int
fail(const std::string &message)
{
    std::cerr << "stats-cli: " << message << "\n";
    return 1;
}

std::uint64_t
parseId(const Args &args)
{
    if (args.positional.empty()) {
        usage();
        std::exit(1);
    }
    const std::string &word = args.positional[0];
    try {
        std::size_t used = 0;
        const std::uint64_t id = std::stoull(word, &used);
        if (used == word.size())
            return id;
    } catch (const std::exception &) {
    }
    std::exit(fail("bad request id '" + word + "'"));
}

int
cmdSubmit(serving::Client &client, const Args &args)
{
    if (args.positional.empty()) {
        usage();
        return 1;
    }
    std::string contents;
    if (!readInput(args.positional[0], contents))
        return fail("cannot read '" + args.positional[0] + "'");

    std::string wire;
    if (args.options.count("binary")) {
        wire = contents;
    } else {
        std::string error;
        auto plan = serving::ExecutionPlan::fromText(contents, error);
        if (!plan)
            return fail("plan: " + error);
        if (args.options.count("no-cache"))
            plan->noCache = true;
        wire = plan->saveToString();
    }

    serving::AdmissionVerdict verdict;
    std::string error;
    const auto request_id = client.submit(wire, verdict, error);
    if (request_id) {
        std::cout << "request " << *request_id << "\n";
        return 0;
    }
    if (!error.empty())
        return fail(error);
    std::cerr << "rejected " << rejectReasonName(verdict.reason)
              << ": " << verdict.detail;
    if (verdict.retryAfterSeconds > 0.0)
        std::cerr << " (retry after " << verdict.retryAfterSeconds
                  << " s)";
    std::cerr << "\n";
    return serving::isBackpressure(verdict.reason) ? 2 : 1;
}

int
cmdStatus(serving::Client &client, const Args &args)
{
    std::string tenant;
    std::string error;
    const auto state = client.status(parseId(args), tenant, error);
    if (!state)
        return fail(error);
    std::cout << serving::requestStateName(*state);
    if (!tenant.empty())
        std::cout << " tenant=" << tenant;
    std::cout << "\n";
    return 0;
}

int
cmdResult(serving::Client &client, const Args &args)
{
    std::string error;
    const auto status = client.result(parseId(args), error);
    if (!status)
        return fail(error);
    std::cout << serving::requestStateName(status->state);
    if (status->state == serving::RequestState::Failed)
        std::cout << " error=\"" << status->result.error << "\"";
    if (status->state == serving::RequestState::Done ||
        status->state == serving::RequestState::Failed) {
        char digest[32];
        std::snprintf(digest, sizeof digest, "%016llx",
                      static_cast<unsigned long long>(
                          fnv1a(status->result.resultBlob)));
        std::cout << " final-state=" << status->result.finalState
                  << " invocations=" << status->result.invocations
                  << " lanes=" << status->result.batchedLanes
                  << " blob-bytes=" << status->result.resultBlob.size()
                  << " blob-fnv1a=" << digest;
    }
    std::cout << "\n";
    const std::string blob_path = args.option("blob", "");
    if (!blob_path.empty()) {
        std::ofstream out(blob_path, std::ios::binary);
        if (!out)
            return fail("cannot open '" + blob_path + "'");
        out << status->result.resultBlob;
    }
    return status->state == serving::RequestState::Done ? 0 : 1;
}

int
cmdReplayFetch(serving::Client &client, const Args &args)
{
    const std::uint64_t request_id = parseId(args);
    std::string error;
    const auto log = client.replayFetch(request_id, error);
    if (!log)
        return fail(error);
    if (log->empty())
        return fail("request " + std::to_string(request_id) +
                    " has no record log (not finished, unknown, or "
                    "record-choices off)");
    const std::string out_path =
        args.option("out", std::to_string(request_id) + ".rec");
    std::ofstream out(out_path, std::ios::binary);
    if (!out)
        return fail("cannot open '" + out_path + "'");
    out << *log;
    std::cout << "wrote " << log->size() << " bytes to " << out_path
              << "\n";
    return 0;
}

int
cmdDrain(serving::Client &client)
{
    std::string error;
    const auto completed = client.drain(error);
    if (!completed)
        return fail(error);
    std::cout << "drained; " << *completed
              << " request(s) completed\n";
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    const Args args = parseArgs(argc, argv);

    const bool known = command == "submit" || command == "status" ||
                       command == "result" ||
                       command == "replay-fetch" ||
                       command == "drain";
    if (!known) {
        usage();
        return 1;
    }

    std::string error;
    serving::Client client(args.option("socket", "statsd.sock"),
                           error);
    if (!client.connected())
        return fail(error);

    if (command == "submit")
        return cmdSubmit(client, args);
    if (command == "status")
        return cmdStatus(client, args);
    if (command == "result")
        return cmdResult(client, args);
    if (command == "replay-fetch")
        return cmdReplayFetch(client, args);
    return cmdDrain(client);
}
