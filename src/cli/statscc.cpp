/**
 * @file
 * statscc — the STATS command-line driver.
 *
 * Subcommands:
 *   list                          benchmarks, tradeoffs, state spaces
 *   run <benchmark> [options]     run one configuration
 *   tune <benchmark> [options]    autotune; optional results store
 *   frontend <file|benchmark>     run the front-end compiler
 *   pipeline <ir-file> [options]  middle-end + back-end on an IR file
 *   analyze <ir-file> [options]   speculation-safety static analysis
 *   disasm <ir-file> [options]    compile to bytecode and disassemble
 *   fuzz [options]                generative differential testing
 *
 * Execution-tier options (see docs/INTERPRETER.md):
 *   --exec-tier=ast|bytecode|auto tier for executing getValue() and
 *                                 fuzz transitions (default auto)
 *   --function=NAME               disasm: one function only
 *   --midend                      disasm: run the middle-end first
 *
 * Fuzzing options (see docs/TESTING.md):
 *   --seed=N                  campaign root seed         (default 1)
 *   --runs=N                  generated cases            (default 500)
 *   --artifacts=DIR           failure artifacts ("" = none)
 *                             (default fuzz-artifacts)
 *   --case=FILE               replay one case file instead
 *   --near-miss-every=N       every Nth case must be rejected
 *   --faults-every=N          every Nth case gets a fault storm
 *   --max-inputs=N            cap generated input counts
 *   --no-shrink               keep failing cases unminimized
 *   --shrink-evals=N          shrinker oracle budget     (default 400)
 *   --max-failures=N          stop after N failures      (default 8)
 *   --no-analysis             skip the static-analysis stage
 *   --verbose                 log every case, not only failures
 *
 * Analysis options (see docs/ANALYSIS.md):
 *   --analyze[=pass]          pass to run: verify, purity,
 *                             clone-audit, freeze, escape, range,
 *                             bytecode-verify           (default all)
 *   --analysis-format=FMT     text|json                 (default text)
 *   --midend                  analyze: run the middle-end first
 *
 * Common options:
 *   --mode=original|seq|par   parallelization mode      (default par)
 *   --threads=N               hardware threads          (default 28)
 *   --workload=rep|bad        input family              (default rep)
 *   --budget=N                tuning evaluations        (default 60)
 *   --objective=time|energy   tuning objective          (default time)
 *   --db=FILE                 results store to reuse/update
 *   --seed=N                  root seed; derives the workload, run,
 *                             and tuner streams via SeedSequence
 *                             (0 = entropy)
 *
 * Record/replay + fault injection (run/tune; see docs/REPLAY.md):
 *   --record=FILE             record the engine's nondeterministic
 *                             choice points to a replayable log
 *   --replay=FILE             re-drive the engine from a recorded
 *                             log; exits 1 on the first divergence
 *   --faults=PLAN             inject faults (spec string or file;
 *                             grammar in docs/REPLAY.md §4)
 *
 * Observability (run/tune; see docs/OBSERVABILITY.md):
 *   --trace=FILE              record speculation events, export a
 *                             chrome://tracing JSON to FILE
 *   --metrics=FILE            dump the trace-derived metrics JSON
 *   --snapshots=FILE          tune: per-configuration profiler
 *                             snapshots (JSON)
 *   --audit=FILE              tune: the autotuner's decision trail
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/lint.hpp"
#include "autotuner/results_io.hpp"
#include "backend/backend.hpp"
#include "observability/chrome_trace.hpp"
#include "observability/metrics.hpp"
#include "observability/summary.hpp"
#include "observability/trace.hpp"
#include "benchmarks/common/benchmark.hpp"
#include "benchmarks/common/extended_sources.hpp"
#include "frontend/frontend.hpp"
#include "ir/bytecode_verifier.hpp"
#include "ir/disasm.hpp"
#include "ir/exec_tier.hpp"
#include "ir/parser.hpp"
#include "ir/verifier.hpp"
#include "midend/midend.hpp"
#include "profiler/profiler.hpp"
#include "replay/fault_plan.hpp"
#include "replay/record_log.hpp"
#include "replay/session.hpp"
#include "serving/serve_main.hpp"
#include "support/log.hpp"
#include "support/seed_sequence.hpp"
#include "support/string_utils.hpp"
#include "support/table.hpp"
#include "testing/fuzzer.hpp"

namespace {

using namespace stats;
using namespace stats::benchmarks;

/** Parsed command line: positionals plus --key=value options. */
struct Args
{
    std::vector<std::string> positional;
    std::map<std::string, std::string> options;

    std::string
    option(const std::string &key, const std::string &fallback) const
    {
        auto it = options.find(key);
        return it == options.end() ? fallback : it->second;
    }

    int
    intOption(const std::string &key, int fallback) const
    {
        auto it = options.find(key);
        return it == options.end() ? fallback : std::stoi(it->second);
    }
};

Args
parseArgs(int argc, char **argv)
{
    Args args;
    for (int i = 2; i < argc; ++i) {
        const std::string word = argv[i];
        if (support::startsWith(word, "--")) {
            const auto eq = word.find('=');
            if (eq == std::string::npos)
                args.options[word.substr(2)] = "true";
            else
                args.options[word.substr(2, eq - 2)] =
                    word.substr(eq + 1);
        } else {
            args.positional.push_back(word);
        }
    }
    return args;
}

/**
 * Observability options shared by `run` and `tune`: when `--trace` or
 * `--metrics` is given, the global trace is enabled before the work
 * happens and `finish()` exports the collected events afterwards.
 */
struct ObsOptions
{
    std::string tracePath;
    std::string metricsPath;

    static ObsOptions
    fromArgs(const Args &args)
    {
        ObsOptions options;
        options.tracePath = args.option("trace", "");
        options.metricsPath = args.option("metrics", "");
        if (options.active()) {
            obs::Trace::global().enable();
            // Folds to false when the layer is compiled out.
            if (!obs::traceActive())
                support::fatal(
                    "--trace/--metrics need tracing compiled in "
                    "(built with STATS_OBS_DISABLE)");
        }
        return options;
    }

    bool active() const
    {
        return !tracePath.empty() || !metricsPath.empty();
    }

    void
    finish() const
    {
        if (!active())
            return;
        auto &trace = obs::Trace::global();
        const auto events = trace.collect();
        const auto summary =
            obs::summarizeTrace(events, trace.dropped());
        obs::fillRegistry(summary, obs::MetricsRegistry::global());
        if (!tracePath.empty()) {
            std::ofstream out(tracePath);
            if (!out)
                support::fatal("cannot open '", tracePath, "'");
            obs::writeChromeTrace(out, events);
            std::cout << "wrote " << events.size()
                      << " trace events to " << tracePath
                      << " (load in chrome://tracing)\n";
        }
        if (!metricsPath.empty()) {
            std::ofstream out(metricsPath);
            if (!out)
                support::fatal("cannot open '", metricsPath, "'");
            obs::writeSummaryJson(out, summary);
            std::cout << "wrote metrics to " << metricsPath << "\n";
        }
        obs::printSummaryTable(std::cout, summary);
    }
};

/**
 * Record/replay + fault-injection options shared by `run` and `tune`
 * (docs/REPLAY.md). Lifecycle: fromArgs() loads the log and installs
 * the fault plan, metadata defaults may then be consulted, start()
 * flips the global session on, finish() saves the recording or
 * reports the replay verdict (the process exit code).
 */
struct ReplayOptions
{
    std::string recordPath;
    std::string replayPath;
    replay::RecordLog log; ///< Loaded log; consumed by start().

    bool recording() const { return !recordPath.empty(); }
    bool replaying() const { return !replayPath.empty(); }

    static ReplayOptions
    fromArgs(const Args &args)
    {
        ReplayOptions options;
        options.recordPath = args.option("record", "");
        options.replayPath = args.option("replay", "");
        if (options.recording() && options.replaying())
            support::fatal("--record and --replay are exclusive");
        const std::string fault_spec = args.option("faults", "");
        if (!fault_spec.empty()) {
            std::string error;
            auto plan = replay::FaultPlan::fromSpec(fault_spec, error);
            if (!plan)
                support::fatal(error);
            replay::ReplaySession::global().setFaultPlan(*plan);
            std::cout << "fault plan: " << plan->describe() << "\n";
        }
        if (options.replaying()) {
            std::string error;
            auto loaded =
                replay::RecordLog::loadFile(options.replayPath, error);
            if (!loaded)
                support::fatal("--replay: ", error);
            options.log = std::move(*loaded);
        }
        return options;
    }

    /**
     * A recorded command-line default: on replay, options not given
     * explicitly fall back to what the recording stored.
     */
    std::string
    recorded(const Args &args, const std::string &key,
             const std::string &fallback) const
    {
        return args.option(key, replaying() ? log.meta(key, fallback)
                                            : fallback);
    }

    /** Begin the session; returns the effective root seed. */
    std::uint64_t
    start(std::uint64_t requested_seed)
    {
        auto &session = replay::ReplaySession::global();
        if (replaying()) {
            const std::uint64_t seed = log.rootSeed;
            session.startReplay(std::move(log));
            return seed;
        }
        if (recording()) {
            std::uint64_t seed = requested_seed;
            if (seed == 0) {
                // Entropy seeding cannot be reproduced; pin the run.
                seed = 1;
                std::cout << "note: --record without --seed; pinning "
                             "root seed to 1 for determinism\n";
            }
            session.startRecording(seed);
            return seed;
        }
        return requested_seed;
    }

    /** Save/verify; returns the process exit code (1 = divergence). */
    int
    finish() const
    {
        auto &session = replay::ReplaySession::global();
        if (recording()) {
            const replay::RecordLog recorded =
                session.finishRecording();
            recorded.saveFile(recordPath);
            std::cout << "recorded " << recorded.records.size()
                      << " choice points (" << recorded.runCount()
                      << " engine runs, seed " << recorded.rootSeed
                      << ") to " << recordPath << "\n";
            return 0;
        }
        if (replaying()) {
            const replay::ReplayReport report = session.finishReplay();
            if (report.diverged) {
                std::cout << "replay DIVERGED: "
                          << report.first.describe() << "\n";
                return 1;
            }
            std::cout << "replay OK: matched " << report.recordsMatched
                      << " choice points across " << report.runsReplayed
                      << " engine runs\n";
        }
        return 0;
    }
};

Mode
parseMode(const std::string &word)
{
    if (word == "original")
        return Mode::Original;
    if (word == "seq")
        return Mode::SeqStats;
    if (word == "par")
        return Mode::ParStats;
    support::fatal("unknown mode '", word,
                   "' (expected original|seq|par)");
}

WorkloadKind
parseWorkload(const std::string &word)
{
    if (word == "rep")
        return WorkloadKind::Representative;
    if (word == "bad")
        return WorkloadKind::NonRepresentative;
    support::fatal("unknown workload '", word, "' (expected rep|bad)");
}

int
cmdList(const Args &)
{
    support::TextTable table({"benchmark", "tradeoffs", "state deps",
                              "state-space points (28 threads)"});
    for (const auto &name : allBenchmarkNames()) {
        auto bench = createBenchmark(name);
        const auto frontend_result = frontend::compileExtendedSource(
            extendedSourceFor(name), name);
        std::ostringstream points;
        points << bench->stateSpace(28).totalPoints();
        table.addRow({name, std::to_string(bench->tradeoffCount()),
                      std::to_string(frontend_result.stateDeps.size()),
                      points.str()});
    }
    table.print(std::cout);
    return 0;
}

int
cmdRun(const Args &args)
{
    ReplayOptions replay_options = ReplayOptions::fromArgs(args);
    // On replay the recording itself supplies the benchmark and any
    // option not overridden on the command line.
    const std::string bench_name =
        !args.positional.empty()
            ? args.positional[0]
            : replay_options.log.meta("benchmark", "");
    if (bench_name.empty())
        support::fatal("usage: statscc run <benchmark> [options]");
    auto bench = createBenchmark(bench_name);
    const ObsOptions obs_options = ObsOptions::fromArgs(args);

    RunRequest request;
    request.mode =
        parseMode(replay_options.recorded(args, "mode", "par"));
    request.threads =
        std::stoi(replay_options.recorded(args, "threads", "28"));
    request.workload = parseWorkload(
        replay_options.recorded(args, "workload", "rep"));

    const auto requested_seed = static_cast<std::uint64_t>(
        std::stoll(replay_options.recorded(args, "seed", "0")));
    const std::uint64_t root_seed =
        replay_options.start(requested_seed);
    if (root_seed != 0) {
        // One root seed drives every stream (docs/REPLAY.md §1).
        const support::SeedSequence seeds(root_seed);
        request.workloadSeed = seeds.derive("workload");
        request.runSeed = seeds.derive("run");
    }
    if (replay_options.recording()) {
        auto &session = replay::ReplaySession::global();
        session.setMetadata("benchmark", bench->name());
        session.setMetadata("mode", args.option("mode", "par"));
        session.setMetadata("threads",
                            std::to_string(request.threads));
        session.setMetadata("workload",
                            args.option("workload", "rep"));
        session.setMetadata("seed", std::to_string(root_seed));
    }

    const RunResult result = bench->run(request);
    const auto oracle =
        bench->oracleSignature(request.workload, request.workloadSeed);

    std::cout << bench->name() << " [" << modeName(request.mode) << ", "
              << request.threads << " threads]\n";
    std::cout << "  time:    " << result.virtualSeconds << " s\n";
    std::cout << "  energy:  " << result.energyJoules << " J\n";
    std::cout << "  quality: "
              << bench->quality(result.signature, oracle)
              << " (distance to oracle; lower is better)\n";
    const auto &stats = result.engineStats;
    std::cout << "  engine:  groups=" << stats.groups
              << " commits=" << stats.validations
              << " mismatches=" << stats.mismatches
              << " re-execs=" << stats.reexecutions
              << " aborts=" << stats.aborts
              << " extra-work=" << 100.0 * stats.extraWorkFraction()
              << "%\n";
    obs_options.finish();
    return replay_options.finish();
}

int
cmdTune(const Args &args)
{
    if (args.positional.empty())
        support::fatal("usage: statscc tune <benchmark> [options]");
    auto bench = createBenchmark(args.positional[0]);
    ReplayOptions replay_options = ReplayOptions::fromArgs(args);
    const ObsOptions obs_options = ObsOptions::fromArgs(args);

    const Mode mode = parseMode(args.option("mode", "par"));
    const int threads = args.intOption("threads", 28);
    const int budget = args.intOption("budget", 60);
    const auto objective = args.option("objective", "time") == "energy"
                               ? profiler::Objective::Energy
                               : profiler::Objective::Time;
    const std::string db_path = args.option("db", "");

    const std::uint64_t root_seed = replay_options.start(
        static_cast<std::uint64_t>(args.intOption("seed", 1)));
    const support::SeedSequence seeds(root_seed);
    if (replay_options.recording()) {
        auto &session = replay::ReplaySession::global();
        session.setMetadata("benchmark", bench->name());
        session.setMetadata("command", "tune");
        session.setMetadata("seed", std::to_string(root_seed));
    }

    sim::MachineConfig machine;
    profiler::Profiler profiler(*bench, mode, threads, machine,
                                parseWorkload(args.option("workload",
                                                          "rep")));
    autotuner::Autotuner tuner(bench->stateSpace(threads),
                               seeds.derive("tuner"));

    // Reuse a previous exploration of the same objective, if any.
    if (!db_path.empty()) {
        std::ifstream in(db_path);
        if (in) {
            tuner.preload(
                autotuner::readResults(in, tuner.space()));
            std::cout << "loaded " << tuner.results().size()
                      << " profiled configurations from " << db_path
                      << "\n";
        }
    }

    const auto result =
        tuner.tune(profiler.objectiveFunction(objective), budget);
    const auto best = profiler.profile(result.best);

    std::cout << "evaluated " << result.evaluations
              << " new configurations (space: "
              << tuner.space().totalPoints() << " points)\n";
    std::cout << "best: " << tuner.space().describe(result.best) << "\n";
    std::cout << "  time " << best.seconds << " s, energy "
              << best.energyJoules << " J, quality " << best.quality
              << "\n";

    if (!db_path.empty()) {
        std::ofstream out(db_path);
        autotuner::writeResults(out, tuner.space(), tuner.results());
        std::cout << "stored " << tuner.results().size()
                  << " configurations to " << db_path << "\n";
    }

    const std::string snapshots_path = args.option("snapshots", "");
    if (!snapshots_path.empty()) {
        std::ofstream out(snapshots_path);
        if (!out)
            support::fatal("cannot open '", snapshots_path, "'");
        profiler.writeSnapshotsJson(out, tuner.space());
        std::cout << "wrote " << profiler.snapshots().size()
                  << " configuration snapshots to " << snapshots_path
                  << "\n";
    }
    const std::string audit_path = args.option("audit", "");
    if (!audit_path.empty()) {
        std::ofstream out(audit_path);
        if (!out)
            support::fatal("cannot open '", audit_path, "'");
        result.writeAuditJson(out, tuner.space());
        std::cout << "wrote " << result.audit.size()
                  << " audit entries to " << audit_path << "\n";
    }
    obs_options.finish();
    return replay_options.finish();
}

int
cmdFrontend(const Args &args)
{
    if (args.positional.empty())
        support::fatal("usage: statscc frontend <file|benchmark>");
    const std::string &target = args.positional[0];

    std::string source;
    std::string unit = target;
    std::ifstream in(target);
    if (in) {
        std::ostringstream buffer;
        buffer << in.rdbuf();
        source = buffer.str();
        const auto slash = unit.find_last_of('/');
        if (slash != std::string::npos)
            unit = unit.substr(slash + 1);
    } else {
        source = extendedSourceFor(target); // Embedded encodings.
    }

    const auto result = frontend::compileExtendedSource(source, unit);
    std::cout << "// " << result.tradeoffs.size() << " tradeoff(s), "
              << result.stateDeps.size() << " state dependence(s), "
              << result.originalLoc << " LOC in, "
              << result.generatedLoc << " LOC generated\n\n";
    std::cout << "// ---- generated header ----\n"
              << result.generatedHeader << "\n";
    std::cout << "// ---- IR metadata ----\n" << result.irMetadata;
    return 0;
}

/** Read and parse the IR file named by the first positional. */
ir::Module
loadModule(const Args &args, const char *usage_line)
{
    if (args.positional.empty())
        support::fatal("usage: ", usage_line);
    std::ifstream in(args.positional[0]);
    if (!in)
        support::fatal("cannot open '", args.positional[0], "'");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return ir::parseModule(buffer.str());
}

/** Selected analysis pass from `--analyze[=pass]` ("" = all). */
std::string
analysisPass(const Args &args)
{
    const std::string pass = args.option("analyze", "");
    if (pass.empty() || pass == "true")
        return "";
    if (!analysis::isPassName(pass)) {
        std::string known;
        for (const auto &name : analysis::passNames())
            known += (known.empty() ? "" : "|") + name;
        support::fatal("unknown analysis pass '", pass, "' (expected ",
                       known, ")");
    }
    return pass;
}

/** Run the analyzer and render it; returns the error count != 0. */
bool
analyzeModule(const ir::Module &module, const std::string &file,
              const Args &args, std::ostream &out)
{
    analysis::LintOptions options;
    options.pass = analysisPass(args);
    options.bytecodeVerifier = ir::bc::verifyCompiledModule;
    const auto diags = analysis::runAnalyses(module, options);
    const std::string format = args.option("analysis-format", "text");
    if (format == "json")
        analysis::writeDiagnosticsJson(out, module.name, file, diags);
    else if (format == "text")
        analysis::writeDiagnosticsText(out, file, diags);
    else
        support::fatal("unknown --analysis-format '", format,
                       "' (expected text|json)");
    return analysis::hasErrors(diags);
}

int
cmdAnalyze(const Args &args)
{
    ir::Module module =
        loadModule(args, "statscc analyze <ir-file> [options]");
    if (args.option("midend", "") == "true")
        midend::runMiddleEnd(module);
    return analyzeModule(module, args.positional[0], args, std::cout)
               ? 1
               : 0;
}

/** Parse `--exec-tier=` (docs/INTERPRETER.md §6). */
ir::ExecTier
execTierOption(const Args &args)
{
    const std::string word = args.option("exec-tier", "auto");
    const auto tier = ir::parseExecTier(word);
    if (!tier)
        support::fatal("unknown --exec-tier '", word,
                       "' (expected ast|bytecode|auto)");
    return *tier;
}

int
cmdDisasm(const Args &args)
{
    ir::Module module =
        loadModule(args, "statscc disasm <ir-file> [options]");
    const auto problems = ir::verifyModule(module);
    if (!problems.empty()) {
        for (const auto &problem : problems)
            std::cerr << "verify: " << problem << "\n";
        return 1;
    }
    if (args.option("midend", "") == "true")
        midend::runMiddleEnd(module);
    const ir::bc::BcModule bytecode = ir::bc::compileModule(module);
    const std::string fn_name = args.option("function", "");
    if (!fn_name.empty()) {
        const ir::bc::BcFunction *fn = bytecode.find(fn_name);
        if (!fn)
            support::fatal("disasm: unknown function @", fn_name);
        std::cout << ir::bc::disassemble(*fn);
    } else {
        std::cout << ir::bc::disassemble(bytecode);
    }
    return 0;
}

int
cmdPipeline(const Args &args)
{
    ir::Module module =
        loadModule(args, "statscc pipeline <ir-file> [options]");
    const auto problems = ir::verifyModule(module);
    if (!problems.empty()) {
        for (const auto &problem : problems)
            std::cerr << "verify: " << problem << "\n";
        return 1;
    }

    const std::size_t before = module.instructionCount();
    const auto report = midend::runMiddleEnd(module);
    std::cerr << "; middle-end: " << report.clonedFunctions.size()
              << " function clone(s), " << report.clonedTradeoffs.size()
              << " tradeoff clone(s), " << before << " -> "
              << module.instructionCount() << " instructions\n";

    // Optional speculation-safety gate on the middle-end output.
    if (args.options.count("analyze")) {
        if (analyzeModule(module, args.positional[0], args, std::cerr))
            return 1;
    }

    const std::string emit = args.option("emit", "binary");
    if (emit == "midend") {
        std::cout << ir::printModule(module);
        return 0;
    }
    if (emit != "binary")
        support::fatal("unknown --emit '", emit,
                       "' (expected midend|binary)");

    backend::BackendConfig config;
    config.execTier = execTierOption(args);
    for (const auto &dep : module.stateDeps)
        config.auxiliaryDeps.insert(dep.name);
    const std::string assignments = args.option("config", "");
    if (!assignments.empty()) {
        for (const auto &pair : support::split(assignments, ',')) {
            // Last colon: post-midend tradeoff names are themselves
            // namespace-qualified (aux::T_42).
            const auto colon = pair.rfind(':');
            if (colon == std::string::npos)
                support::fatal("--config wants name:index pairs");
            config.tradeoffIndices[pair.substr(0, colon)] =
                std::stoll(pair.substr(colon + 1));
        }
    }
    const backend::Executable executable =
        backend::instantiateExecutable(module, config);
    std::cerr << "; back-end: tier "
              << ir::execTierName(config.execTier) << ", "
              << executable.exec->bytecode().compiledCount() << "/"
              << executable.module->functions.size()
              << " function(s) compiled to bytecode\n";
    std::cout << ir::printModule(*executable.module);
    return 0;
}

int
cmdFuzz(const Args &args)
{
    testing::OracleOptions oracle;
    oracle.runAnalysis = !args.options.count("no-analysis");
    oracle.execTier = execTierOption(args);

    // Corpus-replay mode: re-run the oracle on one saved case file.
    const std::string case_path =
        args.option("case", args.positional.empty() ? ""
                                                    : args.positional[0]);
    if (!case_path.empty()) {
        const auto result =
            testing::replayCaseFile(case_path, oracle, std::cout);
        return result.ok ? 0 : 1;
    }

    testing::CampaignOptions options;
    options.seed =
        static_cast<std::uint64_t>(std::stoull(args.option("seed", "1")));
    options.runs = args.intOption("runs", 500);
    options.artifactsDir = args.option("artifacts", "fuzz-artifacts");
    options.generator.nearMissEvery =
        args.intOption("near-miss-every", options.generator.nearMissEvery);
    options.generator.faultsEvery =
        args.intOption("faults-every", options.generator.faultsEvery);
    options.generator.maxInputs =
        args.intOption("max-inputs", options.generator.maxInputs);
    options.shrink = !args.options.count("no-shrink");
    options.shrinkEvaluations = args.intOption("shrink-evals", 400);
    options.maxFailures = args.intOption("max-failures", 8);
    options.verbose = args.options.count("verbose") != 0;
    options.oracle = oracle;
    if (options.runs < 1)
        support::fatal("--runs must be at least 1");

    const auto summary = testing::runCampaign(options, std::cout);
    return summary.ok() ? 0 : 1;
}

int
cmdServe(const Args &args)
{
    serving::ServeArgs serve;
    serve.socketPath = args.option("socket", serve.socketPath);
    serve.runAnalysis = !args.options.count("no-analysis");
    try {
        serve.quantum = std::stod(args.option("quantum", "1"));
    } catch (const std::exception &) {
        support::fatal("serve: --quantum wants a number, got '",
                       args.option("quantum", "1"), "'");
    }
    if (!(serve.quantum > 0.0))
        support::fatal("serve: --quantum must be positive");
    serve.defaultQuotaSpec = args.option("default-quota", "");
    try {
        serve.executionWorkers = std::stoul(
            args.option("execution-workers", "0"));
    } catch (const std::exception &) {
        support::fatal("serve: --execution-workers wants a number, "
                       "got '",
                       args.option("execution-workers", "0"), "'");
    }
    serve.metricsPath = args.option("metrics", "");
    serve.trace = args.options.count("trace") != 0;
    // One --quota option; comma-separate multiple tenants.
    const std::string quotas = args.option("quota", "");
    std::size_t begin = 0;
    while (begin < quotas.size()) {
        const std::size_t comma = quotas.find(',', begin);
        const std::size_t end =
            comma == std::string::npos ? quotas.size() : comma;
        if (end > begin)
            serve.quotaSpecs.push_back(
                quotas.substr(begin, end - begin));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    return serving::serveMain(serve);
}

void
usage()
{
    std::cerr
        << "usage: statscc <command> [arguments]\n"
        << "commands:\n"
        << "  list                         benchmarks and state spaces\n"
        << "  run <benchmark> [options]    run one configuration\n"
        << "  tune <benchmark> [options]   autotune a benchmark\n"
        << "  frontend <file|benchmark>    run the front-end compiler\n"
        << "  pipeline <ir-file>           middle-end + back-end\n"
        << "  analyze <ir-file>            speculation-safety checks\n"
        << "  disasm <ir-file>             bytecode disassembly\n"
        << "  fuzz [case-file]             differential testing campaign\n"
        << "  serve [options]              statsd serving daemon\n"
           "                               (docs/SERVING.md)\n";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    const Args args = parseArgs(argc, argv);
    if (command == "list")
        return cmdList(args);
    if (command == "run")
        return cmdRun(args);
    if (command == "tune")
        return cmdTune(args);
    if (command == "frontend")
        return cmdFrontend(args);
    if (command == "pipeline")
        return cmdPipeline(args);
    if (command == "analyze")
        return cmdAnalyze(args);
    if (command == "disasm")
        return cmdDisasm(args);
    if (command == "fuzz")
        return cmdFuzz(args);
    if (command == "serve")
        return cmdServe(args);
    usage();
    return 1;
}
