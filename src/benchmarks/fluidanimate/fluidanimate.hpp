/**
 * @file
 * Reimplementation of PARSEC's fluidanimate (paper sections 4.2, 4.8).
 *
 * A smoothed-particle-hydrodynamics style fluid simulation advances a
 * particle system through time frames; the fluid condition (particle
 * positions and velocities) carried between frames is the state
 * dependence. The per-step force accumulation carries a tiny random
 * perturbation that stands in for the floating-point reordering races
 * of the original multi-threaded code (the paper's Figure 2 lists
 * fluidanimate's variability as race-condition induced).
 *
 * This benchmark deliberately has the *full-history* property: the
 * fluid state at step i requires all previous steps, so auxiliary
 * code that starts from the initial state and a window of recent
 * inputs can never reproduce it. STATS must learn (via its runtime
 * checks and autotuner) to satisfy this dependence conventionally —
 * the paper includes fluidanimate exactly "to test the limits of
 * STATS".
 *
 * Tradeoffs: the sqrt implementation, the data types of three
 * simulation variables, and the x/y/z dimensions of the per-thread
 * simulation prism.
 */

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "benchmarks/common/benchmark.hpp"
#include "benchmarks/common/vec.hpp"
#include "support/rng.hpp"

namespace stats::benchmarks::fluidanimate {

constexpr int kParticles = 160;
constexpr int kSteps = 32;

/** One simulation time frame — the input. */
struct TimeStep
{
    int id = 0;
    double dt = 0.004;
};

/** The fluid condition — the dependence-carried state. */
struct Fluid
{
    std::vector<Vec3> positions;
    std::vector<Vec3> velocities;

    /** Average Euclidean distance between particle positions. */
    double distance(const Fluid &other) const;
};

/** Positions after one frame — the output. */
struct FrameOutput
{
    int step = 0;
    bool last = false;
    std::vector<Vec3> positions;
};

/** Simulation parameters bound from tradeoff values. */
struct SphParams
{
    int sqrtVariant = 0; ///< 0 exact, 1 two-step Newton, 2 table.
    bool floatDensity = false;
    bool floatPressure = false;
    bool floatViscosity = false;
    int prismX = 2;
    int prismY = 2;
    int prismZ = 1;
};

struct Workload
{
    Fluid initial;
    std::vector<TimeStep> steps;
};

/** A randomly perturbed block of fluid released inside a unit box. */
Workload makeWorkload(WorkloadKind kind, std::uint64_t seed);

/** Advance the fluid one frame; returns the abstract op count. */
double advanceFrame(Fluid &fluid, const TimeStep &step,
                    const SphParams &params, support::Xoshiro256 &rng);

/** The fluidanimate benchmark. */
class FluidanimateBenchmark : public Benchmark
{
  public:
    FluidanimateBenchmark();

    std::string name() const override { return "fluidanimate"; }
    tradeoff::StateSpace stateSpace(int threads) const override;
    int tradeoffCount() const override { return 9; }
    RunResult run(const RunRequest &request) override;
    std::vector<double>
    oracleSignature(WorkloadKind kind,
                    std::uint64_t workload_seed) override;
    double quality(const std::vector<double> &signature,
                   const std::vector<double> &oracle) const override;

    /** Single-original acceptance tolerance on the fluid distance. */
    static constexpr double kMatchTolerance = 2.0e-4;

  private:
    SphParams paramsFrom(const tradeoff::Assignment &assignment,
                         bool auxiliary) const;

    tradeoff::Registry _registry;
    std::map<std::pair<int, std::uint64_t>, std::vector<double>>
        _oracleCache;
};

} // namespace stats::benchmarks::fluidanimate
