#include "benchmarks/fluidanimate/fluidanimate.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "benchmarks/common/sdi_runner.hpp"
#include "platform/cost_model.hpp"
#include "quality/metrics.hpp"

namespace stats::benchmarks::fluidanimate {

namespace {

constexpr double kOpSeconds = 4.0e-7;
constexpr double kSmoothing = 0.14; ///< SPH kernel radius.
constexpr double kRestDensity = 22.0;
constexpr double kStiffness = 30.0;
constexpr double kViscosity = 3.5;
constexpr double kGravity = -9.8;
constexpr double kRaceNoise = 1.0e-7;

/**
 * fluidanimate's original TLP partitions space into per-thread
 * prisms and scales well within a socket, but is strongly
 * memory-bound (NUMA-sensitive once both sockets are used).
 */
platform::InnerParallelModel
innerModel(const SphParams &params)
{
    platform::InnerParallelModel model{
        /* serialFraction */ 0.03,
        /* syncCostPerThread */ 2.5e-5,
        /* memBound */ 0.45,
    };
    // Flatter prisms exchange more halo data: mild sync penalty.
    const double cells = static_cast<double>(params.prismX) *
                         params.prismY * params.prismZ;
    const double surface = 2.0 * (params.prismX * params.prismY +
                                  params.prismY * params.prismZ +
                                  params.prismX * params.prismZ);
    model.syncCostPerThread *= 0.5 + 0.1 * surface / cells;
    return model;
}

/** The sqrt tradeoff: exact, two-Newton-step, or table lookup. */
double
sqrtVariant(double x, int variant)
{
    switch (variant) {
      case 1: {
        // Two Newton iterations from a cheap initial guess.
        if (x <= 0.0)
            return 0.0;
        double guess = x > 1.0 ? x * 0.5 : 1.0;
        guess = 0.5 * (guess + x / guess);
        guess = 0.5 * (guess + x / guess);
        return guess;
      }
      case 2: {
        // Piecewise-linear table on [0, 4).
        if (x <= 0.0)
            return 0.0;
        static const double table[] = {0.0,  0.5,  0.707, 0.866,
                                       1.0,  1.118, 1.224, 1.323,
                                       1.414, 1.5,  1.581, 1.658,
                                       1.732, 1.803, 1.871, 1.936, 2.0};
        const double scaled = std::min(x, 3.999) * 4.0;
        const int idx = static_cast<int>(scaled);
        const double frac = scaled - idx;
        return table[idx] * (1.0 - frac) + table[idx + 1] * frac;
      }
      default:
        return std::sqrt(x);
    }
}

} // namespace

double
Fluid::distance(const Fluid &other) const
{
    double total = 0.0;
    const std::size_t n =
        std::min(positions.size(), other.positions.size());
    for (std::size_t i = 0; i < n; ++i)
        total += (positions[i] - other.positions[i]).norm();
    return n ? total / static_cast<double>(n) : 0.0;
}

Workload
makeWorkload(WorkloadKind kind, std::uint64_t seed)
{
    support::Xoshiro256 rng(seed * 0xf1a1dULL + 31);
    Workload workload;
    workload.initial.positions.reserve(kParticles);
    workload.initial.velocities.reserve(kParticles);

    // A block of fluid released in a corner of the unit box; the
    // non-representative variant packs it into a thin sheet.
    for (int i = 0; i < kParticles; ++i) {
        Vec3 p{rng.uniform(0.1, 0.5), rng.uniform(0.4, 0.9),
               rng.uniform(0.1, 0.5)};
        if (kind == WorkloadKind::NonRepresentative)
            p.z = 0.3 + 0.01 * rng.nextDouble();
        workload.initial.positions.push_back(p);
        workload.initial.velocities.push_back(
            {rng.uniform(-0.05, 0.05), 0.0, rng.uniform(-0.05, 0.05)});
    }
    for (int t = 0; t < kSteps; ++t)
        workload.steps.push_back(TimeStep{t, 0.004});
    return workload;
}

double
advanceFrame(Fluid &fluid, const TimeStep &step, const SphParams &params,
             support::Xoshiro256 &rng)
{
    const std::size_t n = fluid.positions.size();
    const double h = kSmoothing;
    const double h2 = h * h;
    double ops = 0.0;

    // Densities (gather over neighbours; O(n^2) at this scale, the
    // original uses a cell grid — the cost model accounts for that).
    std::vector<double> density(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j) {
            const double r2 = (fluid.positions[i] - fluid.positions[j])
                                  .norm2();
            if (r2 < h2) {
                const double w = (h2 - r2) * (h2 - r2) * (h2 - r2);
                density[i] += w;
                if (j != i)
                    density[j] += w;
                ops += 14.0;
            }
        }
    }
    const double kernel_norm = 315.0 / (64.0 * M_PI * std::pow(h, 9.0));
    for (std::size_t i = 0; i < n; ++i) {
        density[i] *= kernel_norm;
        if (params.floatDensity)
            density[i] = static_cast<float>(density[i]);
    }

    // Pressure + viscosity forces and integration.
    std::vector<Vec3> force(n, Vec3{0.0, 0.0, 0.0});
    for (std::size_t i = 0; i < n; ++i) {
        double pi = kStiffness * (density[i] - kRestDensity);
        if (params.floatPressure)
            pi = static_cast<float>(pi);
        for (std::size_t j = i + 1; j < n; ++j) {
            const Vec3 delta = fluid.positions[i] - fluid.positions[j];
            const double r2 = delta.norm2();
            if (r2 >= h2 || r2 <= 0.0)
                continue;
            const double r = sqrtVariant(r2, params.sqrtVariant);
            double pj = kStiffness * (density[j] - kRestDensity);
            const double shared =
                (pi + pj) * 0.5 * (h - r) * (h - r) / std::max(r, 1e-9);
            Vec3 f = delta * shared;
            double visc = kViscosity * (h - r);
            if (params.floatViscosity)
                visc = static_cast<float>(visc);
            f += (fluid.velocities[j] - fluid.velocities[i]) * visc;
            force[i] += f;
            force[j] += f * -1.0;
            ops += 30.0;
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        const double rho = std::max(density[i], 1.0);
        Vec3 accel = force[i] * (1.0 / rho);
        accel.y += kGravity;
        // Race-reordering noise: independent runs differ slightly.
        accel += Vec3{rng.gaussian(0.0, kRaceNoise),
                      rng.gaussian(0.0, kRaceNoise),
                      rng.gaussian(0.0, kRaceNoise)};
        fluid.velocities[i] += accel * step.dt;
        fluid.positions[i] += fluid.velocities[i] * step.dt;

        // Box walls with damping.
        auto clamp_axis = [](double &pos, double &vel) {
            if (pos < 0.0) {
                pos = 0.0;
                vel = -vel * 0.4;
            } else if (pos > 1.0) {
                pos = 1.0;
                vel = -vel * 0.4;
            }
        };
        clamp_axis(fluid.positions[i].x, fluid.velocities[i].x);
        clamp_axis(fluid.positions[i].y, fluid.velocities[i].y);
        clamp_axis(fluid.positions[i].z, fluid.velocities[i].z);
        ops += 20.0;
    }

    // Cheaper sqrt variants buy a little throughput.
    if (params.sqrtVariant == 1)
        ops *= 0.93;
    else if (params.sqrtVariant == 2)
        ops *= 0.85;
    return ops;
}

FluidanimateBenchmark::FluidanimateBenchmark()
{
    using tradeoff::IntRangeOptions;
    using tradeoff::NameListOptions;
    using tradeoff::TradeoffValue;

    const std::vector<std::string> types{"double", "float"};
    _registry.add("sqrtImpl",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::FunctionName,
                      std::vector<std::string>{"sqrt_exact",
                                               "sqrt_newton2",
                                               "sqrt_table"},
                      0));
    _registry.add("typeDensity",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName, types, 0));
    _registry.add("typePressure",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName, types, 0));
    _registry.add("typeViscosity",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName, types, 0));
    _registry.add("prismX", std::make_unique<IntRangeOptions>(1, 3, 1, 1));
    _registry.add("prismY", std::make_unique<IntRangeOptions>(1, 3, 1, 1));
    _registry.add("prismZ", std::make_unique<IntRangeOptions>(1, 3, 1, 0));
    for (const auto &name :
         {"sqrtImpl", "typeDensity", "typePressure", "typeViscosity",
          "prismX", "prismY", "prismZ"}) {
        _registry.cloneForAuxiliary(name);
    }
}

tradeoff::StateSpace
FluidanimateBenchmark::stateSpace(int threads) const
{
    tradeoff::StateSpace space;
    addRuntimeDimensions(space, threads);
    for (const auto &name : _registry.auxNames()) {
        const auto &t = _registry.get(name);
        space.add(name, t.valueCount(), t.options().getDefaultIndex());
    }
    return space;
}

SphParams
FluidanimateBenchmark::paramsFrom(const tradeoff::Assignment &assignment,
                                  bool auxiliary) const
{
    const std::string prefix = auxiliary ? tradeoff::kAuxPrefix : "";
    SphParams params;
    const std::string sqrt_name =
        _registry.nameValue(prefix + "sqrtImpl", assignment);
    params.sqrtVariant = sqrt_name == "sqrt_newton2" ? 1
                         : sqrt_name == "sqrt_table" ? 2
                                                     : 0;
    params.floatDensity =
        _registry.nameValue(prefix + "typeDensity", assignment) ==
        "float";
    params.floatPressure =
        _registry.nameValue(prefix + "typePressure", assignment) ==
        "float";
    params.floatViscosity =
        _registry.nameValue(prefix + "typeViscosity", assignment) ==
        "float";
    params.prismX = static_cast<int>(
        _registry.intValue(prefix + "prismX", assignment));
    params.prismY = static_cast<int>(
        _registry.intValue(prefix + "prismY", assignment));
    params.prismZ = static_cast<int>(
        _registry.intValue(prefix + "prismZ", assignment));
    return params;
}

RunResult
FluidanimateBenchmark::run(const RunRequest &request)
{
    const Workload workload =
        makeWorkload(request.workload, request.workloadSeed);
    const tradeoff::StateSpace space = stateSpace(request.threads);
    const tradeoff::Configuration config =
        request.config.empty() ? space.defaultConfiguration()
                               : request.config;
    const tradeoff::Assignment assignment =
        assignmentFor(space, config, _registry);

    const SphParams original_params =
        paramsFrom(_registry.defaults(), false);
    const SphParams aux_params = paramsFrom(assignment, true);

    std::optional<support::ScopedDeterministicSeeds> pinned;
    if (request.runSeed != 0)
        pinned.emplace(request.runSeed);

    SdiProgram<TimeStep, Fluid, FrameOutput> program;
    program.inputs = workload.steps;
    program.initialState = workload.initial;

    const sim::MachineConfig machine = request.machine;
    const auto make_compute = [machine](SphParams params) {
        return [machine, params](const TimeStep &step, Fluid &fluid,
                        const sdi::ComputeContext &ctx)
                   -> SdiProgram<TimeStep, Fluid, FrameOutput>::
                       Engine::Invocation {
            support::Xoshiro256 rng(support::entropySeed());
            const double ops = advanceFrame(fluid, step, params, rng);
            auto output = std::make_unique<FrameOutput>();
            output->step = step.id;
            output->last = step.id == kSteps - 1;
            output->positions = fluid.positions;
            const double eff = platform::effectiveParallelism(
                machine, ctx.innerThreads, innerModel(params).memBound);
            return {std::move(output),
                    innerModel(params).work(ops * kOpSeconds,
                                            ctx.innerThreads, eff)};
        };
    };
    program.compute = make_compute(original_params);
    program.auxiliary = make_compute(aux_params);

    // Bracket rule on the fluid distance (like bodytrack's): because
    // the fluid state needs the *whole* history, the speculative
    // state is always far outside the run-to-run spread and the
    // comparison fails (paper section 4.8).
    program.matcher = [](const Fluid &spec,
                         const std::vector<Fluid> &originals) -> int {
        for (std::size_t a = 0; a < originals.size(); ++a) {
            const double d = spec.distance(originals[a]);
            if (originals.size() == 1) {
                if (d <= kMatchTolerance)
                    return 0;
                continue;
            }
            for (std::size_t b = 0; b < originals.size(); ++b) {
                if (b != a && d <= originals[b].distance(originals[a]))
                    return static_cast<int>(a);
            }
        }
        return -1;
    };

    program.appendSignature = [](const FrameOutput &out,
                                 std::vector<double> &signature) {
        if (!out.last)
            return;
        for (const auto &p : out.positions) {
            signature.push_back(p.x);
            signature.push_back(p.y);
            signature.push_back(p.z);
        }
    };

    const sdi::SpecConfig spec =
        specConfigFor(space, config, request.mode, request.threads);
    sdi::SpecConfig policy_spec = spec;
    applyPolicy(request.policy, program, policy_spec);
    return runSdiProgram(program, policy_spec, request.machine,
                         request.threads);
}

std::vector<double>
FluidanimateBenchmark::oracleSignature(WorkloadKind kind,
                                       std::uint64_t workload_seed)
{
    const auto key = std::make_pair(static_cast<int>(kind), workload_seed);
    auto it = _oracleCache.find(key);
    if (it != _oracleCache.end())
        return it->second;

    const Workload workload = makeWorkload(kind, workload_seed);
    const SphParams params; // Exact sqrt, double everywhere.
    std::vector<std::vector<double>> runs;
    for (int rep = 0; rep < 3; ++rep) {
        support::Xoshiro256 rng(0xf1 + static_cast<unsigned>(rep));
        Fluid fluid = workload.initial;
        for (const auto &step : workload.steps)
            advanceFrame(fluid, step, params, rng);
        std::vector<double> signature;
        for (const auto &p : fluid.positions) {
            signature.push_back(p.x);
            signature.push_back(p.y);
            signature.push_back(p.z);
        }
        runs.push_back(std::move(signature));
    }
    auto oracle = averageSignatures(runs);
    _oracleCache.emplace(key, oracle);
    return oracle;
}

double
FluidanimateBenchmark::quality(const std::vector<double> &signature,
                               const std::vector<double> &oracle) const
{
    // Paper: average Euclidean distance between particle positions.
    return quality::averageEuclideanDistance(signature, oracle, 3);
}

} // namespace stats::benchmarks::fluidanimate
