/**
 * @file
 * Reimplementation of PARSEC's swaptions (paper section 4.2).
 *
 * Prices a portfolio of swaptions with Monte-Carlo simulation of a
 * mean-reverting short-rate model. Each swaption's price accumulates
 * over a sequence of trial batches; the accumulator update is the
 * state dependence ("the state dependence is on updating the price of
 * a swaption during the simulation"). The simulation is randomized,
 * so any partial accumulation the auxiliary code produces is a value
 * the original nondeterministic producer could have produced — by
 * construction no state-comparison function is needed (paper
 * section 4.2).
 *
 * Tradeoffs: the data types of two values used during the Monte
 * Carlo simulation (the rate path and the discount factor).
 *
 * Following the paper's input sizing, the portfolio has 34 swaptions
 * (reduced from the native 128 so that bottlenecks manifest below
 * 128 cores).
 */

#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "benchmarks/common/benchmark.hpp"
#include "support/rng.hpp"

namespace stats::benchmarks::swaptions {

constexpr int kSwaptions = 34;
constexpr int kBatchesPerSwaption = 32;
constexpr int kTrialsPerBatch = 48;
constexpr int kPathSteps = 12;

/** Contract terms of one swaption. */
struct SwaptionTerms
{
    double strike = 0.04;
    double maturityYears = 5.0;
    double rate0 = 0.04;
    double meanReversion = 0.2;
    double longTermRate = 0.045;
    double volatility = 0.01;
};

/** One Monte-Carlo trial batch — the input of the state dependence. */
struct Batch
{
    int swaption = 0;
    int indexInSwaption = 0;
    int trials = kTrialsPerBatch;
};

/** Running price accumulator — the dependence-carried state. */
struct PriceState
{
    int swaption = -1;
    double sumPayoff = 0.0;
    double sumSquares = 0.0;
    long long trials = 0;
};

/** Running price after one batch — the output. */
struct PriceOutput
{
    int swaption = 0;
    double runningPrice = 0.0;
    bool lastBatchOfSwaption = false;
};

/** Simulation parameters bound from tradeoff values. */
struct McParams
{
    bool floatRatePath = false;
    bool floatDiscount = false;
};

struct Workload
{
    std::vector<SwaptionTerms> terms;
    std::vector<Batch> batches;
};

/**
 * Representative: market-plausible strikes/maturities.
 * Non-representative (paper section 4.6): "unrealistic swaption
 * parameters like market strikes and maturity dates".
 */
Workload makeWorkload(WorkloadKind kind, std::uint64_t seed);

/**
 * Run one trial batch, updating the accumulator.
 * @return abstract operation count.
 */
double simulateBatch(PriceState &state, const Batch &batch,
                     const SwaptionTerms &terms, const McParams &params,
                     support::Xoshiro256 &rng);

/** The swaptions benchmark. */
class SwaptionsBenchmark : public Benchmark
{
  public:
    SwaptionsBenchmark();

    std::string name() const override { return "swaptions"; }
    tradeoff::StateSpace stateSpace(int threads) const override;
    int tradeoffCount() const override { return 4; }
    RunResult run(const RunRequest &request) override;
    std::vector<double>
    oracleSignature(WorkloadKind kind,
                    std::uint64_t workload_seed) override;
    double quality(const std::vector<double> &signature,
                   const std::vector<double> &oracle) const override;
    bool supportsQualityIteration() const override { return true; }

  private:
    McParams paramsFrom(const tradeoff::Assignment &assignment,
                        bool auxiliary) const;

    tradeoff::Registry _registry;
    std::map<std::pair<int, std::uint64_t>, std::vector<double>>
        _oracleCache;
};

} // namespace stats::benchmarks::swaptions
