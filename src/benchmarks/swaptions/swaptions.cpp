#include "benchmarks/swaptions/swaptions.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "benchmarks/common/sdi_runner.hpp"
#include "platform/cost_model.hpp"
#include "quality/metrics.hpp"
#include "sdi/matchers.hpp"

namespace stats::benchmarks::swaptions {

namespace {

constexpr double kOpSeconds = 2.2e-6;

/**
 * The original TLP of swaptions parallelizes across independent
 * swaption simulations: close to embarrassingly parallel, with a
 * small serial portion (setup/aggregation) and mild imbalance that
 * we fold into the serial fraction.
 */
const platform::InnerParallelModel &
innerModel()
{
    static const platform::InnerParallelModel model{
        /* serialFraction */ 0.035,
        /* syncCostPerThread */ 1.0e-5,
        /* memBound */ 0.1,
    };
    return model;
}

} // namespace

Workload
makeWorkload(WorkloadKind kind, std::uint64_t seed)
{
    support::Xoshiro256 rng(seed * 0x5eedULL + 99);
    Workload workload;
    for (int s = 0; s < kSwaptions; ++s) {
        SwaptionTerms terms;
        if (kind == WorkloadKind::NonRepresentative) {
            // Unrealistic market parameters (paper section 4.6).
            terms.strike = rng.uniform(0.5, 5.0);
            terms.maturityYears = rng.uniform(80.0, 200.0);
            terms.rate0 = rng.uniform(0.3, 0.9);
            terms.volatility = rng.uniform(0.2, 0.8);
        } else {
            terms.strike = rng.uniform(0.02, 0.06);
            terms.maturityYears = rng.uniform(1.0, 10.0);
            terms.rate0 = rng.uniform(0.02, 0.06);
            terms.volatility = rng.uniform(0.005, 0.02);
        }
        terms.meanReversion = rng.uniform(0.1, 0.3);
        terms.longTermRate = terms.rate0 + rng.uniform(-0.01, 0.01);
        workload.terms.push_back(terms);

        for (int b = 0; b < kBatchesPerSwaption; ++b)
            workload.batches.push_back(Batch{s, b, kTrialsPerBatch});
    }
    return workload;
}

double
simulateBatch(PriceState &state, const Batch &batch,
              const SwaptionTerms &terms, const McParams &params,
              support::Xoshiro256 &rng)
{
    if (state.swaption != batch.swaption) {
        // A new swaption's simulation begins: fresh accumulator.
        state = PriceState{};
        state.swaption = batch.swaption;
    }

    const double dt = terms.maturityYears / kPathSteps;
    const double sqrt_dt = std::sqrt(dt);
    for (int trial = 0; trial < batch.trials; ++trial) {
        // Mean-reverting short-rate path (Vasicek dynamics).
        double rate = terms.rate0;
        double discount = 1.0;
        for (int step = 0; step < kPathSteps; ++step) {
            const double shock = rng.gaussian(0.0, 1.0);
            rate += terms.meanReversion * (terms.longTermRate - rate) * dt +
                    terms.volatility * sqrt_dt * shock;
            if (params.floatRatePath)
                rate = static_cast<float>(rate);
            discount *= std::exp(-std::max(rate, -0.5) * dt);
            if (params.floatDiscount)
                discount = static_cast<float>(discount);
        }
        const double payoff =
            std::max(rate - terms.strike, 0.0) * discount * 100.0;
        state.sumPayoff += payoff;
        state.sumSquares += payoff * payoff;
        ++state.trials;
    }

    return static_cast<double>(batch.trials) * kPathSteps * 9.0;
}

SwaptionsBenchmark::SwaptionsBenchmark()
{
    using tradeoff::NameListOptions;
    using tradeoff::TradeoffValue;

    _registry.add("typeRatePath",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName,
                      std::vector<std::string>{"double", "float"}, 0));
    _registry.add("typeDiscount",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName,
                      std::vector<std::string>{"double", "float"}, 0));
    _registry.cloneForAuxiliary("typeRatePath");
    _registry.cloneForAuxiliary("typeDiscount");
}

tradeoff::StateSpace
SwaptionsBenchmark::stateSpace(int threads) const
{
    tradeoff::StateSpace space;
    addRuntimeDimensions(space, threads);
    for (const auto &name : _registry.auxNames()) {
        const auto &t = _registry.get(name);
        space.add(name, t.valueCount(), t.options().getDefaultIndex());
    }
    return space;
}

McParams
SwaptionsBenchmark::paramsFrom(const tradeoff::Assignment &assignment,
                               bool auxiliary) const
{
    const std::string prefix = auxiliary ? tradeoff::kAuxPrefix : "";
    McParams params;
    params.floatRatePath =
        _registry.nameValue(prefix + "typeRatePath", assignment) ==
        "float";
    params.floatDiscount =
        _registry.nameValue(prefix + "typeDiscount", assignment) ==
        "float";
    return params;
}

RunResult
SwaptionsBenchmark::run(const RunRequest &request)
{
    const auto workload =
        std::make_shared<Workload>(
            makeWorkload(request.workload, request.workloadSeed));
    const tradeoff::StateSpace space = stateSpace(request.threads);
    const tradeoff::Configuration config =
        request.config.empty() ? space.defaultConfiguration()
                               : request.config;
    const tradeoff::Assignment assignment =
        assignmentFor(space, config, _registry);

    const McParams original_params =
        paramsFrom(_registry.defaults(), false);
    const McParams aux_params = paramsFrom(assignment, true);

    std::optional<support::ScopedDeterministicSeeds> pinned;
    if (request.runSeed != 0)
        pinned.emplace(request.runSeed);

    SdiProgram<Batch, PriceState, PriceOutput> program;
    program.inputs = workload->batches;
    program.initialState = PriceState{};

    const sim::MachineConfig machine = request.machine;
    const auto make_compute = [workload, machine](McParams params,
                                                  bool auxiliary) {
        return [workload, machine, params, auxiliary](
                   const Batch &batch, PriceState &state,
                   const sdi::ComputeContext &ctx)
                   -> SdiProgram<Batch, PriceState, PriceOutput>::
                       Engine::Invocation {
            support::Xoshiro256 rng(support::entropySeed());
            const auto &terms =
                workload->terms[static_cast<std::size_t>(batch.swaption)];
            double ops = simulateBatch(state, batch, terms, params, rng);
            // The float tradeoffs buy throughput (vectorized lanes).
            if (params.floatRatePath)
                ops *= 0.72;
            if (params.floatDiscount)
                ops *= 0.9;
            (void)auxiliary;

            auto output = std::make_unique<PriceOutput>();
            output->swaption = batch.swaption;
            output->runningPrice =
                state.trials > 0
                    ? state.sumPayoff / static_cast<double>(state.trials)
                    : 0.0;
            output->lastBatchOfSwaption =
                batch.indexInSwaption == kBatchesPerSwaption - 1;
            const double eff = platform::effectiveParallelism(
                machine, ctx.innerThreads, innerModel().memBound);
            return {std::move(output),
                    innerModel().work(ops * kOpSeconds,
                                      ctx.innerThreads, eff)};
        };
    };
    program.compute = make_compute(original_params, false);
    program.auxiliary = make_compute(aux_params, true);

    // By construction, any accumulator the auxiliary code produces is
    // a value the nondeterministic original producer could have
    // produced (partial Monte-Carlo means are unbiased), so no state
    // comparison is needed (paper section 4.2).
    program.matcher = sdi::alwaysMatch<PriceState>();

    program.appendSignature = [](const PriceOutput &out,
                                 std::vector<double> &signature) {
        if (out.lastBatchOfSwaption)
            signature.push_back(out.runningPrice);
    };

    const sdi::SpecConfig spec =
        specConfigFor(space, config, request.mode, request.threads);
    sdi::SpecConfig policy_spec = spec;
    applyPolicy(request.policy, program, policy_spec);
    return runSdiProgram(program, policy_spec, request.machine,
                         request.threads);
}

std::vector<double>
SwaptionsBenchmark::oracleSignature(WorkloadKind kind,
                                    std::uint64_t workload_seed)
{
    const auto key = std::make_pair(static_cast<int>(kind), workload_seed);
    auto it = _oracleCache.find(key);
    if (it != _oracleCache.end())
        return it->second;

    // Oracle: many more trials than the default run, averaged.
    const Workload workload = makeWorkload(kind, workload_seed);
    const McParams params{false, false};
    std::vector<double> oracle(kSwaptions, 0.0);
    support::Xoshiro256 rng(0x5af3);
    constexpr int kOracleReps = 8;
    for (int rep = 0; rep < kOracleReps; ++rep) {
        PriceState state;
        for (const auto &batch : workload.batches) {
            const auto &terms =
                workload.terms[static_cast<std::size_t>(batch.swaption)];
            simulateBatch(state, batch, terms, params, rng);
            if (batch.indexInSwaption == kBatchesPerSwaption - 1) {
                oracle[static_cast<std::size_t>(batch.swaption)] +=
                    state.sumPayoff / static_cast<double>(state.trials);
            }
        }
    }
    for (double &price : oracle)
        price /= kOracleReps;
    _oracleCache.emplace(key, oracle);
    return oracle;
}

double
SwaptionsBenchmark::quality(const std::vector<double> &signature,
                            const std::vector<double> &oracle) const
{
    // Paper: average relative difference between the prices.
    return quality::averageRelativeDifference(signature, oracle, 1e-6);
}

} // namespace stats::benchmarks::swaptions
