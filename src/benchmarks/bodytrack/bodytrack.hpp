/**
 * @file
 * Reimplementation of PARSEC's bodytrack (paper sections 2.2, 4.2).
 *
 * An annealed particle filter tracks a 5-part body moving through 3-D
 * space across a stream of frames. Analyzing frame i consumes the
 * model produced by frame i-1 — the paper's canonical state
 * dependence. The filter is randomized (resampling and particle
 * perturbation draw from a freshly-seeded PRVG), so independent runs
 * produce slightly different, equally-acceptable part positions.
 *
 * Tradeoffs (paper Table 1 / section 4.2): the number of simulated
 * annealing layers, the number of particles, and the precision of the
 * perturbation variable. State comparison: the paper's rule — the
 * speculative state is accepted if its distance to an original state
 * is within the spread of the original states themselves, where
 * distance is the sum of absolute part-position differences. With a
 * single original state available the comparison falls back to a
 * developer-calibrated tolerance on the same distance (the paper
 * leaves single-original strictness to the developer).
 */

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "benchmarks/common/benchmark.hpp"
#include "benchmarks/common/vec.hpp"
#include "support/rng.hpp"

namespace stats::benchmarks::bodytrack {

/** Number of tracked body parts. */
constexpr int kParts = 5;

/** Frames in the (native-like) input stream. */
constexpr int kFrames = 96;

/** One camera quadruple, reduced to per-part noisy observations. */
struct Frame
{
    int id = 0;
    std::array<Vec3, kParts> observed;
};

/** One particle: a body-pose hypothesis. */
struct Particle
{
    std::array<Vec3, kParts> pos;
    double logWeight = 0.0;
};

/** The model of the body — the dependence-carried state. */
struct BodyModel
{
    std::vector<Particle> particles;

    /** Current belief: mean part positions. */
    std::array<Vec3, kParts> estimate() const;

    /** Paper's distance: sum of absolute part-position differences. */
    double distance(const BodyModel &other) const;
};

/** Estimated part positions for one frame — the output. */
struct Positions
{
    std::array<Vec3, kParts> estimate;
};

/** Filter parameters; tradeoff values feed these. */
struct FilterParams
{
    int annealingLayers = 5;
    int particles = 50;
    bool singlePrecision = false;
};

/** The generated input stream plus ground truth. */
struct Workload
{
    std::vector<Frame> frames;
    std::vector<std::array<Vec3, kParts>> truth;
};

/**
 * Generate a workload. Representative: the body follows a smooth
 * random trajectory. Non-representative (paper section 4.6): "the
 * subject does not move across quadruples".
 */
Workload makeWorkload(WorkloadKind kind, std::uint64_t seed,
                      int frames = kFrames);

/** Initial model: a broad particle cloud around the first frame. */
BodyModel makeInitialModel(const Workload &workload,
                           const FilterParams &params);

/**
 * One annealed particle-filter update (the paper's updateModel()).
 *
 * @return abstract operation count, for the platform cost model.
 */
double updateModel(BodyModel &model, const Frame &frame,
                   const FilterParams &params,
                   support::Xoshiro256 &rng);

/** The bodytrack benchmark. */
class BodytrackBenchmark : public Benchmark
{
  public:
    BodytrackBenchmark();

    std::string name() const override { return "bodytrack"; }
    tradeoff::StateSpace stateSpace(int threads) const override;
    int tradeoffCount() const override { return 5; }
    RunResult run(const RunRequest &request) override;
    std::vector<double>
    oracleSignature(WorkloadKind kind,
                    std::uint64_t workload_seed) override;
    double quality(const std::vector<double> &signature,
                   const std::vector<double> &oracle) const override;
    bool supportsQualityIteration() const override { return true; }

    /** Single-original acceptance tolerance of the state comparison. */
    static constexpr double kMatchTolerance = 5.0;

  private:
    FilterParams paramsFrom(const tradeoff::Assignment &assignment,
                            bool auxiliary) const;

    tradeoff::Registry _registry;
    std::map<std::pair<int, std::uint64_t>, std::vector<double>>
        _oracleCache;
};

} // namespace stats::benchmarks::bodytrack
