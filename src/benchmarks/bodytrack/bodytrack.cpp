#include "benchmarks/bodytrack/bodytrack.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "benchmarks/common/sdi_runner.hpp"
#include "platform/cost_model.hpp"
#include "quality/metrics.hpp"
#include "sdi/matchers.hpp"

namespace stats::benchmarks::bodytrack {

namespace {

/** Virtual seconds per abstract filter operation (cost calibration). */
constexpr double kOpSeconds = 2.4e-7;

/** Observation noise of the synthetic cameras. */
constexpr double kObsSigma = 0.05;

/**
 * Original TLP of bodytrack: the per-frame particle evaluation is
 * parallel, but every annealing layer ends in a resampling barrier —
 * the "more frequent inter-thread synchronizations creating a
 * bottleneck" the paper blames for its limited original scaling
 * (section 4.3). The relatively large per-thread sync cost caps the
 * original speedup around 4-5x.
 */
const platform::InnerParallelModel &
innerModel()
{
    static const platform::InnerParallelModel model{
        /* serialFraction */ 0.055,
        /* syncCostPerThread */ 1.6e-4,
        /* memBound */ 0.15,
    };
    return model;
}

} // namespace

std::array<Vec3, kParts>
BodyModel::estimate() const
{
    std::array<Vec3, kParts> mean{};
    if (particles.empty())
        return mean;
    for (const auto &p : particles) {
        for (int part = 0; part < kParts; ++part)
            mean[static_cast<std::size_t>(part)] +=
                p.pos[static_cast<std::size_t>(part)];
    }
    const double inv = 1.0 / static_cast<double>(particles.size());
    for (auto &m : mean)
        m = m * inv;
    return mean;
}

double
BodyModel::distance(const BodyModel &other) const
{
    const auto a = estimate();
    const auto b = other.estimate();
    double total = 0.0;
    for (int part = 0; part < kParts; ++part)
        total += a[static_cast<std::size_t>(part)].l1Distance(
            b[static_cast<std::size_t>(part)]);
    return total;
}

Workload
makeWorkload(WorkloadKind kind, std::uint64_t seed, int frames)
{
    support::Xoshiro256 rng(seed * 0x9e3779b9ULL + 17);
    Workload workload;
    workload.frames.reserve(static_cast<std::size_t>(frames));
    workload.truth.reserve(static_cast<std::size_t>(frames));

    // Per-part offsets from the body center.
    std::array<Vec3, kParts> offsets;
    for (auto &offset : offsets) {
        offset = {rng.uniform(-0.3, 0.3), rng.uniform(-0.3, 0.3),
                  rng.uniform(-0.3, 0.3)};
    }

    // Smooth pseudo-random walk of the body center.
    const double wx = rng.uniform(0.05, 0.12);
    const double wy = rng.uniform(0.05, 0.12);
    const double phase = rng.uniform(0.0, 6.28);
    Vec3 drift{};
    for (int t = 0; t < frames; ++t) {
        Vec3 center;
        if (kind == WorkloadKind::NonRepresentative) {
            center = {0.2, -0.1, 0.05}; // The subject does not move.
        } else {
            drift += Vec3{rng.gaussian(0.0, 0.01),
                          rng.gaussian(0.0, 0.01),
                          rng.gaussian(0.0, 0.01)};
            center = {std::sin(wx * t + phase) * 0.8 + drift.x,
                      std::cos(wy * t) * 0.6 + drift.y,
                      0.2 * std::sin(0.03 * t) + drift.z};
        }

        Frame frame;
        frame.id = t;
        std::array<Vec3, kParts> truth;
        for (int part = 0; part < kParts; ++part) {
            const auto k = static_cast<std::size_t>(part);
            truth[k] = center + offsets[k];
            frame.observed[k] =
                truth[k] + Vec3{rng.gaussian(0.0, kObsSigma),
                                rng.gaussian(0.0, kObsSigma),
                                rng.gaussian(0.0, kObsSigma)};
        }
        workload.frames.push_back(frame);
        workload.truth.push_back(truth);
    }
    return workload;
}

BodyModel
makeInitialModel(const Workload &workload, const FilterParams &params)
{
    // Broad prior cloud around the first observation: wide enough to
    // cover the whole trajectory, so auxiliary code can re-localize
    // the body from any window of recent frames.
    support::Xoshiro256 rng(7);
    BodyModel model;
    model.particles.resize(static_cast<std::size_t>(params.particles));
    const auto &first = workload.frames.front().observed;
    for (auto &particle : model.particles) {
        for (int part = 0; part < kParts; ++part) {
            const auto k = static_cast<std::size_t>(part);
            particle.pos[k] = first[k] + Vec3{rng.uniform(-1.5, 1.5),
                                              rng.uniform(-1.5, 1.5),
                                              rng.uniform(-1.5, 1.5)};
        }
    }
    return model;
}

namespace {

/** Match the particle count to the current tradeoff setting. */
void
ensureParticleCount(BodyModel &model, int count)
{
    const auto target = static_cast<std::size_t>(std::max(1, count));
    if (model.particles.size() == target)
        return;
    if (model.particles.empty()) {
        model.particles.resize(target);
        return;
    }
    std::vector<Particle> resized;
    resized.reserve(target);
    for (std::size_t i = 0; i < target; ++i)
        resized.push_back(model.particles[i % model.particles.size()]);
    model.particles = std::move(resized);
}

/** Systematic resampling by normalized weights. */
void
resample(BodyModel &model, support::Xoshiro256 &rng)
{
    const std::size_t n = model.particles.size();
    double max_log = model.particles.front().logWeight;
    for (const auto &p : model.particles)
        max_log = std::max(max_log, p.logWeight);

    std::vector<double> cumulative(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += std::exp(model.particles[i].logWeight - max_log);
        cumulative[i] = total;
    }

    std::vector<Particle> resampled;
    resampled.reserve(n);
    const double step = total / static_cast<double>(n);
    double u = rng.nextDouble() * step; // Random offset: the PRVG.
    std::size_t j = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (j + 1 < n && cumulative[j] < u)
            ++j;
        resampled.push_back(model.particles[j]);
        resampled.back().logWeight = 0.0;
        u += step;
    }
    model.particles = std::move(resampled);
}

} // namespace

double
updateModel(BodyModel &model, const Frame &frame,
            const FilterParams &params, support::Xoshiro256 &rng)
{
    ensureParticleCount(model, params.particles);
    const int layers = std::max(1, params.annealingLayers);

    double sigma = 0.45;
    for (int layer = 0; layer < layers; ++layer) {
        // Annealing: perturbation shrinks, likelihood sharpens.
        const double beta =
            static_cast<double>(layer + 1) / static_cast<double>(layers);
        const double inv_var =
            beta / (2.0 * kObsSigma * kObsSigma * 16.0);
        for (auto &particle : model.particles) {
            double error = 0.0;
            for (int part = 0; part < kParts; ++part) {
                const auto k = static_cast<std::size_t>(part);
                Vec3 &pos = particle.pos[k];
                pos += Vec3{rng.uniform(-sigma, sigma),
                            rng.uniform(-sigma, sigma),
                            rng.uniform(-sigma, sigma)};
                if (params.singlePrecision) {
                    // The precision tradeoff: one simulation variable
                    // stored as float.
                    pos = {static_cast<float>(pos.x),
                           static_cast<float>(pos.y),
                           static_cast<float>(pos.z)};
                }
                error += (pos - frame.observed[k]).norm2();
            }
            particle.logWeight = -error * inv_var;
        }
        resample(model, rng);
        sigma *= 0.55;
    }

    return static_cast<double>(params.particles) * layers * kParts * 44.0;
}

BodytrackBenchmark::BodytrackBenchmark()
{
    using tradeoff::IntRangeOptions;
    using tradeoff::NameListOptions;
    using tradeoff::TradeoffValue;

    // Paper Figure 10: 10 layer counts, default the 5th.
    _registry.add("numAnnealingLayers",
                  std::make_unique<IntRangeOptions>(1, 10, 1, 4));
    _registry.add("numParticles",
                  std::make_unique<IntRangeOptions>(10, 8, 10, 4));
    _registry.add("precision",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName,
                      std::vector<std::string>{"double", "float"}, 0));
    // The middle-end clones tradeoffs reachable from computeOutput so
    // auxiliary quality is tuned independently (paper section 3.4).
    _registry.cloneForAuxiliary("numAnnealingLayers");
    _registry.cloneForAuxiliary("numParticles");
    _registry.cloneForAuxiliary("precision");
}

tradeoff::StateSpace
BodytrackBenchmark::stateSpace(int threads) const
{
    tradeoff::StateSpace space;
    addRuntimeDimensions(space, threads);
    for (const auto &name : _registry.auxNames()) {
        const auto &t = _registry.get(name);
        space.add(name, t.valueCount(), t.options().getDefaultIndex());
    }
    return space;
}

FilterParams
BodytrackBenchmark::paramsFrom(const tradeoff::Assignment &assignment,
                               bool auxiliary) const
{
    const std::string prefix = auxiliary ? tradeoff::kAuxPrefix : "";
    FilterParams params;
    params.annealingLayers = static_cast<int>(
        _registry.intValue(prefix + "numAnnealingLayers", assignment));
    params.particles = static_cast<int>(
        _registry.intValue(prefix + "numParticles", assignment));
    params.singlePrecision =
        _registry.nameValue(prefix + "precision", assignment) == "float";
    return params;
}

RunResult
BodytrackBenchmark::run(const RunRequest &request)
{
    const Workload workload =
        makeWorkload(request.workload, request.workloadSeed);
    const tradeoff::StateSpace space = stateSpace(request.threads);
    const tradeoff::Configuration config =
        request.config.empty() ? space.defaultConfiguration()
                               : request.config;
    const tradeoff::Assignment assignment =
        assignmentFor(space, config, _registry);

    // Original code runs with default tradeoffs (paper section 3.4:
    // the middle-end freezes non-auxiliary tradeoffs to defaults);
    // auxiliary code uses the configuration's cloned-tradeoff values.
    const FilterParams original_params =
        paramsFrom(_registry.defaults(), false);
    const FilterParams aux_params = paramsFrom(assignment, true);

    std::optional<support::ScopedDeterministicSeeds> pinned;
    if (request.runSeed != 0)
        pinned.emplace(request.runSeed);

    SdiProgram<Frame, BodyModel, Positions> program;
    program.inputs = workload.frames;
    program.initialState = makeInitialModel(workload, original_params);

    const sim::MachineConfig machine = request.machine;
    const auto make_compute = [machine](FilterParams params) {
        return [machine, params](const Frame &frame, BodyModel &model,
                        const sdi::ComputeContext &ctx)
                   -> SdiProgram<Frame, BodyModel, Positions>::
                       Engine::Invocation {
            support::Xoshiro256 rng(support::entropySeed());
            const double ops = updateModel(model, frame, params, rng);
            auto output = std::make_unique<Positions>();
            output->estimate = model.estimate();
            const double eff = platform::effectiveParallelism(
                machine, ctx.innerThreads, innerModel().memBound);
            return {std::move(output),
                    innerModel().work(ops * kOpSeconds,
                                      ctx.innerThreads, eff)};
        };
    };
    program.compute = make_compute(original_params);
    program.auxiliary = make_compute(aux_params);

    // Paper's comparison rule with the developer-calibrated
    // single-original tolerance.
    program.matcher = [](const BodyModel &spec,
                         const std::vector<BodyModel> &originals) -> int {
        for (std::size_t a = 0; a < originals.size(); ++a) {
            const double d = spec.distance(originals[a]);
            if (originals.size() == 1) {
                if (d <= kMatchTolerance)
                    return 0;
                continue;
            }
            for (std::size_t b = 0; b < originals.size(); ++b) {
                if (b != a && d <= originals[b].distance(originals[a]))
                    return static_cast<int>(a);
            }
        }
        return -1;
    };

    program.appendSignature = [](const Positions &out,
                                 std::vector<double> &signature) {
        for (const auto &v : out.estimate) {
            signature.push_back(v.x);
            signature.push_back(v.y);
            signature.push_back(v.z);
        }
    };

    const sdi::SpecConfig spec =
        specConfigFor(space, config, request.mode, request.threads);
    sdi::SpecConfig policy_spec = spec;
    applyPolicy(request.policy, program, policy_spec);
    return runSdiProgram(program, policy_spec, request.machine,
                         request.threads);
}

std::vector<double>
BodytrackBenchmark::oracleSignature(WorkloadKind kind,
                                    std::uint64_t workload_seed)
{
    const auto key = std::make_pair(static_cast<int>(kind), workload_seed);
    auto it = _oracleCache.find(key);
    if (it != _oracleCache.end())
        return it->second;

    // Oracle: tradeoffs maximized for quality (paper section 4.2),
    // averaged over repetitions to suppress its own nondeterminism.
    const Workload workload = makeWorkload(kind, workload_seed);
    const FilterParams params{10, 80, false};
    std::vector<std::vector<double>> runs;
    for (int rep = 0; rep < 5; ++rep) {
        support::Xoshiro256 rng(0xace0 + static_cast<unsigned>(rep));
        BodyModel model = makeInitialModel(workload, params);
        std::vector<double> signature;
        for (const auto &frame : workload.frames) {
            updateModel(model, frame, params, rng);
            for (const auto &v : model.estimate()) {
                signature.push_back(v.x);
                signature.push_back(v.y);
                signature.push_back(v.z);
            }
        }
        runs.push_back(std::move(signature));
    }
    auto oracle = averageSignatures(runs);
    _oracleCache.emplace(key, oracle);
    return oracle;
}

double
BodytrackBenchmark::quality(const std::vector<double> &signature,
                            const std::vector<double> &oracle) const
{
    // Paper: relative mean square error of the body-part vectors.
    return quality::relativeMeanSquareError(signature, oracle);
}

} // namespace stats::benchmarks::bodytrack
