#include "benchmarks/streamcluster/streamcluster.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>

#include "benchmarks/common/sdi_runner.hpp"
#include "platform/cost_model.hpp"
#include "quality/metrics.hpp"
#include "sdi/matchers.hpp"

namespace stats::benchmarks::streamcluster {

namespace {

constexpr double kOpSeconds = 6.0e-6;

/**
 * The original streamcluster parallelizes the per-point evaluation
 * with barriers between phases; memory-bound behaviour dominates
 * (the paper's L1-effect discussion), capping its speedup well below
 * linear.
 */
const platform::InnerParallelModel &
innerModel()
{
    static const platform::InnerParallelModel model{
        /* serialFraction */ 0.05,
        /* syncCostPerThread */ 2.5e-5,
        /* memBound */ 0.4,
    };
    return model;
}

double
distance2(const Point &a, const Point &b)
{
    double sum = 0.0;
    for (int d = 0; d < kDim; ++d) {
        const double delta = a[static_cast<std::size_t>(d)] -
                             b[static_cast<std::size_t>(d)];
        sum += delta * delta;
    }
    return sum;
}

} // namespace

int
Solution::nearest(const Point &p) const
{
    int best = -1;
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < centroids.size(); ++c) {
        const double d = distance2(p, centroids[c].pos);
        if (d < best_d) {
            best_d = d;
            best = static_cast<int>(c);
        }
    }
    return best;
}

double
Solution::nearestDistance2(const Point &p) const
{
    const int c = nearest(p);
    return c < 0 ? std::numeric_limits<double>::infinity()
                 : distance2(p, centroids[static_cast<std::size_t>(c)].pos);
}

Workload
makeWorkload(WorkloadKind kind, std::uint64_t seed)
{
    support::Xoshiro256 rng(seed * 0xc1a5ULL + 7);
    Workload workload;

    // Mixture component centers.
    std::vector<Point> centers(kTrueClusters);
    const double spread =
        kind == WorkloadKind::NonRepresentative ? 0.4 : 10.0;
    for (auto &center : centers) {
        for (int d = 0; d < kDim; ++d)
            center[static_cast<std::size_t>(d)] =
                rng.uniform(0.0, spread);
    }
    const double sigma =
        kind == WorkloadKind::NonRepresentative ? 1.5 : 0.5;

    for (int b = 0; b < kBatches; ++b) {
        PointBatch batch;
        batch.id = b;
        for (int i = 0; i < kPointsPerBatch; ++i) {
            const int component = static_cast<int>(
                rng.nextBelow(static_cast<std::uint64_t>(kTrueClusters)));
            Point p = centers[static_cast<std::size_t>(component)];
            for (int d = 0; d < kDim; ++d)
                p[static_cast<std::size_t>(d)] += rng.gaussian(0.0, sigma);
            batch.points.push_back(p);
            batch.gold.push_back(component);
            workload.allPoints.push_back(p);
            workload.allGold.push_back(component);
        }
        workload.batches.push_back(std::move(batch));
    }
    return workload;
}

double
processBatch(Solution &solution, const PointBatch &batch,
             const ClusterParams &params, support::Xoshiro256 &rng)
{
    double ops = 0.0;
    for (const auto &point : batch.points) {
        ops += static_cast<double>(solution.centroids.size()) * kDim * 3.0 +
               30.0;
        double d = solution.nearestDistance2(point);
        if (params.floatDistance)
            d = static_cast<float>(d);

        // Randomized facility-opening decision: the nondeterministic
        // local-search step that serializes the solution updates.
        double open_probability =
            std::min(1.0, d / solution.facilityCost);
        if (params.floatCost)
            open_probability = static_cast<float>(open_probability);
        const bool must_open =
            solution.centroids.size() <
            static_cast<std::size_t>(params.minClusters);
        if (must_open || rng.nextDouble() < open_probability) {
            solution.centroids.push_back(Centroid{point, 1.0});
            // Opening gets progressively more expensive, as in
            // streamcluster's facility-cost doubling.
            solution.facilityCost *= 1.12;
        } else {
            const int c = solution.nearest(point);
            Centroid &centroid =
                solution.centroids[static_cast<std::size_t>(c)];
            double weight = centroid.weight + 1.0;
            if (params.floatWeight)
                weight = static_cast<float>(weight);
            for (int dd = 0; dd < kDim; ++dd) {
                const auto k = static_cast<std::size_t>(dd);
                centroid.pos[k] +=
                    (point[k] - centroid.pos[k]) / weight;
            }
            centroid.weight = weight;
        }

        // Enforce the maximum cluster count by merging the closest
        // pair (weighted).
        while (solution.centroids.size() >
               static_cast<std::size_t>(params.maxClusters)) {
            std::size_t best_a = 0, best_b = 1;
            double best_d = std::numeric_limits<double>::infinity();
            for (std::size_t a = 0; a < solution.centroids.size(); ++a) {
                for (std::size_t b2 = a + 1;
                     b2 < solution.centroids.size(); ++b2) {
                    const double dd = distance2(solution.centroids[a].pos,
                                                solution.centroids[b2].pos);
                    if (dd < best_d) {
                        best_d = dd;
                        best_a = a;
                        best_b = b2;
                    }
                }
            }
            Centroid &a = solution.centroids[best_a];
            const Centroid &b = solution.centroids[best_b];
            const double total = a.weight + b.weight;
            for (int dd = 0; dd < kDim; ++dd) {
                const auto k = static_cast<std::size_t>(dd);
                a.pos[k] = (a.pos[k] * a.weight + b.pos[k] * b.weight) /
                           total;
            }
            a.weight = total;
            solution.centroids.erase(solution.centroids.begin() +
                                     static_cast<std::ptrdiff_t>(best_b));
            ops += static_cast<double>(solution.centroids.size()) *
                   static_cast<double>(solution.centroids.size()) * kDim;
        }
    }
    return ops;
}

std::vector<int>
assignAll(const std::vector<Point> &points, const Solution &solution)
{
    std::vector<int> labels;
    labels.reserve(points.size());
    for (const auto &p : points)
        labels.push_back(solution.nearest(p));
    return labels;
}

StreamBenchmarkBase::StreamBenchmarkBase(bool classifier)
    : _classifier(classifier)
{
    using tradeoff::IntRangeOptions;
    using tradeoff::NameListOptions;
    using tradeoff::TradeoffValue;

    const std::vector<std::string> types{"double", "float"};
    _registry.add("maxClusters",
                  std::make_unique<IntRangeOptions>(8, 5, 4, 2));
    _registry.add("minClusters",
                  std::make_unique<IntRangeOptions>(2, 3, 2, 1));
    _registry.add("typeDistance",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName, types, 0));
    _registry.add("typeCost",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName, types, 0));
    _registry.add("typeWeight",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName, types, 0));
    for (const auto &name :
         {"maxClusters", "minClusters", "typeDistance", "typeCost",
          "typeWeight"}) {
        _registry.cloneForAuxiliary(name);
    }
}

std::string
StreamBenchmarkBase::name() const
{
    return _classifier ? "streamclassifier" : "streamcluster";
}

tradeoff::StateSpace
StreamBenchmarkBase::stateSpace(int threads) const
{
    tradeoff::StateSpace space;
    addRuntimeDimensions(space, threads);
    for (const auto &name : _registry.auxNames()) {
        const auto &t = _registry.get(name);
        space.add(name, t.valueCount(), t.options().getDefaultIndex());
    }
    return space;
}

ClusterParams
StreamBenchmarkBase::paramsFrom(const tradeoff::Assignment &assignment,
                                bool auxiliary) const
{
    const std::string prefix = auxiliary ? tradeoff::kAuxPrefix : "";
    ClusterParams params;
    params.maxClusters = static_cast<int>(
        _registry.intValue(prefix + "maxClusters", assignment));
    params.minClusters = static_cast<int>(
        _registry.intValue(prefix + "minClusters", assignment));
    params.floatDistance =
        _registry.nameValue(prefix + "typeDistance", assignment) ==
        "float";
    params.floatCost =
        _registry.nameValue(prefix + "typeCost", assignment) == "float";
    params.floatWeight =
        _registry.nameValue(prefix + "typeWeight", assignment) == "float";
    return params;
}

double
StreamBenchmarkBase::scoreOf(const Workload &workload,
                             const Solution &final_solution) const
{
    const std::vector<int> labels =
        assignAll(workload.allPoints, final_solution);
    if (_classifier)
        return quality::bCubed(labels, workload.allGold).f1;

    std::vector<double> flat;
    flat.reserve(workload.allPoints.size() * kDim);
    for (const auto &p : workload.allPoints) {
        for (int d = 0; d < kDim; ++d)
            flat.push_back(p[static_cast<std::size_t>(d)]);
    }
    return quality::daviesBouldinIndex(
        flat, kDim, labels,
        static_cast<int>(final_solution.centroids.size()));
}

RunResult
StreamBenchmarkBase::run(const RunRequest &request)
{
    const Workload workload =
        makeWorkload(request.workload, request.workloadSeed);
    const tradeoff::StateSpace space = stateSpace(request.threads);
    const tradeoff::Configuration config =
        request.config.empty() ? space.defaultConfiguration()
                               : request.config;
    const tradeoff::Assignment assignment =
        assignmentFor(space, config, _registry);

    const ClusterParams original_params =
        paramsFrom(_registry.defaults(), false);
    const ClusterParams aux_params = paramsFrom(assignment, true);

    std::optional<support::ScopedDeterministicSeeds> pinned;
    if (request.runSeed != 0)
        pinned.emplace(request.runSeed);

    SdiProgram<PointBatch, Solution, SolutionSnapshot> program;
    program.inputs = workload.batches;
    program.initialState = Solution{};

    const sim::MachineConfig machine = request.machine;
    const auto make_compute = [machine](ClusterParams params) {
        return [machine, params](const PointBatch &batch,
                                 Solution &solution,
                        const sdi::ComputeContext &ctx)
                   -> SdiProgram<PointBatch, Solution, SolutionSnapshot>::
                       Engine::Invocation {
            support::Xoshiro256 rng(support::entropySeed());
            const double ops =
                processBatch(solution, batch, params, rng);
            auto output = std::make_unique<SolutionSnapshot>();
            output->batchId = batch.id;
            output->centroids = solution.centroids;
            const double eff = platform::effectiveParallelism(
                machine, ctx.innerThreads, innerModel().memBound);
            return {std::move(output),
                    innerModel().work(ops * kOpSeconds,
                                      ctx.innerThreads, eff)};
        };
    };
    program.compute = make_compute(original_params);
    program.auxiliary = make_compute(aux_params);

    // By construction: the stream is stationary, so a solution built
    // from a window of recent candidates is one the randomized
    // original could have produced (paper section 4.2: these
    // benchmarks need no comparison function).
    program.matcher = sdi::alwaysMatch<Solution>();

    program.appendSignature = nullptr; // Signature built below.

    sdi::SpecConfig spec =
        specConfigFor(space, config, request.mode, request.threads);
    applyPolicy(request.policy, program, spec);

    // Run with a custom signature: the domain score of the final
    // solution (DB index or B-cubed F1).
    exec::SimExecutor executor(request.machine, request.threads);
    SdiProgram<PointBatch, Solution, SolutionSnapshot>::Engine engine(
        executor, program.inputs, program.initialState, program.compute,
        program.auxiliary, program.matcher, spec);
    engine.start();
    engine.join();

    RunResult result;
    const auto &activity = executor.simulator().activity();
    result.virtualSeconds = activity.makespan;
    result.energyJoules = platform::EnergyModel{}.energyJoules(activity);
    result.engineStats = engine.stats();

    Solution final_solution;
    final_solution.centroids = engine.outputs().back()->centroids;
    result.signature.push_back(scoreOf(workload, final_solution));
    return result;
}

std::vector<double>
StreamBenchmarkBase::oracleSignature(WorkloadKind kind,
                                     std::uint64_t workload_seed)
{
    const auto key = std::make_pair(static_cast<int>(kind), workload_seed);
    auto it = _oracleCache.find(key);
    if (it != _oracleCache.end())
        return it->second;

    // Oracle: generous cluster budget, averaged over repetitions.
    const Workload workload = makeWorkload(kind, workload_seed);
    ClusterParams params = paramsFrom(_registry.defaults(), false);
    params.maxClusters = 24;
    double score = 0.0;
    constexpr int kReps = 5;
    for (int rep = 0; rep < kReps; ++rep) {
        support::Xoshiro256 rng(0x57c1 + static_cast<unsigned>(rep));
        Solution solution;
        for (const auto &batch : workload.batches)
            processBatch(solution, batch, params, rng);
        score += scoreOf(workload, solution);
    }
    std::vector<double> oracle{score / kReps};
    _oracleCache.emplace(key, oracle);
    return oracle;
}

double
StreamBenchmarkBase::quality(const std::vector<double> &signature,
                             const std::vector<double> &oracle) const
{
    // Paper: difference of the DB indices / of the B-cubed metrics.
    return std::abs(signature.at(0) - oracle.at(0));
}

} // namespace stats::benchmarks::streamcluster
