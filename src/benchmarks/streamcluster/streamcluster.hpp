/**
 * @file
 * Reimplementation of PARSEC's streamcluster and its classification
 * variant streamclassifier (paper section 4.2).
 *
 * An online k-median-style algorithm consumes a stream of candidate
 * points and maintains a current solution (a set of weighted
 * centroids). Candidate centroids are opened probabilistically — a
 * randomized local-search decision — and the solution is updated
 * point by point: these updates serialize the execution and are the
 * state dependence. Auxiliary code rebuilds a solution from a window
 * of recent candidates; since the stream is stationary, the result is
 * a solution the nondeterministic original could have produced — by
 * construction no comparison function is needed.
 *
 * Tradeoffs: the data types of three variables used to estimate the
 * quality of the current solution, plus the maximum and minimum
 * number of clusters.
 *
 * streamcluster's quality metric is the difference of Davies-Bouldin
 * indices; streamclassifier's is the difference of B-cubed metrics
 * against the generator's gold labels.
 */

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "benchmarks/common/benchmark.hpp"
#include "support/rng.hpp"

namespace stats::benchmarks::streamcluster {

constexpr int kDim = 4;
constexpr int kBatches = 96;
constexpr int kPointsPerBatch = 8;
constexpr int kTrueClusters = 8;

using Point = std::array<double, kDim>;

/** One batch of stream points — the input. */
struct PointBatch
{
    int id = 0;
    std::vector<Point> points;
    std::vector<int> gold; ///< Generating mixture component.
};

/** A weighted centroid of the current solution. */
struct Centroid
{
    Point pos{};
    double weight = 0.0;
};

/** The current solution — the dependence-carried state. */
struct Solution
{
    std::vector<Centroid> centroids;
    double facilityCost = 4.0;

    /** Index of the nearest centroid (-1 when empty). */
    int nearest(const Point &p) const;

    /** Squared distance to the nearest centroid (inf when empty). */
    double nearestDistance2(const Point &p) const;
};

/** Snapshot of the solution after one batch — the output. */
struct SolutionSnapshot
{
    int batchId = 0;
    std::vector<Centroid> centroids;
};

/** Parameters bound from tradeoff values. */
struct ClusterParams
{
    int maxClusters = 16;
    int minClusters = 4;
    bool floatDistance = false;
    bool floatCost = false;
    bool floatWeight = false;
};

struct Workload
{
    std::vector<PointBatch> batches;
    std::vector<Point> allPoints;
    std::vector<int> allGold;
};

/**
 * Representative: a stationary Gaussian mixture.
 * Non-representative (paper section 4.6): "points overlap in the
 * multidimensional space".
 */
Workload makeWorkload(WorkloadKind kind, std::uint64_t seed);

/** Process one batch of candidates; returns the abstract op count. */
double processBatch(Solution &solution, const PointBatch &batch,
                    const ClusterParams &params,
                    support::Xoshiro256 &rng);

/** Assign every point to its final centroid. */
std::vector<int> assignAll(const std::vector<Point> &points,
                           const Solution &solution);

/** Shared implementation of the two stream benchmarks. */
class StreamBenchmarkBase : public Benchmark
{
  public:
    explicit StreamBenchmarkBase(bool classifier);

    std::string name() const override;
    tradeoff::StateSpace stateSpace(int threads) const override;
    int tradeoffCount() const override { return 7; }
    RunResult run(const RunRequest &request) override;
    std::vector<double>
    oracleSignature(WorkloadKind kind,
                    std::uint64_t workload_seed) override;
    double quality(const std::vector<double> &signature,
                   const std::vector<double> &oracle) const override;

  private:
    ClusterParams paramsFrom(const tradeoff::Assignment &assignment,
                             bool auxiliary) const;

    /** Domain metric of a finished run: DB index or B-cubed F1. */
    double scoreOf(const Workload &workload,
                   const Solution &final_solution) const;

    bool _classifier;
    tradeoff::Registry _registry;
    std::map<std::pair<int, std::uint64_t>, std::vector<double>>
        _oracleCache;
};

/** streamcluster: clustering quality via Davies-Bouldin. */
class StreamclusterBenchmark : public StreamBenchmarkBase
{
  public:
    StreamclusterBenchmark() : StreamBenchmarkBase(false) {}
};

/** streamclassifier: classification quality via B-cubed. */
class StreamclassifierBenchmark : public StreamBenchmarkBase
{
  public:
    StreamclassifierBenchmark() : StreamBenchmarkBase(true) {}
};

} // namespace stats::benchmarks::streamcluster
