/**
 * @file
 * Tiny fixed-dimension vector math used by the tracking and
 * simulation benchmarks.
 */

#pragma once

#include <array>
#include <cmath>
#include <cstddef>

namespace stats::benchmarks {

/** 3-component vector (positions, velocities). */
struct Vec3
{
    double x = 0.0;
    double y = 0.0;
    double z = 0.0;

    Vec3 operator+(const Vec3 &o) const { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3 &o) const { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

    Vec3 &
    operator+=(const Vec3 &o)
    {
        x += o.x;
        y += o.y;
        z += o.z;
        return *this;
    }

    double dot(const Vec3 &o) const { return x * o.x + y * o.y + z * o.z; }
    double norm2() const { return dot(*this); }
    double norm() const { return std::sqrt(norm2()); }

    /** Sum of absolute component differences (L1). */
    double
    l1Distance(const Vec3 &o) const
    {
        return std::abs(x - o.x) + std::abs(y - o.y) + std::abs(z - o.z);
    }
};

/** 2-component vector (image-plane positions). */
struct Vec2
{
    double x = 0.0;
    double y = 0.0;

    Vec2 operator+(const Vec2 &o) const { return {x + o.x, y + o.y}; }
    Vec2 operator-(const Vec2 &o) const { return {x - o.x, y - o.y}; }
    Vec2 operator*(double s) const { return {x * s, y * s}; }

    Vec2 &
    operator+=(const Vec2 &o)
    {
        x += o.x;
        y += o.y;
        return *this;
    }

    double norm2() const { return x * x + y * y; }
    double norm() const { return std::sqrt(norm2()); }
};

} // namespace stats::benchmarks
