#include "benchmarks/common/benchmark.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace stats::benchmarks {

const char *
modeName(Mode mode)
{
    switch (mode) {
      case Mode::Original: return "Original";
      case Mode::SeqStats: return "Seq. STATS";
      case Mode::ParStats: return "Par. STATS";
    }
    return "?";
}

std::vector<double>
Benchmark::averageSignatures(
    const std::vector<std::vector<double>> &signatures)
{
    if (signatures.empty())
        return {};
    std::vector<double> avg(signatures.front().size(), 0.0);
    for (const auto &s : signatures) {
        if (s.size() != avg.size())
            support::panic("averageSignatures: ragged signatures");
        for (std::size_t i = 0; i < s.size(); ++i)
            avg[i] += s[i];
    }
    for (double &v : avg)
        v /= static_cast<double>(signatures.size());
    return avg;
}

const std::vector<int> &
groupSizeValues()
{
    static const std::vector<int> values{2, 4, 8, 16, 32};
    return values;
}

const std::vector<int> &
auxWindowValues()
{
    static const std::vector<int> values{1, 2, 3, 4, 6, 8};
    return values;
}

const std::vector<int> &
reexecValues()
{
    static const std::vector<int> values{0, 1, 2, 4};
    return values;
}

const std::vector<int> &
rollbackValues()
{
    static const std::vector<int> values{1, 2, 4};
    return values;
}

void
addRuntimeDimensions(tradeoff::StateSpace &space, int threads)
{
    space.add(dims::kUseAux, 2, /* default: on */ 1);
    space.add(dims::kGroupSize,
              static_cast<std::int64_t>(groupSizeValues().size()), 1);
    space.add(dims::kAuxWindow,
              static_cast<std::int64_t>(auxWindowValues().size()), 3);
    space.add(dims::kReexecs,
              static_cast<std::int64_t>(reexecValues().size()), 2);
    space.add(dims::kRollback,
              static_cast<std::int64_t>(rollbackValues().size()), 0);
    // Values 1..threads; default: one inner thread (all to STATS).
    space.add(dims::kInnerThreads, std::max(1, threads), 0);
}

sdi::SpecConfig
specConfigFor(const tradeoff::StateSpace &space,
              const tradeoff::Configuration &config, Mode mode,
              int threads)
{
    sdi::SpecConfig spec;
    const auto pick = [&](const char *name, const std::vector<int> &vals) {
        const auto index =
            static_cast<std::size_t>(space.at(config, name));
        return vals[std::min(index, vals.size() - 1)];
    };

    spec.groupSize = pick(dims::kGroupSize, groupSizeValues());
    spec.auxWindow = pick(dims::kAuxWindow, auxWindowValues());
    spec.maxReexecutions = pick(dims::kReexecs, reexecValues());
    spec.rollbackDepth = pick(dims::kRollback, rollbackValues());

    switch (mode) {
      case Mode::Original:
        spec.useAuxiliary = false;
        spec.innerThreads = threads;
        spec.sdThreads = 1;
        break;
      case Mode::SeqStats:
        // Start from the sequential program: all TLP comes from the
        // state dependence.
        spec.useAuxiliary = space.at(config, dims::kUseAux) != 0;
        spec.innerThreads = 1;
        spec.sdThreads = threads;
        break;
      case Mode::ParStats: {
        spec.useAuxiliary = space.at(config, dims::kUseAux) != 0;
        const int inner =
            static_cast<int>(space.at(config, dims::kInnerThreads)) + 1;
        spec.innerThreads = std::min(inner, threads);
        spec.sdThreads = std::max(1, threads / spec.innerThreads);
        break;
      }
    }
    return spec;
}

tradeoff::Assignment
assignmentFor(const tradeoff::StateSpace &space,
              const tradeoff::Configuration &config,
              const tradeoff::Registry &registry)
{
    tradeoff::Assignment assignment;
    for (std::size_t i = 0; i < space.dimensionCount(); ++i) {
        const auto &name = space.dimension(i).name;
        if (registry.has(name))
            assignment.set(name, config[i]);
    }
    return assignment;
}

} // namespace stats::benchmarks
