#include "benchmarks/common/extended_sources.hpp"

#include <map>

#include "support/log.hpp"

namespace stats::benchmarks {

namespace {

// Shared thread-count tradeoffs: "the number of original threads and
// the number of threads to use for state dependences, which all
// benchmarks naturally have" (paper section 4.2), expressed with TI.
const char *kThreadTradeoffs = R"(
class OriginalThreads_options : Tradeoff_options {
    int64_t getMaxIndex() { return 28; }
    auto getValue(int64_t i) { return i + 1; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_originalThreads {
    { OriginalThreads_options };
};
class SdThreads_options : Tradeoff_options {
    int64_t getMaxIndex() { return 28; }
    auto getValue(int64_t i) { return i + 1; }
    int64_t getDefaultIndex() { return 3; }
};
tradeoff TO_sdThreads {
    { SdThreads_options };
};
)";

std::string
bodytrackSource()
{
    return std::string(R"(
// bodytrack, ported to the STATS interface (paper Figures 8 and 10).
#include <vector>

class AnnealingLayers_options : Tradeoff_options {
    int64_t getMaxIndex() { return 10; }
    auto getValue(int64_t i) { return i + 1; }
    int64_t getDefaultIndex() { return 4; }
};
tradeoff TO_numAnnealingLayers {
    { AnnealingLayers_options };
};

class Particles_options : Tradeoff_options {
    int64_t getMaxIndex() { return 8; }
    auto getValue(int64_t i) { return 10 + i * 10; }
    int64_t getDefaultIndex() { return 4; }
};
tradeoff TO_numParticles {
    { Particles_options };
};

class Precision_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_precision {
    { Precision_options };
};
)") + kThreadTradeoffs + R"(
class Input { int frameId; };
class Output { vector<BodyPart> positions; };
class State {
    vector<Particle> model;
    State &operator=(State &);
    bool doesSpecStateMatchAny(set<State *> originals) {
        // Accept the speculative state if it is at most as far from
        // an original state as the originals are from each other;
        // distance is the sum of absolute part-position differences.
        for (State *a : originals) {
            double d = distanceTo(*a);
            if (originals.size() == 1)
                return d <= kMatchTolerance;
            for (State *b : originals) {
                if (b != a && d <= b->distanceTo(*a))
                    return true;
            }
        }
        return false;
    }
};

Output *computeOutput(Input *i, State *s) {
    Frame f = getFrame(i->frameId);
    s->model = updateModel(TO_numAnnealingLayers, TO_numParticles,
                           TO_precision, s->model, f);
    Output *o = new Output();
    o->positions = getPositions(s->model);
    return o;
}

void estimateLocations() {
    vector<Input *> i(numFrames);
    vector<Particle> model(TO_numParticles);
    State s;
    s.model = model;
    StateDependence<Input, State, Output>
        stateDep(&i, &s, computeOutput);
    stateDep.start();
    stateDep.join();
}
)";
}

std::string
facedetSource()
{
    return std::string(R"(
// facedet (OpenCV face tracking), ported to the STATS interface.
#include <vector>

class FaceParticles_options : Tradeoff_options {
    int64_t getMaxIndex() { return 8; }
    auto getValue(int64_t i) { return 10 + i * 10; }
    int64_t getDefaultIndex() { return 4; }
};
tradeoff TO_numParticles {
    { FaceParticles_options };
};

class NoiseRounds_options : Tradeoff_options {
    int64_t getMaxIndex() { return 8; }
    auto getValue(int64_t i) { return i + 1; }
    int64_t getDefaultIndex() { return 3; }
};
tradeoff TO_noiseRounds {
    { NoiseRounds_options };
};

class NoiseSigma_options : Tradeoff_options {
    int64_t getMaxIndex() { return 4; }
    auto getValue(int64_t i) { return 2.0 * (i + 1); }
    int64_t getDefaultIndex() { return 2; }
};
tradeoff TO_noiseSigma {
    { NoiseSigma_options };
};

class BoxPrecision_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_precision {
    { BoxPrecision_options };
};
)") + kThreadTradeoffs + R"(
class Input { int frameId; };
class Output { FaceBox box; };
class State {
    vector<BoxParticle> particles;
    State &operator=(State &);
    bool doesSpecStateMatchAny(set<State *> originals) {
        // Average Euclidean distance of the four face-box corners.
        for (State *a : originals) {
            double d = cornerDistanceTo(*a);
            if (originals.size() == 1)
                return d <= kMatchTolerance;
            for (State *b : originals) {
                if (b != a && d <= b->cornerDistanceTo(*a))
                    return true;
            }
        }
        return false;
    }
};

Output *computeOutput(Input *i, State *s) {
    Frame f = decodeFrame(i->frameId);
    for (int round = 0; round < TO_noiseRounds; ++round)
        addGaussianNoise(s->particles, TO_noiseSigma, TO_precision);
    reweightAndResample(s->particles, f, TO_numParticles);
    Output *o = new Output();
    o->box = estimateBox(s->particles);
    return o;
}

void trackFaces() {
    vector<Input *> frames(numFrames);
    State s;
    s.particles = initialCloud(TO_numParticles);
    StateDependence<Input, State, Output>
        faceDep(&frames, &s, computeOutput);
    faceDep.start();
    faceDep.join();
}
)";
}

std::string
swaptionsSource()
{
    return std::string(R"(
// swaptions, ported to the STATS interface.
#include <vector>

class RatePathType_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_typeRatePath {
    { RatePathType_options };
};

class DiscountType_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_typeDiscount {
    { DiscountType_options };
};
)") + kThreadTradeoffs + R"(
class Input { int swaption; int batch; };
class Output { double runningPrice; };
class State {
    int swaption;
    double sumPayoff;
    long long trials;
    State &operator=(State &);
    // No comparison method: by construction of the state
    // dependence, the speculative accumulator is a value the
    // nondeterministic Monte-Carlo producer could have generated.
};

Output *computeOutput(Input *i, State *s) {
    if (s->swaption != i->swaption)
        resetAccumulator(s, i->swaption);
    for (int t = 0; t < trialsPerBatch; ++t) {
        TO_typeRatePath rate = simulatePath(i->swaption);
        TO_typeDiscount discount = discountFactor(rate);
        s->sumPayoff += payoff(rate, discount);
        s->trials += 1;
    }
    Output *o = new Output();
    o->runningPrice = s->sumPayoff / s->trials;
    return o;
}

void priceSwaptions() {
    vector<Input *> batches(numSwaptions * batchesPerSwaption);
    State s;
    StateDependence<Input, State, Output>
        priceDep(&batches, &s, computeOutput);
    priceDep.start();
    priceDep.join();
}
)";
}

std::string
streamSource(bool classifier)
{
    const std::string name =
        classifier ? "streamclassifier" : "streamcluster";
    return "// " + name + ", ported to the STATS interface.\n" +
           std::string(R"(
#include <vector>

class MaxClusters_options : Tradeoff_options {
    int64_t getMaxIndex() { return 5; }
    auto getValue(int64_t i) { return 8 + i * 4; }
    int64_t getDefaultIndex() { return 2; }
};
tradeoff TO_maxClusters {
    { MaxClusters_options };
};

class MinClusters_options : Tradeoff_options {
    int64_t getMaxIndex() { return 3; }
    auto getValue(int64_t i) { return 2 + i * 2; }
    int64_t getDefaultIndex() { return 1; }
};
tradeoff TO_minClusters {
    { MinClusters_options };
};

class DistanceType_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_typeDistance {
    { DistanceType_options };
};

class CostType_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_typeCost {
    { CostType_options };
};

class WeightType_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_typeWeight {
    { WeightType_options };
};
)") + kThreadTradeoffs + R"(
class Input { vector<Point> candidates; };
class Output { vector<int> labels; };
class State {
    vector<Centroid> solution;
    double facilityCost;
    State &operator=(State &);
    // No comparison method: any solution the randomized local
    // search could build over the (stationary) stream is acceptable
    // by construction.
};

Output *computeOutput(Input *i, State *s) {
    Output *o = new Output();
    for (Point &p : i->candidates) {
        TO_typeDistance d = distanceToSolution(p, s->solution);
        TO_typeCost open = d / s->facilityCost;
        if (shouldOpen(open, TO_minClusters))
            s->solution.push_back(Centroid(p));
        else {
            TO_typeWeight w = assignToNearest(p, s->solution);
            o->labels.push_back(nearest(p, s->solution, w));
        }
        enforceMaximum(s->solution, TO_maxClusters);
    }
    return o;
}

void clusterStream() {
    vector<Input *> batches(numBatches);
    State s;
    StateDependence<Input, State, Output>
        solutionDep(&batches, &s, computeOutput);
    solutionDep.start();
    solutionDep.join();
    // Second state dependence: the evaluation/assignment stage that
    // consumes the evolving solution.
    State s2;
    StateDependence<Input, State, Output>
        assignDep(&batches, &s2, computeOutput);
    assignDep.start();
    assignDep.join();
}
)";
}

std::string
fluidanimateSource()
{
    return std::string(R"(
// fluidanimate, ported to the STATS interface. Included to test the
// limits of STATS: the fluid state needs all previous inputs, so the
// runtime always aborts the speculation (paper section 4.8).
#include <vector>

class SqrtImpl_options : Tradeoff_function_options {
    const char *choices[3] = {"sqrt_exact", "sqrt_newton2", "sqrt_table"};
    int64_t getMaxIndex() { return 3; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_sqrtImpl {
    { SqrtImpl_options };
};

class DensityType_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_typeDensity {
    { DensityType_options };
};

class PressureType_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_typePressure {
    { PressureType_options };
};

class ViscosityType_options : Tradeoff_type_options {
    const char *choices[2] = {"f64", "f32"};
    int64_t getMaxIndex() { return 2; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_typeViscosity {
    { ViscosityType_options };
};

class PrismX_options : Tradeoff_options {
    int64_t getMaxIndex() { return 3; }
    auto getValue(int64_t i) { return 1 + i; }
    int64_t getDefaultIndex() { return 1; }
};
tradeoff TO_prismX {
    { PrismX_options };
};

class PrismY_options : Tradeoff_options {
    int64_t getMaxIndex() { return 3; }
    auto getValue(int64_t i) { return 1 + i; }
    int64_t getDefaultIndex() { return 1; }
};
tradeoff TO_prismY {
    { PrismY_options };
};

class PrismZ_options : Tradeoff_options {
    int64_t getMaxIndex() { return 3; }
    auto getValue(int64_t i) { return 1 + i; }
    int64_t getDefaultIndex() { return 0; }
};
tradeoff TO_prismZ {
    { PrismZ_options };
};
)") + kThreadTradeoffs + R"(
class Input { int frame; double dt; };
class Output { vector<Vec3> positions; };
class State {
    vector<Vec3> positions;
    vector<Vec3> velocities;
    State &operator=(State &);
    bool doesSpecStateMatchAny(set<State *> originals) {
        // Average Euclidean distance between particle positions,
        // bracketed by the originals' own spread.
        for (State *a : originals) {
            double d = distanceTo(*a);
            if (originals.size() == 1)
                return d <= kMatchTolerance;
            for (State *b : originals) {
                if (b != a && d <= b->distanceTo(*a))
                    return true;
            }
        }
        return false;
    }
};

Output *computeOutput(Input *i, State *s) {
    Grid grid = buildGrid(s->positions, TO_prismX, TO_prismY, TO_prismZ);
    for (Pair pair : neighbourPairs(grid)) {
        TO_typeDensity rho = density(pair, TO_sqrtImpl);
        TO_typePressure p = pressure(rho);
        TO_typeViscosity v = viscosity(pair);
        accumulateForces(s, pair, rho, p, v);
    }
    integrate(s->positions, s->velocities, i->dt);
    Output *o = new Output();
    o->positions = s->positions;
    return o;
}

void simulateFluid() {
    vector<Input *> frames(numFrames);
    State s;
    initializeFluid(s.positions, s.velocities);
    StateDependence<Input, State, Output>
        fluidDep(&frames, &s, computeOutput);
    fluidDep.start();
    fluidDep.join();
}
)";
}

} // namespace

const std::string &
extendedSourceFor(const std::string &benchmark)
{
    static const std::map<std::string, std::string> sources{
        {"bodytrack", bodytrackSource()},
        {"facedet", facedetSource()},
        {"swaptions", swaptionsSource()},
        {"streamcluster", streamSource(false)},
        {"streamclassifier", streamSource(true)},
        {"fluidanimate", fluidanimateSource()},
    };
    auto it = sources.find(benchmark);
    if (it == sources.end())
        support::panic("no extended source for benchmark '", benchmark,
                       "'");
    return it->second;
}

} // namespace stats::benchmarks
