/**
 * @file
 * Glue that runs one SDI program description on the simulated
 * platform and collects the measurements the evaluation needs.
 */

#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "benchmarks/common/benchmark.hpp"
#include "exec/sim_executor.hpp"
#include "platform/energy_model.hpp"
#include "sdi/matchers.hpp"
#include "sdi/spec_engine.hpp"

namespace stats::benchmarks {

/**
 * A fully-bound state-dependence program: inputs, initial state, the
 * original and auxiliary computeOutput closures (each already bound
 * to its tradeoff values), the state comparison, and the output
 * flattening used for quality evaluation.
 */
template <class Input, class State, class Output>
struct SdiProgram
{
    using Engine = sdi::SpecEngine<Input, State, Output>;

    std::vector<Input> inputs;
    State initialState;
    typename Engine::ComputeFn compute;
    typename Engine::ComputeFn auxiliary;
    typename Engine::MatchFn matcher;
    std::function<void(const Output &, std::vector<double> &)>
        appendSignature;
};

/**
 * Rewire a program + engine configuration for a related-work
 * speculation policy (paper section 4.4). STATS' own policy leaves
 * everything as the benchmark built it.
 */
template <class Input, class State, class Output>
void
applyPolicy(SpeculationPolicy policy,
            SdiProgram<Input, State, Output> &program,
            sdi::SpecConfig &spec)
{
    switch (policy) {
      case SpeculationPolicy::StatsAux:
        return;
      case SpeculationPolicy::BreakNoCheck:
        // Dependence broken: stale initial state, no checks.
        spec.auxWindow = 0;
        spec.maxReexecutions = 0;
        program.matcher = sdi::alwaysMatch<State>();
        return;
      case SpeculationPolicy::StaleExactCheck:
        // Fast Track: single-state exact verification of a stale
        // state; with a nondeterministic producer this never matches.
        spec.auxWindow = 0;
        spec.maxReexecutions = 0;
        program.matcher = sdi::neverMatch<State>();
        return;
    }
}

/**
 * Execute a program with one engine configuration on the simulated
 * machine. The real kernels run on the host; time and energy come
 * from the platform model.
 */
template <class Input, class State, class Output>
RunResult
runSdiProgram(const SdiProgram<Input, State, Output> &program,
              const sdi::SpecConfig &spec,
              const sim::MachineConfig &machine, int threads)
{
    exec::SimExecutor executor(machine, threads);
    typename SdiProgram<Input, State, Output>::Engine engine(
        executor, program.inputs, program.initialState, program.compute,
        program.auxiliary, program.matcher, spec);
    engine.start();
    engine.join();

    RunResult result;
    const auto &activity = executor.simulator().activity();
    result.virtualSeconds = activity.makespan;
    result.energyJoules = platform::EnergyModel{}.energyJoules(activity);
    result.engineStats = engine.stats();
    if (program.appendSignature) {
        for (const auto &output : engine.outputs())
            program.appendSignature(*output, result.signature);
    }
    return result;
}

} // namespace stats::benchmarks
