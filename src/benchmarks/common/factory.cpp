/**
 * @file
 * Benchmark factory: name -> instance.
 */

#include "benchmarks/bodytrack/bodytrack.hpp"
#include "benchmarks/common/benchmark.hpp"
#include "benchmarks/facedet/facedet.hpp"
#include "benchmarks/fluidanimate/fluidanimate.hpp"
#include "benchmarks/streamcluster/streamcluster.hpp"
#include "benchmarks/swaptions/swaptions.hpp"
#include "support/log.hpp"

namespace stats::benchmarks {

std::unique_ptr<Benchmark>
createBenchmark(const std::string &name)
{
    if (name == "bodytrack")
        return std::make_unique<bodytrack::BodytrackBenchmark>();
    if (name == "facedet")
        return std::make_unique<facedet::FacedetBenchmark>();
    if (name == "swaptions")
        return std::make_unique<swaptions::SwaptionsBenchmark>();
    if (name == "streamcluster")
        return std::make_unique<streamcluster::StreamclusterBenchmark>();
    if (name == "streamclassifier")
        return std::make_unique<
            streamcluster::StreamclassifierBenchmark>();
    if (name == "fluidanimate")
        return std::make_unique<fluidanimate::FluidanimateBenchmark>();
    support::panic("unknown benchmark '", name, "'");
}

const std::vector<std::string> &
allBenchmarkNames()
{
    // Paper figure order (Figures 12-19).
    static const std::vector<std::string> names{
        "swaptions",    "streamclassifier", "streamcluster",
        "fluidanimate", "bodytrack",        "facedet",
    };
    return names;
}

} // namespace stats::benchmarks
