/**
 * @file
 * The extended-C++ encodings (SDI + TI) of the six benchmarks.
 *
 * These are the sources a developer would write to port each
 * benchmark to STATS (paper Figures 8 and 10 show bodytrack's). They
 * are consumed by the front-end compiler to produce the Table 1
 * developer-effort numbers and the per-benchmark IR metadata, and
 * they document every tradeoff of paper section 4.2 in its
 * programmable form.
 */

#pragma once

#include <string>
#include <vector>

namespace stats::benchmarks {

/** Extended-C++ source of a benchmark; panics on unknown names. */
const std::string &extendedSourceFor(const std::string &benchmark);

} // namespace stats::benchmarks
