/**
 * @file
 * Common interface of the six reimplemented benchmarks
 * (paper section 4.2).
 *
 * Each benchmark is a real nondeterministic computation with the
 * state-dependence pattern of paper Figure 4, run on the simulated
 * many-core platform. A benchmark exposes:
 *  - its state space (shared runtime dimensions + its auxiliary
 *    tradeoff dimensions),
 *  - a run() entry that executes one configuration in one of the
 *    paper's three modes (Original / Seq. STATS / Par. STATS),
 *  - workload generation (representative and the paper's
 *    non-representative variants of section 4.6),
 *  - its domain quality metric, evaluated against an oracle produced
 *    with quality-maximizing tradeoffs.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sdi/spec_config.hpp"
#include "sim/machine.hpp"
#include "tradeoff/registry.hpp"
#include "tradeoff/state_space.hpp"

namespace stats::benchmarks {

/** The three parallelization modes of paper Figure 12. */
enum class Mode
{
    /** Out-of-the-box benchmark, original TLP only. */
    Original,
    /** Only the TLP from satisfying state dependences (Seq. STATS). */
    SeqStats,
    /** Original TLP combined with STATS TLP (Par. STATS). */
    ParStats,
};

const char *modeName(Mode mode);

/** Workload families (paper sections 4.2 and 4.6). */
enum class WorkloadKind
{
    Representative,    ///< Native-like inputs.
    NonRepresentative, ///< Adversarial training inputs (section 4.6).
};

/**
 * How the state dependence is speculated on (paper section 4.4).
 *
 * The related-work comparators are reimplemented "on our
 * infrastructure ... configured to target only the state dependences
 * we identified", i.e. as alternative policies of the same engine.
 */
enum class SpeculationPolicy
{
    /** STATS: auxiliary code + developer state comparison. */
    StatsAux,
    /**
     * Break the dependence: subsequent groups start from a stale
     * clone of the initial state, no auxiliary inputs, no runtime
     * check (ALTER / QuickStep / HELIX-UP style; output quality is
     * gated offline against the original variability).
     */
    BreakNoCheck,
    /**
     * Fast Track: speculate "no changes in the final state" and
     * verify against the *single* unspeculative state — with a
     * nondeterministic producer this never matches and the
     * speculation always aborts (paper section 4.4).
     */
    StaleExactCheck,
};

/** One benchmark execution request. */
struct RunRequest
{
    Mode mode = Mode::Original;
    tradeoff::Configuration config; ///< Empty -> default configuration.
    int threads = 1;
    sim::MachineConfig machine;
    WorkloadKind workload = WorkloadKind::Representative;
    std::uint64_t workloadSeed = 1; ///< Input-generation seed.

    /**
     * Seed for the program's PRVGs. 0 requests true entropy (the
     * nondeterministic production behaviour); nonzero pins the run
     * for reproducible tests.
     */
    std::uint64_t runSeed = 0;

    /** Speculation policy (STATS by default; see section 4.4). */
    SpeculationPolicy policy = SpeculationPolicy::StatsAux;
};

/** Result of one benchmark execution. */
struct RunResult
{
    double virtualSeconds = 0.0;
    double energyJoules = 0.0;
    /** Flattened outputs, consumed by the quality metric. */
    std::vector<double> signature;
    sdi::EngineStats engineStats;
};

/** A reimplemented PARSEC/OpenCV benchmark. */
class Benchmark
{
  public:
    virtual ~Benchmark() = default;

    virtual std::string name() const = 0;

    /**
     * State-space for autotuning with `threads` hardware threads.
     * Includes the shared runtime dimensions (group size, auxiliary
     * window, re-execution budget, rollback depth, thread split,
     * auxiliary on/off) and the benchmark's tradeoff dimensions.
     */
    virtual tradeoff::StateSpace stateSpace(int threads) const = 0;

    /** Number of encodable auxiliary tradeoffs (Table 1 order). */
    virtual int tradeoffCount() const = 0;

    /** Run one configuration. */
    virtual RunResult run(const RunRequest &request) = 0;

    /**
     * Oracle signature for a workload: produced with tradeoffs set to
     * maximize output quality (paper section 4.2, "Output quality"),
     * averaged over repetitions to suppress its own nondeterminism.
     */
    virtual std::vector<double>
    oracleSignature(WorkloadKind kind, std::uint64_t workload_seed) = 0;

    /**
     * The benchmark's domain metric: distance of a run's output to
     * the oracle's (lower is better).
     */
    virtual double quality(const std::vector<double> &signature,
                           const std::vector<double> &oracle) const = 0;

    /**
     * Whether averaging repeated outputs improves this benchmark's
     * quality metric (used by the Figure 16 experiment: spend saved
     * time iterating over the same dataset).
     */
    virtual bool supportsQualityIteration() const { return false; }

    /** Average several run signatures element-wise. */
    static std::vector<double>
    averageSignatures(const std::vector<std::vector<double>> &signatures);
};

/** Construct a benchmark by name; panics on unknown names. */
std::unique_ptr<Benchmark> createBenchmark(const std::string &name);

/** All six benchmark names, in the paper's figure order. */
const std::vector<std::string> &allBenchmarkNames();

// ---------------------------------------------------------------------
// Shared state-space plumbing
// ---------------------------------------------------------------------

/** Names of the shared runtime dimensions. */
namespace dims {
inline constexpr const char *kUseAux = "useAux";
inline constexpr const char *kGroupSize = "groupSize";
inline constexpr const char *kAuxWindow = "auxWindow";
inline constexpr const char *kReexecs = "reexecs";
inline constexpr const char *kRollback = "rollback";
inline constexpr const char *kInnerThreads = "innerThreads";
} // namespace dims

/** Value tables behind the shared dimensions. */
const std::vector<int> &groupSizeValues();
const std::vector<int> &auxWindowValues();
const std::vector<int> &reexecValues();
const std::vector<int> &rollbackValues();

/**
 * Append the shared runtime dimensions to a state space
 * (paper section 3.3: every benchmark "naturally has" the two thread
 * counts plus the per-dependence knobs).
 */
void addRuntimeDimensions(tradeoff::StateSpace &space, int threads);

/**
 * Derive the engine configuration from a configuration + mode:
 * Original ignores speculation; Seq. STATS gives every thread to the
 * state dependence; Par. STATS splits threads per the configuration.
 */
sdi::SpecConfig specConfigFor(const tradeoff::StateSpace &space,
                              const tradeoff::Configuration &config,
                              Mode mode, int threads);

/**
 * Build a tradeoff assignment for the benchmark's registry from the
 * tradeoff dimensions of a configuration (dimension names that match
 * registry entries are copied through; runtime dimensions are
 * skipped).
 */
tradeoff::Assignment
assignmentFor(const tradeoff::StateSpace &space,
              const tradeoff::Configuration &config,
              const tradeoff::Registry &registry);

} // namespace stats::benchmarks
