/**
 * @file
 * Reimplementation of the paper's facedet benchmark (OpenCV face
 * detection on a video stream, paper section 4.2).
 *
 * A randomized particle filter updates the position of a detected
 * face box at each frame, exploiting the position found in the
 * previous frame — the state dependence. Tradeoffs: the number of
 * particles and the number of Gaussian-noise rounds (plus two minor
 * ones: the perturbation magnitude and the likelihood precision).
 * State comparison: average Euclidean distance of the four corners
 * of the face box (paper's measure) under the same bracket rule as
 * bodytrack.
 */

#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "benchmarks/common/benchmark.hpp"
#include "benchmarks/common/vec.hpp"
#include "support/rng.hpp"

namespace stats::benchmarks::facedet {

/** Frames in the synthetic 40-second video. */
constexpr int kFrames = 100;

/** A face bounding box in image coordinates. */
struct FaceBox
{
    Vec2 center;
    double width = 80.0;
    double height = 100.0;

    /** The four corners, clockwise from top-left. */
    std::array<Vec2, 4> corners() const;

    /** Average Euclidean distance of the four corners. */
    double cornerDistance(const FaceBox &other) const;
};

/** One video frame, reduced to a noisy face-box observation. */
struct Frame
{
    int id = 0;
    FaceBox observed;
};

/** One particle: a face-box hypothesis. */
struct Particle
{
    FaceBox box;
    double logWeight = 0.0;
};

/** The dependence-carried state: the belief about the face. */
struct FaceModel
{
    std::vector<Particle> particles;

    FaceBox estimate() const;
    double distance(const FaceModel &other) const;
};

/** The output: the detected face box for one frame. */
struct Detection
{
    FaceBox box;
};

/** Filter parameters bound from tradeoff values. */
struct FilterParams
{
    int particles = 60;
    int noiseRounds = 4;
    double noiseSigma = 6.0;
    bool singlePrecision = false;
};

struct Workload
{
    std::vector<Frame> frames;
    std::vector<FaceBox> truth;
};

/**
 * Representative: a person moves in front of the camera.
 * Non-representative (paper section 4.6): the face does not move.
 */
Workload makeWorkload(WorkloadKind kind, std::uint64_t seed,
                      int frames = kFrames);

FaceModel makeInitialModel(const Workload &workload,
                           const FilterParams &params);

/** One particle-filter update; returns the abstract op count. */
double updateModel(FaceModel &model, const Frame &frame,
                   const FilterParams &params,
                   support::Xoshiro256 &rng);

/** The facedet benchmark. */
class FacedetBenchmark : public Benchmark
{
  public:
    FacedetBenchmark();

    std::string name() const override { return "facedet"; }
    tradeoff::StateSpace stateSpace(int threads) const override;
    int tradeoffCount() const override { return 6; }
    RunResult run(const RunRequest &request) override;
    std::vector<double>
    oracleSignature(WorkloadKind kind,
                    std::uint64_t workload_seed) override;
    double quality(const std::vector<double> &signature,
                   const std::vector<double> &oracle) const override;
    bool supportsQualityIteration() const override { return true; }

    /** Single-original acceptance tolerance, in pixels. */
    static constexpr double kMatchTolerance = 12.0;

  private:
    FilterParams paramsFrom(const tradeoff::Assignment &assignment,
                            bool auxiliary) const;

    tradeoff::Registry _registry;
    std::map<std::pair<int, std::uint64_t>, std::vector<double>>
        _oracleCache;
};

} // namespace stats::benchmarks::facedet
