#include "benchmarks/facedet/facedet.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "benchmarks/common/sdi_runner.hpp"
#include "platform/cost_model.hpp"
#include "quality/metrics.hpp"

namespace stats::benchmarks::facedet {

namespace {

constexpr double kOpSeconds = 2.0e-6;
constexpr double kObsSigma = 2.0; // Pixels.

/**
 * facedet's original parallelism is spent on vectorization (paper
 * section 4.3), leaving modest thread-level scaling: a relatively
 * high serial fraction caps the original speedup around 5-6x.
 */
const platform::InnerParallelModel &
innerModel()
{
    static const platform::InnerParallelModel model{
        /* serialFraction */ 0.10,
        /* syncCostPerThread */ 2.0e-5,
        /* memBound */ 0.25,
    };
    return model;
}

} // namespace

std::array<Vec2, 4>
FaceBox::corners() const
{
    const double hw = width / 2.0;
    const double hh = height / 2.0;
    return {Vec2{center.x - hw, center.y - hh},
            Vec2{center.x + hw, center.y - hh},
            Vec2{center.x + hw, center.y + hh},
            Vec2{center.x - hw, center.y + hh}};
}

double
FaceBox::cornerDistance(const FaceBox &other) const
{
    const auto a = corners();
    const auto b = other.corners();
    double total = 0.0;
    for (std::size_t i = 0; i < 4; ++i)
        total += (a[i] - b[i]).norm();
    return total / 4.0;
}

FaceBox
FaceModel::estimate() const
{
    FaceBox mean;
    mean.center = {0.0, 0.0};
    mean.width = 0.0;
    mean.height = 0.0;
    if (particles.empty())
        return mean;
    for (const auto &p : particles) {
        mean.center += p.box.center;
        mean.width += p.box.width;
        mean.height += p.box.height;
    }
    const double inv = 1.0 / static_cast<double>(particles.size());
    mean.center = mean.center * inv;
    mean.width *= inv;
    mean.height *= inv;
    return mean;
}

double
FaceModel::distance(const FaceModel &other) const
{
    return estimate().cornerDistance(other.estimate());
}

Workload
makeWorkload(WorkloadKind kind, std::uint64_t seed, int frames)
{
    support::Xoshiro256 rng(seed * 0x51ed2701ULL + 3);
    Workload workload;

    const double wx = rng.uniform(0.04, 0.1);
    const double wy = rng.uniform(0.03, 0.09);
    Vec2 drift{320.0, 240.0};
    for (int t = 0; t < frames; ++t) {
        FaceBox truth;
        if (kind == WorkloadKind::NonRepresentative) {
            truth.center = {320.0, 240.0}; // The face does not move.
            truth.width = 80.0;
            truth.height = 100.0;
        } else {
            drift += Vec2{rng.gaussian(0.0, 0.8), rng.gaussian(0.0, 0.8)};
            truth.center = {drift.x + 120.0 * std::sin(wx * t),
                            drift.y + 80.0 * std::cos(wy * t)};
            truth.width = 80.0 + 15.0 * std::sin(0.05 * t);
            truth.height = 100.0 + 18.0 * std::sin(0.04 * t + 1.0);
        }

        Frame frame;
        frame.id = t;
        frame.observed = truth;
        frame.observed.center +=
            Vec2{rng.gaussian(0.0, kObsSigma), rng.gaussian(0.0, kObsSigma)};
        frame.observed.width += rng.gaussian(0.0, kObsSigma);
        frame.observed.height += rng.gaussian(0.0, kObsSigma);
        workload.frames.push_back(frame);
        workload.truth.push_back(truth);
    }
    return workload;
}

FaceModel
makeInitialModel(const Workload &workload, const FilterParams &params)
{
    support::Xoshiro256 rng(11);
    FaceModel model;
    model.particles.resize(static_cast<std::size_t>(params.particles));
    const FaceBox &first = workload.frames.front().observed;
    for (auto &particle : model.particles) {
        particle.box = first;
        // Cloud wide enough to cover the whole image-plane motion.
        particle.box.center += Vec2{rng.uniform(-200.0, 200.0),
                                    rng.uniform(-160.0, 160.0)};
        particle.box.width += rng.uniform(-30.0, 30.0);
        particle.box.height += rng.uniform(-30.0, 30.0);
    }
    return model;
}

namespace {

void
ensureParticleCount(FaceModel &model, int count)
{
    const auto target = static_cast<std::size_t>(std::max(1, count));
    if (model.particles.size() == target)
        return;
    std::vector<Particle> resized;
    resized.reserve(target);
    for (std::size_t i = 0; i < target; ++i)
        resized.push_back(model.particles[i % model.particles.size()]);
    model.particles = std::move(resized);
}

void
resample(FaceModel &model, support::Xoshiro256 &rng)
{
    const std::size_t n = model.particles.size();
    double max_log = model.particles.front().logWeight;
    for (const auto &p : model.particles)
        max_log = std::max(max_log, p.logWeight);

    std::vector<double> cumulative(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        total += std::exp(model.particles[i].logWeight - max_log);
        cumulative[i] = total;
    }

    std::vector<Particle> resampled;
    resampled.reserve(n);
    const double step = total / static_cast<double>(n);
    double u = rng.nextDouble() * step;
    std::size_t j = 0;
    for (std::size_t i = 0; i < n; ++i) {
        while (j + 1 < n && cumulative[j] < u)
            ++j;
        resampled.push_back(model.particles[j]);
        resampled.back().logWeight = 0.0;
        u += step;
    }
    model.particles = std::move(resampled);
}

} // namespace

double
updateModel(FaceModel &model, const Frame &frame,
            const FilterParams &params, support::Xoshiro256 &rng)
{
    ensureParticleCount(model, params.particles);
    const int rounds = std::max(1, params.noiseRounds);

    double sigma = params.noiseSigma * 4.0;
    for (int round = 0; round < rounds; ++round) {
        const double inv_var = 1.0 / (2.0 * kObsSigma * kObsSigma * 36.0);
        for (auto &particle : model.particles) {
            // "The number of times Gaussian noise is added to the
            // particles" is the facedet tradeoff (paper section 4.2).
            particle.box.center += Vec2{rng.gaussian(0.0, sigma),
                                        rng.gaussian(0.0, sigma)};
            particle.box.width += rng.gaussian(0.0, sigma * 0.4);
            particle.box.height += rng.gaussian(0.0, sigma * 0.4);
            if (params.singlePrecision) {
                particle.box.center = {
                    static_cast<float>(particle.box.center.x),
                    static_cast<float>(particle.box.center.y)};
            }
            particle.logWeight =
                -particle.box.cornerDistance(frame.observed) *
                particle.box.cornerDistance(frame.observed) * inv_var;
        }
        resample(model, rng);
        sigma *= 0.5;
    }

    return static_cast<double>(params.particles) * rounds * 30.0;
}

FacedetBenchmark::FacedetBenchmark()
{
    using tradeoff::IntRangeOptions;
    using tradeoff::NameListOptions;
    using tradeoff::RealListOptions;
    using tradeoff::TradeoffValue;

    _registry.add("numParticles",
                  std::make_unique<IntRangeOptions>(10, 8, 10, 4));
    _registry.add("noiseRounds",
                  std::make_unique<IntRangeOptions>(1, 8, 1, 3));
    _registry.add("noiseSigma",
                  std::make_unique<RealListOptions>(
                      std::vector<double>{2.0, 4.0, 6.0, 8.0}, 2));
    _registry.add("precision",
                  std::make_unique<NameListOptions>(
                      TradeoffValue::Kind::TypeName,
                      std::vector<std::string>{"double", "float"}, 0));
    _registry.cloneForAuxiliary("numParticles");
    _registry.cloneForAuxiliary("noiseRounds");
    _registry.cloneForAuxiliary("noiseSigma");
    _registry.cloneForAuxiliary("precision");
}

tradeoff::StateSpace
FacedetBenchmark::stateSpace(int threads) const
{
    tradeoff::StateSpace space;
    addRuntimeDimensions(space, threads);
    for (const auto &name : _registry.auxNames()) {
        const auto &t = _registry.get(name);
        space.add(name, t.valueCount(), t.options().getDefaultIndex());
    }
    return space;
}

FilterParams
FacedetBenchmark::paramsFrom(const tradeoff::Assignment &assignment,
                             bool auxiliary) const
{
    const std::string prefix = auxiliary ? tradeoff::kAuxPrefix : "";
    FilterParams params;
    params.particles = static_cast<int>(
        _registry.intValue(prefix + "numParticles", assignment));
    params.noiseRounds = static_cast<int>(
        _registry.intValue(prefix + "noiseRounds", assignment));
    params.noiseSigma =
        _registry.realValue(prefix + "noiseSigma", assignment);
    params.singlePrecision =
        _registry.nameValue(prefix + "precision", assignment) == "float";
    return params;
}

RunResult
FacedetBenchmark::run(const RunRequest &request)
{
    const Workload workload =
        makeWorkload(request.workload, request.workloadSeed);
    const tradeoff::StateSpace space = stateSpace(request.threads);
    const tradeoff::Configuration config =
        request.config.empty() ? space.defaultConfiguration()
                               : request.config;
    const tradeoff::Assignment assignment =
        assignmentFor(space, config, _registry);

    const FilterParams original_params =
        paramsFrom(_registry.defaults(), false);
    const FilterParams aux_params = paramsFrom(assignment, true);

    std::optional<support::ScopedDeterministicSeeds> pinned;
    if (request.runSeed != 0)
        pinned.emplace(request.runSeed);

    SdiProgram<Frame, FaceModel, Detection> program;
    program.inputs = workload.frames;
    program.initialState = makeInitialModel(workload, original_params);

    const sim::MachineConfig machine = request.machine;
    const auto make_compute = [machine](FilterParams params) {
        return [machine, params](const Frame &frame, FaceModel &model,
                        const sdi::ComputeContext &ctx)
                   -> SdiProgram<Frame, FaceModel, Detection>::
                       Engine::Invocation {
            support::Xoshiro256 rng(support::entropySeed());
            const double ops = updateModel(model, frame, params, rng);
            auto output = std::make_unique<Detection>();
            output->box = model.estimate();
            const double eff = platform::effectiveParallelism(
                machine, ctx.innerThreads, innerModel().memBound);
            return {std::move(output),
                    innerModel().work(ops * kOpSeconds,
                                      ctx.innerThreads, eff)};
        };
    };
    program.compute = make_compute(original_params);
    program.auxiliary = make_compute(aux_params);

    program.matcher = [](const FaceModel &spec,
                         const std::vector<FaceModel> &originals) -> int {
        for (std::size_t a = 0; a < originals.size(); ++a) {
            const double d = spec.distance(originals[a]);
            if (originals.size() == 1) {
                if (d <= kMatchTolerance)
                    return 0;
                continue;
            }
            for (std::size_t b = 0; b < originals.size(); ++b) {
                if (b != a && d <= originals[b].distance(originals[a]))
                    return static_cast<int>(a);
            }
        }
        return -1;
    };

    program.appendSignature = [](const Detection &out,
                                 std::vector<double> &signature) {
        for (const auto &corner : out.box.corners()) {
            signature.push_back(corner.x);
            signature.push_back(corner.y);
        }
    };

    const sdi::SpecConfig spec =
        specConfigFor(space, config, request.mode, request.threads);
    sdi::SpecConfig policy_spec = spec;
    applyPolicy(request.policy, program, policy_spec);
    return runSdiProgram(program, policy_spec, request.machine,
                         request.threads);
}

std::vector<double>
FacedetBenchmark::oracleSignature(WorkloadKind kind,
                                  std::uint64_t workload_seed)
{
    const auto key = std::make_pair(static_cast<int>(kind), workload_seed);
    auto it = _oracleCache.find(key);
    if (it != _oracleCache.end())
        return it->second;

    const Workload workload = makeWorkload(kind, workload_seed);
    const FilterParams params{80, 8, 6.0, false};
    std::vector<std::vector<double>> runs;
    for (int rep = 0; rep < 5; ++rep) {
        support::Xoshiro256 rng(0xfaced + static_cast<unsigned>(rep));
        FaceModel model = makeInitialModel(workload, params);
        std::vector<double> signature;
        for (const auto &frame : workload.frames) {
            updateModel(model, frame, params, rng);
            for (const auto &corner : model.estimate().corners()) {
                signature.push_back(corner.x);
                signature.push_back(corner.y);
            }
        }
        runs.push_back(std::move(signature));
    }
    auto oracle = averageSignatures(runs);
    _oracleCache.emplace(key, oracle);
    return oracle;
}

double
FacedetBenchmark::quality(const std::vector<double> &signature,
                          const std::vector<double> &oracle) const
{
    // Paper: average Euclidean distance of the detected faces' boxes.
    return quality::averageEuclideanDistance(signature, oracle, 2);
}

} // namespace stats::benchmarks::facedet
