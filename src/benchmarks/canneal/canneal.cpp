#include "benchmarks/canneal/canneal.hpp"

#include <algorithm>
#include <cmath>

#include "support/log.hpp"

namespace stats::benchmarks::canneal {

namespace {

/** Manhattan distance between two grid slots. */
int
slotDistance(int a, int b, int side)
{
    const int ax = a % side, ay = a / side;
    const int bx = b % side, by = b / side;
    return std::abs(ax - bx) + std::abs(ay - by);
}

/** Wire length contributed by one element under a placement. */
double
elementCost(const Netlist &netlist, const Placement &placement,
            int element)
{
    double cost = 0.0;
    for (const int peer :
         netlist.nets[static_cast<std::size_t>(element)]) {
        cost += slotDistance(
            placement.slotOf[static_cast<std::size_t>(element)],
            placement.slotOf[static_cast<std::size_t>(peer)],
            placement.gridSide);
    }
    return cost;
}

} // namespace

double
Placement::wireLength(const Netlist &netlist) const
{
    double total = 0.0;
    for (std::size_t e = 0; e < netlist.nets.size(); ++e) {
        for (const int peer : netlist.nets[e]) {
            // Count each net edge once.
            if (peer > static_cast<int>(e)) {
                total += slotDistance(
                    slotOf[e],
                    slotOf[static_cast<std::size_t>(peer)], gridSide);
            }
        }
    }
    return total;
}

Netlist
makeNetlist(std::uint64_t seed, int elements, int avg_degree)
{
    support::Xoshiro256 rng(seed * 0xca22ea1ULL + 13);
    Netlist netlist;
    netlist.gridSide = 1;
    while (netlist.gridSide * netlist.gridSide < elements)
        ++netlist.gridSide;
    netlist.nets.resize(static_cast<std::size_t>(elements));

    // Mostly-local connectivity with a few long wires, like a
    // placed-and-partitioned netlist.
    const long long edges =
        static_cast<long long>(elements) * avg_degree / 2;
    for (long long edge = 0; edge < edges; ++edge) {
        const int a = static_cast<int>(
            rng.nextBelow(static_cast<std::uint64_t>(elements)));
        int b;
        if (rng.nextDouble() < 0.8) {
            b = std::min(elements - 1,
                         a + static_cast<int>(rng.uniformInt(1, 8)));
        } else {
            b = static_cast<int>(
                rng.nextBelow(static_cast<std::uint64_t>(elements)));
        }
        if (a == b)
            continue;
        netlist.nets[static_cast<std::size_t>(a)].push_back(b);
        netlist.nets[static_cast<std::size_t>(b)].push_back(a);
    }
    return netlist;
}

AnnealResult
anneal(const Netlist &netlist, support::Xoshiro256 &rng,
       double initial_temperature, double cooling, int swaps_per_step)
{
    const auto elements = static_cast<int>(netlist.nets.size());
    AnnealResult result;
    result.placement.gridSide = netlist.gridSide;
    result.placement.slotOf.resize(
        static_cast<std::size_t>(elements));
    for (int e = 0; e < elements; ++e)
        result.placement.slotOf[static_cast<std::size_t>(e)] = e;

    double temperature = initial_temperature;
    double previous_cost = result.placement.wireLength(netlist);

    // The annealing loop terminates on *convergence*: the number of
    // temperature steps depends on how the computation state
    // evolves — the structural property that excludes canneal from
    // STATS (no input count known before the first invocation).
    for (;;) {
        ++result.temperatureSteps;
        for (int swap = 0; swap < swaps_per_step; ++swap) {
            ++result.swapsAttempted;
            const int a = static_cast<int>(rng.nextBelow(
                static_cast<std::uint64_t>(elements)));
            const int b = static_cast<int>(rng.nextBelow(
                static_cast<std::uint64_t>(elements)));
            if (a == b)
                continue;
            const double before =
                elementCost(netlist, result.placement, a) +
                elementCost(netlist, result.placement, b);
            std::swap(result.placement.slotOf[static_cast<std::size_t>(
                          a)],
                      result.placement.slotOf[static_cast<std::size_t>(
                          b)]);
            const double after =
                elementCost(netlist, result.placement, a) +
                elementCost(netlist, result.placement, b);
            const double delta = after - before;
            const bool accept =
                delta < 0.0 ||
                rng.nextDouble() < std::exp(-delta / temperature);
            if (!accept) {
                std::swap(
                    result.placement
                        .slotOf[static_cast<std::size_t>(a)],
                    result.placement
                        .slotOf[static_cast<std::size_t>(b)]);
            }
        }

        const double cost = result.placement.wireLength(netlist);
        const double improvement =
            previous_cost > 0.0 ? (previous_cost - cost) / previous_cost
                                : 0.0;
        previous_cost = cost;
        temperature *= cooling;
        if (improvement < 0.002 && result.temperatureSteps >= 4)
            break;
        if (result.temperatureSteps > 400)
            break; // Safety net; never reached in practice.
    }

    result.finalCost = previous_cost;
    return result;
}

} // namespace stats::benchmarks::canneal
