/**
 * @file
 * Reimplementation of PARSEC's canneal — the benchmark STATS cannot
 * target (paper section 4.2).
 *
 * canneal places netlist elements on a grid with simulated annealing:
 * random element swaps are accepted when they shorten the total wire
 * length or, with temperature-dependent probability, even when they
 * do not. It is nondeterministic (the paper's Figure 2 attributes its
 * variability to race conditions between the swapping threads; here
 * the randomized swap selection plays that role).
 *
 * Why STATS does not apply: "STATS needs to know the number of inputs
 * that the code pattern of Figure 4 has to process at run time just
 * before the first invocation of this code pattern. This information
 * is unfortunately unavailable in the canneal benchmark: the number
 * of inputs depends on the evolution of the computation state" — the
 * annealing loop runs until the placement stops improving, so the
 * input stream cannot be materialized up front for the SDI. This
 * module exists to reproduce canneal's Figure 2 variability and to
 * demonstrate that structural exclusion concretely (see
 * stepsAreStateDependent in the tests).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "support/rng.hpp"

namespace stats::benchmarks::canneal {

/** A netlist: elements with connectivity, to be placed on a grid. */
struct Netlist
{
    int gridSide = 16;
    /** nets[i] lists the elements connected to element i. */
    std::vector<std::vector<int>> nets;
};

/** A placement: grid slot per element. */
struct Placement
{
    std::vector<int> slotOf;
    int gridSide = 16;

    /** Total Manhattan wire length of the placement. */
    double wireLength(const Netlist &netlist) const;
};

/** Result of one annealing run. */
struct AnnealResult
{
    Placement placement;
    double finalCost = 0.0;
    /**
     * Temperature steps executed — *state-dependent*, which is
     * exactly why the SDI cannot encode canneal's loop.
     */
    int temperatureSteps = 0;
    long long swapsAttempted = 0;
};

/** Generate a random netlist (representative workload). */
Netlist makeNetlist(std::uint64_t seed, int elements = 192,
                    int avg_degree = 4);

/**
 * Run the full annealing: temperature ladder with a convergence-
 * based stop (terminates when a temperature step yields too little
 * improvement), like the original's `number_temp_steps == -1` mode.
 */
AnnealResult anneal(const Netlist &netlist, support::Xoshiro256 &rng,
                    double initial_temperature = 2.0,
                    double cooling = 0.85,
                    int swaps_per_step = 2048);

} // namespace stats::benchmarks::canneal
