#include "threading/primitives.hpp"

#include "support/log.hpp"

namespace stats::threading {

SpinBarrier::SpinBarrier(std::size_t participants)
    : _participants(participants), _waiting(0), _sense(false)
{
    if (participants == 0)
        support::panic("SpinBarrier needs at least one participant");
}

void
SpinBarrier::arriveAndWait()
{
    const bool my_sense = !_sense.load(std::memory_order_relaxed);
    if (_waiting.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        _participants) {
        // Last arrival: reset and release everyone.
        _waiting.store(0, std::memory_order_relaxed);
        _sense.store(my_sense, std::memory_order_release);
        return;
    }
    while (_sense.load(std::memory_order_acquire) != my_sense) {
        // Spin; barriers guard short phases (e.g. annealing layers).
    }
}

} // namespace stats::threading
