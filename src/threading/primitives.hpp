/**
 * @file
 * Low-level thread synchronization primitives.
 *
 * The paper's runtime "includes low-level implementations of thread
 * synchronization primitives" (section 3.4) to keep the speculation
 * engine's coordination cheap. This module provides the two the
 * engine's real-thread path builds on: a spin barrier for
 * gang-style phase synchronization (the per-annealing-layer barrier
 * of bodytrack's original TLP), and a bounded MPMC queue for
 * low-latency task handoff.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <optional>

namespace stats::threading {

/**
 * Sense-reversing spin barrier for a fixed set of participants.
 *
 * All participants call arriveAndWait(); the last one flips the
 * sense and releases the rest. Reusable across rounds.
 */
class SpinBarrier
{
  public:
    explicit SpinBarrier(std::size_t participants);

    /** Block (spinning) until all participants arrive. */
    void arriveAndWait();

    std::size_t participants() const { return _participants; }

  private:
    const std::size_t _participants;
    std::atomic<std::size_t> _waiting;
    std::atomic<bool> _sense;
};

/**
 * Bounded lock-free multi-producer/multi-consumer queue
 * (Vyukov-style ring of sequenced cells).
 *
 * @tparam T element type; moved in and out.
 */
template <class T>
class MpmcBoundedQueue
{
  public:
    /** Capacity is rounded up to a power of two; must be >= 2. */
    explicit MpmcBoundedQueue(std::size_t capacity)
    {
        std::size_t size = 2;
        while (size < capacity)
            size <<= 1;
        _mask = size - 1;
        _cells = std::make_unique<Cell[]>(size);
        for (std::size_t i = 0; i < size; ++i)
            _cells[i].sequence.store(i, std::memory_order_relaxed);
        _enqueuePos.store(0, std::memory_order_relaxed);
        _dequeuePos.store(0, std::memory_order_relaxed);
    }

    /** Try to enqueue; false when the queue is full. */
    bool
    tryPush(T value)
    {
        return tryPushFrom(value);
    }

    /**
     * Try to enqueue by moving out of `value`; `value` is only
     * consumed on success, so a caller can fall back to another queue
     * (the thread pool's overflow list) when the ring is full.
     */
    bool
    tryPushFrom(T &value)
    {
        Cell *cell;
        std::size_t pos = _enqueuePos.load(std::memory_order_relaxed);
        for (;;) {
            cell = &_cells[pos & _mask];
            const std::size_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const auto diff = static_cast<std::ptrdiff_t>(seq) -
                              static_cast<std::ptrdiff_t>(pos);
            if (diff == 0) {
                if (_enqueuePos.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (diff < 0) {
                return false; // Full; `value` untouched.
            } else {
                pos = _enqueuePos.load(std::memory_order_relaxed);
            }
        }
        cell->value = std::move(value);
        cell->sequence.store(pos + 1, std::memory_order_release);
        return true;
    }

    /** Try to dequeue; empty optional when no element is ready. */
    std::optional<T>
    tryPop()
    {
        Cell *cell;
        std::size_t pos = _dequeuePos.load(std::memory_order_relaxed);
        for (;;) {
            cell = &_cells[pos & _mask];
            const std::size_t seq =
                cell->sequence.load(std::memory_order_acquire);
            const auto diff = static_cast<std::ptrdiff_t>(seq) -
                              static_cast<std::ptrdiff_t>(pos + 1);
            if (diff == 0) {
                if (_dequeuePos.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed)) {
                    break;
                }
            } else if (diff < 0) {
                return std::nullopt; // Empty.
            } else {
                pos = _dequeuePos.load(std::memory_order_relaxed);
            }
        }
        T value = std::move(cell->value);
        cell->sequence.store(pos + _mask + 1,
                             std::memory_order_release);
        return value;
    }

    std::size_t capacity() const { return _mask + 1; }

    /**
     * Racy occupancy estimate (never negative); good enough for
     * emptiness heuristics like the pool's park/wake protocol.
     */
    std::size_t
    approxSize() const
    {
        const std::size_t enq =
            _enqueuePos.load(std::memory_order_relaxed);
        const std::size_t deq =
            _dequeuePos.load(std::memory_order_relaxed);
        return enq > deq ? enq - deq : 0;
    }

  private:
    struct Cell
    {
        std::atomic<std::size_t> sequence{0};
        T value{};
    };

    std::unique_ptr<Cell[]> _cells;
    std::size_t _mask = 0;
    std::atomic<std::size_t> _enqueuePos;
    std::atomic<std::size_t> _dequeuePos;
};

} // namespace stats::threading
