/**
 * @file
 * A fixed-size work-stealing thread pool.
 *
 * The paper's runtime "includes an efficient thread pool
 * implementation (shared with all state dependences) to minimize
 * thread creation overhead" (section 3.4). The original reproduction
 * funneled every job through one mutex-protected queue; this version
 * is a work-stealing scheduler so that dispatch overhead stops
 * competing with the parallelism the speculation engine exists to
 * create (docs/INTERNALS.md "The work-stealing scheduler"):
 *
 *  - each worker owns a Chase–Lev deque (owner push/pop at the
 *    bottom, lock-free steal at the top); jobs submitted from a
 *    worker thread go to its own deque, external submissions go to a
 *    bounded lock-free injector queue (with a mutex-protected
 *    overflow list so submission never blocks or fails);
 *  - idle workers steal from random victims, spinning a bounded
 *    number of rounds before parking on a per-worker condition
 *    variable; submissions only pay a wake syscall when no worker is
 *    spinning;
 *  - completion accounting is a single atomic pending counter;
 *    waitIdle() blocks on it without touching any queue lock;
 *  - submitBatch() enqueues a whole group of tasks in one operation
 *    and performs one wake decision for the lot;
 *  - a task's cancellation flag is checked *before* dispatch, so a
 *    cancelled task never occupies a worker with real work.
 *
 * Shutdown semantics (explicit, tested): the destructor **drains** —
 * every job already submitted, plus any job spawned by a running job,
 * is executed before the workers exit. Use waitIdle() first if you
 * need a quiescent point; submitting from outside the pool while the
 * destructor runs is undefined (as it was for the global-queue pool).
 *
 * Scheduler observability: with the trace layer active the pool
 * records TaskStolen, WorkerPark, WorkerUnpark, and QueueDepth events
 * (schema: docs/OBSERVABILITY.md §2); lightweight counters
 * (`stats()`) are always on.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "support/timer.hpp"
#include "threading/primitives.hpp"
#include "threading/unique_function.hpp"

namespace stats::threading {

/** Shared cancellation flag (the shape of exec::CancelToken). */
using CancelFlag = std::shared_ptr<std::atomic<bool>>;

/**
 * One unit of pool work. `run(cancelled)` is invoked exactly once on
 * a worker thread; `cancelled` is true when the cancel flag was set
 * before dispatch (the callee decides what a skipped task still does,
 * e.g. fire a completion callback).
 */
struct PoolTask
{
    UniqueFunction<void(bool cancelled)> run;

    /** Optional: checked once, immediately before dispatch. */
    CancelFlag cancel;
};

/** Fixed-size pool of workers executing jobs via work stealing. */
class ThreadPool
{
  public:
    using Job = UniqueFunction<void()>;

    /** Monotonic scheduler counters; always on (relaxed atomics). */
    struct Stats
    {
        std::uint64_t submitted = 0; ///< Tasks accepted.
        std::uint64_t executed = 0;  ///< Tasks run (incl. cancelled).
        std::uint64_t cancelled = 0; ///< Tasks skipped via their flag.
        std::uint64_t stolen = 0;    ///< Tasks taken from another worker.
        std::uint64_t parks = 0;     ///< Times a worker blocked.
        std::uint64_t unparks = 0;   ///< Times a parked worker woke.
    };

    /** Spawn `threads` workers (at least 1). */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending jobs are completed first (drains). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Safe to call from worker threads. */
    void submit(Job job);

    /** Enqueue a cancellable task. Safe to call from worker threads. */
    void submit(PoolTask task);

    /** Enqueue several tasks with a single wake decision. */
    void submitBatch(std::vector<PoolTask> tasks);

    /** Block until no submitted job (or job it spawned) remains. */
    void waitIdle();

    int threadCount() const { return static_cast<int>(_workers.size()); }

    /** Pool-lifetime wall clock, seconds (steady, starts at 0). */
    double clockSeconds() const { return _clock.elapsedSeconds(); }

    Stats stats() const;

  private:
    struct TaskNode;
    struct Worker;

    void workerLoop(int index);
    bool runOneTask(Worker &self);
    TaskNode *tryStealFrom(Worker &self);
    bool popShared(PoolTask &out);
    void pushShared(PoolTask task);
    void enqueue(PoolTask task);
    bool anyWorkVisible() const;
    void wakeWorkers(std::size_t want);
    void wakeForLocalSubmit();
    void runTask(PoolTask task);
    void runNode(TaskNode *node, Worker &self);
    void finishOne();
    void park(Worker &self);

    std::vector<std::unique_ptr<Worker>> _workers;
    // External submissions carry PoolTask by value: with the job
    // wrapper's inline storage a small closure travels from submit()
    // to a worker with zero heap traffic. Only worker-local deques
    // need stable pointers (Chase-Lev slots), so only worker-side
    // submissions use heap nodes — recycled through a per-worker
    // freelist.
    MpmcBoundedQueue<PoolTask> _injector;
    std::mutex _overflowMutex;
    std::deque<PoolTask> _overflow;
    std::atomic<std::size_t> _overflowSize{0};

    std::atomic<std::size_t> _pending{0};
    std::atomic<int> _spinners{0};
    std::atomic<int> _parkedCount{0};
    std::atomic<bool> _shutdown{false};

    std::mutex _idleMutex;
    std::condition_variable _idleCv;
    std::atomic<int> _idleWaiters{0};

    support::Timer _clock;

    std::atomic<std::uint64_t> _submitted{0};
    std::atomic<std::uint64_t> _executed{0};
    std::atomic<std::uint64_t> _cancelled{0};
    std::atomic<std::uint64_t> _stolen{0};
    std::atomic<std::uint64_t> _parks{0};
    std::atomic<std::uint64_t> _unparks{0};
};

/**
 * A latch that releases waiters once its count reaches zero.
 *
 * The count is a single atomic: countDown() is lock-free until the
 * final decrement, which takes the mutex only to publish the wakeup
 * to blocked waiters. Counting below zero is an invariant violation
 * and panics.
 */
class CountdownLatch
{
  public:
    explicit CountdownLatch(std::size_t count);

    /** Decrement; releases waiters at zero. Extra counts panic. */
    void countDown();

    /** True when the count already reached zero (never blocks). */
    bool tryWait() const;

    /** Block until the count reaches zero. */
    void wait();

    /**
     * Block until the count reaches zero or `timeout` elapses.
     * @return true when the latch was released, false on timeout.
     */
    bool waitFor(std::chrono::nanoseconds timeout);

  private:
    std::atomic<std::ptrdiff_t> _count;
    std::mutex _mutex;
    std::condition_variable _cv;
};

} // namespace stats::threading
