/**
 * @file
 * A fixed-size thread pool.
 *
 * The paper's runtime "includes an efficient thread pool
 * implementation (shared with all state dependences) to minimize
 * thread creation overhead" (section 3.4). This pool backs the
 * real-thread executor; workers are created once and jobs are
 * dispatched through a mutex-protected queue.
 */

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace stats::threading {

/** Fixed-size pool of worker threads executing queued jobs FIFO. */
class ThreadPool
{
  public:
    using Job = std::function<void()>;

    /** Spawn `threads` workers (at least 1). */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending jobs are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue a job. Safe to call from worker threads. */
    void submit(Job job);

    /** Block until the queue is empty and all workers are idle. */
    void waitIdle();

    int threadCount() const { return static_cast<int>(_workers.size()); }

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::deque<Job> _queue;
    std::mutex _mutex;
    std::condition_variable _wake;
    std::condition_variable _idle;
    std::size_t _active = 0;
    bool _shutdown = false;
};

/** A latch that releases waiters once its count reaches zero. */
class CountdownLatch
{
  public:
    explicit CountdownLatch(std::size_t count);

    /** Decrement; releases waiters at zero. Extra counts are errors. */
    void countDown();

    /** Block until the count reaches zero. */
    void wait();

  private:
    std::mutex _mutex;
    std::condition_variable _cv;
    std::size_t _count;
};

} // namespace stats::threading
