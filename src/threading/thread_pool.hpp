/**
 * @file
 * A fixed-size work-stealing thread pool.
 *
 * The paper's runtime "includes an efficient thread pool
 * implementation (shared with all state dependences) to minimize
 * thread creation overhead" (section 3.4). The original reproduction
 * funneled every job through one mutex-protected queue; this version
 * is a work-stealing scheduler so that dispatch overhead stops
 * competing with the parallelism the speculation engine exists to
 * create (docs/INTERNALS.md "The work-stealing scheduler"):
 *
 *  - each worker owns a Chase–Lev deque (owner push/pop at the
 *    bottom, lock-free steal at the top); jobs submitted from a
 *    worker thread go to its own deque, external submissions go to a
 *    bounded lock-free injector queue (with a mutex-protected
 *    overflow list so submission never blocks or fails);
 *  - a worker that submits while its "next task" slot is empty
 *    bypasses the deque entirely: the task runs immediately after
 *    the current one, so continuation chains (the engine's
 *    commit-cascade pattern) pay no queue, fence, or wake cost;
 *  - idle workers *steal half*: one CAS per item, but a successful
 *    round takes up to half the victim's visible backlog, runs the
 *    oldest task and keeps the rest in the thief's own deque — one
 *    migration amortizes the whole batch (docs/INTERNALS.md §4);
 *  - workers spin a bounded number of rounds before parking on a
 *    per-worker condition variable with a timed backstop; submissions
 *    only pay a wake syscall when no worker is spinning;
 *  - completion accounting is a single atomic pending counter;
 *    waitIdle() blocks on it without touching any queue lock;
 *  - submitBatch() enqueues a whole group of tasks in one operation
 *    and performs one wake decision for the lot;
 *  - a task's cancellation flag is checked *before* dispatch, so a
 *    cancelled task never occupies a worker with real work.
 *
 * Shutdown semantics (explicit, tested): the destructor **drains** —
 * every job already submitted, plus any job spawned by a running job,
 * is executed before the workers exit. Use waitIdle() first if you
 * need a quiescent point; submitting from outside the pool while the
 * destructor runs is undefined (as it was for the global-queue pool).
 *
 * Scheduler observability: with the trace layer active the pool
 * records TaskStolen, WorkerPark, WorkerUnpark, and QueueDepth events
 * (schema: docs/OBSERVABILITY.md §2); lightweight counters
 * (`stats()`) are always on.
 */

#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/timer.hpp"
#include "threading/primitives.hpp"
#include "threading/unique_function.hpp"

namespace stats::threading {

/** Shared cancellation flag (the shape of exec::CancelToken). */
using CancelFlag = std::shared_ptr<std::atomic<bool>>;

/**
 * One unit of pool work. `run(cancelled)` is invoked exactly once on
 * a worker thread; `cancelled` is true when the cancel flag was set
 * before dispatch (the callee decides what a skipped task still does,
 * e.g. fire a completion callback).
 */
struct PoolTask
{
    UniqueFunction<void(bool cancelled)> run;

    /** Optional: checked once, immediately before dispatch. */
    CancelFlag cancel;
};

/** Fixed-size pool of workers executing jobs via work stealing. */
class ThreadPool
{
  public:
    using Job = UniqueFunction<void()>;

    /**
     * Monotonic scheduler counters; always on. Worker-side counters
     * are sharded per worker (plain load/store on owner-only atomics,
     * no RMW on the execution fast path) and summed on read.
     */
    struct Stats
    {
        std::uint64_t submitted = 0; ///< Tasks accepted.
        std::uint64_t executed = 0;  ///< Tasks run (incl. cancelled).
        std::uint64_t cancelled = 0; ///< Tasks skipped via their flag.
        std::uint64_t stolen = 0;    ///< Tasks taken from another worker.
        std::uint64_t stealBatches = 0; ///< Steal rounds that got >= 1.
        std::uint64_t parks = 0;     ///< Times a worker blocked.
        std::uint64_t unparks = 0;   ///< Times a parked worker woke.
    };

    /** Spawn `threads` workers (at least 1). */
    explicit ThreadPool(int threads);

    /** Joins all workers; pending jobs are completed first (drains). */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /**
     * Enqueue a job (any nullary callable). Safe to call from worker
     * threads. A template rather than `submit(Job)`: wrapping the
     * caller's closure into a type-erased Job first and then into the
     * task's run function would nest one 56-byte wrapper inside
     * another, overflowing the small-buffer storage — a heap
     * allocation on every plain-lambda submission. Wrapping the
     * caller's closure exactly once keeps small captures inline.
     */
    template <class F,
              class = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, PoolTask> &&
                  std::is_invocable_v<std::decay_t<F> &>>>
    void
    submit(F &&job)
    {
        // Callables with an emptiness state (std::function, Job)
        // must fail at submission, not when a worker invokes them.
        if constexpr (std::is_constructible_v<bool,
                                              std::decay_t<F> &>) {
            if (!job)
                panicEmptyJob();
        }
        PoolTask task;
        task.run = [fn = std::forward<F>(job)](bool) mutable {
            fn();
        };
        submit(std::move(task));
    }

    /** Enqueue a cancellable task. Safe to call from worker threads. */
    void submit(PoolTask task);

    /** Enqueue several tasks with a single wake decision. */
    void submitBatch(std::vector<PoolTask> tasks);

    /** Block until no submitted job (or job it spawned) remains. */
    void waitIdle();

    int threadCount() const { return static_cast<int>(_workers.size()); }

    /** Pool-lifetime wall clock, seconds (steady, starts at 0). */
    double clockSeconds() const { return _clock.elapsedSeconds(); }

    Stats stats() const;

  private:
    struct TaskNode;
    struct Worker;

    [[noreturn]] static void panicEmptyJob();

    void workerLoop(int index);
    bool runOneTask(Worker &self);
    TaskNode *tryStealFrom(Worker &self, bool desperate);
    bool popShared(PoolTask &out);
    void pushShared(PoolTask task);
    void enqueue(PoolTask task);
    bool anyWorkVisible() const;
    void wakeWorkers(std::size_t want);
    void wakeForLocalSubmit();
    void runTask(PoolTask task, Worker &self);
    void runNode(TaskNode *node, Worker &self);
    void finishMany(std::size_t n);
    void park(Worker &self);

    std::vector<std::unique_ptr<Worker>> _workers;
    // External submissions carry PoolTask by value: with the job
    // wrapper's inline storage a small closure travels from submit()
    // to a worker with zero heap traffic. Only worker-local deques
    // need stable pointers (Chase-Lev slots), so only worker-side
    // submissions use heap nodes — recycled through a per-worker
    // freelist.
    MpmcBoundedQueue<PoolTask> _injector;
    std::mutex _overflowMutex;
    std::deque<PoolTask> _overflow;
    std::atomic<std::size_t> _overflowSize{0};

    std::atomic<std::size_t> _pending{0};
    std::atomic<int> _spinners{0};
    std::atomic<int> _parkedCount{0};
    std::atomic<bool> _shutdown{false};

    std::mutex _idleMutex;
    std::condition_variable _idleCv;
    std::atomic<int> _idleWaiters{0};

    support::Timer _clock;

    // No dedicated submission counter: stats() derives `submitted`
    // from the per-worker execution shards plus `_pending`, so the
    // submit fast path performs exactly one shared atomic RMW (the
    // pending count waitIdle depends on).
};

/**
 * A latch that releases waiters once its count reaches zero.
 *
 * The count is a single atomic: countDown() is lock-free until the
 * final decrement, which takes the mutex only to publish the wakeup
 * to blocked waiters. Counting below zero is an invariant violation
 * and panics.
 */
class CountdownLatch
{
  public:
    explicit CountdownLatch(std::size_t count);

    /** Decrement; releases waiters at zero. Extra counts panic. */
    void countDown();

    /** True when the count already reached zero (never blocks). */
    bool tryWait() const;

    /** Block until the count reaches zero. */
    void wait();

    /**
     * Block until the count reaches zero or `timeout` elapses.
     * @return true when the latch was released, false on timeout.
     */
    bool waitFor(std::chrono::nanoseconds timeout);

  private:
    std::atomic<std::ptrdiff_t> _count;
    std::mutex _mutex;
    std::condition_variable _cv;
};

} // namespace stats::threading
