#include "threading/thread_pool.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "observability/trace.hpp"
#include "support/log.hpp"
#include "threading/work_steal_deque.hpp"

namespace stats::threading {

namespace {

/** Injector ring capacity; beyond it submissions spill to overflow. */
constexpr std::size_t kInjectorCapacity = 32768;

/**
 * Steal/probe rounds an idle worker spins (yielding between rounds)
 * before parking. Deliberately small: on an oversubscribed host a
 * long spin phase steals cycles from the threads that have work.
 */
constexpr int kSpinRounds = 4;

/** Recycled deque nodes kept per worker before freeing to the heap. */
constexpr std::size_t kFreeNodeCap = 256;

/** Max tasks one successful steal round migrates (first + kept). */
constexpr std::size_t kStealBatchCap = 8;

/**
 * Spin round after which an empty-handed thief starts raiding
 * victims' next-task slots (see tryStealFrom). Late enough that a
 * continuation whose owner is merely between tasks is never taken;
 * early enough that a slot stranded behind a blocking task is found
 * within a few yields. Derived from kSpinRounds so the desperate
 * rounds can never be tuned out of existence: a spin phase that
 * parked without ever probing the slots would let a blocking task
 * strand its own submission until the park backstop — and with the
 * backstop alone, re-park forever without taking it.
 */
constexpr int kSlotStealRound = kSpinRounds / 2;

/** Injector tasks a worker runs per visit before re-probing. */
constexpr std::size_t kExternalBatch = 32;

/**
 * Timed-park backstop. The submit path orders its queue publish
 * against the parked-count probe with plain seq_cst accesses, not a
 * full fence (see wakeWorkers); the one theoretical interleaving
 * where both sides miss each other is healed here — a parked worker
 * re-probes the queues at this interval instead of sleeping forever.
 */
constexpr std::chrono::milliseconds kParkBackstop{1};

/** Identifies the pool (if any) the current thread works for. */
struct WorkerSlot
{
    const void *pool = nullptr;
    int index = -1;
};

thread_local WorkerSlot t_worker;

/** Owner-only counter bump: no RMW, just a relaxed load + store. */
inline void
bump(std::atomic<std::uint64_t> &counter, std::uint64_t n = 1)
{
    counter.store(counter.load(std::memory_order_relaxed) + n,
                  std::memory_order_relaxed);
}

} // namespace

/**
 * Heap node carrying one worker-submitted task through a Chase-Lev
 * deque (whose slots must be plain pointers). Externally submitted
 * tasks travel by value through the injector and never touch one.
 */
struct ThreadPool::TaskNode
{
    PoolTask task;
};

struct ThreadPool::Worker
{
    WorkStealDeque<TaskNode> deque{256};

    /**
     * The "next task" slot: a worker-side submission lands here when
     * the slot is free and runs immediately after the current task —
     * no deque traffic, no steal exposure, no wake. Only the owner
     * publishes into it (plain store after reading null); consumers
     * take it with an exchange, because there are two of them: the
     * owner's scheduling loop, and — as a last resort — a thief that
     * found nothing anywhere else (see tryStealFrom). The thief path
     * exists for liveness, not throughput: a task that blocks waiting
     * for work it just submitted would otherwise strand that work in
     * a slot nobody can see (the owner is busy blocking, and a
     * worker cannot park or exit with its slot occupied — the
     * scheduling loop consumes it first).
     */
    std::atomic<TaskNode *> nextSlot{nullptr};

    /** Node cache, touched only by this worker's own thread. */
    std::vector<TaskNode *> freeNodes;

    /**
     * Execution-side counters, sharded per worker and summed by
     * stats(). Written only by the owning thread with plain
     * load/store (no RMW); read by anyone, relaxed.
     */
    struct alignas(64) LocalStats
    {
        std::atomic<std::uint64_t> executed{0};
        std::atomic<std::uint64_t> cancelled{0};
        std::atomic<std::uint64_t> stolen{0};
        std::atomic<std::uint64_t> stealBatches{0};
        std::atomic<std::uint64_t> parks{0};
        std::atomic<std::uint64_t> unparks{0};
    };
    LocalStats local;

    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<bool> parked{false};
    bool signaled = false; ///< Guarded by `mutex`.

    std::uint64_t rng = 0; ///< Victim-selection xorshift state.

    std::thread thread;

    ~Worker()
    {
        delete nextSlot.load(std::memory_order_relaxed);
        for (TaskNode *node : freeNodes)
            delete node;
    }
};

ThreadPool::ThreadPool(int threads) : _injector(kInjectorCapacity)
{
    const int n = std::max(1, threads);
    _workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto worker = std::make_unique<Worker>();
        worker->rng =
            (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1)) |
            1;
        _workers.push_back(std::move(worker));
    }
    // Start only after the worker array is fully built: workers probe
    // each other's deques from the first spin round.
    for (int i = 0; i < n; ++i)
        _workers[i]->thread =
            std::thread([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    _shutdown.store(true, std::memory_order_seq_cst);
    for (auto &worker : _workers) {
        std::lock_guard<std::mutex> lock(worker->mutex);
        worker->signaled = true;
        worker->cv.notify_all();
    }
    for (auto &worker : _workers)
        worker->thread.join();
    // Drain-on-shutdown: workers exit only once no task is reachable,
    // so the queues are empty here; free defensively regardless.
    PoolTask task;
    while (popShared(task))
        task = PoolTask{};
    for (auto &worker : _workers)
        while (TaskNode *node = worker->deque.pop())
            delete node;
}

void
ThreadPool::panicEmptyJob()
{
    support::panic("ThreadPool::submit: empty job");
}

void
ThreadPool::submit(PoolTask task)
{
    if (!task.run)
        support::panic("ThreadPool::submit: empty job");
    _pending.fetch_add(1, std::memory_order_acq_rel);
    if (t_worker.pool == this) {
        Worker &self = *_workers[static_cast<std::size_t>(t_worker.index)];
        if (self.nextSlot.load(std::memory_order_relaxed) == nullptr) {
            // Continuation fast path: park the task in the slot; the
            // scheduling loop runs it right after the current task.
            // Nothing to wake — a sibling only looks at the slot
            // after it found every queue empty. Only the owner
            // stores non-null, so load-then-store cannot double-
            // publish; the release pairs with the consumers'
            // acquire exchange.
            TaskNode *node;
            if (!self.freeNodes.empty()) {
                node = self.freeNodes.back();
                self.freeNodes.pop_back();
                node->task = std::move(task);
            } else {
                node = new TaskNode{std::move(task)};
            }
            self.nextSlot.store(node, std::memory_order_release);
            return;
        }
        enqueue(std::move(task));
        wakeForLocalSubmit();
    } else {
        enqueue(std::move(task));
        wakeWorkers(1);
    }
}

void
ThreadPool::submitBatch(std::vector<PoolTask> tasks)
{
    if (tasks.empty())
        return;
    for (const auto &task : tasks)
        if (!task.run)
            support::panic("ThreadPool::submitBatch: empty job");
    _pending.fetch_add(tasks.size(), std::memory_order_acq_rel);
    if (t_worker.pool == this) {
        for (auto &task : tasks)
            enqueue(std::move(task));
    } else {
        // Fill the lock-free ring, then spill the remainder to the
        // overflow list under a single lock for the whole batch.
        std::size_t i = 0;
        while (i < tasks.size() && _injector.tryPushFrom(tasks[i]))
            ++i;
        if (i < tasks.size()) {
            std::lock_guard<std::mutex> lock(_overflowMutex);
            for (; i < tasks.size(); ++i)
                _overflow.push_back(std::move(tasks[i]));
            _overflowSize.store(_overflow.size(),
                                std::memory_order_release);
        }
    }
    wakeWorkers(tasks.size());
}

void
ThreadPool::enqueue(PoolTask task)
{
    if (t_worker.pool == this) {
        // Worker-side submission: the Chase-Lev slots are pointers,
        // so wrap in a node — recycled via the worker's own freelist,
        // which only this thread touches.
        Worker &self = *_workers[static_cast<std::size_t>(t_worker.index)];
        TaskNode *node;
        if (!self.freeNodes.empty()) {
            node = self.freeNodes.back();
            self.freeNodes.pop_back();
            node->task = std::move(task);
        } else {
            node = new TaskNode{std::move(task)};
        }
        self.deque.push(node);
    } else {
        pushShared(std::move(task));
    }
}

void
ThreadPool::pushShared(PoolTask task)
{
    if (_injector.tryPushFrom(task))
        return;
    std::lock_guard<std::mutex> lock(_overflowMutex);
    _overflow.push_back(std::move(task));
    _overflowSize.store(_overflow.size(), std::memory_order_release);
}

bool
ThreadPool::popShared(PoolTask &out)
{
    if (auto task = _injector.tryPop()) {
        out = std::move(*task);
        return true;
    }
    if (_overflowSize.load(std::memory_order_acquire) == 0)
        return false;
    std::lock_guard<std::mutex> lock(_overflowMutex);
    if (_overflow.empty())
        return false;
    out = std::move(_overflow.front());
    _overflow.pop_front();
    // Bulk-refill the ring while we hold the lock: the spill drains
    // back through the lock-free injector instead of costing every
    // worker one mutex round trip per task.
    while (!_overflow.empty() &&
           _injector.tryPushFrom(_overflow.front()))
        _overflow.pop_front();
    _overflowSize.store(_overflow.size(), std::memory_order_release);
    return true;
}

/**
 * Wake up to `want` workers for freshly enqueued work. Spinning
 * workers count toward the target (they will find the tasks without a
 * syscall); beyond that, parked workers are unparked. When every
 * worker is busy running, nothing to do: each probes the queues
 * again as soon as its current task finishes.
 *
 * Ordering: the previous revision issued a full seq_cst fence here to
 * close the store-buffering race against park() (publish task, then
 * probe parked-count vs. publish parked-count, then probe queues).
 * That fence taxed *every* external submission. It is now a plain
 * seq_cst load of the parked count: on the dominant paths this is
 * exactly as good (a seq_cst RMW in park() orders the worker side),
 * and the one residual interleaving where the submitter reads a stale
 * zero *and* the worker's re-probe misses the task is bounded by the
 * worker's timed-park backstop — it re-probes the queues within
 * kParkBackstop instead of sleeping forever. A lost wake is thereby a
 * latency blip, never a liveness bug (docs/INTERNALS.md §4).
 */
void
ThreadPool::wakeWorkers(std::size_t want)
{
    if (_parkedCount.load(std::memory_order_seq_cst) == 0)
        return; // Nobody parked: spinners/busy workers will probe.
    const auto spinning = static_cast<std::size_t>(
        std::max(0, _spinners.load(std::memory_order_relaxed)));
    if (spinning >= want)
        return;
    std::size_t woken = 0;
    for (auto &worker : _workers) {
        if (spinning + woken >= want)
            break;
        if (!worker->parked.load(std::memory_order_relaxed))
            continue;
        std::lock_guard<std::mutex> lock(worker->mutex);
        if (!worker->parked.load(std::memory_order_relaxed))
            continue; // Woke on its own while we took the lock.
        // The waker retires the registration, not the wakee: the
        // parked count drops to its true value immediately, so the
        // submit fast path stops probing workers the moment every
        // parked one has a wake in flight — not only once the woken
        // threads get CPU time and deregister themselves (an
        // unbounded window on an oversubscribed host, during which
        // every submit would scan the whole worker array).
        worker->parked.store(false, std::memory_order_relaxed);
        _parkedCount.fetch_sub(1, std::memory_order_relaxed);
        worker->signaled = true;
        worker->cv.notify_one();
        ++woken;
    }
}

/**
 * Wake decision for a task pushed to the submitting *worker's own*
 * deque. Unlike external submission, a missed wake here can never
 * cost liveness — the owner itself pops the task once its current
 * one finishes, waitIdle() completes, and shutdown signals every
 * worker — only momentary parallelism. So the hot path is two
 * relaxed loads and no fence: we only pay the scan protocol when a
 * sibling actually looks parked and nobody is already searching.
 */
void
ThreadPool::wakeForLocalSubmit()
{
    if (_spinners.load(std::memory_order_relaxed) > 0)
        return; // A searcher will find it without a syscall.
    if (_parkedCount.load(std::memory_order_relaxed) == 0)
        return; // Every sibling is busy or already searching.
    wakeWorkers(1);
}

void
ThreadPool::waitIdle()
{
    if (_pending.load(std::memory_order_acquire) == 0)
        return;
    // Registration and the pending re-check are both seq_cst, pairing
    // with finishMany()'s seq_cst decrement + waiter load: either the
    // decrementer sees us registered (and notifies under the mutex),
    // or our re-check sees pending == 0.
    _idleWaiters.fetch_add(1, std::memory_order_seq_cst);
    {
        std::unique_lock<std::mutex> lock(_idleMutex);
        _idleCv.wait(lock, [this] {
            return _pending.load(std::memory_order_seq_cst) == 0;
        });
    }
    _idleWaiters.fetch_sub(1, std::memory_order_relaxed);
}

void
ThreadPool::finishMany(std::size_t n)
{
    if (_pending.fetch_sub(n, std::memory_order_seq_cst) != n)
        return;
    // Reached zero. Waiters register (seq_cst) before re-checking the
    // counter, so either we see them here or they see zero pending.
    if (_idleWaiters.load(std::memory_order_seq_cst) > 0) {
        std::lock_guard<std::mutex> lock(_idleMutex);
        _idleCv.notify_all();
    }
}

/** Execute one task. Completion accounting is the caller's (see
 * finishMany): the injector path batches several executions into one
 * pending decrement, saving a seq_cst RMW per task. */
void
ThreadPool::runTask(PoolTask task, Worker &self)
{
    const bool cancelled =
        task.cancel && task.cancel->load(std::memory_order_acquire);
    if (cancelled)
        bump(self.local.cancelled);
    task.run(cancelled);
    // Destroy the closure before publishing completion: once
    // waitIdle() returns, no captured state is still alive on a
    // worker (matches the behavior callers relied on before).
    task = PoolTask{};
    bump(self.local.executed);
}

void
ThreadPool::runNode(TaskNode *node, Worker &self)
{
    PoolTask task = std::move(node->task);
    if (self.freeNodes.size() < kFreeNodeCap)
        self.freeNodes.push_back(node);
    else
        delete node;
    runTask(std::move(task), self);
    finishMany(1);
}

void
ThreadPool::workerLoop(int index)
{
    t_worker.pool = this;
    t_worker.index = index;
    Worker &self = *_workers[static_cast<std::size_t>(index)];
    for (;;) {
        if (runOneTask(self))
            continue;
        if (_shutdown.load(std::memory_order_acquire)) {
            // Drain-on-shutdown: exit only when no task is reachable
            // anywhere; a running sibling may still spawn into its
            // own deque or slot, which it drains itself before
            // exiting (the loop above consumes the slot first, so no
            // worker can exit with its slot occupied).
            if (!anyWorkVisible())
                return;
            std::this_thread::yield();
            continue;
        }
        park(self);
    }
}

bool
ThreadPool::runOneTask(Worker &self)
{
    // The next-task slot outranks everything: it is the tail of the
    // continuation chain the worker is already executing.
    if (TaskNode *node =
            self.nextSlot.exchange(nullptr, std::memory_order_acquire)) {
        runNode(node, self);
        return true;
    }
    if (TaskNode *node = self.deque.pop()) {
        runNode(node, self);
        return true;
    }
    PoolTask task;
    if (popShared(task)) {
        // Injector batch: drain up to kExternalBatch tasks in one
        // visit and retire them with a single pending decrement.
        // Batching delays waitIdle by at most the batch tail — it
        // can never release it early. A continuation parked in the
        // next-task slot interrupts the batch (it belongs to the
        // chain the slot task continues).
        std::size_t done = 0;
        for (;;) {
            runTask(std::move(task), self);
            ++done;
            if (done >= kExternalBatch ||
                self.nextSlot.load(std::memory_order_relaxed) !=
                    nullptr ||
                !popShared(task))
                break;
        }
        finishMany(done);
        return true;
    }
    // Spin-then-park: bounded stealing rounds, yielding between them
    // so co-scheduled threads with work make progress.
    _spinners.fetch_add(1, std::memory_order_seq_cst);
    TaskNode *node = nullptr;
    bool found = false;
    for (int round = 0; round < kSpinRounds; ++round) {
        node = tryStealFrom(self, round >= kSlotStealRound);
        if (node || popShared(task)) {
            found = true;
            break;
        }
        if (_shutdown.load(std::memory_order_relaxed))
            break;
        std::this_thread::yield();
    }
    _spinners.fetch_sub(1, std::memory_order_seq_cst);
    if (node) {
        runNode(node, self);
        return true;
    }
    if (found) {
        runTask(std::move(task), self);
        finishMany(1);
        return true;
    }
    return false;
}

/**
 * Steal-half: probe victims in randomized order; on a hit, take up to
 * half of the victim's visible backlog (capped at kStealBatchCap).
 * Chase-Lev tops can only be claimed one CAS at a time — a multi-item
 * CAS would race the owner's pop of non-last elements — so the batch
 * is a bounded run of single steals. The first task is returned to
 * run now; the rest go to the thief's own deque, where they are
 * cheaper to schedule than behind the victim's contended top (and
 * remain stealable by others).
 *
 * `desperate` additionally raids victims' next-task slots. That is
 * deliberately kept off the early spin rounds: the slot holds the
 * continuation its owner is about to run, and stealing it eagerly
 * would turn every continuation chain into cross-worker migration.
 * After several empty rounds the calculus flips — the only remaining
 * explanation for nonzero pending work is a slot whose owner is stuck
 * inside a long (or blocking) task, and leaving it there is a
 * liveness bug, not a locality win.
 */
ThreadPool::TaskNode *
ThreadPool::tryStealFrom(Worker &self, bool desperate)
{
    const std::size_t n = _workers.size();
    if (n <= 1)
        return nullptr;
    // xorshift64*: randomized victim order, distinct per worker.
    self.rng ^= self.rng >> 12;
    self.rng ^= self.rng << 25;
    self.rng ^= self.rng >> 27;
    const std::size_t start =
        static_cast<std::size_t>(self.rng * 0x2545f4914f6cdd1dull) % n;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t victim = (start + i) % n;
        Worker &other = *_workers[victim];
        if (&other == &self)
            continue;
        TaskNode *first = other.deque.steal();
        if (!first && desperate &&
            other.nextSlot.load(std::memory_order_relaxed) != nullptr)
            first = other.nextSlot.exchange(nullptr,
                                            std::memory_order_acquire);
        if (!first)
            continue;
        std::size_t extra = 0;
        const std::size_t want = std::min(
            other.deque.sizeApprox() / 2, kStealBatchCap - 1);
        for (; extra < want; ++extra) {
            TaskNode *node = other.deque.steal();
            if (!node)
                break;
            self.deque.push(node);
        }
        bump(self.local.stolen, 1 + extra);
        bump(self.local.stealBatches);
        if (obs::traceActive()) {
            obs::Trace &trace = obs::Trace::global();
            trace.record(obs::EventType::TaskStolen, -1, -1,
                         static_cast<std::int64_t>(1 + extra),
                         _clock.elapsedSeconds(),
                         trace.threadTrack(),
                         static_cast<std::int64_t>(victim));
        }
        return first;
    }
    return nullptr;
}

bool
ThreadPool::anyWorkVisible() const
{
    if (_injector.approxSize() > 0 ||
        _overflowSize.load(std::memory_order_acquire) > 0)
        return true;
    for (const auto &worker : _workers)
        if (worker->deque.sizeApprox() > 0 ||
            worker->nextSlot.load(std::memory_order_relaxed) !=
                nullptr)
            return true;
    return false;
}

void
ThreadPool::park(Worker &self)
{
    if (obs::traceActive()) {
        obs::Trace &trace = obs::Trace::global();
        trace.record(
            obs::EventType::QueueDepth, -1,
            static_cast<std::int64_t>(self.deque.sizeApprox()),
            static_cast<std::int64_t>(_injector.approxSize() +
                                      _overflowSize.load(
                                          std::memory_order_relaxed)),
            _clock.elapsedSeconds(), trace.threadTrack(),
            static_cast<std::int64_t>(
                _pending.load(std::memory_order_relaxed)));
    }
    std::unique_lock<std::mutex> lock(self.mutex);
    self.parked.store(true, std::memory_order_seq_cst);
    _parkedCount.fetch_add(1, std::memory_order_seq_cst);
    // The seq_cst RMW above orders the parked-count publish before
    // the final work probe; it pairs with wakeWorkers()'s seq_cst
    // parked-count load. A concurrent submitter either reads a
    // nonzero count (and unparks us) or we see its task here — and
    // should both probes slip through the one unfenced window, the
    // timed wait below re-probes within kParkBackstop.
    if (anyWorkVisible() || self.signaled ||
        _shutdown.load(std::memory_order_seq_cst)) {
        self.parked.store(false, std::memory_order_relaxed);
        _parkedCount.fetch_sub(1, std::memory_order_relaxed);
        self.signaled = false;
        return;
    }
    bump(self.local.parks);
    if (obs::traceActive()) {
        obs::Trace &trace = obs::Trace::global();
        trace.record(obs::EventType::WorkerPark, -1, -1, -1,
                     _clock.elapsedSeconds(), trace.threadTrack(), 0);
    }
    for (;;) {
        const bool woken = self.cv.wait_for(lock, kParkBackstop, [&] {
            return self.signaled ||
                   _shutdown.load(std::memory_order_relaxed);
        });
        if (woken)
            break;
        if (anyWorkVisible())
            break; // Backstop: a wake was lost; go find the task.
    }
    self.signaled = false;
    // A waker that signaled us already retired the registration (see
    // wakeWorkers); only a self-initiated wake — the timed backstop or
    // shutdown — still holds it. Both sides mutate `parked` under
    // `self.mutex`, so the flag decides ownership unambiguously.
    if (self.parked.load(std::memory_order_relaxed)) {
        self.parked.store(false, std::memory_order_relaxed);
        _parkedCount.fetch_sub(1, std::memory_order_relaxed);
    }
    bump(self.local.unparks);
    if (obs::traceActive()) {
        obs::Trace &trace = obs::Trace::global();
        trace.record(obs::EventType::WorkerUnpark, -1, -1, -1,
                     _clock.elapsedSeconds(), trace.threadTrack(), 0);
    }
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats stats;
    for (const auto &worker : _workers) {
        const auto &local = worker->local;
        stats.executed +=
            local.executed.load(std::memory_order_relaxed);
        stats.cancelled +=
            local.cancelled.load(std::memory_order_relaxed);
        stats.stolen += local.stolen.load(std::memory_order_relaxed);
        stats.stealBatches +=
            local.stealBatches.load(std::memory_order_relaxed);
        stats.parks += local.parks.load(std::memory_order_relaxed);
        stats.unparks +=
            local.unparks.load(std::memory_order_relaxed);
    }
    // Submitted is derived, not counted: a dedicated shared counter
    // would cost one more RMW on every submit for a number that is
    // always "everything that ran plus everything still pending".
    // Exact whenever the pool is externally quiescent (after
    // waitIdle); transiently approximate while tasks are in flight.
    stats.submitted =
        stats.executed + _pending.load(std::memory_order_relaxed);
    return stats;
}

CountdownLatch::CountdownLatch(std::size_t count)
    : _count(static_cast<std::ptrdiff_t>(count))
{
}

void
CountdownLatch::countDown()
{
    const std::ptrdiff_t previous =
        _count.fetch_sub(1, std::memory_order_acq_rel);
    if (previous <= 0)
        support::panic("CountdownLatch counted below zero");
    if (previous == 1) {
        // Final count: publish the release to blocked waiters. The
        // lock orders this notify after any waiter's predicate check.
        std::lock_guard<std::mutex> lock(_mutex);
        _cv.notify_all();
    }
}

bool
CountdownLatch::tryWait() const
{
    return _count.load(std::memory_order_acquire) <= 0;
}

void
CountdownLatch::wait()
{
    if (tryWait())
        return;
    std::unique_lock<std::mutex> lock(_mutex);
    _cv.wait(lock, [this] { return tryWait(); });
}

bool
CountdownLatch::waitFor(std::chrono::nanoseconds timeout)
{
    if (tryWait())
        return true;
    std::unique_lock<std::mutex> lock(_mutex);
    return _cv.wait_for(lock, timeout, [this] { return tryWait(); });
}

} // namespace stats::threading
