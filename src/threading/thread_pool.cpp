#include "threading/thread_pool.hpp"

#include <algorithm>
#include <thread>

#include "observability/trace.hpp"
#include "support/log.hpp"
#include "threading/work_steal_deque.hpp"

namespace stats::threading {

namespace {

/** Injector ring capacity; beyond it submissions spill to overflow. */
constexpr std::size_t kInjectorCapacity = 4096;

/**
 * Steal/probe rounds an idle worker spins (yielding between rounds)
 * before parking. Deliberately small: on an oversubscribed host a
 * long spin phase steals cycles from the threads that have work.
 */
constexpr int kSpinRounds = 16;

/** Recycled deque nodes kept per worker before freeing to the heap. */
constexpr std::size_t kFreeNodeCap = 128;

/** Identifies the pool (if any) the current thread works for. */
struct WorkerSlot
{
    const void *pool = nullptr;
    int index = -1;
};

thread_local WorkerSlot t_worker;

} // namespace

/**
 * Heap node carrying one worker-submitted task through a Chase-Lev
 * deque (whose slots must be plain pointers). Externally submitted
 * tasks travel by value through the injector and never touch one.
 */
struct ThreadPool::TaskNode
{
    PoolTask task;
};

struct ThreadPool::Worker
{
    WorkStealDeque<TaskNode> deque{256};

    /** Node cache, touched only by this worker's own thread. */
    std::vector<TaskNode *> freeNodes;

    std::mutex mutex;
    std::condition_variable cv;
    std::atomic<bool> parked{false};
    bool signaled = false; ///< Guarded by `mutex`.

    std::uint64_t rng = 0; ///< Victim-selection xorshift state.

    std::thread thread;

    ~Worker()
    {
        for (TaskNode *node : freeNodes)
            delete node;
    }
};

ThreadPool::ThreadPool(int threads) : _injector(kInjectorCapacity)
{
    const int n = std::max(1, threads);
    _workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        auto worker = std::make_unique<Worker>();
        worker->rng =
            (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(i + 1)) |
            1;
        _workers.push_back(std::move(worker));
    }
    // Start only after the worker array is fully built: workers probe
    // each other's deques from the first spin round.
    for (int i = 0; i < n; ++i)
        _workers[i]->thread =
            std::thread([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    _shutdown.store(true, std::memory_order_seq_cst);
    for (auto &worker : _workers) {
        std::lock_guard<std::mutex> lock(worker->mutex);
        worker->signaled = true;
        worker->cv.notify_all();
    }
    for (auto &worker : _workers)
        worker->thread.join();
    // Drain-on-shutdown: workers exit only once no task is reachable,
    // so the queues are empty here; free defensively regardless.
    PoolTask task;
    while (popShared(task))
        task = PoolTask{};
    for (auto &worker : _workers)
        while (TaskNode *node = worker->deque.pop())
            delete node;
}

void
ThreadPool::submit(Job job)
{
    if (!job)
        support::panic("ThreadPool::submit: empty job");
    PoolTask task;
    task.run = [job = std::move(job)](bool) mutable { job(); };
    submit(std::move(task));
}

void
ThreadPool::submit(PoolTask task)
{
    if (!task.run)
        support::panic("ThreadPool::submit: empty job");
    _pending.fetch_add(1, std::memory_order_acq_rel);
    _submitted.fetch_add(1, std::memory_order_relaxed);
    if (t_worker.pool == this) {
        enqueue(std::move(task));
        wakeForLocalSubmit();
    } else {
        enqueue(std::move(task));
        wakeWorkers(1);
    }
}

void
ThreadPool::submitBatch(std::vector<PoolTask> tasks)
{
    if (tasks.empty())
        return;
    for (const auto &task : tasks)
        if (!task.run)
            support::panic("ThreadPool::submitBatch: empty job");
    _pending.fetch_add(tasks.size(), std::memory_order_acq_rel);
    _submitted.fetch_add(tasks.size(), std::memory_order_relaxed);
    if (t_worker.pool == this) {
        for (auto &task : tasks)
            enqueue(std::move(task));
    } else {
        // Fill the lock-free ring, then spill the remainder to the
        // overflow list under a single lock for the whole batch.
        std::size_t i = 0;
        while (i < tasks.size() && _injector.tryPushFrom(tasks[i]))
            ++i;
        if (i < tasks.size()) {
            std::lock_guard<std::mutex> lock(_overflowMutex);
            for (; i < tasks.size(); ++i)
                _overflow.push_back(std::move(tasks[i]));
            _overflowSize.store(_overflow.size(),
                                std::memory_order_release);
        }
    }
    wakeWorkers(tasks.size());
}

void
ThreadPool::enqueue(PoolTask task)
{
    if (t_worker.pool == this) {
        // Worker-side submission: the Chase-Lev slots are pointers,
        // so wrap in a node — recycled via the worker's own freelist,
        // which only this thread touches.
        Worker &self = *_workers[static_cast<std::size_t>(t_worker.index)];
        TaskNode *node;
        if (!self.freeNodes.empty()) {
            node = self.freeNodes.back();
            self.freeNodes.pop_back();
            node->task = std::move(task);
        } else {
            node = new TaskNode{std::move(task)};
        }
        self.deque.push(node);
    } else {
        pushShared(std::move(task));
    }
}

void
ThreadPool::pushShared(PoolTask task)
{
    if (_injector.tryPushFrom(task))
        return;
    std::lock_guard<std::mutex> lock(_overflowMutex);
    _overflow.push_back(std::move(task));
    _overflowSize.store(_overflow.size(), std::memory_order_release);
}

bool
ThreadPool::popShared(PoolTask &out)
{
    if (auto task = _injector.tryPop()) {
        out = std::move(*task);
        return true;
    }
    if (_overflowSize.load(std::memory_order_acquire) == 0)
        return false;
    std::lock_guard<std::mutex> lock(_overflowMutex);
    if (_overflow.empty())
        return false;
    out = std::move(_overflow.front());
    _overflow.pop_front();
    // Bulk-refill the ring while we hold the lock: the spill drains
    // back through the lock-free injector instead of costing every
    // worker one mutex round trip per task.
    while (!_overflow.empty() &&
           _injector.tryPushFrom(_overflow.front()))
        _overflow.pop_front();
    _overflowSize.store(_overflow.size(), std::memory_order_release);
    return true;
}

/**
 * Wake up to `want` workers for freshly enqueued work. Spinning
 * workers count toward the target (they will find the tasks without a
 * syscall); beyond that, parked workers are unparked. When every
 * worker is busy running, nothing to do: each probes the queues
 * again as soon as its current task finishes.
 */
void
ThreadPool::wakeWorkers(std::size_t want)
{
    // Pairs with the fence in park(): either this thread sees the
    // worker's parked count/flag, or the worker's re-probe sees the
    // task (both sides order a publish before a probe across seq_cst
    // fences, so at least one probe must succeed).
    std::atomic_thread_fence(std::memory_order_seq_cst);
    const auto spinning = static_cast<std::size_t>(
        std::max(0, _spinners.load(std::memory_order_relaxed)));
    if (spinning >= want)
        return;
    // Fast path for the submit loop: nobody parked means nobody to
    // wake — skip the per-worker scan entirely.
    if (_parkedCount.load(std::memory_order_relaxed) == 0)
        return;
    std::size_t woken = 0;
    for (auto &worker : _workers) {
        if (spinning + woken >= want)
            break;
        if (!worker->parked.load(std::memory_order_relaxed))
            continue;
        std::lock_guard<std::mutex> lock(worker->mutex);
        if (!worker->parked.load(std::memory_order_relaxed))
            continue; // Woke on its own while we took the lock.
        worker->parked.store(false, std::memory_order_relaxed);
        worker->signaled = true;
        worker->cv.notify_one();
        ++woken;
    }
}

/**
 * Wake decision for a task pushed to the submitting *worker's own*
 * deque. Unlike external submission, a missed wake here can never
 * cost liveness — the owner itself pops the task once its current
 * one finishes, waitIdle() completes, and shutdown signals every
 * worker — only momentary parallelism. So the hot path is two
 * relaxed loads and no fence: we only pay the full fence + scan
 * protocol when a sibling actually looks parked and nobody is
 * already searching.
 */
void
ThreadPool::wakeForLocalSubmit()
{
    if (_spinners.load(std::memory_order_relaxed) > 0)
        return; // A searcher will find it without a syscall.
    if (_parkedCount.load(std::memory_order_relaxed) == 0)
        return; // Every sibling is busy or already searching.
    wakeWorkers(1);
}

void
ThreadPool::waitIdle()
{
    if (_pending.load(std::memory_order_acquire) == 0)
        return;
    // Registration and the pending re-check are both seq_cst, pairing
    // with finishOne()'s seq_cst decrement + waiter load: either the
    // decrementer sees us registered (and notifies under the mutex),
    // or our re-check sees pending == 0.
    _idleWaiters.fetch_add(1, std::memory_order_seq_cst);
    {
        std::unique_lock<std::mutex> lock(_idleMutex);
        _idleCv.wait(lock, [this] {
            return _pending.load(std::memory_order_seq_cst) == 0;
        });
    }
    _idleWaiters.fetch_sub(1, std::memory_order_relaxed);
}

void
ThreadPool::finishOne()
{
    if (_pending.fetch_sub(1, std::memory_order_seq_cst) != 1)
        return;
    // Reached zero. Waiters register (seq_cst) before re-checking the
    // counter, so either we see them here or they see zero pending.
    if (_idleWaiters.load(std::memory_order_seq_cst) > 0) {
        std::lock_guard<std::mutex> lock(_idleMutex);
        _idleCv.notify_all();
    }
}

void
ThreadPool::runTask(PoolTask task)
{
    const bool cancelled =
        task.cancel && task.cancel->load(std::memory_order_acquire);
    if (cancelled)
        _cancelled.fetch_add(1, std::memory_order_relaxed);
    task.run(cancelled);
    // Destroy the closure before publishing completion: once
    // waitIdle() returns, no captured state is still alive on a
    // worker (matches the behavior callers relied on before).
    task = PoolTask{};
    _executed.fetch_add(1, std::memory_order_relaxed);
    finishOne();
}

void
ThreadPool::runNode(TaskNode *node, Worker &self)
{
    PoolTask task = std::move(node->task);
    if (self.freeNodes.size() < kFreeNodeCap)
        self.freeNodes.push_back(node);
    else
        delete node;
    runTask(std::move(task));
}

void
ThreadPool::workerLoop(int index)
{
    t_worker.pool = this;
    t_worker.index = index;
    Worker &self = *_workers[static_cast<std::size_t>(index)];
    for (;;) {
        if (runOneTask(self))
            continue;
        if (_shutdown.load(std::memory_order_acquire)) {
            // Drain-on-shutdown: exit only when no task is reachable
            // anywhere; a running sibling may still spawn into its
            // own deque, which it drains itself before exiting.
            if (!anyWorkVisible())
                return;
            std::this_thread::yield();
            continue;
        }
        park(self);
    }
}

bool
ThreadPool::runOneTask(Worker &self)
{
    if (TaskNode *node = self.deque.pop()) {
        runNode(node, self);
        return true;
    }
    PoolTask task;
    if (popShared(task)) {
        runTask(std::move(task));
        return true;
    }
    // Spin-then-park: bounded stealing rounds, yielding between them
    // so co-scheduled threads with work make progress.
    _spinners.fetch_add(1, std::memory_order_seq_cst);
    TaskNode *node = nullptr;
    bool found = false;
    for (int round = 0; round < kSpinRounds; ++round) {
        node = tryStealFrom(self);
        if (node || popShared(task)) {
            found = true;
            break;
        }
        if (_shutdown.load(std::memory_order_relaxed))
            break;
        std::this_thread::yield();
    }
    _spinners.fetch_sub(1, std::memory_order_seq_cst);
    if (node) {
        runNode(node, self);
        return true;
    }
    if (found) {
        runTask(std::move(task));
        return true;
    }
    return false;
}

ThreadPool::TaskNode *
ThreadPool::tryStealFrom(Worker &self)
{
    const std::size_t n = _workers.size();
    if (n <= 1)
        return nullptr;
    // xorshift64*: randomized victim order, distinct per worker.
    self.rng ^= self.rng >> 12;
    self.rng ^= self.rng << 25;
    self.rng ^= self.rng >> 27;
    const std::size_t start =
        static_cast<std::size_t>(self.rng * 0x2545f4914f6cdd1dull) % n;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t victim = (start + i) % n;
        Worker &other = *_workers[victim];
        if (&other == &self)
            continue;
        if (TaskNode *node = other.deque.steal()) {
            _stolen.fetch_add(1, std::memory_order_relaxed);
            if (obs::traceActive()) {
                obs::Trace &trace = obs::Trace::global();
                trace.record(obs::EventType::TaskStolen, -1, -1, -1,
                             _clock.elapsedSeconds(),
                             trace.threadTrack(),
                             static_cast<std::int64_t>(victim));
            }
            return node;
        }
    }
    return nullptr;
}

bool
ThreadPool::anyWorkVisible() const
{
    if (_injector.approxSize() > 0 ||
        _overflowSize.load(std::memory_order_acquire) > 0)
        return true;
    for (const auto &worker : _workers)
        if (worker->deque.sizeApprox() > 0)
            return true;
    return false;
}

void
ThreadPool::park(Worker &self)
{
    if (obs::traceActive()) {
        obs::Trace &trace = obs::Trace::global();
        trace.record(
            obs::EventType::QueueDepth, -1,
            static_cast<std::int64_t>(self.deque.sizeApprox()),
            static_cast<std::int64_t>(_injector.approxSize() +
                                      _overflowSize.load(
                                          std::memory_order_relaxed)),
            _clock.elapsedSeconds(), trace.threadTrack(),
            static_cast<std::int64_t>(
                _pending.load(std::memory_order_relaxed)));
    }
    std::unique_lock<std::mutex> lock(self.mutex);
    self.parked.store(true, std::memory_order_seq_cst);
    _parkedCount.fetch_add(1, std::memory_order_seq_cst);
    // Pairs with the fence in wakeWorkers(): publish the parked
    // count/flag before the final work probe, so a concurrent
    // submitter either sees a nonzero count (and unparks us) or we
    // see its task here.
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (anyWorkVisible() || self.signaled ||
        _shutdown.load(std::memory_order_seq_cst)) {
        self.parked.store(false, std::memory_order_relaxed);
        _parkedCount.fetch_sub(1, std::memory_order_relaxed);
        self.signaled = false;
        return;
    }
    _parks.fetch_add(1, std::memory_order_relaxed);
    if (obs::traceActive()) {
        obs::Trace &trace = obs::Trace::global();
        trace.record(obs::EventType::WorkerPark, -1, -1, -1,
                     _clock.elapsedSeconds(), trace.threadTrack(), 0);
    }
    self.cv.wait(lock, [&] {
        return self.signaled ||
               _shutdown.load(std::memory_order_relaxed);
    });
    self.signaled = false;
    self.parked.store(false, std::memory_order_relaxed);
    _parkedCount.fetch_sub(1, std::memory_order_relaxed);
    _unparks.fetch_add(1, std::memory_order_relaxed);
    if (obs::traceActive()) {
        obs::Trace &trace = obs::Trace::global();
        trace.record(obs::EventType::WorkerUnpark, -1, -1, -1,
                     _clock.elapsedSeconds(), trace.threadTrack(), 0);
    }
}

ThreadPool::Stats
ThreadPool::stats() const
{
    Stats stats;
    stats.submitted = _submitted.load(std::memory_order_relaxed);
    stats.executed = _executed.load(std::memory_order_relaxed);
    stats.cancelled = _cancelled.load(std::memory_order_relaxed);
    stats.stolen = _stolen.load(std::memory_order_relaxed);
    stats.parks = _parks.load(std::memory_order_relaxed);
    stats.unparks = _unparks.load(std::memory_order_relaxed);
    return stats;
}

CountdownLatch::CountdownLatch(std::size_t count)
    : _count(static_cast<std::ptrdiff_t>(count))
{
}

void
CountdownLatch::countDown()
{
    const std::ptrdiff_t previous =
        _count.fetch_sub(1, std::memory_order_acq_rel);
    if (previous <= 0)
        support::panic("CountdownLatch counted below zero");
    if (previous == 1) {
        // Final count: publish the release to blocked waiters. The
        // lock orders this notify after any waiter's predicate check.
        std::lock_guard<std::mutex> lock(_mutex);
        _cv.notify_all();
    }
}

bool
CountdownLatch::tryWait() const
{
    return _count.load(std::memory_order_acquire) <= 0;
}

void
CountdownLatch::wait()
{
    if (tryWait())
        return;
    std::unique_lock<std::mutex> lock(_mutex);
    _cv.wait(lock, [this] { return tryWait(); });
}

bool
CountdownLatch::waitFor(std::chrono::nanoseconds timeout)
{
    if (tryWait())
        return true;
    std::unique_lock<std::mutex> lock(_mutex);
    return _cv.wait_for(lock, timeout, [this] { return tryWait(); });
}

} // namespace stats::threading
