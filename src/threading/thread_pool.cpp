#include "threading/thread_pool.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace stats::threading {

ThreadPool::ThreadPool(int threads)
{
    const int n = std::max(1, threads);
    _workers.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _shutdown = true;
    }
    _wake.notify_all();
    for (auto &worker : _workers)
        worker.join();
}

void
ThreadPool::submit(Job job)
{
    if (!job)
        support::panic("ThreadPool::submit: empty job");
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _queue.push_back(std::move(job));
    }
    _wake.notify_one();
}

void
ThreadPool::waitIdle()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _idle.wait(lock, [this] { return _queue.empty() && _active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        Job job;
        {
            std::unique_lock<std::mutex> lock(_mutex);
            _wake.wait(lock,
                       [this] { return _shutdown || !_queue.empty(); });
            if (_queue.empty()) {
                if (_shutdown)
                    return;
                continue;
            }
            job = std::move(_queue.front());
            _queue.pop_front();
            ++_active;
        }
        job();
        {
            std::lock_guard<std::mutex> lock(_mutex);
            --_active;
            if (_queue.empty() && _active == 0)
                _idle.notify_all();
        }
    }
}

CountdownLatch::CountdownLatch(std::size_t count) : _count(count) {}

void
CountdownLatch::countDown()
{
    std::lock_guard<std::mutex> lock(_mutex);
    if (_count == 0)
        support::panic("CountdownLatch counted below zero");
    if (--_count == 0)
        _cv.notify_all();
}

void
CountdownLatch::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _cv.wait(lock, [this] { return _count == 0; });
}

} // namespace stats::threading
