/**
 * @file
 * Chase–Lev work-stealing deque.
 *
 * One owner thread pushes and pops at the *bottom* (LIFO, cheap:
 * no atomic RMW except on the last-element race); any number of
 * thief threads steal from the *top* (FIFO) with a single CAS. The
 * memory orderings follow Lê, Pop, Cohen & Zappa Nardelli,
 * "Correct and Efficient Work-Stealing for Weak Memory Models"
 * (PPoPP'13), the C11 formalization of Chase & Lev's original
 * algorithm.
 *
 * The deque stores raw `T*` pointers (ownership is the scheduler's
 * problem): slots must be trivially overwritable while a concurrent
 * steal may still be reading them, which rules out storing non-trivial
 * values inline. The buffer grows geometrically on overflow; retired
 * buffers are kept alive until destruction so a racing steal can
 * never read freed memory.
 */

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace stats::threading {

/** Single-owner, multi-thief deque of `T*` (see file comment). */
template <class T>
class WorkStealDeque
{
  public:
    /** `capacity` is rounded up to a power of two (floor 8). */
    explicit WorkStealDeque(std::size_t capacity = 256)
    {
        std::size_t size = 8;
        while (size < capacity)
            size <<= 1;
        auto initial = std::make_unique<Buffer>(size);
        _buffer.store(initial.get(), std::memory_order_relaxed);
        _buffers.push_back(std::move(initial));
    }

    WorkStealDeque(const WorkStealDeque &) = delete;
    WorkStealDeque &operator=(const WorkStealDeque &) = delete;

    /** Owner only: push one item at the bottom; grows when full. */
    void
    push(T *item)
    {
        const std::int64_t b = _bottom.load(std::memory_order_relaxed);
        const std::int64_t t = _top.load(std::memory_order_acquire);
        Buffer *buffer = _buffer.load(std::memory_order_relaxed);
        if (b - t > static_cast<std::int64_t>(buffer->mask)) {
            buffer = grow(buffer, t, b);
        }
        // Lê et al. publish with a release fence and relaxed stores;
        // the release slot store is equivalent here (and visible to
        // ThreadSanitizer, which does not model fences): it carries
        // the happens-before edge from the item's construction to the
        // thief's acquire load in steal().
        buffer->slot(b).store(item, std::memory_order_release);
        std::atomic_thread_fence(std::memory_order_release);
        _bottom.store(b + 1, std::memory_order_relaxed);
    }

    /** Owner only: pop the most recently pushed item, or nullptr. */
    T *
    pop()
    {
        // Empty fast path without the seq_cst fence below: `top` is
        // monotonic and only the owner moves `bottom`, so a relaxed
        // read showing bottom <= top proves the deque is empty *now*
        // (thieves only ever make it emptier). Idle workers probe
        // their own deque once per scheduling round; this turns that
        // probe into two plain loads.
        {
            const std::int64_t b0 =
                _bottom.load(std::memory_order_relaxed);
            if (b0 <= _top.load(std::memory_order_relaxed))
                return nullptr;
        }
        const std::int64_t b = _bottom.load(std::memory_order_relaxed) - 1;
        Buffer *buffer = _buffer.load(std::memory_order_relaxed);
        _bottom.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        std::int64_t t = _top.load(std::memory_order_relaxed);
        T *item = nullptr;
        if (t <= b) {
            item = buffer->slot(b).load(std::memory_order_relaxed);
            if (t == b) {
                // Last element: race against thieves for it.
                if (!_top.compare_exchange_strong(
                        t, t + 1, std::memory_order_seq_cst,
                        std::memory_order_relaxed)) {
                    item = nullptr; // A thief won.
                }
                _bottom.store(b + 1, std::memory_order_relaxed);
            }
        } else {
            _bottom.store(b + 1, std::memory_order_relaxed);
        }
        return item;
    }

    /** Any thread: steal the oldest item, or nullptr (empty or lost). */
    T *
    steal()
    {
        std::int64_t t = _top.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::int64_t b = _bottom.load(std::memory_order_acquire);
        if (t >= b)
            return nullptr; // Empty.
        Buffer *buffer = _buffer.load(std::memory_order_acquire);
        // Acquire pairs with push()'s release slot store (see there).
        T *item = buffer->slot(t).load(std::memory_order_acquire);
        if (!_top.compare_exchange_strong(t, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            return nullptr; // Lost the race; caller may retry elsewhere.
        }
        return item;
    }

    /**
     * Racy size estimate (never negative). Exact only for the owner
     * between operations; used for wake heuristics and queue-depth
     * trace snapshots.
     */
    std::size_t
    sizeApprox() const
    {
        const std::int64_t b = _bottom.load(std::memory_order_relaxed);
        const std::int64_t t = _top.load(std::memory_order_relaxed);
        return b > t ? static_cast<std::size_t>(b - t) : 0;
    }

  private:
    struct Buffer
    {
        explicit Buffer(std::size_t size)
            : mask(size - 1),
              slots(std::make_unique<std::atomic<T *>[]>(size))
        {
        }

        std::atomic<T *> &
        slot(std::int64_t index)
        {
            return slots[static_cast<std::size_t>(index) & mask];
        }

        std::size_t mask;
        std::unique_ptr<std::atomic<T *>[]> slots;
    };

    /** Owner only: double the buffer, copying the live window. */
    Buffer *
    grow(Buffer *old, std::int64_t top, std::int64_t bottom)
    {
        auto grown = std::make_unique<Buffer>(2 * (old->mask + 1));
        for (std::int64_t i = top; i < bottom; ++i) {
            grown->slot(i).store(
                old->slot(i).load(std::memory_order_relaxed),
                std::memory_order_relaxed);
        }
        Buffer *result = grown.get();
        _buffer.store(result, std::memory_order_release);
        // The old buffer stays allocated (thieves may still read it);
        // it is reclaimed when the deque is destroyed.
        _buffers.push_back(std::move(grown));
        return result;
    }

    std::atomic<std::int64_t> _top{0};
    std::atomic<std::int64_t> _bottom{0};
    std::atomic<Buffer *> _buffer{nullptr};
    std::vector<std::unique_ptr<Buffer>> _buffers; // Owner only.
};

} // namespace stats::threading
