/**
 * @file
 * A move-only type-erased callable with small-buffer optimization.
 *
 * `std::function` requires copyable targets, which forces every task
 * closure submitted to the thread pool to be copy-constructible and
 * invites silent deep copies of captured state (tags, shared
 * pointers, whole `exec::Task`s). The pool's job type is this wrapper
 * instead: targets are moved in exactly once and never copied, so the
 * submit path is move-only end to end.
 *
 * Targets up to `kInlineBytes` that are nothrow-move-constructible
 * live inside the wrapper itself — no heap allocation. This is the
 * scheduler's hot path: the pool's queues carry PoolTask by value, so
 * a small closure travels from submit() to a worker without ever
 * touching the allocator. Larger targets fall back to a single heap
 * allocation, exactly like the unique_ptr-based implementation this
 * replaces.
 */

#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace stats::threading {

template <class Signature>
class UniqueFunction;

/** Move-only callable wrapper; empty by default. */
template <class R, class... Args>
class UniqueFunction<R(Args...)>
{
  public:
    /** Inline storage: closures up to this size avoid the heap. */
    static constexpr std::size_t kInlineBytes = 48;

    UniqueFunction() = default;

    template <class F,
              class = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, UniqueFunction> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    UniqueFunction(F &&callable)
    {
        using Decayed = std::decay_t<F>;
        // Mirror std::function: wrapping an empty function pointer or
        // empty std::function produces an empty wrapper, so
        // `if (fn)` guards keep working across the migration.
        if constexpr (IsStdFunction<Decayed>::value ||
                      std::is_pointer_v<Decayed> ||
                      std::is_member_pointer_v<Decayed>) {
            if (!callable)
                return;
        }
        if constexpr (fitsInline<Decayed>()) {
            ::new (static_cast<void *>(_storage.buffer))
                Decayed(std::forward<F>(callable));
            _ops = &InlineOps<Decayed>::kOps;
        } else {
            _storage.heap = new Decayed(std::forward<F>(callable));
            _ops = &HeapOps<Decayed>::kOps;
        }
    }

    UniqueFunction(UniqueFunction &&other) noexcept { moveFrom(other); }

    UniqueFunction &
    operator=(UniqueFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    UniqueFunction(const UniqueFunction &) = delete;
    UniqueFunction &operator=(const UniqueFunction &) = delete;

    ~UniqueFunction() { reset(); }

    /** Invoke the target; undefined when empty (like std::function). */
    R
    operator()(Args... args)
    {
        return _ops->invoke(&_storage, std::forward<Args>(args)...);
    }

    explicit operator bool() const { return _ops != nullptr; }

  private:
    union Storage
    {
        alignas(alignof(std::max_align_t)) unsigned char
            buffer[kInlineBytes];
        void *heap;
    };

    struct Ops
    {
        R (*invoke)(Storage *, Args &&...);
        /** Move-construct `*dst` from `*src`, then destroy `*src`. */
        void (*relocate)(Storage *dst, Storage *src) noexcept;
        void (*destroy)(Storage *) noexcept;
    };

    template <class T>
    struct IsStdFunction : std::false_type
    {};
    template <class S>
    struct IsStdFunction<std::function<S>> : std::true_type
    {};

    template <class F>
    static constexpr bool
    fitsInline()
    {
        return sizeof(F) <= kInlineBytes &&
               alignof(F) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<F>;
    }

    template <class F>
    struct InlineOps
    {
        static F *
        target(Storage *storage)
        {
            return std::launder(
                reinterpret_cast<F *>(storage->buffer));
        }
        static R
        invoke(Storage *storage, Args &&...args)
        {
            return (*target(storage))(std::forward<Args>(args)...);
        }
        static void
        relocate(Storage *dst, Storage *src) noexcept
        {
            ::new (static_cast<void *>(dst->buffer))
                F(std::move(*target(src)));
            target(src)->~F();
        }
        static void
        destroy(Storage *storage) noexcept
        {
            target(storage)->~F();
        }
        static constexpr Ops kOps = {&invoke, &relocate, &destroy};
    };

    template <class F>
    struct HeapOps
    {
        static F *
        target(Storage *storage)
        {
            return static_cast<F *>(storage->heap);
        }
        static R
        invoke(Storage *storage, Args &&...args)
        {
            return (*target(storage))(std::forward<Args>(args)...);
        }
        static void
        relocate(Storage *dst, Storage *src) noexcept
        {
            dst->heap = src->heap;
            src->heap = nullptr;
        }
        static void
        destroy(Storage *storage) noexcept
        {
            delete target(storage);
        }
        static constexpr Ops kOps = {&invoke, &relocate, &destroy};
    };

    /** Precondition: this is empty. Leaves `other` empty. */
    void
    moveFrom(UniqueFunction &other) noexcept
    {
        if (other._ops) {
            other._ops->relocate(&_storage, &other._storage);
            _ops = other._ops;
            other._ops = nullptr;
        }
    }

    void
    reset() noexcept
    {
        if (_ops) {
            _ops->destroy(&_storage);
            _ops = nullptr;
        }
    }

    Storage _storage;
    const Ops *_ops = nullptr;
};

} // namespace stats::threading
