#include "threading/arena.hpp"

#include <algorithm>

#include "support/log.hpp"

namespace stats::threading {

namespace {

constexpr std::size_t kMinBlockBytes = 4 * 1024;

std::uintptr_t
alignUp(std::uintptr_t value, std::size_t align)
{
    return (value + align - 1) & ~(static_cast<std::uintptr_t>(align) - 1);
}

} // namespace

TaskArena::TaskArena(std::size_t blockBytes)
    : _blockBytes(std::max(blockBytes, kMinBlockBytes))
{
}

TaskArena::~TaskArena()
{
    if (_stats.live != 0) {
        // A leak here means some task record was never destroyed —
        // the engine's contract is that every onComplete path frees
        // its record. Loud beats silent.
        support::panic("TaskArena destroyed with ", _stats.live,
                       " live records");
    }
}

void *
TaskArena::allocate(std::size_t bytes, std::size_t align)
{
    if (bytes == 0)
        bytes = 1;
    // Refills reserve padding headroom: a block base from
    // `new unsigned char[]` is only aligned to the default new
    // alignment, so a stricter `align` may cost up to align-1 bytes.
    const std::size_t need = bytes + align - 1;
    if (_blocks.empty() || _current >= _blocks.size())
        refill(_blocks.size(), need);
    for (;;) {
        Block &block = _blocks[_current];
        // Align the address, not the offset: the base itself carries
        // no alignment guarantee beyond the default.
        const std::uintptr_t base =
            reinterpret_cast<std::uintptr_t>(block.data.get());
        const std::size_t offset =
            static_cast<std::size_t>(
                alignUp(base + block.used, align)) -
            static_cast<std::size_t>(base);
        if (offset + bytes <= block.size) {
            block.used = offset + bytes;
            ++_stats.allocations;
            _stats.bytes += bytes;
            return block.data.get() + offset;
        }
        // Current block exhausted: move to the next (recycled from a
        // previous epoch when available, fresh from the heap when not).
        refill(_current + 1, need);
    }
}

void
TaskArena::refill(std::size_t index, std::size_t minBytes)
{
    bool heap = false;
    if (index >= _blocks.size() || _blocks[index].size < minBytes) {
        Block block;
        block.size = std::max(_blockBytes, minBytes);
        block.data = std::make_unique<unsigned char[]>(block.size);
        heap = true;
        ++_stats.blockAllocs;
        if (index >= _blocks.size()) {
            _blocks.push_back(std::move(block));
            index = _blocks.size() - 1;
        } else {
            // An undersized recycled block is replaced, not leaked:
            // the replacement inherits its slot.
            _blocks[index] = std::move(block);
        }
    }
    _current = index;
    _blocks[_current].used = 0;
    ++_stats.refills;
    if (_refillHook)
        _refillHook(_blocks[_current].size, heap);
}

void
TaskArena::drainEpoch()
{
    if (_stats.live != 0) {
        support::panic("TaskArena::drainEpoch with ", _stats.live,
                       " live records");
    }
    for (Block &block : _blocks)
        block.used = 0;
    _current = 0;
    ++_stats.epoch;
}

} // namespace stats::threading
