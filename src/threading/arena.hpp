/**
 * @file
 * Epoch-reclaimed bump-pointer arena for scheduler task records.
 *
 * The speculation engine used to allocate four `std::shared_ptr`
 * bundles per window task (outputs, final state, checkpoint, work
 * counter) — five heap round trips plus control blocks on the hot
 * path the paper needs to be nearly free. A `TaskArena` replaces the
 * lot with one bump-pointer allocation per task:
 *
 *  - `create<T>()` carves a record out of the current block (a plain
 *    pointer bump in steady state; a block refill only every
 *    `blockBytes` of traffic);
 *  - `destroy()` runs the record's destructor but returns no memory —
 *    a destroyed slot is never handed out again in the same epoch, so
 *    a stale pointer can be detected instead of silently recycled;
 *  - `drainEpoch()` rewinds every block at a quiescent point (the
 *    engine calls it from `join()`, after the executor's `drain()`),
 *    after which the next epoch reuses the same memory. Blocks are
 *    retained across epochs, so a steady-state engine run performs
 *    zero heap allocations after warm-up.
 *
 * Thread-safety contract: all mutation (`create`, `destroy`,
 * `allocate`, `drainEpoch`) must be externally serialized. The engine
 * satisfies this for free — records are created and destroyed only
 * inside executor completion callbacks, which the commit lane
 * serializes with acquire/release ordering (docs/INTERNALS.md §4).
 * `stats()` may be read from any thread that is ordered after the
 * mutations it wants to observe (e.g. after `drain()`).
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace stats::threading {

/** Bump-pointer allocator with epoch reclamation (see file comment). */
class TaskArena
{
  public:
    /** Monotonic allocator counters (live resets as records die). */
    struct Stats
    {
        std::uint64_t allocations = 0; ///< Records handed out, ever.
        std::uint64_t bytes = 0;       ///< Bytes handed out, ever.
        std::uint64_t refills = 0;     ///< Block acquisitions (heap or reuse).
        std::uint64_t blockAllocs = 0; ///< Blocks taken from the heap.
        std::uint64_t live = 0;        ///< Records created minus destroyed.
        std::uint64_t epoch = 0;       ///< drainEpoch() calls so far.
    };

    /** `blockBytes` is the granularity of refills (floor 4 KiB). */
    explicit TaskArena(std::size_t blockBytes = 64 * 1024);

    TaskArena(const TaskArena &) = delete;
    TaskArena &operator=(const TaskArena &) = delete;
    ~TaskArena();

    /**
     * Carve `bytes` aligned to `align` out of the current block.
     * Requests larger than the block size get a dedicated block.
     */
    void *allocate(std::size_t bytes, std::size_t align);

    /** Construct a record in arena storage. */
    template <class T, class... Args>
    T *
    create(Args &&...args)
    {
        void *slot = allocate(sizeof(T), alignof(T));
        ++_stats.live;
        return ::new (slot) T(std::forward<Args>(args)...);
    }

    /**
     * Run the record's destructor. The memory is *not* reusable until
     * the next drainEpoch(): the bump pointer never moves backwards
     * inside an epoch.
     */
    template <class T>
    void
    destroy(T *record)
    {
        if (!record)
            return;
        record->~T();
        --_stats.live;
    }

    /**
     * Rewind all blocks for reuse; the epoch counter advances. Must
     * only be called at a quiescent point with no live records —
     * calling it with records outstanding panics, because the next
     * epoch would hand their storage to someone else.
     */
    void drainEpoch();

    Stats stats() const { return _stats; }

    /**
     * Optional refill observer, fired whenever a new or recycled
     * block becomes current (argument: block size in bytes, and
     * whether it came from the heap). The engine uses it to emit
     * ArenaRefill trace events stamped with executor time.
     */
    void
    setRefillHook(std::function<void(std::size_t, bool heap)> hook)
    {
        _refillHook = std::move(hook);
    }

  private:
    struct Block
    {
        std::unique_ptr<unsigned char[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    /** Make block `index` current, allocating it if needed. */
    void refill(std::size_t index, std::size_t minBytes);

    std::vector<Block> _blocks;
    std::size_t _current = 0; ///< Index of the block being bumped.
    std::size_t _blockBytes;
    Stats _stats;
    std::function<void(std::size_t, bool)> _refillHook;
};

} // namespace stats::threading
