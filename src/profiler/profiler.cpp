#include "profiler/profiler.hpp"

#include "observability/metrics.hpp"
#include "support/json.hpp"

namespace stats::profiler {

Profiler::Profiler(benchmarks::Benchmark &benchmark,
                   benchmarks::Mode mode, int threads,
                   const sim::MachineConfig &machine,
                   benchmarks::WorkloadKind workload,
                   std::uint64_t workload_seed, int repetitions)
    : _benchmark(benchmark), _mode(mode), _threads(threads),
      _machine(machine), _workload(workload),
      _workloadSeed(workload_seed), _repetitions(std::max(1, repetitions))
{
    _oracle = _benchmark.oracleSignature(_workload, _workloadSeed);
}

Measurement
Profiler::profile(const tradeoff::Configuration &config)
{
    auto &metrics = obs::MetricsRegistry::global();
    auto cached = _cache.find(config);
    if (cached != _cache.end()) {
        metrics.counter("profiler.cacheHits").add();
        return cached->second;
    }
    ++_runs;
    metrics.counter("profiler.runs").add();
    Measurement total;
    sdi::EngineStats last_engine_stats;
    for (int rep = 0; rep < _repetitions; ++rep) {
        benchmarks::RunRequest request;
        request.mode = _mode;
        request.config = config;
        request.threads = _threads;
        request.machine = _machine;
        request.workload = _workload;
        request.workloadSeed = _workloadSeed;
        const benchmarks::RunResult result = _benchmark.run(request);
        total.seconds += result.virtualSeconds;
        total.energyJoules += result.energyJoules;
        total.quality += _benchmark.quality(result.signature, _oracle);
        last_engine_stats = result.engineStats;
    }
    const double inv = 1.0 / _repetitions;
    total.seconds *= inv;
    total.energyJoules *= inv;
    total.quality *= inv;
    _cache.emplace(config, total);
    _snapshots.push_back({config, total, last_engine_stats});
    metrics.histogram("profiler.seconds").observe(total.seconds);
    metrics.histogram("profiler.energyJoules")
        .observe(total.energyJoules);
    return total;
}

void
Profiler::writeSnapshotsJson(std::ostream &out,
                             const tradeoff::StateSpace &space,
                             bool pretty) const
{
    support::JsonWriter json(out, pretty);
    json.beginObject();
    json.field("runs", static_cast<std::int64_t>(_runs));
    json.key("snapshots").beginArray();
    for (const auto &snapshot : _snapshots) {
        const auto &stats = snapshot.engineStats;
        json.beginObject()
            .field("config", space.describe(snapshot.config))
            .field("seconds", snapshot.measurement.seconds)
            .field("energyJoules", snapshot.measurement.energyJoules)
            .field("quality", snapshot.measurement.quality)
            .field("groups", stats.groups)
            .field("commits", stats.validations)
            .field("mismatches", stats.mismatches)
            .field("reexecutions", stats.reexecutions)
            .field("aborts", stats.aborts)
            .field("squashedGroups", stats.squashedGroups)
            .field("matchRate", stats.matchRate())
            .field("extraWorkFraction", stats.extraWorkFraction())
            .endObject();
    }
    json.endArray();
    json.endObject();
    out << "\n";
}

autotuner::Autotuner::Objective
Profiler::objectiveFunction(Objective objective)
{
    return [this, objective](const tradeoff::Configuration &config) {
        const Measurement m = profile(config);
        return objective == Objective::Time ? m.seconds
                                            : m.energyJoules;
    };
}

TunedRun
tuneBenchmark(benchmarks::Benchmark &benchmark, benchmarks::Mode mode,
              int threads, const sim::MachineConfig &machine,
              Objective objective, int budget, std::uint64_t seed,
              benchmarks::WorkloadKind workload,
              std::uint64_t workload_seed)
{
    Profiler profiler(benchmark, mode, threads, machine, workload,
                      workload_seed);
    autotuner::Autotuner tuner(benchmark.stateSpace(threads), seed);
    TunedRun run;
    run.tuning =
        tuner.tune(profiler.objectiveFunction(objective), budget);
    run.config = run.tuning.best;
    run.measurement = profiler.profile(run.config);
    return run;
}

} // namespace stats::profiler
