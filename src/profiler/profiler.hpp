/**
 * @file
 * The profiler (paper section 3.2): runs the binary the back-end
 * produced for one configuration on the training inputs, measuring
 * execution time and energy, and feeds the autotuner.
 *
 * Here a "binary for one configuration" is a benchmark run bound to
 * that configuration, executed on the simulated platform; time is the
 * virtual makespan and energy comes from the platform's power model.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>

#include "autotuner/tuner.hpp"
#include "benchmarks/common/benchmark.hpp"

namespace stats::profiler {

/** What the autotuner minimizes (paper: performance or energy). */
enum class Objective
{
    Time,
    Energy,
};

/** Averaged measurements of one configuration. */
struct Measurement
{
    double seconds = 0.0;
    double energyJoules = 0.0;
    double quality = 0.0; ///< Domain metric vs oracle (lower better).
};

/**
 * Per-configuration metric snapshot, captured at profile time: the
 * averaged measurement plus the engine counters of the *last*
 * repetition's run. Together with the autotuner's audit trail this
 * makes every tuning decision attributable to observed
 * commit/squash behaviour.
 */
struct ConfigSnapshot
{
    tradeoff::Configuration config;
    Measurement measurement;
    sdi::EngineStats engineStats;
};

/** Profiles configurations of one benchmark in one mode. */
class Profiler
{
  public:
    /**
     * @param repetitions runs averaged per configuration (the paper
     *                    repeats runs to tighten confidence)
     */
    Profiler(benchmarks::Benchmark &benchmark, benchmarks::Mode mode,
             int threads, const sim::MachineConfig &machine,
             benchmarks::WorkloadKind workload = benchmarks::
                 WorkloadKind::Representative,
             std::uint64_t workload_seed = 1, int repetitions = 2);

    /**
     * Run one configuration, averaging repetitions. Measurements are
     * cached per configuration: this is the paper's reusable
     * state-space store — "changing the optimization goal from
     * performance to energy" re-searches but never re-profiles
     * (section 3.2).
     */
    Measurement profile(const tradeoff::Configuration &config);

    /** Objective function for the autotuner. */
    autotuner::Autotuner::Objective
    objectiveFunction(Objective objective);

    /** Configurations actually executed (cache misses). */
    std::size_t runsPerformed() const { return _runs; }

    /** Measurements profiled so far, by configuration. */
    const std::map<tradeoff::Configuration, Measurement> &store() const
    {
        return _cache;
    }

    /** One snapshot per executed configuration, in execution order. */
    const std::vector<ConfigSnapshot> &snapshots() const
    {
        return _snapshots;
    }

    /**
     * Dump the snapshots as JSON (the `--metrics` companion for tune
     * sessions); configurations are rendered via `space.describe`.
     */
    void writeSnapshotsJson(std::ostream &out,
                            const tradeoff::StateSpace &space,
                            bool pretty = true) const;

  private:
    benchmarks::Benchmark &_benchmark;
    benchmarks::Mode _mode;
    int _threads;
    sim::MachineConfig _machine;
    benchmarks::WorkloadKind _workload;
    std::uint64_t _workloadSeed;
    int _repetitions;
    std::vector<double> _oracle;
    std::map<tradeoff::Configuration, Measurement> _cache;
    std::vector<ConfigSnapshot> _snapshots;
    std::size_t _runs = 0;
};

/** Result of a full tuning session of one benchmark/mode/threads. */
struct TunedRun
{
    tradeoff::Configuration config;
    Measurement measurement;
    autotuner::TuneResult tuning;
};

/**
 * Convenience: autotune a benchmark in a mode (paper's default flow:
 * autotuner proposes configurations, the profiler measures them).
 */
TunedRun tuneBenchmark(benchmarks::Benchmark &benchmark,
                       benchmarks::Mode mode, int threads,
                       const sim::MachineConfig &machine,
                       Objective objective = Objective::Time,
                       int budget = 40, std::uint64_t seed = 1,
                       benchmarks::WorkloadKind workload =
                           benchmarks::WorkloadKind::Representative,
                       std::uint64_t workload_seed = 1);

} // namespace stats::profiler
