/**
 * @file
 * Activity-based whole-system energy model.
 *
 * Substitute for the paper's Watts Up Pro AC-side meter (section 4.1):
 * energy is integrated from the simulator's activity counters with
 * Haswell-class constants. The paper uses energy only for *relative*
 * comparisons (Figure 15), which an activity-based model preserves.
 */

#pragma once

#include "sim/simulator.hpp"

namespace stats::platform {

/** Power constants for the simulated platform. */
struct EnergyModel
{
    /**
     * Baseline AC power with all cores idle: chassis, fans, DRAM,
     * uncore, and the idle fraction of both packages.
     */
    double platformIdleWatts = 140.0;

    /** Incremental power of one busy logical core. */
    double coreActiveWatts = 6.4;

    /** Joules consumed by a run with the given activity. */
    double energyJoules(const sim::ActivityStats &activity) const
    {
        return platformIdleWatts * activity.makespan +
               coreActiveWatts * activity.busyCoreSeconds;
    }
};

} // namespace stats::platform
