/**
 * @file
 * Cost models mapping benchmark work to virtual task durations.
 *
 * Benchmarks execute their real kernels on the host and report costs
 * in virtual seconds through these helpers. `InnerParallelModel`
 * captures a benchmark's *original* TLP (the "traditional means"
 * parallelization the paper compares against): an Amdahl-style
 * serial fraction plus a per-thread synchronization cost, which is
 * what makes each benchmark's original scaling curve in Figure 12
 * bend at a benchmark-specific point.
 */

#pragma once

#include <algorithm>

#include "exec/task.hpp"
#include "sim/machine.hpp"

namespace stats::platform {

/** Nominal host-independent execution rate: work ops per second. */
constexpr double kOpsPerSecond = 250.0e6;

/** Convert an operation count to virtual seconds on one core. */
inline double
opsToSeconds(double ops)
{
    return ops / kOpsPerSecond;
}

/**
 * Effective parallel throughput of `logical_threads` hardware
 * threads on `machine`: each thread on its own physical core
 * contributes 1.0; an HT sibling sharing a busy core contributes the
 * marginal throughput of Hyper-Threading (2 * htSpeedFactor - 1,
 * i.e. ~0.3 for the paper's 30% guidance).
 */
inline double
effectiveParallelism(const sim::MachineConfig &machine,
                     int logical_threads, double mem_bound = 0.0)
{
    const int t =
        std::min(std::max(1, logical_threads), machine.logicalCpus());
    const int physical = std::min(t, machine.physicalCores());
    const int siblings = t - physical;
    // Memory-bound code benefits more from HT: the sibling hides
    // stalls instead of competing for execution ports.
    const double marginal = (2.0 * machine.htSpeedFactor - 1.0) +
                            0.45 * mem_bound;
    return physical + std::min(marginal, 1.0) * siblings;
}

/**
 * Model of one code region's internal (original) parallelism.
 *
 * duration(work, t, eff) =
 *     work * (serial + (1-serial)/eff) + syncCost * (t - 1)
 *
 * `eff` is the effective throughput of the `t` logical threads
 * (accounts for Hyper-Threading sharing); the serial fraction always
 * runs at full single-thread speed. The linear sync term models the
 * inter-thread synchronization that the paper identifies as the
 * bottleneck of, e.g., bodytrack's original TLP (section 4.3).
 */
struct InnerParallelModel
{
    /** Fraction of each invocation that cannot be parallelized. */
    double serialFraction = 0.05;

    /** Seconds of synchronization overhead per participating thread. */
    double syncCostPerThread = 0.0;

    /** Fraction of the work that is memory-bound (NUMA-sensitive). */
    double memBound = 0.2;

    /**
     * Virtual duration of an invocation of `workSeconds` total work
     * executed with `threads` inner threads of `effective` combined
     * throughput (defaults to full-speed threads).
     */
    double
    duration(double work_seconds, int threads,
             double effective = 0.0) const
    {
        const double t = std::max(1, threads);
        const double eff = effective > 0.0 ? effective : t;
        return work_seconds *
                   (serialFraction + (1.0 - serialFraction) / eff) +
               syncCostPerThread * (t - 1.0);
    }

    /** Package a duration as executor work. */
    exec::Work
    work(double work_seconds, int threads, double effective = 0.0) const
    {
        return exec::Work{duration(work_seconds, threads, effective),
                          memBound};
    }
};

} // namespace stats::platform
