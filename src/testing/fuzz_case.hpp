/**
 * @file
 * The unit of generative differential testing: one *fuzz case*.
 *
 * A case bundles a mini-IR module with the scenario under which the
 * differential oracle runs it — the engine configuration, the
 * nondeterminism model (how much per-invocation noise the "program"
 * exhibits), the state matcher, an optional fault plan, and the
 * expected outcome (valid cases must uphold the oracle; near-miss
 * cases must be *rejected* by the verifier or the static analyzer).
 *
 * Cases serialize to a single `.ir` file whose leading `;` comment
 * lines carry the scenario (the IR parser ignores comments, so the
 * same file feeds both the oracle harness and any plain IR tool).
 * That one-file form is what `tests/corpus/` checks in and what the
 * shrinker emits for failing cases.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "ir/ir.hpp"
#include "sdi/spec_config.hpp"

namespace stats::testing {

/** Which doesSpecStateMatchAny shape the scenario uses. */
enum class MatcherKind
{
    ExactAny,    ///< Equality against any original final state.
    ExactSingle, ///< Equality against the first only (Fast Track).
    AlwaysMatch, ///< Valid by construction: every state accepted.
};

const char *matcherKindName(MatcherKind kind);
std::optional<MatcherKind> matcherKindFromName(const std::string &name);

/** What the pipeline is expected to do with the case. */
enum class Expectation
{
    Pass,   ///< Valid module: the differential oracle must hold.
    Reject, ///< Near-miss module: verifier/analyzer must flag it.
};

/** Everything the oracle needs besides the module itself. */
struct Scenario
{
    /** Root of every stream the case derives (inputs, noise, config). */
    std::uint64_t seed = 1;

    /** Number of inputs fed to the state dependence. */
    int inputs = 24;

    /** Initial state value. */
    long long initialState = 0;

    /**
     * Nondeterminism model: percent of (input, attempt) pairs whose
     * state transition is perturbed, and the perturbation magnitude.
     * The noise value is a pure hash of (seed, input, attempt), so the
     * set of legal sequential outcomes is exactly enumerable.
     */
    int noisyPercent = 0;
    int maxNoise = 3;

    MatcherKind matcher = MatcherKind::ExactAny;

    /** Engine configuration for the speculative run. */
    sdi::SpecConfig config;

    /** Fault-plan spec for the storm re-run ("" = no fault run). */
    std::string faults;

    /** Sequential sample runs collected for the outcome set. */
    int sequentialRuns = 5;
};

struct FuzzCase
{
    std::string name;
    Scenario scenario;
    Expectation expect = Expectation::Pass;

    /** Reject cases: pipeline stage that must flag it
     *  ("verify" or "analysis"). */
    std::string expectStage;

    /** Corpus cases: one-line root cause of the original failure. */
    std::string rootCause;

    ir::Module module;
};

/** Serialize to the one-file corpus form (scenario header + IR). */
std::string serializeCase(const FuzzCase &fuzz_case);

/**
 * Parse the one-file form. Returns nullopt and sets `error` on a
 * malformed scenario header; panics (like parseModule) on bad IR.
 */
std::optional<FuzzCase> parseCase(const std::string &text,
                                  std::string &error);

/** parseCase over a file's contents. */
std::optional<FuzzCase> loadCaseFile(const std::string &path,
                                     std::string &error);

} // namespace stats::testing
