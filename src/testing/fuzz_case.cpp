#include "testing/fuzz_case.hpp"

#include <fstream>
#include <sstream>

#include "ir/parser.hpp"
#include "support/string_utils.hpp"

namespace stats::testing {

const char *
matcherKindName(MatcherKind kind)
{
    switch (kind) {
      case MatcherKind::ExactAny: return "exact-any";
      case MatcherKind::ExactSingle: return "exact-single";
      case MatcherKind::AlwaysMatch: return "always";
    }
    return "?";
}

std::optional<MatcherKind>
matcherKindFromName(const std::string &name)
{
    if (name == "exact-any")
        return MatcherKind::ExactAny;
    if (name == "exact-single")
        return MatcherKind::ExactSingle;
    if (name == "always")
        return MatcherKind::AlwaysMatch;
    return std::nullopt;
}

std::string
serializeCase(const FuzzCase &fuzz_case)
{
    const Scenario &s = fuzz_case.scenario;
    const sdi::SpecConfig &c = s.config;
    std::ostringstream out;
    out << "; fuzz-case: v1\n";
    if (!fuzz_case.name.empty())
        out << "; name=" << fuzz_case.name << "\n";
    out << "; seed=" << s.seed << " inputs=" << s.inputs
        << " init=" << s.initialState << " seqruns=" << s.sequentialRuns
        << "\n";
    out << "; noise=" << s.noisyPercent << " maxnoise=" << s.maxNoise
        << " matcher=" << matcherKindName(s.matcher) << "\n";
    out << "; engine: aux=" << (c.useAuxiliary ? 1 : 0)
        << " group=" << c.groupSize << " window=" << c.auxWindow
        << " reexec=" << c.maxReexecutions
        << " rollback=" << c.rollbackDepth << " sdthreads=" << c.sdThreads
        << " inner=" << c.innerThreads
        << " auxbatch=" << c.auxBatchGroups << "\n";
    if (!s.faults.empty())
        out << "; faults=" << s.faults << "\n";
    out << "; expect="
        << (fuzz_case.expect == Expectation::Pass
                ? "pass"
                : "reject:" + fuzz_case.expectStage)
        << "\n";
    if (!fuzz_case.rootCause.empty())
        out << "; root-cause: " << fuzz_case.rootCause << "\n";
    out << "\n" << ir::printModule(fuzz_case.module);
    return out.str();
}

namespace {

/** Apply one `key=value` token to the case; false on unknown keys. */
bool
applyToken(FuzzCase &fuzz_case, const std::string &key,
           const std::string &value)
{
    Scenario &s = fuzz_case.scenario;
    sdi::SpecConfig &c = s.config;
    try {
        if (key == "name") fuzz_case.name = value;
        else if (key == "seed") s.seed = std::stoull(value);
        else if (key == "inputs") s.inputs = std::stoi(value);
        else if (key == "init") s.initialState = std::stoll(value);
        else if (key == "seqruns") s.sequentialRuns = std::stoi(value);
        else if (key == "noise") s.noisyPercent = std::stoi(value);
        else if (key == "maxnoise") s.maxNoise = std::stoi(value);
        else if (key == "matcher") {
            auto kind = matcherKindFromName(value);
            if (!kind)
                return false;
            s.matcher = *kind;
        }
        else if (key == "aux") c.useAuxiliary = value != "0";
        else if (key == "group") c.groupSize = std::stoi(value);
        else if (key == "window") c.auxWindow = std::stoi(value);
        else if (key == "reexec") c.maxReexecutions = std::stoi(value);
        else if (key == "rollback") c.rollbackDepth = std::stoi(value);
        else if (key == "sdthreads") c.sdThreads = std::stoi(value);
        else if (key == "inner") c.innerThreads = std::stoi(value);
        else if (key == "auxbatch") c.auxBatchGroups = std::stoi(value);
        else if (key == "faults") s.faults = value;
        else if (key == "expect") {
            if (value == "pass") {
                fuzz_case.expect = Expectation::Pass;
            } else if (support::startsWith(value, "reject:")) {
                fuzz_case.expect = Expectation::Reject;
                fuzz_case.expectStage = value.substr(7);
            } else {
                return false;
            }
        }
        else
            return false;
    } catch (...) {
        return false;
    }
    return true;
}

} // namespace

std::optional<FuzzCase>
parseCase(const std::string &text, std::string &error)
{
    FuzzCase fuzz_case;
    bool sawHeader = false;
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
        const std::string trimmed = support::trim(line);
        if (trimmed.empty())
            continue;
        if (trimmed[0] != ';')
            break; // Module text begins; the parser re-reads it all.
        std::string body = support::trim(trimmed.substr(1));
        if (support::startsWith(body, "fuzz-case:")) {
            if (support::trim(body.substr(10)) != "v1") {
                error = "unsupported fuzz-case version";
                return std::nullopt;
            }
            sawHeader = true;
            continue;
        }
        if (support::startsWith(body, "root-cause:")) {
            fuzz_case.rootCause = support::trim(body.substr(11));
            continue;
        }
        if (support::startsWith(body, "engine:"))
            body = support::trim(body.substr(7));
        // `faults=` may contain spaces and `=`; it consumes the rest
        // of its line, so it must be the line's only token.
        if (support::startsWith(body, "faults=")) {
            fuzz_case.scenario.faults = support::trim(body.substr(7));
            continue;
        }
        for (const auto &token : support::split(body, ' ')) {
            const std::string word = support::trim(token);
            if (word.empty())
                continue;
            const auto eq = word.find('=');
            if (eq == std::string::npos) {
                error = "bad scenario token '" + word + "'";
                return std::nullopt;
            }
            if (!applyToken(fuzz_case, word.substr(0, eq),
                            word.substr(eq + 1))) {
                error = "bad scenario token '" + word + "'";
                return std::nullopt;
            }
        }
    }
    if (!sawHeader) {
        error = "missing `; fuzz-case: v1` header";
        return std::nullopt;
    }
    fuzz_case.module = ir::parseModule(text);
    if (fuzz_case.name.empty())
        fuzz_case.name = fuzz_case.module.name;
    return fuzz_case;
}

std::optional<FuzzCase>
loadCaseFile(const std::string &path, std::string &error)
{
    std::ifstream in(path);
    if (!in) {
        error = "cannot open '" + path + "'";
        return std::nullopt;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parseCase(buffer.str(), error);
}

} // namespace stats::testing
