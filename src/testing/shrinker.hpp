/**
 * @file
 * Greedy failing-case minimizer.
 *
 * Given a case the oracle fails, repeatedly applies
 * smaller-but-still-failing transformations until a fixpoint (or the
 * evaluation budget): scenario reductions (fewer inputs, noise off,
 * smaller engine knobs, no fault plan), dropping tradeoffs and
 * unreferenced functions, straightening branches (with CFG pruning
 * and phi repair), deleting individual instructions, and halving
 * integer constants. A candidate is kept only when the oracle still
 * fails with the *same* failure kind, so the minimized module
 * reproduces the original root cause, not some new one.
 *
 * Safety: transformations never create unbounded loops (backward
 * jumps are off-limits), so the interpreter's runaway-loop panic
 * cannot fire mid-shrink.
 */

#pragma once

#include "testing/fuzz_case.hpp"
#include "testing/oracle.hpp"

namespace stats::testing {

struct ShrinkOptions
{
    /** Oracle evaluations allowed (each candidate costs one). */
    int maxEvaluations = 400;

    OracleOptions oracle;
};

struct ShrinkResult
{
    FuzzCase minimized;
    int evaluations = 0;
    bool changed = false;

    /** Failure kind the minimization preserved. */
    std::string failKind;
};

/**
 * Minimize a failing case. The input must fail the oracle; if it
 * doesn't, the result is the input itself (changed = false).
 */
ShrinkResult shrinkCase(const FuzzCase &failing,
                        const ShrinkOptions &options = {});

} // namespace stats::testing
