#include "testing/generator.hpp"

#include <string>
#include <utility>
#include <vector>

#include "support/rng.hpp"
#include "support/seed_sequence.hpp"

namespace stats::testing {

namespace {

using support::Xoshiro256;

ir::Instruction
ins(ir::Opcode op, ir::Type type, std::string result,
    std::vector<ir::Operand> operands, std::string callee = "",
    std::vector<std::string> labels = {})
{
    ir::Instruction inst;
    inst.op = op;
    inst.type = type;
    inst.result = std::move(result);
    inst.operands = std::move(operands);
    inst.callee = std::move(callee);
    inst.labels = std::move(labels);
    return inst;
}

/** A function the expression DAG may call (all are unary or nullary). */
struct Callable
{
    std::string name;
    bool hasArg = true;
    ir::Type argType = ir::Type::I64;
    ir::Type retType = ir::Type::I64;
};

/**
 * Emits one function body as a random typed expression DAG.
 *
 * Invariants the emitter maintains (they are what keeps generated
 * modules interpretable):
 *  - a value lands in a pool only if it is defined on *every* path to
 *    the pool's uses (branch-local temps stay local, joins go through
 *    phis), so the interpreter never reads an unexecuted definition;
 *  - integer division only by nonzero constants;
 *  - every loop has a constant trip count.
 */
class BodyGen
{
  public:
    BodyGen(Xoshiro256 &rng, ir::Function &fn,
            const std::vector<Callable> &callables)
        : _rng(rng), _fn(fn), _callables(callables)
    {
    }

    std::string
    freshTemp()
    {
        return "t" + std::to_string(_next++);
    }

    ir::BasicBlock &
    block()
    {
        return _fn.blocks.back();
    }

    void
    addValue(ir::Type type, const std::string &name)
    {
        (type == ir::Type::I64 ? _i64s : _f64s).push_back(name);
    }

    /** Random i64 operand: pooled temp or a small constant. */
    ir::Operand
    pickI64()
    {
        if (_i64s.empty() || _rng.nextBelow(100) < 25)
            return ir::Operand::constInt(
                _rng.uniformInt(0, 9));
        return ir::Operand::temp(
            _i64s[_rng.nextBelow(_i64s.size())]);
    }

    ir::Operand
    pickF64()
    {
        if (_f64s.empty() || _rng.nextBelow(100) < 25)
            return ir::Operand::constFloat(
                0.5 * double(_rng.uniformInt(-8, 8)));
        return ir::Operand::temp(
            _f64s[_rng.nextBelow(_f64s.size())]);
    }

    /** A pooled i64 *temp*, materializing a constant if needed. */
    std::string
    pickI64Temp()
    {
        if (!_i64s.empty())
            return _i64s[_rng.nextBelow(_i64s.size())];
        const std::string name = freshTemp();
        block().instructions.push_back(
            ins(ir::Opcode::Add, ir::Type::I64, name,
                {ir::Operand::constInt(_rng.uniformInt(0, 9)),
                 ir::Operand::constInt(1)}));
        _i64s.push_back(name);
        return name;
    }

    void
    emitStep()
    {
        const std::uint64_t roll = _rng.nextBelow(100);
        if (roll < 40)
            emitIntStep();
        else if (roll < 60 && !_f64s.empty())
            emitFloatStep();
        else if (roll < 75)
            emitCastStep();
        else if (!_callables.empty())
            emitCallStep();
        else
            emitIntStep();
    }

    void
    emitSteps(int count)
    {
        for (int i = 0; i < count; ++i)
            emitStep();
    }

    /** Append `count` random instructions into a foreign block without
     *  polluting the pools (used for branch arms). The returned temp
     *  is defined in that block. */
    std::string
    emitLocalArm(ir::BasicBlock &arm)
    {
        const std::string name = freshTemp();
        const ir::Opcode op =
            _rng.nextBelow(2) ? ir::Opcode::Add : ir::Opcode::Mul;
        arm.instructions.push_back(ins(
            op, ir::Type::I64, name,
            {pickI64(), ir::Operand::constInt(_rng.uniformInt(1, 5))}));
        return name;
    }

    /** Straight-line / diamond / bounded-loop body shapes. */
    void
    emitShape()
    {
        emitSteps(2 + int(_rng.nextBelow(4)));
        const std::uint64_t shape = _rng.nextBelow(100);
        if (shape < 25)
            emitDiamond();
        else if (shape < 50)
            emitLoop();
        emitSteps(1 + int(_rng.nextBelow(4)));
    }

    Xoshiro256 &_rng;
    ir::Function &_fn;
    const std::vector<Callable> &_callables;
    std::vector<std::string> _i64s, _f64s;
    int _next = 0;

  private:
    void
    emitIntStep()
    {
        const std::string name = freshTemp();
        const std::uint64_t roll = _rng.nextBelow(100);
        if (roll < 55) {
            const ir::Opcode ops[] = {ir::Opcode::Add, ir::Opcode::Sub,
                                      ir::Opcode::Mul};
            block().instructions.push_back(
                ins(ops[_rng.nextBelow(3)], ir::Type::I64, name,
                    {pickI64(), pickI64()}));
        } else if (roll < 70) {
            // Division: only by a nonzero constant, so interpretation
            // can never hit the divide-by-zero panic.
            block().instructions.push_back(
                ins(ir::Opcode::Div, ir::Type::I64, name,
                    {pickI64(),
                     ir::Operand::constInt(_rng.uniformInt(1, 7))}));
        } else if (roll < 85) {
            const ir::Opcode ops[] = {ir::Opcode::CmpLt,
                                      ir::Opcode::CmpLe,
                                      ir::Opcode::CmpEq};
            block().instructions.push_back(
                ins(ops[_rng.nextBelow(3)], ir::Type::I64, name,
                    {pickI64(), pickI64()}));
        } else {
            block().instructions.push_back(
                ins(ir::Opcode::Select, ir::Type::I64, name,
                    {pickI64(), pickI64(), pickI64()}));
        }
        _i64s.push_back(name);
    }

    void
    emitFloatStep()
    {
        const std::string name = freshTemp();
        const std::uint64_t roll = _rng.nextBelow(100);
        if (roll < 75) {
            const ir::Opcode ops[] = {ir::Opcode::Add, ir::Opcode::Sub,
                                      ir::Opcode::Mul};
            block().instructions.push_back(
                ins(ops[_rng.nextBelow(3)], ir::Type::F64, name,
                    {pickF64(), pickF64()}));
        } else {
            const double divisors[] = {2.0, 4.0, 0.5, 8.0};
            block().instructions.push_back(
                ins(ir::Opcode::Div, ir::Type::F64, name,
                    {pickF64(),
                     ir::Operand::constFloat(
                         divisors[_rng.nextBelow(4)])}));
        }
        _f64s.push_back(name);
    }

    void
    emitCastStep()
    {
        const std::string name = freshTemp();
        if (_f64s.empty() || _rng.nextBelow(2)) {
            block().instructions.push_back(
                ins(ir::Opcode::Cast, ir::Type::F64, name, {pickI64()}));
            _f64s.push_back(name);
        } else {
            block().instructions.push_back(
                ins(ir::Opcode::Cast, ir::Type::I64, name, {pickF64()}));
            _i64s.push_back(name);
        }
    }

    void
    emitCallStep()
    {
        const Callable &callee =
            _callables[_rng.nextBelow(_callables.size())];
        std::vector<ir::Operand> args;
        if (callee.hasArg) {
            if (callee.argType == ir::Type::I64) {
                args.push_back(pickI64());
            } else if (!_f64s.empty()) {
                args.push_back(pickF64());
            } else {
                const std::string cast = freshTemp();
                block().instructions.push_back(ins(
                    ir::Opcode::Cast, ir::Type::F64, cast, {pickI64()}));
                _f64s.push_back(cast);
                args.push_back(ir::Operand::temp(cast));
            }
        }
        const std::string name = freshTemp();
        block().instructions.push_back(ins(ir::Opcode::Call,
                                           callee.retType, name,
                                           std::move(args), callee.name));
        addValue(callee.retType, name);
    }

    /**
     * if/else over a random comparison, joined by a phi. Arm-local
     * temps are referenced only by the phi: the verifier has no
     * dominance check, but the interpreter would panic on a read of a
     * temp whose branch never executed.
     */
    void
    emitDiamond()
    {
        const std::string label = block().label;
        const std::string cond = freshTemp();
        block().instructions.push_back(
            ins(ir::Opcode::CmpLt, ir::Type::I64, cond,
                {pickI64(),
                 ir::Operand::constInt(_rng.uniformInt(1, 9))}));
        const std::string then_label = label + "_then";
        const std::string else_label = label + "_else";
        const std::string join_label = label + "_join";
        block().instructions.push_back(
            ins(ir::Opcode::Br, ir::Type::Void, "",
                {ir::Operand::temp(cond)}, "",
                {then_label, else_label}));

        ir::BasicBlock then_block;
        then_block.label = then_label;
        const std::string then_value = emitLocalArm(then_block);
        then_block.instructions.push_back(ins(ir::Opcode::Jmp,
                                              ir::Type::Void, "", {}, "",
                                              {join_label}));
        _fn.blocks.push_back(std::move(then_block));

        ir::BasicBlock else_block;
        else_block.label = else_label;
        const std::string else_value = emitLocalArm(else_block);
        else_block.instructions.push_back(ins(ir::Opcode::Jmp,
                                              ir::Type::Void, "", {}, "",
                                              {join_label}));
        _fn.blocks.push_back(std::move(else_block));

        ir::BasicBlock join_block;
        join_block.label = join_label;
        const std::string phi = freshTemp();
        join_block.instructions.push_back(
            ins(ir::Opcode::Phi, ir::Type::I64, phi,
                {ir::Operand::temp(then_value),
                 ir::Operand::temp(else_value)},
                "", {then_label, else_label}));
        _fn.blocks.push_back(std::move(join_block));
        _i64s.push_back(phi);
    }

    /** A counted accumulator loop with a constant trip count. */
    void
    emitLoop()
    {
        const std::string pre_label = block().label;
        const std::string loop_label = pre_label + "_loop";
        const std::string exit_label = pre_label + "_done";
        const std::string seed_value = pickI64Temp();
        const long long trip = _rng.uniformInt(2, 6);
        block().instructions.push_back(
            ins(ir::Opcode::Jmp, ir::Type::Void, "", {}, "",
                {loop_label}));

        ir::BasicBlock loop;
        loop.label = loop_label;
        const std::string iv = freshTemp();
        const std::string acc = freshTemp();
        const std::string acc_next = freshTemp();
        const std::string iv_next = freshTemp();
        const std::string cont = freshTemp();
        loop.instructions.push_back(
            ins(ir::Opcode::Phi, ir::Type::I64, iv,
                {ir::Operand::constInt(0), ir::Operand::temp(iv_next)},
                "", {pre_label, loop_label}));
        loop.instructions.push_back(
            ins(ir::Opcode::Phi, ir::Type::I64, acc,
                {ir::Operand::temp(seed_value),
                 ir::Operand::temp(acc_next)},
                "", {pre_label, loop_label}));
        loop.instructions.push_back(
            ins(_rng.nextBelow(2) ? ir::Opcode::Add : ir::Opcode::Mul,
                ir::Type::I64, acc_next,
                {ir::Operand::temp(acc),
                 ir::Operand::constInt(_rng.uniformInt(1, 3))}));
        loop.instructions.push_back(
            ins(ir::Opcode::Add, ir::Type::I64, iv_next,
                {ir::Operand::temp(iv), ir::Operand::constInt(1)}));
        loop.instructions.push_back(
            ins(ir::Opcode::CmpLt, ir::Type::I64, cont,
                {ir::Operand::temp(iv_next),
                 ir::Operand::constInt(trip)}));
        loop.instructions.push_back(
            ins(ir::Opcode::Br, ir::Type::Void, "",
                {ir::Operand::temp(cont)}, "",
                {loop_label, exit_label}));
        _fn.blocks.push_back(std::move(loop));

        ir::BasicBlock exit;
        exit.label = exit_label;
        _fn.blocks.push_back(std::move(exit));
        _i64s.push_back(acc_next);
    }
};

ir::Function
makeFunction(const std::string &name, ir::Type ret,
             std::vector<ir::Parameter> params)
{
    ir::Function fn;
    fn.name = name;
    fn.returnType = ret;
    fn.params = std::move(params);
    ir::BasicBlock entry;
    entry.label = "entry";
    fn.blocks.push_back(std::move(entry));
    return fn;
}

/** `name() -> i64 { ret i64 value }` (size/default/placeholder fns). */
ir::Function
makeConstFn(const std::string &name, long long value)
{
    ir::Function fn = makeFunction(name, ir::Type::I64, {});
    fn.blocks[0].instructions.push_back(
        ins(ir::Opcode::Ret, ir::Type::I64, "",
            {ir::Operand::constInt(value)}));
    return fn;
}

struct ModuleGen
{
    Xoshiro256 &rng;
    ir::Module module;
    std::vector<Callable> callables;
    int tradeoffId = 40;

    void
    addConstantTradeoff()
    {
        const std::string base = "T_" + std::to_string(tradeoffId++);
        const long long size = rng.uniformInt(2, 6);
        const long long def = rng.uniformInt(0, size - 1);
        const long long a = rng.uniformInt(1, 5);
        const long long b = rng.uniformInt(0, 7);

        module.functions.push_back(makeConstFn(base, a * def + b));
        ir::Function get = makeFunction(base + "_getValue", ir::Type::I64,
                                        {{"i", ir::Type::I64}});
        get.blocks[0].instructions.push_back(
            ins(ir::Opcode::Mul, ir::Type::I64, "scaled",
                {ir::Operand::temp("i"), ir::Operand::constInt(a)}));
        get.blocks[0].instructions.push_back(
            ins(ir::Opcode::Add, ir::Type::I64, "value",
                {ir::Operand::temp("scaled"), ir::Operand::constInt(b)}));
        get.blocks[0].instructions.push_back(
            ins(ir::Opcode::Ret, ir::Type::I64, "",
                {ir::Operand::temp("value")}));
        module.functions.push_back(std::move(get));
        module.functions.push_back(makeConstFn(base + "_size", size));
        module.functions.push_back(makeConstFn(base + "_default", def));

        ir::TradeoffMeta meta;
        meta.name = base;
        meta.kind = ir::TradeoffKind::Constant;
        meta.placeholder = base;
        meta.getValueFn = base + "_getValue";
        meta.sizeFn = base + "_size";
        meta.defaultIndexFn = base + "_default";
        module.tradeoffs.push_back(std::move(meta));
        callables.push_back({base, false, ir::Type::I64, ir::Type::I64});
    }

    /** `name(i64 %i) -> i64 { ret i64 %i }`: getValue for tradeoffs
     *  whose values are picked from nameChoices, where the index only
     *  needs to round-trip. */
    void
    addIdentityGetValue(const std::string &name)
    {
        ir::Function get =
            makeFunction(name, ir::Type::I64, {{"i", ir::Type::I64}});
        get.blocks[0].instructions.push_back(
            ins(ir::Opcode::Ret, ir::Type::I64, "",
                {ir::Operand::temp("i")}));
        module.functions.push_back(std::move(get));
    }

    void
    addDataTypeTradeoff()
    {
        const std::string base = "T_" + std::to_string(tradeoffId++);
        ir::Function ph = makeFunction(base + "_ty", ir::Type::F64,
                                       {{"v", ir::Type::F64}});
        ph.blocks[0].instructions.push_back(
            ins(ir::Opcode::Ret, ir::Type::F64, "",
                {ir::Operand::temp("v")}));
        module.functions.push_back(std::move(ph));
        addIdentityGetValue(base + "_getValue");
        module.functions.push_back(makeConstFn(base + "_size", 2));
        module.functions.push_back(
            makeConstFn(base + "_default", rng.uniformInt(0, 1)));

        ir::TradeoffMeta meta;
        meta.name = base;
        meta.kind = ir::TradeoffKind::DataType;
        meta.placeholder = base + "_ty";
        meta.getValueFn = base + "_getValue";
        meta.sizeFn = base + "_size";
        meta.defaultIndexFn = base + "_default";
        meta.nameChoices = {"f64", "f32"};
        module.tradeoffs.push_back(std::move(meta));
        callables.push_back(
            {base + "_ty", true, ir::Type::F64, ir::Type::F64});
    }

    void
    addFunctionChoiceTradeoff()
    {
        const std::string base = "T_" + std::to_string(tradeoffId++);
        const std::string va = base + "_fine";
        const std::string vb = base + "_coarse";
        ir::Function fa =
            makeFunction(va, ir::Type::F64, {{"x", ir::Type::F64}});
        fa.blocks[0].instructions.push_back(
            ins(ir::Opcode::Add, ir::Type::F64, "r",
                {ir::Operand::temp("x"),
                 ir::Operand::constFloat(
                     0.25 * double(rng.uniformInt(1, 8)))}));
        fa.blocks[0].instructions.push_back(
            ins(ir::Opcode::Ret, ir::Type::F64, "",
                {ir::Operand::temp("r")}));
        module.functions.push_back(std::move(fa));
        ir::Function fb =
            makeFunction(vb, ir::Type::F64, {{"x", ir::Type::F64}});
        fb.blocks[0].instructions.push_back(
            ins(ir::Opcode::Mul, ir::Type::F64, "r",
                {ir::Operand::temp("x"),
                 ir::Operand::constFloat(
                     0.5 * double(rng.uniformInt(1, 4)))}));
        fb.blocks[0].instructions.push_back(
            ins(ir::Opcode::Ret, ir::Type::F64, "",
                {ir::Operand::temp("r")}));
        module.functions.push_back(std::move(fb));

        const long long def = rng.uniformInt(0, 1);
        ir::Function ph = makeFunction(base + "_fn", ir::Type::F64,
                                       {{"x", ir::Type::F64}});
        ph.blocks[0].instructions.push_back(
            ins(ir::Opcode::Call, ir::Type::F64, "r",
                {ir::Operand::temp("x")}, def == 0 ? va : vb));
        ph.blocks[0].instructions.push_back(
            ins(ir::Opcode::Ret, ir::Type::F64, "",
                {ir::Operand::temp("r")}));
        module.functions.push_back(std::move(ph));
        addIdentityGetValue(base + "_getValue");
        module.functions.push_back(makeConstFn(base + "_size", 2));
        module.functions.push_back(makeConstFn(base + "_default", def));

        ir::TradeoffMeta meta;
        meta.name = base;
        meta.kind = ir::TradeoffKind::FunctionChoice;
        meta.placeholder = base + "_fn";
        meta.getValueFn = base + "_getValue";
        meta.sizeFn = base + "_size";
        meta.defaultIndexFn = base + "_default";
        meta.nameChoices = {va, vb};
        module.tradeoffs.push_back(std::move(meta));
        callables.push_back(
            {base + "_fn", true, ir::Type::F64, ir::Type::F64});
    }

    void
    addHelper(int index)
    {
        const bool integer = rng.nextBelow(100) < 60;
        const ir::Type type = integer ? ir::Type::I64 : ir::Type::F64;
        ir::Function fn = makeFunction("helper" + std::to_string(index),
                                       type, {{"x", type}});
        BodyGen body(rng, fn, callables);
        body.addValue(type, "x");
        body.emitSteps(2 + int(rng.nextBelow(4)));
        // Return a value of the function's type, casting if the DAG
        // only produced the other kind.
        std::string ret_value;
        if (integer) {
            ret_value = body._i64s[rng.nextBelow(body._i64s.size())];
        } else if (!body._f64s.empty()) {
            ret_value = body._f64s[rng.nextBelow(body._f64s.size())];
        } else {
            ret_value = body.freshTemp();
            fn.blocks.back().instructions.push_back(
                ins(ir::Opcode::Cast, ir::Type::F64, ret_value,
                    {body.pickI64()}));
        }
        fn.blocks.back().instructions.push_back(
            ins(ir::Opcode::Ret, type, "",
                {ir::Operand::temp(ret_value)}));
        module.functions.push_back(std::move(fn));
        callables.push_back(
            {"helper" + std::to_string(index), true, type, type});
    }

    void
    addComputeOutput()
    {
        ir::Function fn = makeFunction(
            "computeOutput", ir::Type::I64,
            {{"input", ir::Type::I64}, {"state", ir::Type::I64}});
        BodyGen body(rng, fn, callables);
        body.addValue(ir::Type::I64, "input");
        body.emitShape();

        // Explicit state memory: result = dag(input) + state * M.
        // M = 0 makes the dependence forgetful (speculation can line
        // up exactly); M = 1 makes every output depend on the carried
        // state (mismatch/abort paths get exercised).
        const long long memory = rng.nextBelow(100) < 45 ? 1 : 0;
        const std::string mem_term = body.freshTemp();
        const std::string result = body.freshTemp();
        fn.blocks.back().instructions.push_back(
            ins(ir::Opcode::Mul, ir::Type::I64, mem_term,
                {ir::Operand::temp("state"),
                 ir::Operand::constInt(memory)}));
        fn.blocks.back().instructions.push_back(
            ins(ir::Opcode::Add, ir::Type::I64, result,
                {body.pickI64(), ir::Operand::temp(mem_term)}));
        fn.blocks.back().instructions.push_back(
            ins(ir::Opcode::Ret, ir::Type::I64, "",
                {ir::Operand::temp(result)}));
        module.functions.push_back(std::move(fn));

        ir::StateDepMeta dep;
        dep.name = "SD0";
        dep.computeFn = "computeOutput";
        module.stateDeps.push_back(std::move(dep));
    }
};

void
randomScenario(Scenario &scenario, Xoshiro256 &rng,
               const GeneratorOptions &options)
{
    scenario.inputs =
        8 + int(rng.nextBelow(
                std::uint64_t(std::max(1, options.maxInputs - 7))));
    scenario.initialState = rng.uniformInt(0, 31);
    scenario.noisyPercent =
        rng.nextBelow(100) < 30 ? 0 : int(10 + rng.nextBelow(51));
    scenario.maxNoise = 1 + int(rng.nextBelow(3));
    const std::uint64_t matcher = rng.nextBelow(100);
    scenario.matcher = matcher < 70   ? MatcherKind::ExactAny
                       : matcher < 85 ? MatcherKind::ExactSingle
                                      : MatcherKind::AlwaysMatch;
    scenario.sequentialRuns = 4 + int(rng.nextBelow(4));

    sdi::SpecConfig &config = scenario.config;
    config.useAuxiliary = rng.nextBelow(100) < 85;
    config.groupSize = 1 + int(rng.nextBelow(8));
    config.auxWindow = int(rng.nextBelow(6));
    config.maxReexecutions = int(rng.nextBelow(4));
    config.rollbackDepth = 1 + int(rng.nextBelow(4));
    config.sdThreads = 1 + int(rng.nextBelow(8));
    config.innerThreads = 1;
    // A third of the cases fuse the initial aux windows into lockstep
    // batch tasks, covering the callBatch-backed auxiliary path.
    config.auxBatchGroups =
        rng.nextBelow(100) < 33 ? 2 + int(rng.nextBelow(3)) : 1;
}

std::string
randomFaultSpec(Xoshiro256 &rng)
{
    const std::string seed =
        "seed=" + std::to_string(1 + rng.nextBelow(1000));
    switch (rng.nextBelow(5)) {
      case 0: return seed + ";storm=0.1";
      case 1: return seed + ";storm=0.05;corrupt=0.2";
      case 2: return seed + ";corrupt=0.3";
      case 3: return seed + ";mismatch@g1;corrupt@g2";
      default: return seed + ";storm=0.2;corrupt=0.1";
    }
}

/** Break one thing a pipeline stage must catch. */
void
applyNearMiss(FuzzCase &fuzz_case, Xoshiro256 &rng)
{
    fuzz_case.expect = Expectation::Reject;
    fuzz_case.expectStage = "verify";
    fuzz_case.scenario.faults.clear();
    ir::Module &module = fuzz_case.module;
    ir::Function *compute = module.findFunction("computeOutput");

    std::uint64_t kind = rng.nextBelow(5);
    if (kind == 0) {
        // Phi with a dangling incoming label (needs a phi to exist).
        for (auto &fn : module.functions) {
            for (auto &bb : fn.blocks) {
                for (auto &inst : bb.instructions) {
                    if (inst.op == ir::Opcode::Phi) {
                        inst.labels[0] = "no_such_block";
                        return;
                    }
                }
            }
        }
        kind = 1; // No phi generated: fall through to undef-temp.
    }
    if (kind == 1) {
        // computeOutput's epilogue always reads %state via a temp
        // operand; renaming one operand leaves a dangling use.
        auto &insts = compute->blocks.back().instructions;
        for (auto it = insts.rbegin(); it != insts.rend(); ++it) {
            for (auto &operand : it->operands) {
                if (operand.kind == ir::Operand::Kind::Temp) {
                    operand.name = "never_defined";
                    return;
                }
            }
        }
    }
    if (kind == 2) {
        auto &insts = compute->blocks.back().instructions;
        insts.insert(insts.end() - 1,
                     ins(ir::Opcode::Call, ir::Type::I64, "nm_call", {},
                         "missing_helper"));
        return;
    }
    if (kind == 3) {
        module.stateDeps[0].computeFn = "missing_compute";
        return;
    }
    // Effectful PRVG call: structurally fine (rand_uniform is a known
    // builtin), but the aux-reachability escape check must reject it.
    fuzz_case.expectStage = "analysis";
    auto &insts = compute->blocks.back().instructions;
    insts.insert(insts.end() - 1,
                 ins(ir::Opcode::Call, ir::Type::F64, "nm_rand", {},
                     "rand_uniform"));
}

} // namespace

FuzzCase
generateCase(std::uint64_t root_seed, std::uint64_t index,
             const GeneratorOptions &options)
{
    const support::SeedSequence sequence(root_seed);
    const std::uint64_t case_seed = sequence.derive("case", index);
    Xoshiro256 rng(case_seed);

    FuzzCase fuzz_case;
    fuzz_case.name =
        "s" + std::to_string(root_seed) + "-c" + std::to_string(index);
    fuzz_case.scenario.seed = case_seed;

    ModuleGen gen{rng, {}, {}, 40};
    gen.module.name = "fuzz_s" + std::to_string(root_seed) + "_c" +
                      std::to_string(index);
    const int tradeoffs =
        int(rng.nextBelow(std::uint64_t(options.maxTradeoffs + 1)));
    for (int t = 0; t < tradeoffs; ++t) {
        const std::uint64_t kind = rng.nextBelow(100);
        if (kind < 50)
            gen.addConstantTradeoff();
        else if (kind < 75)
            gen.addDataTypeTradeoff();
        else
            gen.addFunctionChoiceTradeoff();
    }
    const int helpers =
        int(rng.nextBelow(std::uint64_t(options.maxHelpers + 1)));
    for (int h = 0; h < helpers; ++h)
        gen.addHelper(h);
    gen.addComputeOutput();
    fuzz_case.module = std::move(gen.module);

    randomScenario(fuzz_case.scenario, rng, options);

    const bool near_miss =
        options.nearMissEvery > 0 &&
        index % std::uint64_t(options.nearMissEvery) ==
            std::uint64_t(options.nearMissEvery) - 1;
    if (near_miss) {
        applyNearMiss(fuzz_case, rng);
    } else if (options.faultsEvery > 0 &&
               index % std::uint64_t(options.faultsEvery) ==
                   std::uint64_t(options.faultsEvery) - 1) {
        fuzz_case.scenario.faults = randomFaultSpec(rng);
    }
    return fuzz_case;
}

} // namespace stats::testing
