/**
 * @file
 * Seed-deterministic generator of random-but-valid mini-IR modules
 * (plus deliberate near-miss modules that must be rejected).
 *
 * Every generated module is a miniature STATS program: a
 * `computeOutput(i64 input, i64 state) -> i64` state dependence whose
 * body is a random typed expression DAG (optionally with a
 * branch/phi diamond), calling into a random call-graph of helper
 * functions and tradeoff placeholders of all three kinds (constant,
 * data-type, function-choice). The module is constructed so that:
 *
 *  - it passes the structural verifier and, after the middle-end,
 *    the full speculation-safety analysis;
 *  - interpretation always terminates (acyclic call graph, loop-free
 *    or bounded-trip-count CFGs) and never divides by zero;
 *  - its state memory is explicit: `ret = f(input) + state * M` with
 *    M in {0, 1}, so scenarios cover both forgetful programs (where
 *    speculation can commit) and stateful ones (where it aborts).
 *
 * Near-miss cases take a valid module and break exactly one thing a
 * pipeline stage must catch: a phi with a dangling incoming label, a
 * use of an undefined temp, a call to a missing function, dangling
 * state-dependence metadata (all verifier), or an effectful PRVG call
 * reachable from auxiliary code (static analysis, rules ESC/PUR).
 *
 * Determinism contract: generateCase(root, index) is a pure function
 * of (root, index, options) — the same arguments always produce the
 * same case, byte for byte. All internal streams are derived with
 * support::SeedSequence.
 */

#pragma once

#include <cstdint>

#include "testing/fuzz_case.hpp"

namespace stats::testing {

struct GeneratorOptions
{
    int maxInputs = 48;
    int maxHelpers = 4;
    int maxTradeoffs = 3;

    /** Every K-th case is a near-miss (0 = never). */
    int nearMissEvery = 8;

    /** Every K-th valid case carries a fault-storm plan (0 = never). */
    int faultsEvery = 4;
};

/** Generate the `index`-th case of the `root_seed` campaign. */
FuzzCase generateCase(std::uint64_t root_seed, std::uint64_t index,
                      const GeneratorOptions &options = {});

} // namespace stats::testing
