/**
 * @file
 * The fuzzing campaign driver: generate -> oracle -> (on failure)
 * record + shrink + write artifacts.
 *
 * A campaign is a pure function of its root seed: the same seed and
 * run count always generate the same cases and reach the same
 * verdicts (`statscc fuzz --seed S --runs N` twice == byte-identical
 * reports). On an oracle failure the driver re-runs the case inside a
 * recording session and writes three artifacts to the artifact
 * directory: the full failing case (`<name>.ir`), the shrunk
 * reproducer (`<name>.min.ir`, the form `tests/corpus/` checks in),
 * and the RecordLog of the failing engine runs (`<name>.strl`,
 * replayable with `stats-replay`).
 */

#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "testing/generator.hpp"
#include "testing/oracle.hpp"
#include "testing/shrinker.hpp"

namespace stats::testing {

struct CampaignOptions
{
    std::uint64_t seed = 1;
    int runs = 100;

    GeneratorOptions generator;
    OracleOptions oracle;

    /** Shrink failing cases before writing them out. */
    bool shrink = true;
    int shrinkEvaluations = 400;

    /** Where failure artifacts go ("" = don't write artifacts). */
    std::string artifactsDir = "fuzz-artifacts";

    /** Stop after this many failing cases. */
    int maxFailures = 8;

    /** Log every case, not only failures. */
    bool verbose = false;
};

/** One failing case, as the campaign captured it. */
struct CampaignFailure
{
    std::string name;
    std::string stage;
    std::string failKind;
    std::string detail;
    std::vector<std::string> artifacts; ///< Files written for it.
};

struct CampaignSummary
{
    int cases = 0;
    int passed = 0;
    int rejected = 0; ///< Near-misses correctly rejected.
    int faultRuns = 0;
    std::vector<CampaignFailure> failures;

    /** Aggregate engine statistics across clean runs. */
    long long mismatches = 0;
    long long reexecutions = 0;
    long long aborts = 0;
    long long validations = 0;

    bool ok() const { return failures.empty(); }
};

/** Run a campaign; progress and verdicts go to `log`. */
CampaignSummary runCampaign(const CampaignOptions &options,
                            std::ostream &log);

/**
 * Re-run one case file through the oracle (the corpus-replay path).
 * Returns the oracle result; `log` receives a one-line verdict.
 */
OracleResult replayCaseFile(const std::string &path,
                            const OracleOptions &options,
                            std::ostream &log);

} // namespace stats::testing
