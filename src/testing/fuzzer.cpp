#include "testing/fuzzer.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "replay/session.hpp"

namespace stats::testing {

namespace {

/** Write `text` to dir/name; returns the path ("" on failure). */
std::string
writeArtifact(const std::string &dir, const std::string &name,
              const std::string &text, std::ostream &log)
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        log << "  ! cannot write " << path << "\n";
        return "";
    }
    out << text;
    return path;
}

/**
 * Re-run a failing case inside a recording session and hand back the
 * log of its engine runs (the automatic repro capture).
 */
replay::RecordLog
captureRecording(const FuzzCase &fuzz_case, const OracleOptions &options)
{
    auto &session = replay::ReplaySession::global();
    session.startRecording(fuzz_case.scenario.seed);
    session.setMetadata("fuzz.case", fuzz_case.name);
    session.setMetadata("fuzz.matcher",
                        matcherKindName(fuzz_case.scenario.matcher));
    runOracle(fuzz_case, options);
    return session.finishRecording();
}

} // namespace

CampaignSummary
runCampaign(const CampaignOptions &options, std::ostream &log)
{
    CampaignSummary summary;
    log << "fuzz campaign: seed=" << options.seed
        << " runs=" << options.runs << "\n";
    for (int i = 0; i < options.runs; ++i) {
        const FuzzCase fuzz_case = generateCase(
            options.seed, std::uint64_t(i), options.generator);
        ++summary.cases;
        const OracleResult result = runOracle(fuzz_case, options.oracle);
        if (result.ok) {
            if (result.rejected)
                ++summary.rejected;
            else
                ++summary.passed;
            if (result.faulted)
                ++summary.faultRuns;
            summary.mismatches += result.cleanStats.mismatches;
            summary.reexecutions += result.cleanStats.reexecutions;
            summary.aborts += result.cleanStats.aborts;
            summary.validations += result.cleanStats.validations;
            if (options.verbose) {
                log << "  [" << i << "] " << fuzz_case.name << ": "
                    << (result.rejected ? "rejected at " : "ok at ")
                    << result.stage << "\n";
            }
            continue;
        }

        CampaignFailure failure;
        failure.name = fuzz_case.name;
        failure.stage = result.stage;
        failure.failKind = result.failKind;
        failure.detail = result.detail;
        log << "  [" << i << "] FAIL " << fuzz_case.name << " ("
            << result.failKind << " at " << result.stage << "): "
            << result.detail << "\n";

        if (!options.artifactsDir.empty()) {
            if (auto path =
                    writeArtifact(options.artifactsDir,
                                  fuzz_case.name + ".ir",
                                  serializeCase(fuzz_case), log);
                !path.empty())
                failure.artifacts.push_back(path);

            const replay::RecordLog record =
                captureRecording(fuzz_case, options.oracle);
            if (auto path = writeArtifact(options.artifactsDir,
                                          fuzz_case.name + ".strl",
                                          record.saveToString(), log);
                !path.empty())
                failure.artifacts.push_back(path);

            if (options.shrink) {
                ShrinkOptions shrink_options;
                shrink_options.maxEvaluations =
                    options.shrinkEvaluations;
                shrink_options.oracle = options.oracle;
                const ShrinkResult shrunk =
                    shrinkCase(fuzz_case, shrink_options);
                log << "    shrink: " << shrunk.evaluations
                    << " evaluations, "
                    << shrunk.minimized.module.instructionCount()
                    << " instructions, "
                    << shrunk.minimized.scenario.inputs << " inputs\n";
                if (auto path = writeArtifact(
                        options.artifactsDir,
                        fuzz_case.name + ".min.ir",
                        serializeCase(shrunk.minimized), log);
                    !path.empty())
                    failure.artifacts.push_back(path);
            }
        }
        summary.failures.push_back(std::move(failure));
        if (int(summary.failures.size()) >= options.maxFailures) {
            log << "  stopping after " << summary.failures.size()
                << " failures\n";
            break;
        }
    }
    log << "fuzz campaign done: " << summary.cases << " cases, "
        << summary.passed << " passed, " << summary.rejected
        << " rejected, " << summary.failures.size() << " failed ("
        << summary.validations << " validations, "
        << summary.mismatches << " mismatches, "
        << summary.reexecutions << " reexecutions, " << summary.aborts
        << " aborts)\n";
    return summary;
}

OracleResult
replayCaseFile(const std::string &path, const OracleOptions &options,
               std::ostream &log)
{
    std::string error;
    const auto fuzz_case = loadCaseFile(path, error);
    if (!fuzz_case) {
        OracleResult result;
        result.ok = false;
        result.stage = "parse";
        result.failKind = "case-unreadable";
        result.detail = error;
        log << path << ": " << error << "\n";
        return result;
    }
    const OracleResult result = runOracle(*fuzz_case, options);
    log << fuzz_case->name << ": "
        << (result.ok
                ? (result.rejected ? "rejected at " + result.stage
                                   : "ok at " + result.stage)
                : "FAIL " + result.failKind + " at " + result.stage +
                      ": " + result.detail)
        << "\n";
    return result;
}

} // namespace stats::testing
