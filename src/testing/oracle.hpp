/**
 * @file
 * The nondeterminism-aware sequential-vs-speculative differential
 * oracle (paper section 3.1's correctness claim, made executable).
 *
 * For a valid case the oracle drives the whole pipeline —
 * verify → middle-end → analysis → back-end instantiation — and then
 * executes the instantiated state dependence three ways:
 *
 *  1. **Sequentially, N times**, sampling the program's modeled
 *     nondeterminism, to collect legal final-state fingerprints and
 *     self-check that interpretation is deterministic.
 *  2. **Speculatively** on the engine (simulated executor, so
 *     verdicts are reproducible).
 *  3. **Speculatively under the case's FaultPlan storm**, if any.
 *
 * The acceptance criterion is *exact*, not sampled: the modeled
 * nondeterminism is a pure hash (scenario seed, input position,
 * attempt number), so the set of states a legal sequential execution
 * can reach after any prefix is enumerable. A speculative run passes
 * iff its committed per-input observed states form a chain where
 * every transition is one of the ≤ maxReexecutions+2 legal
 * transitions of its position — i.e. the committed history *is* some
 * legal nondeterministic sequential execution. (With the
 * valid-by-construction matcher the chain requirement is waived by
 * design; ordering and completeness are still enforced.)
 *
 * Near-miss cases short-circuit: the oracle asserts the expected
 * stage (verifier or analyzer) rejects the module.
 */

#pragma once

#include <string>
#include <vector>

#include "ir/exec_tier.hpp"
#include "sdi/spec_config.hpp"
#include "testing/fuzz_case.hpp"

namespace stats::testing {

struct OracleOptions
{
    /** Run the full speculation-safety analysis on the midend IR. */
    bool runAnalysis = true;

    /**
     * Execution tier for every interpreted transition (sequential
     * sampling, engine bodies, chain re-derivation). The tier is an
     * implementation detail of `getValue()` execution, so oracle
     * verdicts must not depend on it — tests/tier_differential_test
     * holds the pipeline to that.
     */
    ir::ExecTier execTier = ir::ExecTier::Auto;

    /** Simulated threads for the engine runs. */
    int simThreads = 16;

    /** Honor the scenario's fault plan with a second engine run. */
    bool faultRun = true;
};

struct OracleResult
{
    bool ok = true;

    /** Near-miss case was rejected where expected. */
    bool rejected = false;

    /** Pipeline stage reached (or failed): "verify", "midend",
     *  "analysis", "backend", "sequential", "speculative",
     *  "faulted". */
    std::string stage;

    /** Stable failure kind ("" when ok), e.g. "chain-violation". */
    std::string failKind;

    /** Human-readable failure details. */
    std::string detail;

    /** Distinct final states seen across the sequential samples. */
    std::vector<long long> sequentialFinals;

    sdi::EngineStats cleanStats;
    sdi::EngineStats faultStats;
    bool faulted = false; ///< The fault-storm run executed.
};

/** Run the full differential oracle over one case. */
OracleResult runOracle(const FuzzCase &fuzz_case,
                       const OracleOptions &options = {});

/** Number of legal transition variants per input position. */
int legalAttempts(const Scenario &scenario);

/**
 * The modeled per-invocation nondeterminism: additive noise as a pure
 * hash of (seed, position, attempt). Zero outside the scenario's
 * noisyPercent slice.
 */
long long noiseFor(std::uint64_t seed, int position, int attempt,
                   int noisy_percent, int max_noise);

/** Confine a state to the harness's state domain [0, 2^20). */
long long wrapState(long long value);

} // namespace stats::testing
