#include "testing/oracle.hpp"

#include <atomic>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "analysis/lint.hpp"
#include "backend/backend.hpp"
#include "exec/sim_executor.hpp"
#include "ir/bytecode_verifier.hpp"
#include "ir/exec_tier.hpp"
#include "ir/verifier.hpp"
#include "midend/midend.hpp"
#include "midend/substitute.hpp"
#include "replay/session.hpp"
#include "sdi/matchers.hpp"
#include "sdi/spec_engine.hpp"
#include "support/rng.hpp"
#include "support/seed_sequence.hpp"

namespace stats::testing {

namespace {

constexpr long long kStateModulus = 1LL << 20;

/** Engine input: a value plus its position (for attempt counting). */
struct In
{
    int pos = 0;
    long long value = 0;
};

/** Engine output: the state observed before the invocation. */
struct Out
{
    int pos = 0;
    long long observed = 0;
};

std::string
joinProblems(const std::vector<std::string> &problems)
{
    std::ostringstream out;
    for (std::size_t i = 0; i < problems.size() && i < 3; ++i)
        out << (i ? "; " : "") << problems[i];
    if (problems.size() > 3)
        out << "; ... (" << problems.size() << " total)";
    return out.str();
}

OracleResult
fail(std::string stage, std::string kind, std::string detail)
{
    OracleResult result;
    result.ok = false;
    result.stage = std::move(stage);
    result.failKind = std::move(kind);
    result.detail = std::move(detail);
    return result;
}

/**
 * One interpreted state transition of the instantiated module. The
 * ExecutableModule is built once per oracle run (the AST walker used
 * to be re-constructed per transition) and dispatches through the
 * configured execution tier.
 */
long long
interpStep(ir::ExecutableModule &exec, const std::string &function,
           long long input, long long state)
{
    const ir::RtValue result = exec.call(
        function,
        {ir::RtValue::ofInt(input), ir::RtValue::ofInt(state)});
    return result.asInt();
}

struct EngineRun
{
    std::vector<Out> outputs;
    sdi::EngineStats stats;
};

sdi::SpecEngine<In, long long, Out>::MatchFn
makeMatcher(MatcherKind kind)
{
    switch (kind) {
      case MatcherKind::AlwaysMatch:
        return sdi::alwaysMatch<long long>();
      case MatcherKind::ExactSingle:
        return sdi::exactSingleMatcher<long long>();
      case MatcherKind::ExactAny:
        break;
    }
    return [](const long long &spec,
              const std::vector<long long> &originals) -> int {
        for (std::size_t i = 0; i < originals.size(); ++i) {
            if (originals[i] == spec)
                return int(i);
        }
        return -1;
    };
}

/** Execute the instantiated dependence on the speculation engine. */
EngineRun
runEngine(ir::ExecutableModule &exec, const std::string &compute_fn,
          const std::string &aux_fn, const Scenario &scenario,
          const std::vector<In> &inputs, int sim_threads)
{
    // Per-position invocation counters give each (position, attempt)
    // pair its own noise draw. Plain engine runs touch them only from
    // serialized callbacks' tasks, but squashed-but-dispatched bodies
    // can race re-executions on real threads, hence atomics.
    auto counters = std::make_shared<std::vector<std::atomic<int>>>(
        inputs.size());

    const std::uint64_t noise_seed =
        support::SeedSequence(scenario.seed).derive("noise");
    const int noisy = scenario.noisyPercent;
    const int max_noise = scenario.maxNoise;

    using Engine = sdi::SpecEngine<In, long long, Out>;
    Engine::ComputeFn compute = [&exec, &compute_fn, counters,
                                 noise_seed, noisy, max_noise](
                                    const In &in, long long &state,
                                    const sdi::ComputeContext &) {
        Out out{in.pos, state};
        const int attempt = (*counters)[std::size_t(in.pos)].fetch_add(
            1, std::memory_order_relaxed);
        state = wrapState(
            interpStep(exec, compute_fn, in.value, state) +
            noiseFor(noise_seed, in.pos, attempt, noisy, max_noise));
        Engine::Invocation inv;
        inv.output = std::make_unique<Out>(out);
        inv.cost = exec::Work{1e-5, 0.2};
        return inv;
    };
    // Auxiliary code draws no noise: the paper's aux clone is a pure
    // approximation whose value only ever *proposes* a start state.
    Engine::ComputeFn auxiliary =
        [&exec, &aux_fn](const In &in, long long &state,
                         const sdi::ComputeContext &) {
            Out out{in.pos, state};
            state = wrapState(interpStep(exec, aux_fn, in.value, state));
            Engine::Invocation inv;
            inv.output = std::make_unique<Out>(out);
            inv.cost = exec::Work{5e-6, 0.2};
            return inv;
        };

    // Batched auxiliary: all windows advance in lockstep through
    // ExecutableModule::callBatch (scalar-call fallback when batching
    // does not apply to the function). Must be bit-identical to the
    // scalar auxiliary above — it draws no noise either — so engaging
    // it never changes the engine's validation verdicts.
    Engine::BatchAuxFn batch_aux =
        [&exec, &aux_fn, &inputs, &scenario](
            const std::vector<Engine::AuxBatchItem> &items) {
            std::vector<Engine::AuxBatchResult> results(items.size());
            std::vector<long long> states(
                items.size(), (long long)scenario.initialState);
            std::size_t longest = 0;
            for (const auto &item : items)
                longest = std::max(longest,
                                   item.windowEnd - item.windowBegin);
            std::vector<ir::RtValue> arg0, arg1, lane_results;
            std::vector<std::size_t> lanes;
            for (std::size_t step = 0; step < longest; ++step) {
                arg0.clear();
                arg1.clear();
                lanes.clear();
                for (std::size_t i = 0; i < items.size(); ++i) {
                    const std::size_t pos = items[i].windowBegin + step;
                    if (pos >= items[i].windowEnd)
                        continue; // Shorter window: lane retired.
                    lanes.push_back(i);
                    arg0.push_back(
                        ir::RtValue::ofInt(inputs[pos].value));
                    arg1.push_back(ir::RtValue::ofInt(states[i]));
                    results[i].workUnits += 5e-6;
                }
                if (lanes.empty())
                    continue;
                lane_results.assign(lanes.size(), ir::RtValue());
                const std::vector<const ir::RtValue *> columns = {
                    arg0.data(), arg1.data()};
                if (!exec.callBatch(aux_fn, lanes.size(), columns,
                                    lane_results.data())) {
                    for (std::size_t l = 0; l < lanes.size(); ++l)
                        lane_results[l] =
                            exec.call(aux_fn, {arg0[l], arg1[l]});
                }
                for (std::size_t l = 0; l < lanes.size(); ++l)
                    states[lanes[l]] =
                        wrapState(lane_results[l].asInt());
            }
            for (std::size_t i = 0; i < items.size(); ++i)
                results[i].state = states[i];
            return results;
        };

    sim::MachineConfig machine;
    machine.dispatchOverhead = 0.0;
    exec::SimExecutor executor(machine, sim_threads);
    Engine engine(executor, inputs,
                  (long long)scenario.initialState, compute, auxiliary,
                  makeMatcher(scenario.matcher), scenario.config);
    engine.setBatchAuxiliary(batch_aux);
    engine.start();
    engine.join();

    EngineRun run;
    run.stats = engine.stats();
    for (const auto &output : engine.outputs())
        run.outputs.push_back(*output);
    return run;
}

/**
 * The oracle's core: is this committed history some legal
 * nondeterministic sequential execution? Exact check — every observed
 * transition must be one of the position's enumerable legal
 * transitions.
 */
std::string
checkChain(const std::vector<Out> &outputs,
           const std::vector<In> &inputs, ir::ExecutableModule &exec,
           const std::string &compute_fn, const Scenario &scenario)
{
    const std::uint64_t noise_seed =
        support::SeedSequence(scenario.seed).derive("noise");
    const int attempts = legalAttempts(scenario);
    if (outputs.empty())
        return "";
    if (outputs.front().observed != scenario.initialState) {
        return "input 0 observed state " +
               std::to_string(outputs.front().observed) +
               ", expected initial state " +
               std::to_string(scenario.initialState);
    }
    for (std::size_t p = 1; p < outputs.size(); ++p) {
        const long long prev = outputs[p - 1].observed;
        const long long base =
            interpStep(exec, compute_fn, inputs[p - 1].value, prev);
        bool legal = false;
        for (int a = 0; a < attempts && !legal; ++a) {
            legal = outputs[p].observed ==
                    wrapState(base + noiseFor(noise_seed, int(p) - 1, a,
                                              scenario.noisyPercent,
                                              scenario.maxNoise));
        }
        if (!legal) {
            return "transition " + std::to_string(p - 1) + " -> " +
                   std::to_string(p) + ": observed " +
                   std::to_string(outputs[p].observed) +
                   " is not reachable from " + std::to_string(prev) +
                   " under any of " + std::to_string(attempts) +
                   " legal attempts";
        }
    }
    return "";
}

/** Count/order checks that hold for every matcher. */
std::string
checkShape(const std::vector<Out> &outputs,
           const std::vector<In> &inputs)
{
    if (outputs.size() != inputs.size()) {
        return "engine produced " + std::to_string(outputs.size()) +
               " outputs for " + std::to_string(inputs.size()) +
               " inputs";
    }
    for (std::size_t p = 0; p < outputs.size(); ++p) {
        if (outputs[p].pos != int(p)) {
            return "output slot " + std::to_string(p) +
                   " holds input " + std::to_string(outputs[p].pos);
        }
    }
    return "";
}

std::string
checkStats(const sdi::EngineStats &stats, const Scenario &scenario,
           std::size_t inputs)
{
    if (stats.aborts > 1)
        return "more than one abort in a single run";
    if (stats.invocations < std::int64_t(inputs))
        return "fewer invocations than inputs";
    if (!scenario.config.useAuxiliary && stats.groups != 0)
        return "speculative groups formed without auxiliary code";
    if (stats.squashedGroups > stats.groups)
        return "more squashed groups than groups";
    return "";
}

} // namespace

int
legalAttempts(const Scenario &scenario)
{
    return std::max(0, scenario.config.maxReexecutions) + 2;
}

long long
wrapState(long long value)
{
    const long long wrapped = value % kStateModulus;
    return wrapped < 0 ? wrapped + kStateModulus : wrapped;
}

long long
noiseFor(std::uint64_t seed, int position, int attempt,
         int noisy_percent, int max_noise)
{
    if (noisy_percent <= 0 || max_noise <= 0)
        return 0;
    std::uint64_t state = seed ^
                          (std::uint64_t(position) * 0x9e3779b97f4a7c15ULL) ^
                          (std::uint64_t(attempt) * 0xbf58476d1ce4e5b9ULL);
    const std::uint64_t draw = support::splitmix64(state);
    if (draw % 100 >= std::uint64_t(noisy_percent))
        return 0;
    return (long long)((draw >> 8) % std::uint64_t(max_noise + 1));
}

OracleResult
runOracle(const FuzzCase &fuzz_case, const OracleOptions &options)
{
    const Scenario &scenario = fuzz_case.scenario;

    // ---- stage: verify (the only stage fed unvetted IR) ----
    const std::vector<std::string> problems =
        ir::verifyModule(fuzz_case.module);
    if (fuzz_case.expect == Expectation::Reject) {
        OracleResult result;
        if (fuzz_case.expectStage == "verify") {
            if (!problems.empty()) {
                result.rejected = true;
                result.stage = "verify";
                result.detail = joinProblems(problems);
                return result;
            }
            return fail("verify", "missed-rejection",
                        "verifier accepted a near-miss module");
        }
        // Analysis-stage near-miss: must be structurally clean, then
        // flagged by the analyzer on the midend IR.
        if (!problems.empty()) {
            return fail("verify", "missed-rejection",
                        "analysis near-miss died in the verifier: " +
                            joinProblems(problems));
        }
        ir::Module midend_ir = fuzz_case.module;
        midend::runMiddleEnd(midend_ir);
        const auto diagnostics = analysis::runAnalyses(midend_ir, {});
        if (analysis::hasErrors(diagnostics)) {
            result.rejected = true;
            result.stage = "analysis";
            result.detail = std::to_string(diagnostics.size()) +
                            " diagnostic(s)";
            return result;
        }
        return fail("analysis", "missed-rejection",
                    "analyzer accepted a near-miss module");
    }
    if (!problems.empty()) {
        return fail("verify", "generator-invalid",
                    joinProblems(problems));
    }
    if (fuzz_case.module.stateDeps.empty()) {
        return fail("verify", "generator-invalid",
                    "module declares no state dependence");
    }

    // ---- stage: midend ----
    ir::Module midend_ir = fuzz_case.module;
    midend::runMiddleEnd(midend_ir);
    if (const auto midend_problems = ir::verifyModule(midend_ir);
        !midend_problems.empty()) {
        return fail("midend", "midend-invalid",
                    joinProblems(midend_problems));
    }

    // ---- stage: analysis ----
    if (options.runAnalysis) {
        analysis::LintOptions lint;
        lint.bytecodeVerifier = ir::bc::verifyCompiledModule;
        const auto diagnostics = analysis::runAnalyses(midend_ir, lint);
        if (analysis::hasErrors(diagnostics)) {
            std::ostringstream detail;
            analysis::writeDiagnosticsText(detail, fuzz_case.name,
                                           diagnostics);
            return fail("analysis", "analysis-unclean", detail.str());
        }
    }

    // ---- stage: backend (random aux-tradeoff configuration) ----
    const support::SeedSequence sequence(scenario.seed);
    support::Xoshiro256 backend_rng(sequence.derive("backend"));
    backend::BackendConfig config;
    // Generated modules are range-sloppy by design; the analysis stage
    // above already linted, so skip the per-instantiation audit.
    config.auditRanges = false;
    for (const auto &dep : midend_ir.stateDeps)
        config.auxiliaryDeps.insert(dep.name);
    for (const auto &tradeoff : midend_ir.tradeoffs) {
        if (!tradeoff.auxClone || backend_rng.nextBelow(2) == 0)
            continue; // Half the time: keep the default index.
        const std::int64_t size = midend::sizeOf(midend_ir, tradeoff);
        config.tradeoffIndices[tradeoff.name] =
            std::int64_t(backend_rng.nextBelow(std::uint64_t(size)));
    }
    const ir::Module instantiated =
        backend::instantiate(midend_ir, config);
    if (const auto backend_problems = ir::verifyModule(instantiated);
        !backend_problems.empty()) {
        return fail("backend", "backend-invalid",
                    joinProblems(backend_problems));
    }

    const ir::StateDepMeta &dep = instantiated.stateDeps.front();
    const std::string compute_fn = dep.computeFn;
    const std::string aux_fn =
        dep.auxFn.empty() ? dep.computeFn : dep.auxFn;

    // One executable per oracle run: the bytecode tier compiles each
    // function once, and fallback calls share the wrapped AST walker.
    ir::ExecutableModule exec(instantiated, options.execTier);
    exec.setStepBudget(1'000'000);

    // ---- inputs (a pure function of the scenario seed) ----
    support::Xoshiro256 input_rng(sequence.derive("inputs"));
    std::vector<In> inputs;
    for (int p = 0; p < scenario.inputs; ++p)
        inputs.push_back({p, input_rng.uniformInt(0, 999)});

    OracleResult result;
    result.stage = "sequential";

    // ---- sequential sampling: fingerprints + determinism check ----
    // The runs advance lane-parallel, one input at a time: run r is
    // lane r, its replay is lane runs+r, and straight-line compute
    // functions go through the VM's batched SoA mode. Each run still
    // draws its attempts from its own rng stream in input order, so
    // the sampled histories are the ones the run-at-a-time loop drew.
    const std::uint64_t noise_seed = sequence.derive("noise");
    const int attempts = legalAttempts(scenario);
    const int runs = std::max(1, scenario.sequentialRuns);
    const std::size_t lanes = std::size_t(runs) * 2;
    std::vector<support::Xoshiro256> run_rngs;
    for (int r = 0; r < runs; ++r)
        run_rngs.emplace_back(
            sequence.derive("sequential", std::uint64_t(r)));
    std::vector<long long> state(std::size_t(runs),
                                 (long long)scenario.initialState);
    std::vector<long long> replayed = state;
    std::vector<ir::RtValue> in_col(lanes), state_col(lanes),
        stepped(lanes);
    for (const In &in : inputs) {
        for (std::size_t l = 0; l < lanes; ++l) {
            in_col[l] = ir::RtValue::ofInt(in.value);
            state_col[l] = ir::RtValue::ofInt(
                l < std::size_t(runs) ? state[l]
                                      : replayed[l - std::size_t(runs)]);
        }
        const std::vector<const ir::RtValue *> columns{
            in_col.data(), state_col.data()};
        if (!exec.callBatch(compute_fn, lanes, columns,
                            stepped.data())) {
            for (std::size_t l = 0; l < lanes; ++l)
                stepped[l] = ir::RtValue::ofInt(interpStep(
                    exec, compute_fn, in.value, state_col[l].i));
        }
        for (int r = 0; r < runs; ++r) {
            const int attempt = int(
                run_rngs[std::size_t(r)].nextBelow(std::uint64_t(attempts)));
            const long long noise =
                noiseFor(noise_seed, in.pos, attempt,
                         scenario.noisyPercent, scenario.maxNoise);
            state[std::size_t(r)] =
                wrapState(stepped[std::size_t(r)].asInt() + noise);
            replayed[std::size_t(r)] = wrapState(
                stepped[std::size_t(runs + r)].asInt() + noise);
            if (state[std::size_t(r)] != replayed[std::size_t(r)]) {
                return fail("sequential", "sequential-self-check",
                            "re-interpreting input " +
                                std::to_string(in.pos) +
                                " of run " + std::to_string(r) +
                                " gave a different state");
            }
        }
    }
    std::set<long long> finals(state.begin(), state.end());
    result.sequentialFinals.assign(finals.begin(), finals.end());

    // ---- speculative run (clean) ----
    result.stage = "speculative";
    EngineRun clean = runEngine(exec, compute_fn, aux_fn,
                                scenario, inputs, options.simThreads);
    result.cleanStats = clean.stats;
    if (auto error = checkShape(clean.outputs, inputs); !error.empty())
        return fail("speculative", "output-order", error);
    if (scenario.matcher != MatcherKind::AlwaysMatch) {
        if (auto error = checkChain(clean.outputs, inputs, exec,
                                    compute_fn, scenario);
            !error.empty())
            return fail("speculative", "chain-violation", error);
    } else if (!clean.outputs.empty() &&
               clean.outputs.front().observed != scenario.initialState) {
        return fail("speculative", "chain-violation",
                    "always-match run did not start from the initial "
                    "state");
    }
    if (auto error = checkStats(clean.stats, scenario, inputs.size());
        !error.empty())
        return fail("speculative", "stats-inconsistent", error);

    // ---- speculative run under the fault storm ----
    if (options.faultRun && !scenario.faults.empty()) {
        std::string plan_error;
        const auto plan =
            replay::FaultPlan::fromSpec(scenario.faults, plan_error);
        if (!plan) {
            return fail("faulted", "fault-spec-invalid", plan_error);
        }
        result.stage = "faulted";
        result.faulted = true;
        auto &session = replay::ReplaySession::global();
        session.setFaultPlan(*plan);
        EngineRun faulted = runEngine(exec, compute_fn, aux_fn,
                                      scenario, inputs,
                                      options.simThreads);
        session.setFaultPlan(replay::FaultPlan{});
        result.faultStats = faulted.stats;
        if (auto error = checkShape(faulted.outputs, inputs);
            !error.empty())
            return fail("faulted", "output-order", error);
        if (scenario.matcher != MatcherKind::AlwaysMatch) {
            if (auto error =
                    checkChain(faulted.outputs, inputs, exec,
                               compute_fn, scenario);
                !error.empty())
                return fail("faulted", "chain-violation", error);
        }
        if (auto error =
                checkStats(faulted.stats, scenario, inputs.size());
            !error.empty())
            return fail("faulted", "stats-inconsistent", error);
    }

    result.stage = result.faulted ? "faulted" : "speculative";
    return result;
}

} // namespace stats::testing
