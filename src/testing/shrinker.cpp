#include "testing/shrinker.hpp"

#include <algorithm>
#include <cstdlib>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace stats::testing {

namespace {

ir::Operand
unitConstant(ir::Type type)
{
    if (type == ir::Type::I64)
        return ir::Operand::constInt(1);
    return ir::Operand::constFloat(1.0);
}

/** Replace every use of `temp` in the function with `replacement`. */
void
replaceUses(ir::Function &fn, const std::string &temp,
            const ir::Operand &replacement)
{
    for (auto &block : fn.blocks) {
        for (auto &inst : block.instructions) {
            for (auto &operand : inst.operands) {
                if (operand.kind == ir::Operand::Kind::Temp &&
                    operand.name == temp)
                    operand = replacement;
            }
        }
    }
}

/** Function names the module's metadata or call sites still need. */
std::set<std::string>
referencedFunctions(const ir::Module &module)
{
    std::set<std::string> keep;
    for (const auto &dep : module.stateDeps) {
        keep.insert(dep.computeFn);
        if (!dep.auxFn.empty())
            keep.insert(dep.auxFn);
    }
    for (const auto &tradeoff : module.tradeoffs) {
        keep.insert(tradeoff.placeholder);
        keep.insert(tradeoff.getValueFn);
        keep.insert(tradeoff.sizeFn);
        keep.insert(tradeoff.defaultIndexFn);
        if (tradeoff.kind == ir::TradeoffKind::FunctionChoice) {
            for (const auto &choice : tradeoff.nameChoices)
                keep.insert(choice);
        }
    }
    for (const auto &clone : module.auxClones) {
        keep.insert(clone.clone);
        keep.insert(clone.origin);
    }
    for (const auto &fn : module.functions) {
        for (const auto &block : fn.blocks) {
            for (const auto &inst : block.instructions) {
                if (inst.op == ir::Opcode::Call)
                    keep.insert(inst.callee);
            }
        }
    }
    return keep;
}

/**
 * Functions whose *values* carry range contracts (a tradeoff's
 * default index must stay below its size, or the back-end panics).
 * The shrinker must not edit their bodies.
 */
std::set<std::string>
fragileFunctions(const ir::Module &module)
{
    std::set<std::string> fragile;
    for (const auto &tradeoff : module.tradeoffs) {
        fragile.insert(tradeoff.sizeFn);
        fragile.insert(tradeoff.defaultIndexFn);
    }
    return fragile;
}

/** True if any terminator jumps backward (a loop lives here). */
bool
hasBackEdge(const ir::Function &fn)
{
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < fn.blocks.size(); ++i)
        index[fn.blocks[i].label] = i;
    for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
        const ir::Instruction *term = fn.blocks[i].terminator();
        if (!term)
            continue;
        for (const auto &label : term->labels) {
            const auto it = index.find(label);
            if (it != index.end() && it->second <= i)
                return true;
        }
    }
    return false;
}

/** Drop unreachable blocks, then re-derive phi incoming lists so
 *  they exactly cover the surviving predecessors. */
void
pruneCfg(ir::Function &fn)
{
    if (fn.blocks.empty())
        return;
    std::map<std::string, std::size_t> index;
    for (std::size_t i = 0; i < fn.blocks.size(); ++i)
        index[fn.blocks[i].label] = i;
    std::vector<bool> reachable(fn.blocks.size(), false);
    std::vector<std::size_t> stack{0};
    reachable[0] = true;
    while (!stack.empty()) {
        const std::size_t i = stack.back();
        stack.pop_back();
        const ir::Instruction *term = fn.blocks[i].terminator();
        if (!term)
            continue;
        for (const auto &label : term->labels) {
            const auto it = index.find(label);
            if (it != index.end() && !reachable[it->second]) {
                reachable[it->second] = true;
                stack.push_back(it->second);
            }
        }
    }
    std::vector<ir::BasicBlock> kept;
    for (std::size_t i = 0; i < fn.blocks.size(); ++i) {
        if (reachable[i])
            kept.push_back(std::move(fn.blocks[i]));
    }
    fn.blocks = std::move(kept);

    std::map<std::string, std::set<std::string>> preds;
    for (const auto &block : fn.blocks) {
        const ir::Instruction *term = block.terminator();
        if (!term)
            continue;
        for (const auto &label : term->labels)
            preds[label].insert(block.label);
    }
    for (auto &block : fn.blocks) {
        for (std::size_t k = 0; k < block.instructions.size();) {
            ir::Instruction &inst = block.instructions[k];
            if (inst.op != ir::Opcode::Phi) {
                ++k;
                continue;
            }
            const std::set<std::string> &incoming =
                preds[block.label];
            std::vector<ir::Operand> operands;
            std::vector<std::string> labels;
            for (std::size_t o = 0; o < inst.operands.size(); ++o) {
                if (incoming.count(inst.labels[o])) {
                    operands.push_back(inst.operands[o]);
                    labels.push_back(inst.labels[o]);
                }
            }
            if (operands.empty()) {
                replaceUses(fn, inst.result, unitConstant(inst.type));
                block.instructions.erase(block.instructions.begin() +
                                         std::ptrdiff_t(k));
                continue;
            }
            inst.operands = std::move(operands);
            inst.labels = std::move(labels);
            ++k;
        }
    }
}

/** Straighten a conditional branch into the forward direction `dir`.
 *  Backward targets are refused: they would manufacture loops. */
bool
straightenBranch(ir::Function &fn, std::size_t block_index, int dir)
{
    ir::BasicBlock &block = fn.blocks[block_index];
    if (block.instructions.empty())
        return false;
    ir::Instruction &term = block.instructions.back();
    if (term.op != ir::Opcode::Br)
        return false;
    const std::string target = term.labels[std::size_t(dir)];
    for (std::size_t i = 0; i <= block_index && i < fn.blocks.size();
         ++i) {
        if (fn.blocks[i].label == target)
            return false;
    }
    term.op = ir::Opcode::Jmp;
    term.type = ir::Type::Void;
    term.result.clear();
    term.operands.clear();
    term.labels = {target};
    pruneCfg(fn);
    return true;
}

struct Shrinker
{
    std::string targetKind;
    ShrinkOptions options;
    int evaluations = 0;

    bool
    budgetLeft() const
    {
        return evaluations < options.maxEvaluations;
    }

    /** Does the candidate still fail with the same kind? */
    bool
    stillFails(const FuzzCase &candidate)
    {
        if (!budgetLeft())
            return false;
        ++evaluations;
        const OracleResult result =
            runOracle(candidate, options.oracle);
        return !result.ok && result.failKind == targetKind;
    }

    /** Try one whole-case transformation; keep it if it reproduces. */
    bool
    tryStep(FuzzCase &best,
            const std::function<bool(FuzzCase &)> &transform)
    {
        FuzzCase candidate = best;
        if (!transform(candidate))
            return false;
        if (!stillFails(candidate))
            return false;
        best = std::move(candidate);
        return true;
    }

    bool
    shrinkScenario(FuzzCase &best)
    {
        bool changed = false;
        const auto set_int = [&](int Scenario::*field, int value) {
            return [field, value](FuzzCase &c) {
                if (c.scenario.*field == value)
                    return false;
                c.scenario.*field = value;
                return true;
            };
        };
        while (best.scenario.inputs > 4 &&
               tryStep(best, [](FuzzCase &c) {
                   c.scenario.inputs =
                       std::max(4, c.scenario.inputs / 2);
                   return true;
               }))
            changed = true;
        changed |= tryStep(best, set_int(&Scenario::sequentialRuns, 1));
        changed |= tryStep(best, set_int(&Scenario::noisyPercent, 0));
        changed |= tryStep(best, [](FuzzCase &c) {
            if (c.scenario.faults.empty())
                return false;
            c.scenario.faults.clear();
            return true;
        });
        const auto set_cfg = [&](int sdi::SpecConfig::*field,
                                 int value) {
            return [field, value](FuzzCase &c) {
                if (c.scenario.config.*field == value)
                    return false;
                c.scenario.config.*field = value;
                return true;
            };
        };
        changed |=
            tryStep(best, set_cfg(&sdi::SpecConfig::auxWindow, 0));
        changed |=
            tryStep(best, set_cfg(&sdi::SpecConfig::maxReexecutions, 0));
        changed |=
            tryStep(best, set_cfg(&sdi::SpecConfig::rollbackDepth, 1));
        changed |=
            tryStep(best, set_cfg(&sdi::SpecConfig::sdThreads, 1));
        changed |=
            tryStep(best, set_cfg(&sdi::SpecConfig::groupSize, 1));
        changed |=
            tryStep(best, set_cfg(&sdi::SpecConfig::auxBatchGroups, 1));
        return changed;
    }

    bool
    shrinkBranches(FuzzCase &best)
    {
        bool changed = false;
        bool progress = true;
        while (progress && budgetLeft()) {
            progress = false;
            for (std::size_t f = 0;
                 f < best.module.functions.size() && !progress; ++f) {
                const std::size_t block_count =
                    best.module.functions[f].blocks.size();
                for (std::size_t b = 0; b < block_count && !progress;
                     ++b) {
                    for (int dir = 0; dir < 2 && !progress; ++dir) {
                        progress = tryStep(best, [=](FuzzCase &c) {
                            return straightenBranch(
                                c.module.functions[f], b, dir);
                        });
                    }
                }
            }
            changed |= progress;
        }
        return changed;
    }

    bool
    shrinkTradeoffs(FuzzCase &best)
    {
        bool changed = false;
        for (std::size_t t = best.module.tradeoffs.size(); t-- > 0;) {
            if (t >= best.module.tradeoffs.size())
                continue;
            changed |= tryStep(best, [t](FuzzCase &c) {
                const ir::TradeoffMeta meta = c.module.tradeoffs[t];
                for (auto &fn : c.module.functions) {
                    for (auto &block : fn.blocks) {
                        for (auto &inst : block.instructions) {
                            if (inst.op != ir::Opcode::Call ||
                                inst.callee != meta.placeholder)
                                continue;
                            // Placeholder call -> a unit constant of
                            // the call's type.
                            inst.op = ir::Opcode::Add;
                            inst.callee.clear();
                            inst.labels.clear();
                            inst.operands = {
                                unitConstant(inst.type),
                                inst.type == ir::Type::I64
                                    ? ir::Operand::constInt(0)
                                    : ir::Operand::constFloat(0.0)};
                        }
                    }
                }
                c.module.tradeoffs.erase(
                    c.module.tradeoffs.begin() + std::ptrdiff_t(t));
                return true;
            });
        }
        return changed;
    }

    bool
    shrinkFunctions(FuzzCase &best)
    {
        bool changed = false;
        bool progress = true;
        while (progress && budgetLeft()) {
            progress = false;
            const std::set<std::string> keep =
                referencedFunctions(best.module);
            for (std::size_t f = best.module.functions.size();
                 f-- > 0;) {
                if (keep.count(best.module.functions[f].name))
                    continue;
                progress |= tryStep(best, [f](FuzzCase &c) {
                    c.module.functions.erase(
                        c.module.functions.begin() + std::ptrdiff_t(f));
                    return true;
                });
                if (progress)
                    break; // References changed; recompute the set.
            }
            changed |= progress;
        }
        return changed;
    }

    bool
    shrinkInstructions(FuzzCase &best)
    {
        bool changed = false;
        const std::set<std::string> fragile =
            fragileFunctions(best.module);
        for (std::size_t f = 0; f < best.module.functions.size(); ++f) {
            if (fragile.count(best.module.functions[f].name))
                continue;
            if (hasBackEdge(best.module.functions[f]))
                continue; // Deleting loop plumbing can unbound it.
            for (std::size_t b = 0;
                 b < best.module.functions[f].blocks.size(); ++b) {
                for (std::size_t k = best.module.functions[f]
                                         .blocks[b]
                                         .instructions.size();
                     k-- > 0;) {
                    if (!budgetLeft())
                        return changed;
                    const auto &insts =
                        best.module.functions[f].blocks[b].instructions;
                    if (k >= insts.size() ||
                        ir::isTerminator(insts[k].op))
                        continue;
                    changed |= tryStep(best, [f, b, k](FuzzCase &c) {
                        ir::Function &fn = c.module.functions[f];
                        auto &block_insts = fn.blocks[b].instructions;
                        const ir::Instruction inst = block_insts[k];
                        block_insts.erase(block_insts.begin() +
                                          std::ptrdiff_t(k));
                        if (!inst.result.empty())
                            replaceUses(fn, inst.result,
                                        unitConstant(inst.type));
                        return true;
                    });
                }
            }
        }
        return changed;
    }

    bool
    shrinkConstants(FuzzCase &best)
    {
        bool changed = false;
        const std::set<std::string> fragile =
            fragileFunctions(best.module);
        for (std::size_t f = 0; f < best.module.functions.size(); ++f) {
            if (fragile.count(best.module.functions[f].name))
                continue;
            for (std::size_t b = 0;
                 b < best.module.functions[f].blocks.size(); ++b) {
                const std::size_t inst_count = best.module.functions[f]
                                                   .blocks[b]
                                                   .instructions.size();
                for (std::size_t k = 0; k < inst_count; ++k) {
                    const std::size_t operand_count =
                        best.module.functions[f]
                            .blocks[b]
                            .instructions[k]
                            .operands.size();
                    for (std::size_t o = 0; o < operand_count; ++o) {
                        while (budgetLeft() &&
                               tryStep(best, [=](FuzzCase &c) {
                                   auto &operand =
                                       c.module.functions[f]
                                           .blocks[b]
                                           .instructions[k]
                                           .operands[o];
                                   if (operand.kind !=
                                           ir::Operand::Kind::
                                               ConstInt ||
                                       std::llabs(operand.intValue) <=
                                           1)
                                       return false;
                                   operand.intValue /= 2;
                                   return true;
                               }))
                            changed = true;
                    }
                }
            }
        }
        return changed;
    }
};

} // namespace

ShrinkResult
shrinkCase(const FuzzCase &failing, const ShrinkOptions &options)
{
    ShrinkResult result;
    result.minimized = failing;

    const OracleResult original = runOracle(failing, options.oracle);
    result.evaluations = 1;
    if (original.ok)
        return result; // Nothing to minimize.
    result.failKind = original.failKind;

    Shrinker shrinker{original.failKind, options, result.evaluations};
    bool progress = true;
    while (progress && shrinker.budgetLeft()) {
        progress = false;
        progress |= shrinker.shrinkScenario(result.minimized);
        progress |= shrinker.shrinkBranches(result.minimized);
        progress |= shrinker.shrinkTradeoffs(result.minimized);
        progress |= shrinker.shrinkFunctions(result.minimized);
        progress |= shrinker.shrinkInstructions(result.minimized);
        progress |= shrinker.shrinkConstants(result.minimized);
        result.changed |= progress;
    }
    result.evaluations = shrinker.evaluations;
    return result;
}

} // namespace stats::testing
