#include "support/timer.hpp"

namespace stats::support {

double
Timer::elapsedSeconds() const
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - _start).count();
}

} // namespace stats::support
