#include "support/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "support/log.hpp"

namespace stats::support {

TextTable::TextTable(std::vector<std::string> headers)
    : _headers(std::move(headers))
{
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != _headers.size())
        panic("TextTable row has ", cells.size(), " cells, expected ",
              _headers.size());
    _rows.push_back(std::move(cells));
}

std::string
TextTable::formatDouble(double v, int precision)
{
    std::ostringstream out;
    out << std::fixed << std::setprecision(precision) << v;
    return out.str();
}

void
TextTable::addRow(const std::string &label, const std::vector<double> &cells,
                  int precision)
{
    std::vector<std::string> row;
    row.reserve(cells.size() + 1);
    row.push_back(label);
    for (double v : cells)
        row.push_back(formatDouble(v, precision));
    addRow(std::move(row));
}

void
TextTable::print(std::ostream &out) const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto &row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            out << std::left << std::setw(static_cast<int>(widths[c]) + 2)
                << cells[c];
        }
        out << "\n";
    };

    print_line(_headers);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    out << std::string(total, '-') << "\n";
    for (const auto &row : _rows)
        print_line(row);
}

void
printSeries(std::ostream &out, const std::string &name,
            const std::vector<double> &xs, const std::vector<double> &ys,
            int precision)
{
    out << name << ":\n";
    for (std::size_t i = 0; i < xs.size() && i < ys.size(); ++i) {
        out << "  " << std::setw(8) << TextTable::formatDouble(xs[i], 0)
            << " -> "
            << TextTable::formatDouble(ys[i], precision) << "\n";
    }
}

} // namespace stats::support
