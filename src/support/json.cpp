#include "support/json.hpp"

#include <cmath>

#include "support/log.hpp"

namespace stats::support {

JsonWriter::JsonWriter(std::ostream &out, bool pretty)
    : _out(out), _pretty(pretty)
{
}

JsonWriter::~JsonWriter()
{
    if (!_scopes.empty())
        warn("JsonWriter destroyed with ", _scopes.size(), " open scopes");
}

void
JsonWriter::newlineIndent()
{
    if (!_pretty)
        return;
    _out << "\n";
    for (std::size_t i = 0; i < _scopes.size(); ++i)
        _out << "  ";
}

void
JsonWriter::prepareForValue()
{
    if (_scopes.empty())
        return;
    if (_scopes.back() == Scope::Object) {
        if (!_pendingKey)
            panic("JSON value inside object without a key");
        _pendingKey = false;
        return;
    }
    if (_hasItems.back())
        _out << ",";
    _hasItems.back() = true;
    newlineIndent();
}

JsonWriter &
JsonWriter::beginObject()
{
    prepareForValue();
    _out << "{";
    _scopes.push_back(Scope::Object);
    _hasItems.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endObject()
{
    if (_scopes.empty() || _scopes.back() != Scope::Object)
        panic("endObject without matching beginObject");
    const bool had_items = _hasItems.back();
    _scopes.pop_back();
    _hasItems.pop_back();
    if (had_items)
        newlineIndent();
    _out << "}";
    if (_scopes.empty())
        _out << "\n";
    return *this;
}

JsonWriter &
JsonWriter::beginArray()
{
    prepareForValue();
    _out << "[";
    _scopes.push_back(Scope::Array);
    _hasItems.push_back(false);
    return *this;
}

JsonWriter &
JsonWriter::endArray()
{
    if (_scopes.empty() || _scopes.back() != Scope::Array)
        panic("endArray without matching beginArray");
    const bool had_items = _hasItems.back();
    _scopes.pop_back();
    _hasItems.pop_back();
    if (had_items)
        newlineIndent();
    _out << "]";
    return *this;
}

JsonWriter &
JsonWriter::key(const std::string &name)
{
    if (_scopes.empty() || _scopes.back() != Scope::Object)
        panic("JSON key outside of an object");
    if (_pendingKey)
        panic("two consecutive JSON keys");
    if (_hasItems.back())
        _out << ",";
    _hasItems.back() = true;
    newlineIndent();
    _out << "\"" << escape(name) << "\":" << (_pretty ? " " : "");
    _pendingKey = true;
    return *this;
}

JsonWriter &
JsonWriter::value(const std::string &s)
{
    prepareForValue();
    _out << "\"" << escape(s) << "\"";
    return *this;
}

JsonWriter &
JsonWriter::value(const char *s)
{
    return value(std::string(s));
}

JsonWriter &
JsonWriter::value(double d)
{
    prepareForValue();
    if (std::isnan(d) || std::isinf(d)) {
        _out << "null";
    } else {
        _out << d;
    }
    return *this;
}

JsonWriter &
JsonWriter::value(std::int64_t i)
{
    prepareForValue();
    _out << i;
    return *this;
}

JsonWriter &
JsonWriter::value(std::size_t i)
{
    prepareForValue();
    _out << i;
    return *this;
}

JsonWriter &
JsonWriter::value(bool b)
{
    prepareForValue();
    _out << (b ? "true" : "false");
    return *this;
}

JsonWriter &
JsonWriter::field(const std::string &name, const std::vector<double> &values)
{
    key(name);
    beginArray();
    for (double v : values)
        value(v);
    return endArray();
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:   out += c; break;
        }
    }
    return out;
}

} // namespace stats::support
