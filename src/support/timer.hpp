/**
 * @file
 * Wall-clock timing helpers for the real-thread executor and the
 * profiler's host-side measurements.
 */

#pragma once

#include <chrono>

namespace stats::support {

/** Monotonic wall-clock stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    void reset() { _start = std::chrono::steady_clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double elapsedSeconds() const;

  private:
    std::chrono::steady_clock::time_point _start;
};

} // namespace stats::support
