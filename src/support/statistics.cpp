#include "support/statistics.hpp"

#include <algorithm>
#include <cmath>

namespace stats::support {

void
RunningStat::add(double x)
{
    if (_n == 0) {
        _min = x;
        _max = x;
    } else {
        _min = std::min(_min, x);
        _max = std::max(_max, x);
    }
    ++_n;
    const double delta = x - _mean;
    _mean += delta / static_cast<double>(_n);
    _m2 += delta * (x - _mean);
}

double
RunningStat::mean() const
{
    return _n ? _mean : 0.0;
}

double
RunningStat::variance() const
{
    return _n > 1 ? _m2 / static_cast<double>(_n - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStat::ci95HalfWidth() const
{
    if (_n < 2)
        return 0.0;
    // Normal approximation; adequate for the run counts we use.
    return 1.96 * stddev() / std::sqrt(static_cast<double>(_n));
}

double
mean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double sum = 0.0;
    for (double x : xs)
        sum += x;
    return sum / static_cast<double>(xs.size());
}

double
stddev(const std::vector<double> &xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double m2 = 0.0;
    for (double x : xs)
        m2 += (x - m) * (x - m);
    return std::sqrt(m2 / static_cast<double>(xs.size() - 1));
}

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs)
        log_sum += std::log(x);
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

double
median(std::vector<double> xs)
{
    if (xs.empty())
        return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t mid = xs.size() / 2;
    if (xs.size() % 2 == 1)
        return xs[mid];
    return 0.5 * (xs[mid - 1] + xs[mid]);
}

} // namespace stats::support
