/**
 * @file
 * A tiny streaming JSON writer.
 *
 * The benchmark harnesses print human-readable tables *and* dump the
 * same series as JSON so plots can be regenerated; this writer keeps
 * that dependency-free.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace stats::support {

/**
 * Streaming JSON writer with explicit begin/end for objects/arrays.
 *
 * The writer validates nesting at runtime (panics on mismatched
 * end calls) and handles comma placement and string escaping.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out, bool pretty = true);
    ~JsonWriter();

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    JsonWriter &beginObject();
    JsonWriter &endObject();
    JsonWriter &beginArray();
    JsonWriter &endArray();

    /** Key inside an object; must be followed by a value/container. */
    JsonWriter &key(const std::string &name);

    JsonWriter &value(const std::string &s);
    JsonWriter &value(const char *s);
    JsonWriter &value(double d);
    JsonWriter &value(std::int64_t i);
    JsonWriter &value(int i) { return value(static_cast<std::int64_t>(i)); }
    JsonWriter &value(std::size_t i);
    JsonWriter &value(bool b);

    /** Convenience: key + scalar value. */
    template <class T>
    JsonWriter &
    field(const std::string &name, const T &v)
    {
        key(name);
        return value(v);
    }

    /** Convenience: key + numeric array. */
    JsonWriter &field(const std::string &name,
                      const std::vector<double> &values);

    /** Escape a string for embedding in JSON (without quotes). */
    static std::string escape(const std::string &s);

  private:
    enum class Scope { Object, Array };

    void prepareForValue();
    void newlineIndent();

    std::ostream &_out;
    bool _pretty;
    std::vector<Scope> _scopes;
    std::vector<bool> _hasItems;
    bool _pendingKey = false;
};

} // namespace stats::support
